//! Failure-injection and degenerate-input tests across the stack:
//! adversarial load vectors, pathological meshes, empty workloads,
//! extreme grain skew. Everything must either work or refuse loudly —
//! no silent task loss.

use std::sync::Arc;

use rips_repro::balancers::{gradient, random, rid, sid, GradientParams, RidParams, SidParams};
use rips_repro::core::{rips, Machine, RipsConfig};
use rips_repro::desim::LatencyModel;
use rips_repro::flow::optimal_rebalance;
use rips_repro::sched::{mwa, twa};
use rips_repro::taskgraph::{TaskForest, Workload};
use rips_repro::topology::{BinaryTree, Mesh2D, Topology};
use rips_runtime::Costs;

fn run_everything(w: &Arc<Workload>, nodes: usize) {
    let lat = LatencyModel::paragon();
    let costs = Costs::default();
    let mesh = Mesh2D::near_square(nodes);
    let topo = || -> Arc<dyn Topology> { Arc::new(mesh.clone()) };
    let total: u64 = w.stats().tasks as u64;
    assert_eq!(
        random(Arc::clone(w), topo(), lat, costs, 3).total_executed(),
        total,
        "random lost tasks"
    );
    assert_eq!(
        gradient(
            Arc::clone(w),
            topo(),
            lat,
            costs,
            3,
            GradientParams::default()
        )
        .total_executed(),
        total,
        "gradient lost tasks"
    );
    assert_eq!(
        rid(Arc::clone(w), topo(), lat, costs, 3, RidParams::default()).total_executed(),
        total,
        "RID lost tasks"
    );
    assert_eq!(
        sid(Arc::clone(w), topo(), lat, costs, 3, SidParams::default()).total_executed(),
        total,
        "SID lost tasks"
    );
    assert_eq!(
        rips(
            Arc::clone(w),
            Machine::Mesh(mesh),
            lat,
            costs,
            3,
            RipsConfig::default()
        )
        .run
        .total_executed(),
        total,
        "RIPS lost tasks"
    );
}

#[test]
fn empty_workload() {
    let w = Arc::new(Workload {
        name: "empty".into(),
        rounds: vec![],
    });
    run_everything(&w, 4);
}

#[test]
fn empty_middle_round() {
    let mut f1 = TaskForest::new();
    f1.add_root(500);
    f1.add_root(700);
    let mut f3 = TaskForest::new();
    f3.add_root(900);
    let w = Arc::new(Workload {
        name: "hole".into(),
        rounds: vec![f1, TaskForest::new(), f3],
    });
    run_everything(&w, 4);
}

#[test]
fn single_task_on_many_nodes() {
    let mut f = TaskForest::new();
    f.add_root(10_000);
    let w = Arc::new(Workload::single("lonely", f));
    run_everything(&w, 16);
}

#[test]
fn fewer_tasks_than_nodes() {
    let mut f = TaskForest::new();
    for g in [100u64, 5_000, 20, 9_999, 1] {
        f.add_root(g);
    }
    let w = Arc::new(Workload::single("sparse", f));
    run_everything(&w, 16);
}

#[test]
fn extreme_grain_skew() {
    // One task a thousand times bigger than the rest.
    let mut f = TaskForest::new();
    f.add_root(1_000_000);
    for _ in 0..200 {
        f.add_root(1_000);
    }
    let w = Arc::new(Workload::single("whale", f));
    run_everything(&w, 8);
}

#[test]
fn zero_grain_tasks() {
    // Minimum representable grains: pure scheduling overhead.
    let mut f = TaskForest::new();
    for _ in 0..100 {
        f.add_root(1);
    }
    let w = Arc::new(Workload::single("dust", f));
    run_everything(&w, 8);
}

#[test]
fn deep_dependency_chain() {
    // No parallelism at all: a 60-deep chain. Everything must still
    // terminate (RIPS will churn phases; that is the point).
    let mut f = TaskForest::new();
    let mut cur = f.add_root(800);
    for _ in 0..59 {
        cur = f.add_child(cur, 800);
    }
    let w = Arc::new(Workload::single("chain", f));
    run_everything(&w, 8);
}

#[test]
fn degenerate_meshes_for_mwa() {
    // 1xN, Nx1, and prime sizes (which factor as 1 x p).
    for (r, c) in [(1usize, 17usize), (17, 1), (1, 1), (13, 1)] {
        let mesh = Mesh2D::new(r, c);
        let n = r * c;
        let mut worst = vec![0i64; n];
        worst[0] = 997; // everything piled on one end
        let (plan, _) = mwa(&mesh, &worst);
        let finals = plan.apply(&worst);
        let spread = finals.iter().max().unwrap() - finals.iter().min().unwrap();
        assert!(spread <= 1, "{r}x{c}: spread {spread}");
        // 1-D meshes have forced flows: MWA must match the optimum.
        let opt = optimal_rebalance(&mesh, &worst);
        assert_eq!(plan.edge_cost(), opt.cost, "{r}x{c} not optimal");
    }
}

#[test]
fn adversarial_load_vectors_for_mwa() {
    let mesh = Mesh2D::new(4, 4);
    let cases: Vec<Vec<i64>> = vec![
        vec![1_000_000, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0],
        vec![0; 16],
        (0..16).map(|i| i64::from(i % 2 == 0) * 999).collect(),
        (0..16).map(|i| i as i64 * i as i64 * 31).collect(),
        // total not divisible by 16
        (0..16).map(|i| (i as i64 * 7 + 3) % 11).collect(),
    ];
    for loads in cases {
        let (plan, trace) = mwa(&mesh, &loads);
        let finals = plan.apply(&loads);
        assert_eq!(finals, trace.quotas, "wrong landing for {loads:?}");
        assert_eq!(
            plan.nonlocal_tasks(&loads),
            rips_repro::sched::min_nonlocal_tasks(&loads),
            "locality violated for {loads:?}"
        );
    }
}

#[test]
fn lopsided_tree_for_twa() {
    // A 2-node "tree" and a left-spine-only tree.
    for n in [2usize, 6] {
        let tree = BinaryTree::new(n);
        let mut loads = vec![0i64; n];
        loads[n - 1] = 500;
        let plan = twa(&tree, &loads);
        let finals = plan.apply(&loads);
        let total: i64 = loads.iter().sum();
        assert_eq!(finals, rips_repro::flow::quotas(total, n));
    }
}

#[test]
fn ideal_network_still_correct() {
    // Zero-latency network: ordering degenerates to sequence numbers;
    // schedulers must still not lose tasks. (The gradient model is
    // excluded: it requires nonzero latency by contract.)
    let mut f = TaskForest::new();
    for i in 0..300u64 {
        f.add_root(100 + (i * 37) % 900);
    }
    let w = Arc::new(Workload::single("ideal-net", f));
    let lat = LatencyModel::ideal();
    let costs = Costs::default();
    let mesh = Mesh2D::near_square(8);
    let total = w.stats().tasks as u64;
    let topo = || -> Arc<dyn Topology> { Arc::new(mesh.clone()) };
    assert_eq!(
        random(Arc::clone(&w), topo(), lat, costs, 3).total_executed(),
        total
    );
    assert_eq!(
        rid(Arc::clone(&w), topo(), lat, costs, 3, RidParams::default()).total_executed(),
        total
    );
    assert_eq!(
        rips(
            Arc::clone(&w),
            Machine::Mesh(mesh),
            lat,
            costs,
            3,
            RipsConfig::default()
        )
        .run
        .total_executed(),
        total
    );
}

#[test]
#[should_panic(expected = "one load per node")]
fn mwa_rejects_wrong_length() {
    mwa(&Mesh2D::new(2, 2), &[1, 2, 3]);
}

#[test]
#[should_panic(expected = "negative load")]
fn mwa_rejects_negative_loads() {
    mwa(&Mesh2D::new(2, 2), &[1, -2, 3, 4]);
}
