//! Vendored minimal stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. This shim keeps the same bench authoring API —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], the
//! `criterion_group!`/`criterion_main!` macros — and implements a
//! simple calibrated wall-clock timer underneath: each benchmark is
//! warmed up, an iteration count is chosen to fill a minimum
//! measurement window, and the per-iteration mean over `sample_size`
//! samples is printed as
//! `bench <group>/<id> ... <mean> ns/iter (min <min> ns)`.
//!
//! No statistics, plots, or baseline comparison — for regression
//! tracking, pipe the one-line-per-bench output into a diff.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Benchmark identifier: `group/function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Id from just a parameter (common inside a group).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Passed to the closure given to `bench_*`; call [`Bencher::iter`].
pub struct Bencher<'a> {
    samples: usize,
    results: &'a mut Vec<Duration>,
}

impl Bencher<'_> {
    /// Measures `f`, recording per-iteration time over several samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: find an iteration count that fills
        // ~20ms so short routines aren't dominated by timer noise.
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(20) || iters >= 1 << 20 {
                break;
            }
            iters = (iters * 4).min(1 << 20);
        }
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.results.push(t0.elapsed() / iters as u32);
        }
    }
}

fn report(label: &str, results: &[Duration]) {
    if results.is_empty() {
        println!("bench {label:<40} (no samples)");
        return;
    }
    let mean_ns = results.iter().map(|d| d.as_nanos()).sum::<u128>() / results.len() as u128;
    let min_ns = results.iter().map(|d| d.as_nanos()).min().unwrap();
    println!("bench {label:<40} {mean_ns:>12} ns/iter (min {min_ns} ns)");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark (the real crate's meaning is
    /// close enough for this shim's reporting).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Soft cap accepted for API compatibility; the shim's window is
    /// fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let mut results = Vec::new();
        let mut b = Bencher {
            samples: self.samples,
            results: &mut results,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.label), &results);
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let mut results = Vec::new();
        let mut b = Bencher {
            samples: self.samples,
            results: &mut results,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.label), &results);
        self
    }

    /// Ends the group (no-op beyond parity with the real API).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepts CLI args for parity; filtering is not implemented.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named [`BenchmarkGroup`].
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _criterion: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let mut results = Vec::new();
        let mut b = Bencher {
            samples: 10,
            results: &mut results,
        };
        f(&mut b);
        report(&id.label, &results);
        self
    }
}

/// Declares a group of benchmark functions runnable by `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut ran = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(1), &1u64, |b, &x| {
            b.iter(|| {
                ran += 1;
                black_box(x + 1)
            });
        });
        group.finish();
        assert!(ran > 0);
    }
}
