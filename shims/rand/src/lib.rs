//! Vendored minimal stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the real `rand`
//! cannot be fetched. This shim implements exactly the surface the
//! workspace uses — [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! and [`RngExt::random_range`] — with the same generator family the
//! real `SmallRng` uses on 64-bit targets (xoshiro256++ seeded via
//! SplitMix64), so streams are deterministic and well distributed.
//!
//! Distribution details are simplified (modulo reduction instead of
//! rejection sampling); every consumer in this workspace only needs
//! determinism and rough uniformity, not statistical perfection.

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The random-value convenience surface (`rand` ≥ 0.9 naming).
pub trait RngExt {
    /// Next raw 64 bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Uniform value in `range`. Panics on an empty range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Uniform `f64` in `[0, 1)`.
    fn random(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random() < p
    }
}

/// Half-open or inclusive range, samplable for `T`.
pub trait SampleRange<T> {
    /// Draws a uniform value from `self` using `rng`.
    fn sample_from<R: RngExt>(self, rng: &mut R) -> T;
}

/// Scalar types that know how to draw uniformly from raw 64 bits.
pub trait UniformSample: Sized {
    fn uniform(lo: Self, hi: Self, inclusive: bool, bits: u64) -> Self;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn uniform(lo: Self, hi: Self, inclusive: bool, bits: u64) -> Self {
                let span = if inclusive {
                    assert!(lo <= hi, "empty range in random_range");
                    (hi as u128) - (lo as u128) + 1
                } else {
                    assert!(lo < hi, "empty range in random_range");
                    (hi as u128) - (lo as u128)
                };
                lo.wrapping_add((bits as u128 % span) as $t)
            }
        }
    )*};
}

macro_rules! impl_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformSample for $t {
            fn uniform(lo: Self, hi: Self, inclusive: bool, bits: u64) -> Self {
                let lo_u = (lo as $u).wrapping_sub(<$t>::MIN as $u);
                let hi_u = (hi as $u).wrapping_sub(<$t>::MIN as $u);
                let v = <$u>::uniform(lo_u, hi_u, inclusive, bits);
                v.wrapping_add(<$t>::MIN as $u) as $t
            }
        }
    )*};
}

impl_uniform_unsigned!(u8, u16, u32, u64, usize);
impl_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl UniformSample for f64 {
    fn uniform(lo: Self, hi: Self, _inclusive: bool, bits: u64) -> Self {
        assert!(lo < hi, "empty range in random_range");
        let unit = (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

impl<T: UniformSample> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngExt>(self, rng: &mut R) -> T {
        T::uniform(self.start, self.end, false, rng.next_u64())
    }
}

impl<T: UniformSample> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngExt>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::uniform(lo, hi, true, rng.next_u64())
    }
}

pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// xoshiro256++ — the algorithm the real `SmallRng` uses on 64-bit
    /// platforms. Fast, small state, deterministic.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            SmallRng {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }
    }

    impl RngExt for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.random_range(0..10);
            assert!(v < 10);
            let w: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.random_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u: usize = rng.random_range(3..4);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[rng.random_range(0..8usize)] += 1;
        }
        for b in buckets {
            assert!((800..1200).contains(&b), "skewed bucket: {buckets:?}");
        }
    }
}
