//! Vendored minimal stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched. This shim keeps the same *testing model* — each
//! `proptest!` test runs many randomly generated cases — but does not
//! implement shrinking: a failing case reports its case index and the
//! (deterministic, per-test) seed instead of a minimized input.
//!
//! Supported surface (everything this workspace's property tests use):
//! integer range strategies (`0..n`, `a..=b`), tuples of strategies,
//! [`Just`], `prop_oneof!`, `prop_map`/`prop_flat_map`,
//! [`collection::vec`] with exact or ranged sizes, `prop_assert!` /
//! `prop_assert_eq!`, and `#![proptest_config(ProptestConfig::…)]`.

use std::ops::{Range, RangeInclusive};

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; this shim has no shrinking, so a
        // somewhat smaller default keeps `cargo test` latency sane
        // while still exercising a broad input sample.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded from the test's name, so every `cargo test` run explores
    /// the same cases (reproducible CI).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produces one random value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    variants: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union over `variants` (must be non-empty).
    pub fn new(variants: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! of zero strategies");
        Union { variants }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let pick = rng.below(self.variants.len() as u64) as usize;
        self.variants[pick].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// `bool` strategy: fair coin.
impl Strategy for fn() -> bool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Number of elements a [`vec()`] strategy may generate.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// `Vec` strategy with element strategy `element` and a size drawn
    /// from `size` (exact `usize`, `a..b`, or `a..=b`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

/// Asserts inside a `proptest!` body; failure aborts the case with a
/// formatted message (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond),
                format!($($fmt)+),
                file!(),
                line!()
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}\n at {}:{}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}\n at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                file!(),
                line!()
            ));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(::std::boxed::Box::new($strat) as _,)+])
    };
}

/// Defines property tests: each `fn` runs `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { [$crate::ProptestConfig::default()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let strat = ($($strat,)+);
                let ($($pat,)+) = $crate::Strategy::generate(&strat, &mut rng);
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!(
                        "property `{}` failed on case {}/{} (no shrinking in vendored proptest shim):\n{}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        msg
                    );
                }
            }
        }
        $crate::__proptest_impl! { [$cfg] $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in -4i64..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-4..=4).contains(&y));
        }

        #[test]
        fn vec_sizes(v in collection::vec(0u64..100, 2..5), w in collection::vec(0u64..9, 7usize)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert_eq!(w.len(), 7);
        }

        #[test]
        fn combinators(pair in (0u32..5, 0u32..5).prop_map(|(a, b)| (a, a + b))) {
            prop_assert!(pair.1 >= pair.0, "pair {:?}", pair);
        }

        #[test]
        fn oneof_and_flat_map(
            v in prop_oneof![Just(1u8), Just(2u8)],
            tagged in (1usize..4).prop_flat_map(|n| collection::vec(0usize..10, n))
        ) {
            prop_assert!(matches!(v, 1u8 | 2u8));
            prop_assert!(!tagged.is_empty() && tagged.len() < 4);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "property `fails` failed")]
    fn failure_reports_case() {
        proptest! {
            #[allow(unused)]
            fn fails(x in 0u8..10) {
                prop_assert!(x < 100); // passes
                prop_assert!(x > 200, "x was {}", x); // always fails
            }
        }
        fails();
    }
}
