//! Writing your own load balancer against the simulator harness.
//!
//! This example implements a deliberately simple strategy — *round-robin
//! handoff*: every node ships each newly generated task to its next
//! mesh neighbour in a fixed rotation — and races it against RIPS on
//! the same workload. It shows the three things a scheduler plugs into:
//!
//! 1. a [`Program`] state machine (messages + timers + compute),
//! 2. the [`Oracle`] bookkeeping for rounds and task generation,
//! 3. the [`RunOutcome`] accounting that makes results comparable.
//!
//! ```text
//! cargo run --release --example custom_balancer
//! ```

use std::sync::Arc;

use rips_repro::core::{rips, Machine, RipsConfig};
use rips_repro::desim::{Ctx, Engine, LatencyModel, Program, WorkKind};
use rips_repro::taskgraph::geometric_tree;
use rips_repro::topology::{Mesh2D, NodeId, Topology};
use rips_runtime::{Costs, NodeExec, Oracle, RunOutcome, TaskInstance};

#[derive(Debug, Clone)]
enum Msg {
    Tasks(Vec<TaskInstance>),
    RoundStart(u32),
}

const TAG_EXEC: u64 = 0;
const TAG_ROUND: u64 = 1;

struct RoundRobin {
    me: NodeId,
    oracle: Oracle,
    exec: NodeExec,
    neighbors: Vec<NodeId>,
    next: usize,
    exec_armed: bool,
}

impl RoundRobin {
    fn kick(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if !self.exec_armed && !self.exec.queue.is_empty() {
            self.exec_armed = true;
            ctx.set_timer(0, TAG_EXEC);
        }
    }

    fn seed(&mut self, ctx: &mut Ctx<'_, Msg>, round: u32) {
        let seeds = self.oracle.seed_for(self.me, round);
        ctx.compute(
            self.oracle.costs.spawn_us * seeds.len() as u64,
            WorkKind::Overhead,
        );
        self.exec.queue.extend(seeds);
        self.kick(ctx);
    }
}

impl Program for RoundRobin {
    type Msg = Msg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.seed(ctx, 0);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
        match msg {
            Msg::Tasks(tasks) => {
                ctx.compute(
                    self.oracle.costs.spawn_us * tasks.len() as u64,
                    WorkKind::Overhead,
                );
                self.exec.queue.extend(tasks);
                self.kick(ctx);
            }
            Msg::RoundStart(round) => self.seed(ctx, round),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: u64) {
        match tag {
            TAG_EXEC => {
                self.exec_armed = false;
                let Some(inst) = self.exec.queue.pop_front() else {
                    return;
                };
                ctx.compute(self.oracle.costs.dispatch_us, WorkKind::Overhead);
                ctx.compute(inst.grain_us, WorkKind::User);
                self.exec.record(&inst, self.me);
                // The custom policy: every generated child goes to the
                // next neighbour in rotation.
                for child in self.oracle.children_of(&inst, self.me) {
                    if self.neighbors.is_empty() {
                        self.exec.queue.push_back(child);
                    } else {
                        let to = self.neighbors[self.next % self.neighbors.len()];
                        self.next += 1;
                        ctx.send(to, Msg::Tasks(vec![child]), self.oracle.costs.task_bytes);
                    }
                }
                if self.oracle.task_done() {
                    ctx.set_timer(self.oracle.round_barrier_delay(), TAG_ROUND);
                }
                self.kick(ctx);
            }
            TAG_ROUND => match self.oracle.advance_round() {
                Some(next) => {
                    ctx.send_all(Msg::RoundStart(next), self.oracle.costs.ctl_bytes);
                    self.seed(ctx, next);
                }
                None => ctx.halt(),
            },
            _ => unreachable!(),
        }
    }
}

fn main() {
    let workload = Arc::new(geometric_tree(24, 8, 3, 25_000, 11));
    let stats = workload.stats();
    println!(
        "workload: {} tasks, {:.2} s of work\n",
        stats.tasks,
        stats.total_work_us as f64 / 1e6
    );

    let mesh = Mesh2D::new(4, 4);
    let costs = Costs::default();
    let lat = LatencyModel::paragon();

    // The custom balancer, assembled by hand on the raw engine.
    let topo: Arc<dyn Topology> = Arc::new(mesh.clone());
    let oracle = Oracle::new(Arc::clone(&workload), topo.as_ref(), costs);
    let topo_for_make = Arc::clone(&topo);
    let engine = Engine::new(topo, lat, 1, move |me| RoundRobin {
        me,
        oracle: oracle.clone(),
        exec: NodeExec::default(),
        neighbors: topo_for_make.neighbors(me),
        next: 0,
        exec_armed: false,
    });
    let (progs, stats_rr) = engine.run();
    let rr = RunOutcome {
        stats: stats_rr,
        executed: progs.iter().map(|p| p.exec.executed).collect(),
        nonlocal: progs.iter().map(|p| p.exec.nonlocal_executed).sum(),
        system_phases: 0,
    };
    rr.verify_complete(&workload)
        .expect("round-robin lost tasks");
    println!(
        "round-robin handoff: T {:.3}s  efficiency {:.0}%  nonlocal {}",
        rr.exec_time_s(),
        rr.efficiency() * 100.0,
        rr.nonlocal
    );

    // RIPS on the same workload, for scale.
    let out = rips(
        Arc::clone(&workload),
        Machine::Mesh(mesh),
        lat,
        costs,
        1,
        RipsConfig::default(),
    );
    out.run.verify_complete(&workload).expect("RIPS lost tasks");
    println!(
        "RIPS (ANY-Lazy):     T {:.3}s  efficiency {:.0}%  nonlocal {}  ({} phases)",
        out.run.exec_time_s(),
        out.run.efficiency() * 100.0,
        out.run.nonlocal,
        out.run.system_phases
    );
}
