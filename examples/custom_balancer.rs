//! Writing a custom balancer against the policy kernel.
//!
//! A scheduler is a [`BalancerPolicy`]: the kernel's `NodeDriver` owns
//! task execution, migration accounting, round barriers, and
//! termination, so a policy only decides *where tasks go*. This example
//! implements round-robin handoff — every spawned child is shipped to
//! the next mesh neighbour in rotation, no load information at all —
//! in ~30 lines, registers it alongside the built-in roster, and races
//! it against RIPS on the same workload.
//!
//! Run with `cargo run --release --example custom_balancer`.

use std::sync::Arc;

use rips_repro::bench::registry;
use rips_repro::desim::LatencyModel;
use rips_repro::runtime::{
    run_policy, BalancerPolicy, Costs, ExecCtx, Kernel, KernelMsg, RunSpec, ScheduledRun,
    TaskInstance,
};
use rips_repro::taskgraph::geometric_tree;
use rips_repro::topology::{Mesh2D, NodeId, Topology};

/// Round-robin handoff: children scatter over the neighbours in strict
/// rotation. Blind (no load information, like randomized allocation)
/// but only ever one hop (unlike randomized allocation).
struct RoundRobin {
    neighbors: Vec<NodeId>,
    next: usize,
}

impl BalancerPolicy for RoundRobin {
    /// No policy messages: placement is the whole algorithm.
    type Msg = ();

    fn on_msg(
        &mut self,
        _k: &mut Kernel,
        _ctx: &mut impl ExecCtx<KernelMsg<()>>,
        _from: NodeId,
        _msg: (),
    ) {
        unreachable!("round-robin sends no policy messages");
    }

    fn place_children(
        &mut self,
        k: &mut Kernel,
        ctx: &mut impl ExecCtx<KernelMsg<()>>,
        children: Vec<TaskInstance>,
    ) {
        for child in children {
            let dst = self.neighbors[self.next];
            self.next = (self.next + 1) % self.neighbors.len();
            let load = k.load();
            k.send_tasks(ctx, dst, vec![child], load);
        }
    }
}

fn main() {
    // Extend the canonical roster: one `register` call, and the new
    // scheduler runs through the same path as the built-ins.
    let mut reg = registry();
    reg.register(
        "RoundRobin",
        Box::new(|spec: &RunSpec| {
            let topo: Arc<dyn Topology> = Arc::new(Mesh2D::near_square(spec.nodes));
            let topo2 = Arc::clone(&topo);
            let (outcome, _) = run_policy(
                Arc::clone(&spec.workload),
                topo,
                spec.latency,
                spec.costs,
                spec.seed,
                move |me| RoundRobin {
                    neighbors: topo2.neighbors(me),
                    next: 0,
                },
            );
            ScheduledRun {
                outcome,
                phases: Vec::new(),
            }
        }),
    );

    let workload = Arc::new(geometric_tree(24, 8, 3, 25_000, 11));
    let stats = workload.stats();
    println!(
        "workload: {} tasks, {:.2} s of work, 4x4 mesh\n",
        stats.tasks,
        stats.total_work_us as f64 / 1e6
    );

    let spec = RunSpec {
        workload: Arc::clone(&workload),
        nodes: 16,
        latency: LatencyModel::paragon(),
        costs: Costs::default(),
        seed: 1,
        rid_u: 0.4,
    };
    for name in ["RoundRobin", "RIPS"] {
        let run = reg.run(name, &spec);
        run.outcome
            .verify_complete(&workload)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let phases = if run.outcome.system_phases > 0 {
            format!("  ({} phases)", run.outcome.system_phases)
        } else {
            String::new()
        };
        println!(
            "{name:>10}: T {:.3}s  efficiency {:.0}%  nonlocal {}{phases}",
            run.outcome.exec_time_s(),
            run.outcome.efficiency() * 100.0,
            run.outcome.nonlocal,
        );
    }
}
