//! Quickstart: balance a load vector with the Mesh Walking Algorithm,
//! then run a small dynamic workload under the full RIPS runtime.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use rips_repro::core::{rips, Machine, RipsConfig};
use rips_repro::desim::LatencyModel;
use rips_repro::flow::optimal_rebalance;
use rips_repro::metrics::optimal_efficiency;
use rips_repro::sched::{min_nonlocal_tasks, mwa};
use rips_repro::taskgraph::geometric_tree;
use rips_repro::topology::Mesh2D;
use rips_runtime::Costs;

fn main() {
    // --- Part 1: one-shot parallel scheduling with MWA -------------
    let mesh = Mesh2D::new(4, 4);
    let loads: Vec<i64> = vec![30, 2, 5, 1, 0, 12, 7, 3, 25, 0, 0, 9, 4, 4, 6, 12];
    let (plan, trace) = mwa(&mesh, &loads);
    println!("MWA on a 4x4 mesh, initial loads {loads:?}");
    println!(
        "  average load (w_avg) = {}, remainder = {}",
        trace.wavg, trace.remainder
    );
    println!("  final loads          = {:?}", plan.apply(&loads));
    println!(
        "  tasks moved          = {} (theoretical minimum {})",
        plan.nonlocal_tasks(&loads),
        min_nonlocal_tasks(&loads)
    );
    println!(
        "  edge cost Σe_k       = {} (min-cost max-flow optimum {})",
        plan.edge_cost(),
        optimal_rebalance(&mesh, &loads).cost
    );

    // --- Part 2: runtime incremental parallel scheduling -----------
    // A divide-and-conquer workload whose tasks generate more tasks,
    // executed on a simulated 16-node mesh multicomputer under RIPS.
    let workload = Arc::new(geometric_tree(12, 7, 3, 20_000, 42));
    let stats = workload.stats();
    println!(
        "\nRIPS on a dynamic workload: {} tasks, {:.1} ms total work",
        stats.tasks,
        stats.total_work_us as f64 / 1e3
    );
    let out = rips(
        Arc::clone(&workload),
        Machine::Mesh(mesh),
        LatencyModel::paragon(),
        Costs::default(),
        7,
        RipsConfig::default(), // the paper's best policy: ANY-Lazy
    );
    out.run
        .verify_complete(&workload)
        .expect("all tasks must run");
    println!("  system phases   = {}", out.run.system_phases);
    println!(
        "  non-local tasks = {} of {}",
        out.run.nonlocal, stats.tasks
    );
    println!(
        "  efficiency      = {:.1}% (zero-overhead optimum {:.1}%)",
        out.run.efficiency() * 100.0,
        optimal_efficiency(&workload, 16) * 100.0
    );
}
