//! N-Queens scheduling shoot-out: the paper's Table I in miniature.
//!
//! Runs exhaustive 11-Queens search (small enough to finish instantly)
//! under all four schedulers on a simulated 16-node mesh and prints the
//! comparison columns. Scale `--n` up to 13/14/15 to approach the
//! paper's setting (see `cargo run -p rips-bench --bin table1` for the
//! full reproduction).
//!
//! ```text
//! cargo run --release --example nqueens_race -- --n 12
//! ```

use std::sync::Arc;

use rips_repro::apps::{nqueens, NQueensConfig};
use rips_repro::balancers::{gradient, random, rid, GradientParams, RidParams};
use rips_repro::core::{rips, Machine, RipsConfig};
use rips_repro::desim::LatencyModel;
use rips_repro::topology::{Mesh2D, Topology};
use rips_runtime::{Costs, RunOutcome};

fn main() {
    let n: u32 = std::env::args()
        .skip_while(|a| a != "--n")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(11);
    let workload = Arc::new(nqueens(NQueensConfig::paper(n)));
    let stats = workload.stats();
    let (solutions_nodes, solutions) = rips_repro::apps::nqueens::solve(n);
    println!(
        "{n}-Queens: {} solutions, {} search nodes, {} tasks, {:.2} s sequential work\n",
        solutions,
        solutions_nodes,
        stats.tasks,
        stats.total_work_us as f64 / 1e6
    );

    let mesh = Mesh2D::near_square(16);
    let lat = LatencyModel::paragon();
    let costs = Costs::default();
    let report = |name: &str, out: RunOutcome| {
        out.verify_complete(&workload).expect("complete");
        println!(
            "{name:10} nonlocal {:6}  Th {:.3}s  Ti {:.3}s  T {:.3}s  efficiency {:.0}%",
            out.nonlocal,
            out.overhead_s(),
            out.idle_s(),
            out.exec_time_s(),
            out.efficiency() * 100.0
        );
    };

    let topo = || -> Arc<dyn Topology> { Arc::new(mesh.clone()) };
    report(
        "Random",
        random(Arc::clone(&workload), topo(), lat, costs, 1),
    );
    report(
        "Gradient",
        gradient(
            Arc::clone(&workload),
            topo(),
            lat,
            costs,
            1,
            GradientParams::default(),
        ),
    );
    report(
        "RID",
        rid(
            Arc::clone(&workload),
            topo(),
            lat,
            costs,
            1,
            RidParams::default(),
        ),
    );
    let out = rips(
        Arc::clone(&workload),
        Machine::Mesh(mesh),
        lat,
        costs,
        1,
        RipsConfig::default(),
    );
    println!(
        "RIPS       nonlocal {:6}  Th {:.3}s  Ti {:.3}s  T {:.3}s  efficiency {:.0}%  ({} system phases)",
        out.run.nonlocal,
        out.run.overhead_s(),
        out.run.idle_s(),
        out.run.exec_time_s(),
        out.run.efficiency() * 100.0,
        out.run.system_phases
    );
}
