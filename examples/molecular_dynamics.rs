//! Molecular-dynamics load balancing: the paper's GROMOS scenario.
//!
//! Builds the synthetic 6968-atom SOD stand-in, shows how the cutoff
//! radius shapes the per-group force workload, and runs the MD steps
//! under RIPS — printing the per-phase log so the *incremental*
//! correction of grain-size misestimates is visible.
//!
//! ```text
//! cargo run --release --example molecular_dynamics
//! ```

use std::sync::Arc;

use rips_repro::apps::gromos::{gromos, half_pair_counts, synthetic_protein, GromosConfig};
use rips_repro::core::{rips, Machine, RipsConfig};
use rips_repro::desim::LatencyModel;
use rips_repro::topology::Mesh2D;
use rips_runtime::Costs;

fn main() {
    // The molecule: show the density profile the workload comes from.
    let atoms = synthetic_protein(6968, 2206);
    println!("synthetic SOD stand-in: {} atoms", atoms.len());
    for cutoff in [8.0, 12.0, 16.0] {
        let pairs = half_pair_counts(&atoms, cutoff);
        let total: u64 = pairs.iter().sum();
        let max = pairs.iter().max().copied().unwrap_or(0);
        println!("  cutoff {cutoff:>4} A: {total:>9} half pairs, busiest atom sees {max}",);
    }

    // One full run at the paper's middle cutoff, small machine so the
    // example finishes instantly.
    let mut cfg = GromosConfig::paper(12.0);
    cfg.steps = 3;
    let workload = Arc::new(gromos(cfg));
    let stats = workload.stats();
    println!(
        "\nworkload: {} groups x {} MD steps, {:.1} s sequential work",
        workload.rounds[0].len(),
        workload.rounds.len(),
        stats.total_work_us as f64 / 1e6
    );

    let out = rips(
        Arc::clone(&workload),
        Machine::Mesh(Mesh2D::new(8, 4)),
        LatencyModel::paragon(),
        Costs::default(),
        1,
        RipsConfig::default(),
    );
    out.run.verify_complete(&workload).expect("complete");
    println!(
        "RIPS on 32 nodes: T = {:.2} s, efficiency {:.0}%, {} system phases\n",
        out.run.exec_time_s(),
        out.run.efficiency() * 100.0,
        out.run.system_phases
    );
    println!("phase log (the load estimate is task *count*; grain-size error");
    println!("left over from one phase is corrected by the next):");
    for p in &out.phases {
        println!(
            "  phase {:2} (MD step {}): {:5} tasks queued, {:4} migrated",
            p.phase, p.round, p.total_tasks, p.migrated
        );
    }
}
