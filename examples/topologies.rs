//! RIPS across interconnects: "RIPS is a general method and applies to
//! different topologies, such as the tree, mesh, and hypercube" (§4).
//!
//! Runs the same skewed workload on a 32-node mesh (MWA), a 31-node
//! binary tree (TWA), and a 32-node hypercube (DEM), and contrasts the
//! per-phase scheduling quality of the three parallel scheduling
//! algorithms.
//!
//! ```text
//! cargo run --release --example topologies
//! ```

use std::sync::Arc;

use rips_repro::core::{rips, Machine, RipsConfig};
use rips_repro::desim::LatencyModel;
use rips_repro::taskgraph::skewed_flat;
use rips_repro::topology::{BinaryTree, Hypercube, Mesh2D};
use rips_runtime::Costs;

fn main() {
    let workload = Arc::new(skewed_flat(2_000, 1_500, 7, 12, 9));
    let stats = workload.stats();
    println!(
        "workload: {} tasks, {:.1} s sequential work, heaviest task {:.1} ms\n",
        stats.tasks,
        stats.total_work_us as f64 / 1e6,
        stats.max_grain_us as f64 / 1e3
    );

    let machines = [
        ("8x4 mesh / MWA", Machine::Mesh(Mesh2D::new(8, 4))),
        ("31-node tree / TWA", Machine::Tree(BinaryTree::new(31))),
        ("2^5 hypercube / DEM", Machine::Cube(Hypercube::new(5))),
    ];
    for (name, machine) in machines {
        let out = rips(
            Arc::clone(&workload),
            machine,
            LatencyModel::paragon(),
            Costs::default(),
            3,
            RipsConfig::default(),
        );
        out.run.verify_complete(&workload).expect("complete");
        let moved: i64 = out.phases.iter().map(|p| p.migrated).sum();
        let cost: i64 = out.phases.iter().map(|p| p.edge_cost).sum();
        println!(
            "{name:20} T {:.3}s  efficiency {:.0}%  phases {:2}  moved {:5}  Σe_k {:6}",
            out.run.exec_time_s(),
            out.run.efficiency() * 100.0,
            out.run.system_phases,
            moved,
            cost
        );
    }
    println!("\nMWA and TWA land every phase within one task of perfect balance;");
    println!("DEM's integer rounding can leave up to log2(N) spread (paper §4),");
    println!("which the next incremental phase then corrects.");
}
