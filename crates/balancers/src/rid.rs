//! Receiver-initiated diffusion (Willebeek-LeMair & Reeves 1993).
//!
//! Nodes keep approximate neighbour loads, refreshed whenever a node's
//! own load drifts by more than the update factor `u` since its last
//! broadcast. A node whose load falls below `L_LOW` requests work from
//! its most-loaded known neighbour; the donor ships up to half its
//! surplus above `L_threshold`. Receiver-initiated schemes "do not do
//! well in a lightly-loaded system" (§5) — visible in the IDA\* rows.

use std::sync::Arc;

use rips_desim::{Ctx, Engine, LatencyModel, Program, WorkKind};
use rips_runtime::{Costs, Oracle, RunOutcome, TaskInstance};
use rips_taskgraph::Workload;
use rips_topology::{NodeId, Topology};

use crate::base::{Base, Msg, TAG_EXEC, TAG_ROUND};

/// Timer tag for the outstanding-request timeout.
const TAG_REQ_TIMEOUT: u64 = 3;

/// RID tuning parameters (paper §5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RidParams {
    /// Request threshold: ask for work when `load < l_low`.
    pub l_low: i64,
    /// Donation floor: donors keep at least this much.
    pub l_threshold: i64,
    /// Load-information update factor; larger ⇒ more frequent
    /// broadcasts (the paper found 0.9 too chatty and settled on 0.4,
    /// raising it to 0.7 for IDA\* on large machines).
    pub u: f64,
    /// How long a requester waits for donations before it may ask
    /// again. Refusals are silent (a donor with nothing to spare sends
    /// nothing), so a node begging stale-loaded neighbours simply idles
    /// out the timeout — the lightly-loaded weakness of
    /// receiver-initiated schemes the paper leans on for its IDA\*
    /// comparison.
    pub request_timeout_us: u64,
}

impl Default for RidParams {
    fn default() -> Self {
        RidParams {
            l_low: 2,
            l_threshold: 1,
            u: 0.4,
            request_timeout_us: 10_000,
        }
    }
}

struct RidProg {
    base: Base,
    params: RidParams,
    neighbors: Vec<NodeId>,
    nb_load: Vec<i64>,
    last_broadcast: i64,
    /// Outstanding request replies; wait for all of them (each reply
    /// is a `Tasks` message, possibly empty) before asking again.
    pending_replies: u32,
}

impl RidProg {
    fn nb_index(&self, nb: NodeId) -> usize {
        self.neighbors
            .iter()
            .position(|&x| x == nb)
            .expect("message from non-neighbour")
    }

    /// Broadcasts own load to neighbours when it drifted enough.
    fn maybe_broadcast(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let load = self.base.load();
        let threshold = (((1.0 - self.params.u) * self.last_broadcast.max(0) as f64) as i64).max(1);
        if (load - self.last_broadcast).abs() >= threshold {
            self.last_broadcast = load;
            for &nb in &self.neighbors {
                ctx.send(nb, Msg::LoadInfo(load), self.base.oracle.costs.ctl_bytes);
            }
        }
    }

    /// Requests work when underloaded: the deficit to the neighbourhood
    /// average is split over the above-average neighbours in proportion
    /// to their excess — the proportional-hunk rule of Willebeek-LeMair
    /// & Reeves' RID.
    fn maybe_request(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.pending_replies > 0
            || self.base.load() >= self.params.l_low
            || self.neighbors.is_empty()
        {
            return;
        }
        let load = self.base.load();
        let avg = (self.nb_load.iter().sum::<i64>() + load) / (self.nb_load.len() as i64 + 1);
        let deficit = (avg - load).max(1);
        let excess: Vec<i64> = self
            .nb_load
            .iter()
            .map(|&l| (l - avg.max(self.params.l_threshold)).max(0))
            .collect();
        let total_excess: i64 = excess.iter().sum();
        if total_excess == 0 {
            return; // nobody worth asking
        }
        for (idx, &e) in excess.iter().enumerate() {
            if e == 0 {
                continue;
            }
            let share = ((deficit * e + total_excess - 1) / total_excess).max(1);
            self.pending_replies += 1;
            ctx.send(
                self.neighbors[idx],
                Msg::TaskRequest(share),
                self.base.oracle.costs.ctl_bytes,
            );
        }
        if self.pending_replies > 0 {
            ctx.set_timer(self.params.request_timeout_us, TAG_REQ_TIMEOUT);
        }
    }

    /// Donates up to `amount` tasks, keeping `l_threshold` for itself.
    /// A donor with nothing to spare stays silent — the requester finds
    /// out by timing out.
    fn donate(&mut self, ctx: &mut Ctx<'_, Msg>, to: NodeId, amount: i64) {
        let surplus = (self.base.load() - self.params.l_threshold).max(0);
        let give = surplus.min(amount).min(self.base.exec.queue.len() as i64);
        if give == 0 {
            return;
        }
        let mut batch: Vec<TaskInstance> = Vec::with_capacity(give as usize);
        for _ in 0..give {
            batch.push(self.base.exec.queue.pop_back().expect("give <= len"));
        }
        ctx.compute(
            self.base.oracle.costs.spawn_us * batch.len() as u64,
            WorkKind::Overhead,
        );
        let load = self.base.load();
        let bytes = self.base.oracle.costs.task_bytes * batch.len();
        ctx.send(to, Msg::Tasks(batch, load), bytes);
        self.maybe_broadcast(ctx);
    }
}

impl Program for RidProg {
    type Msg = Msg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.base.seed_round(ctx, 0);
        self.maybe_broadcast(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::Tasks(tasks, sender_load) => {
                let idx = self.nb_index(from);
                self.nb_load[idx] = sender_load;
                self.pending_replies = self.pending_replies.saturating_sub(1);
                self.base.accept_tasks(ctx, tasks);
                self.maybe_broadcast(ctx);
                self.maybe_request(ctx);
            }
            Msg::LoadInfo(load) => {
                let idx = self.nb_index(from);
                self.nb_load[idx] = load;
                self.maybe_request(ctx);
            }
            Msg::TaskRequest(amount) => self.donate(ctx, from, amount),
            Msg::RoundStart(round) => {
                self.pending_replies = 0;
                self.base.seed_round(ctx, round);
                self.maybe_broadcast(ctx);
            }
            other => unreachable!("RID got {other:?}"),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: u64) {
        match tag {
            TAG_EXEC => {
                if let Some(inst) = self.base.run_one(ctx) {
                    let children = self.base.oracle.children_of(&inst, self.base.me);
                    let spawn = children.len() as u64 * self.base.oracle.costs.spawn_us;
                    ctx.compute(spawn, WorkKind::Overhead);
                    self.base.exec.queue.extend(children);
                    self.base.after_task(ctx);
                    self.maybe_broadcast(ctx);
                    self.maybe_request(ctx);
                }
            }
            TAG_ROUND => self.base.on_round_timer(ctx),
            TAG_REQ_TIMEOUT => {
                // Whatever was still outstanding is treated as refused.
                self.pending_replies = 0;
                self.maybe_request(ctx);
            }
            _ => unreachable!("unknown timer {tag}"),
        }
    }
}

/// Runs `workload` under receiver-initiated diffusion.
pub fn rid(
    workload: Arc<Workload>,
    topo: Arc<dyn Topology>,
    latency: LatencyModel,
    costs: Costs,
    seed: u64,
    params: RidParams,
) -> RunOutcome {
    assert!(
        (0.0..1.0).contains(&params.u),
        "update factor must be in [0,1)"
    );
    if workload.rounds.is_empty() {
        return RunOutcome::empty(topo.len());
    }
    let oracle = Oracle::new(Arc::clone(&workload), topo.as_ref(), costs);
    let topo2 = Arc::clone(&topo);
    let engine = Engine::new(topo, latency, seed, move |me| {
        let neighbors = topo2.neighbors(me);
        RidProg {
            base: Base::new(me, oracle.clone()),
            params,
            nb_load: vec![0; neighbors.len()],
            neighbors,
            last_broadcast: 0,
            pending_replies: 0,
        }
    });
    let mut engine = engine;
    engine.record_timeline(costs.record_timeline);
    engine.enable_contention(costs.contention);
    let (progs, stats) = engine.run();
    let executed: Vec<u64> = progs.iter().map(|p| p.base.exec.executed).collect();
    let nonlocal = progs.iter().map(|p| p.base.exec.nonlocal_executed).sum();
    RunOutcome {
        stats,
        executed,
        nonlocal,
        system_phases: 0,
    }
}
