//! Receiver-initiated diffusion (Willebeek-LeMair & Reeves 1993).
//!
//! Nodes keep approximate neighbour loads, refreshed whenever a node's
//! own load drifts by more than the update factor `u` since its last
//! broadcast. A node whose load falls below `L_LOW` requests work from
//! its most-loaded known neighbour; the donor ships up to half its
//! surplus above `L_threshold`. Receiver-initiated schemes "do not do
//! well in a lightly-loaded system" (§5) — visible in the IDA\* rows.

use std::sync::Arc;

use rips_desim::{LatencyModel, Time, WorkKind};
use rips_runtime::{
    run_policy, BalancerPolicy, Costs, ExecCtx, Kernel, KernelMsg, RunOutcome, TaskInstance,
    TAG_POLICY_BASE,
};
use rips_taskgraph::Workload;
use rips_topology::{NodeId, Topology};

/// Timer tag for the outstanding-request timeout.
const TAG_REQ_TIMEOUT: u64 = TAG_POLICY_BASE + 1;

/// RID tuning parameters (paper §5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RidParams {
    /// Request threshold: ask for work when `load < l_low`.
    pub l_low: i64,
    /// Donation floor: donors keep at least this much.
    pub l_threshold: i64,
    /// Load-information update factor; larger ⇒ more frequent
    /// broadcasts (the paper found 0.9 too chatty and settled on 0.4,
    /// raising it to 0.7 for IDA\* on large machines).
    pub u: f64,
    /// How long a requester waits for donations before it may ask
    /// again. Refusals are silent (a donor with nothing to spare sends
    /// nothing), so a node begging stale-loaded neighbours simply idles
    /// out the timeout — the lightly-loaded weakness of
    /// receiver-initiated schemes the paper leans on for its IDA\*
    /// comparison.
    pub request_timeout_us: u64,
}

impl Default for RidParams {
    fn default() -> Self {
        RidParams {
            l_low: 2,
            l_threshold: 1,
            u: 0.4,
            request_timeout_us: 10_000,
        }
    }
}

/// RID policy messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RidMsg {
    /// Sender's current load.
    LoadInfo(i64),
    /// Request for up to this many tasks.
    TaskRequest(i64),
}

/// Receiver-initiated diffusion as a [`BalancerPolicy`].
pub struct RidPolicy {
    params: RidParams,
    neighbors: Vec<NodeId>,
    nb_load: Vec<i64>,
    last_broadcast: i64,
    /// Outstanding request replies; wait for all of them (each reply
    /// is a `Tasks` message, possibly empty) before asking again.
    pending_replies: u32,
}

impl RidPolicy {
    fn nb_index(&self, nb: NodeId) -> usize {
        self.neighbors
            .iter()
            .position(|&x| x == nb)
            .expect("message from non-neighbour")
    }

    /// Broadcasts own load to neighbours when it drifted enough.
    fn maybe_broadcast(&mut self, k: &mut Kernel, ctx: &mut impl ExecCtx<KernelMsg<RidMsg>>) {
        let load = k.load();
        let threshold = (((1.0 - self.params.u) * self.last_broadcast.max(0) as f64) as i64).max(1);
        if (load - self.last_broadcast).abs() >= threshold {
            self.last_broadcast = load;
            for &nb in &self.neighbors {
                ctx.send(
                    nb,
                    KernelMsg::Policy(RidMsg::LoadInfo(load)),
                    k.oracle.costs.ctl_bytes,
                );
            }
        }
    }

    /// Requests work when underloaded: the deficit to the neighbourhood
    /// average is split over the above-average neighbours in proportion
    /// to their excess — the proportional-hunk rule of Willebeek-LeMair
    /// & Reeves' RID.
    fn maybe_request(&mut self, k: &mut Kernel, ctx: &mut impl ExecCtx<KernelMsg<RidMsg>>) {
        if self.pending_replies > 0 || k.load() >= self.params.l_low || self.neighbors.is_empty() {
            return;
        }
        let load = k.load();
        let avg = (self.nb_load.iter().sum::<i64>() + load) / (self.nb_load.len() as i64 + 1);
        let deficit = (avg - load).max(1);
        let excess: Vec<i64> = self
            .nb_load
            .iter()
            .map(|&l| (l - avg.max(self.params.l_threshold)).max(0))
            .collect();
        let total_excess: i64 = excess.iter().sum();
        if total_excess == 0 {
            return; // nobody worth asking
        }
        for (idx, &e) in excess.iter().enumerate() {
            if e == 0 {
                continue;
            }
            let share = ((deficit * e + total_excess - 1) / total_excess).max(1);
            self.pending_replies += 1;
            ctx.send(
                self.neighbors[idx],
                KernelMsg::Policy(RidMsg::TaskRequest(share)),
                k.oracle.costs.ctl_bytes,
            );
        }
        if self.pending_replies > 0 {
            ctx.set_timer(self.params.request_timeout_us, TAG_REQ_TIMEOUT);
        }
    }

    /// Donates up to `amount` tasks, keeping `l_threshold` for itself.
    /// A donor with nothing to spare stays silent — the requester finds
    /// out by timing out.
    fn donate(
        &mut self,
        k: &mut Kernel,
        ctx: &mut impl ExecCtx<KernelMsg<RidMsg>>,
        to: NodeId,
        amount: i64,
    ) {
        let surplus = (k.load() - self.params.l_threshold).max(0);
        let give = surplus.min(amount).min(k.exec.queue.len() as i64);
        if give == 0 {
            return;
        }
        let mut batch: Vec<TaskInstance> = Vec::with_capacity(give as usize);
        for _ in 0..give {
            batch.push(k.exec.queue.pop_back().expect("give <= len"));
        }
        ctx.compute(
            k.oracle.costs.spawn_us * batch.len() as Time,
            WorkKind::Overhead,
        );
        let load = k.load();
        k.send_tasks(ctx, to, batch, load);
        self.maybe_broadcast(k, ctx);
    }
}

impl BalancerPolicy for RidPolicy {
    type Msg = RidMsg;

    fn on_start(&mut self, k: &mut Kernel, ctx: &mut impl ExecCtx<KernelMsg<RidMsg>>) {
        k.seed_round(ctx, 0);
        self.maybe_broadcast(k, ctx);
    }

    fn on_msg(
        &mut self,
        k: &mut Kernel,
        ctx: &mut impl ExecCtx<KernelMsg<RidMsg>>,
        from: NodeId,
        msg: RidMsg,
    ) {
        match msg {
            RidMsg::LoadInfo(load) => {
                let idx = self.nb_index(from);
                self.nb_load[idx] = load;
                self.maybe_request(k, ctx);
            }
            RidMsg::TaskRequest(amount) => self.donate(k, ctx, from, amount),
        }
    }

    fn on_tasks_accepted(
        &mut self,
        k: &mut Kernel,
        ctx: &mut impl ExecCtx<KernelMsg<RidMsg>>,
        from: NodeId,
        sender_load: i64,
    ) {
        let idx = self.nb_index(from);
        self.nb_load[idx] = sender_load;
        self.pending_replies = self.pending_replies.saturating_sub(1);
        self.maybe_broadcast(k, ctx);
        self.maybe_request(k, ctx);
    }

    fn on_timer(&mut self, k: &mut Kernel, ctx: &mut impl ExecCtx<KernelMsg<RidMsg>>, tag: u64) {
        match tag {
            TAG_REQ_TIMEOUT => {
                // Whatever was still outstanding is treated as refused.
                self.pending_replies = 0;
                self.maybe_request(k, ctx);
            }
            _ => unreachable!("unknown timer {tag}"),
        }
    }

    /// Children stay local; underloaded neighbours will come asking.
    fn place_children(
        &mut self,
        k: &mut Kernel,
        ctx: &mut impl ExecCtx<KernelMsg<RidMsg>>,
        children: Vec<TaskInstance>,
    ) {
        let spawn = children.len() as Time * k.oracle.costs.spawn_us;
        ctx.compute(spawn, WorkKind::Overhead);
        k.exec.queue.extend(children);
    }

    fn after_task(&mut self, k: &mut Kernel, ctx: &mut impl ExecCtx<KernelMsg<RidMsg>>) {
        self.maybe_broadcast(k, ctx);
        self.maybe_request(k, ctx);
    }

    fn on_round_start(
        &mut self,
        k: &mut Kernel,
        ctx: &mut impl ExecCtx<KernelMsg<RidMsg>>,
        round: u32,
        _token: u32,
    ) {
        self.pending_replies = 0;
        k.seed_round(ctx, round);
        self.maybe_broadcast(k, ctx);
    }
}

/// Runs `workload` under receiver-initiated diffusion.
pub fn rid(
    workload: Arc<Workload>,
    topo: Arc<dyn Topology>,
    latency: LatencyModel,
    costs: Costs,
    seed: u64,
    params: RidParams,
) -> RunOutcome {
    assert!(
        (0.0..1.0).contains(&params.u),
        "update factor must be in [0,1)"
    );
    let topo2 = Arc::clone(&topo);
    let (outcome, _) = run_policy(workload, topo, latency, costs, seed, move |me| {
        rid_policy(topo2.as_ref(), me, params)
    });
    outcome
}

/// Node `me`'s receiver-initiated-diffusion policy instance on `topo`.
pub fn rid_policy(topo: &dyn Topology, me: NodeId, params: RidParams) -> RidPolicy {
    let neighbors = topo.neighbors(me);
    RidPolicy {
        params,
        nb_load: vec![0; neighbors.len()],
        neighbors,
        last_broadcast: 0,
        pending_replies: 0,
    }
}
