//! Sender-initiated diffusion — the counterpart the paper's related
//! work weighs against RID ("Eager et al. compared the sender-initiated
//! algorithm and receiver-initiated algorithm", §4).
//!
//! Overloaded nodes push work to their least-loaded known neighbour;
//! load information diffuses with the same update-factor rule as RID.
//! The classic result — senders win under light load (work spreads
//! without anyone having to beg), receivers win under heavy load
//! (pushes then chase moving targets) — is measured by the
//! `sid_vs_rid` bench.

use std::sync::Arc;

use rips_desim::{Ctx, Engine, LatencyModel, Program, WorkKind};
use rips_runtime::{Costs, Oracle, RunOutcome, TaskInstance};
use rips_taskgraph::Workload;
use rips_topology::{NodeId, Topology};

use crate::base::{Base, Msg, TAG_EXEC, TAG_ROUND};

/// SID tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SidParams {
    /// Push work away while `load > l_high`.
    pub l_high: i64,
    /// Never push below this floor of own load.
    pub l_threshold: i64,
    /// Minimum pairwise difference before a push fires — the
    /// hysteresis that keeps stale load tables from causing task
    /// hot-potato storms.
    pub min_diff: i64,
    /// Load-information update factor, as in RID.
    pub u: f64,
}

impl Default for SidParams {
    fn default() -> Self {
        SidParams {
            l_high: 2,
            l_threshold: 1,
            min_diff: 4,
            u: 0.4,
        }
    }
}

struct SidProg {
    base: Base,
    params: SidParams,
    neighbors: Vec<NodeId>,
    nb_load: Vec<i64>,
    last_broadcast: i64,
}

impl SidProg {
    fn nb_index(&self, nb: NodeId) -> usize {
        self.neighbors
            .iter()
            .position(|&x| x == nb)
            .expect("message from non-neighbour")
    }

    /// Broadcasts own load to neighbours when it drifted enough.
    fn maybe_broadcast(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let load = self.base.load();
        let threshold = (((1.0 - self.params.u) * self.last_broadcast.max(0) as f64) as i64).max(1);
        if (load - self.last_broadcast).abs() >= threshold {
            self.last_broadcast = load;
            for &nb in &self.neighbors {
                ctx.send(nb, Msg::LoadInfo(load), self.base.oracle.costs.ctl_bytes);
            }
        }
    }

    /// Pushes surplus to the least-loaded known neighbour when
    /// overloaded: half the pairwise difference, keeping at least
    /// `l_threshold` for ourselves.
    fn maybe_push(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.base.load() <= self.params.l_high || self.neighbors.is_empty() {
            return;
        }
        let (idx, &least) = self
            .nb_load
            .iter()
            .enumerate()
            .min_by_key(|&(i, &l)| (l, i))
            .expect("nonempty neighbours");
        let mine = self.base.load();
        if mine - least < self.params.min_diff {
            return; // not worth moving on possibly-stale information
        }
        let give = ((mine - least) / 2)
            .min(mine - self.params.l_threshold)
            .min(self.base.exec.queue.len() as i64);
        if give <= 0 {
            return;
        }
        let mut batch: Vec<TaskInstance> = Vec::with_capacity(give as usize);
        for _ in 0..give {
            batch.push(self.base.exec.queue.pop_back().expect("give <= len"));
        }
        ctx.compute(
            self.base.oracle.costs.spawn_us * batch.len() as u64,
            WorkKind::Overhead,
        );
        // Optimistically assume the neighbour absorbs the batch so we
        // don't re-push to it on stale information.
        self.nb_load[idx] += give;
        let load = self.base.load();
        let bytes = self.base.oracle.costs.task_bytes * batch.len();
        ctx.send(self.neighbors[idx], Msg::Tasks(batch, load), bytes);
        self.maybe_broadcast(ctx);
    }
}

impl Program for SidProg {
    type Msg = Msg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.base.seed_round(ctx, 0);
        self.maybe_broadcast(ctx);
        self.maybe_push(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::Tasks(tasks, sender_load) => {
                let idx = self.nb_index(from);
                self.nb_load[idx] = sender_load;
                self.base.accept_tasks(ctx, tasks);
                self.maybe_broadcast(ctx);
                self.maybe_push(ctx); // an overloaded receiver diffuses onward
            }
            Msg::LoadInfo(load) => {
                let idx = self.nb_index(from);
                self.nb_load[idx] = load;
                self.maybe_push(ctx);
            }
            Msg::RoundStart(round) => {
                self.base.seed_round(ctx, round);
                self.maybe_broadcast(ctx);
                self.maybe_push(ctx);
            }
            other => unreachable!("SID got {other:?}"),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: u64) {
        match tag {
            TAG_EXEC => {
                if let Some(inst) = self.base.run_one(ctx) {
                    let children = self.base.oracle.children_of(&inst, self.base.me);
                    let spawn = children.len() as u64 * self.base.oracle.costs.spawn_us;
                    ctx.compute(spawn, WorkKind::Overhead);
                    self.base.exec.queue.extend(children);
                    self.base.after_task(ctx);
                    self.maybe_broadcast(ctx);
                    self.maybe_push(ctx);
                }
            }
            TAG_ROUND => self.base.on_round_timer(ctx),
            _ => unreachable!("unknown timer {tag}"),
        }
    }
}

/// Runs `workload` under sender-initiated diffusion.
pub fn sid(
    workload: Arc<Workload>,
    topo: Arc<dyn Topology>,
    latency: LatencyModel,
    costs: Costs,
    seed: u64,
    params: SidParams,
) -> RunOutcome {
    assert!(
        (0.0..1.0).contains(&params.u),
        "update factor must be in [0,1)"
    );
    if workload.rounds.is_empty() {
        return RunOutcome::empty(topo.len());
    }
    let oracle = Oracle::new(Arc::clone(&workload), topo.as_ref(), costs);
    let topo2 = Arc::clone(&topo);
    let engine = Engine::new(topo, latency, seed, move |me| {
        let neighbors = topo2.neighbors(me);
        SidProg {
            base: Base::new(me, oracle.clone()),
            params,
            nb_load: vec![0; neighbors.len()],
            neighbors,
            last_broadcast: 0,
        }
    });
    let mut engine = engine;
    engine.record_timeline(costs.record_timeline);
    engine.enable_contention(costs.contention);
    let (progs, stats) = engine.run();
    let executed: Vec<u64> = progs.iter().map(|p| p.base.exec.executed).collect();
    let nonlocal = progs.iter().map(|p| p.base.exec.nonlocal_executed).sum();
    RunOutcome {
        stats,
        executed,
        nonlocal,
        system_phases: 0,
    }
}
