//! Sender-initiated diffusion — the counterpart the paper's related
//! work weighs against RID ("Eager et al. compared the sender-initiated
//! algorithm and receiver-initiated algorithm", §4).
//!
//! Overloaded nodes push work to their least-loaded known neighbour;
//! load information diffuses with the same update-factor rule as RID.
//! The classic result — senders win under light load (work spreads
//! without anyone having to beg), receivers win under heavy load
//! (pushes then chase moving targets) — is measured by the
//! `sid_vs_rid` bench.

use std::sync::Arc;

use rips_desim::{LatencyModel, Time, WorkKind};
use rips_runtime::{
    run_policy, BalancerPolicy, Costs, ExecCtx, Kernel, KernelMsg, RunOutcome, TaskInstance,
};
use rips_taskgraph::Workload;
use rips_topology::{NodeId, Topology};

/// SID tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SidParams {
    /// Push work away while `load > l_high`.
    pub l_high: i64,
    /// Never push below this floor of own load.
    pub l_threshold: i64,
    /// Minimum pairwise difference before a push fires — the
    /// hysteresis that keeps stale load tables from causing task
    /// hot-potato storms.
    pub min_diff: i64,
    /// Load-information update factor, as in RID.
    pub u: f64,
}

impl Default for SidParams {
    fn default() -> Self {
        SidParams {
            l_high: 2,
            l_threshold: 1,
            min_diff: 4,
            u: 0.4,
        }
    }
}

/// SID policy messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SidMsg {
    /// Sender's current load.
    LoadInfo(i64),
}

/// Sender-initiated diffusion as a [`BalancerPolicy`].
pub struct SidPolicy {
    params: SidParams,
    neighbors: Vec<NodeId>,
    nb_load: Vec<i64>,
    last_broadcast: i64,
}

impl SidPolicy {
    fn nb_index(&self, nb: NodeId) -> usize {
        self.neighbors
            .iter()
            .position(|&x| x == nb)
            .expect("message from non-neighbour")
    }

    /// Broadcasts own load to neighbours when it drifted enough.
    fn maybe_broadcast(&mut self, k: &mut Kernel, ctx: &mut impl ExecCtx<KernelMsg<SidMsg>>) {
        let load = k.load();
        let threshold = (((1.0 - self.params.u) * self.last_broadcast.max(0) as f64) as i64).max(1);
        if (load - self.last_broadcast).abs() >= threshold {
            self.last_broadcast = load;
            for &nb in &self.neighbors {
                ctx.send(
                    nb,
                    KernelMsg::Policy(SidMsg::LoadInfo(load)),
                    k.oracle.costs.ctl_bytes,
                );
            }
        }
    }

    /// Pushes surplus to the least-loaded known neighbour when
    /// overloaded: half the pairwise difference, keeping at least
    /// `l_threshold` for ourselves.
    fn maybe_push(&mut self, k: &mut Kernel, ctx: &mut impl ExecCtx<KernelMsg<SidMsg>>) {
        if k.load() <= self.params.l_high || self.neighbors.is_empty() {
            return;
        }
        let (idx, &least) = self
            .nb_load
            .iter()
            .enumerate()
            .min_by_key(|&(i, &l)| (l, i))
            .expect("nonempty neighbours");
        let mine = k.load();
        if mine - least < self.params.min_diff {
            return; // not worth moving on possibly-stale information
        }
        let give = ((mine - least) / 2)
            .min(mine - self.params.l_threshold)
            .min(k.exec.queue.len() as i64);
        if give <= 0 {
            return;
        }
        let mut batch: Vec<TaskInstance> = Vec::with_capacity(give as usize);
        for _ in 0..give {
            batch.push(k.exec.queue.pop_back().expect("give <= len"));
        }
        ctx.compute(
            k.oracle.costs.spawn_us * batch.len() as Time,
            WorkKind::Overhead,
        );
        // Optimistically assume the neighbour absorbs the batch so we
        // don't re-push to it on stale information.
        self.nb_load[idx] += give;
        let load = k.load();
        k.send_tasks(ctx, self.neighbors[idx], batch, load);
        self.maybe_broadcast(k, ctx);
    }
}

impl BalancerPolicy for SidPolicy {
    type Msg = SidMsg;

    fn on_start(&mut self, k: &mut Kernel, ctx: &mut impl ExecCtx<KernelMsg<SidMsg>>) {
        k.seed_round(ctx, 0);
        self.maybe_broadcast(k, ctx);
        self.maybe_push(k, ctx);
    }

    fn on_msg(
        &mut self,
        k: &mut Kernel,
        ctx: &mut impl ExecCtx<KernelMsg<SidMsg>>,
        from: NodeId,
        msg: SidMsg,
    ) {
        let SidMsg::LoadInfo(load) = msg;
        let idx = self.nb_index(from);
        self.nb_load[idx] = load;
        self.maybe_push(k, ctx);
    }

    fn on_tasks_accepted(
        &mut self,
        k: &mut Kernel,
        ctx: &mut impl ExecCtx<KernelMsg<SidMsg>>,
        from: NodeId,
        sender_load: i64,
    ) {
        let idx = self.nb_index(from);
        self.nb_load[idx] = sender_load;
        self.maybe_broadcast(k, ctx);
        self.maybe_push(k, ctx); // an overloaded receiver diffuses onward
    }

    /// Children stay local until load pressure pushes them away.
    fn place_children(
        &mut self,
        k: &mut Kernel,
        ctx: &mut impl ExecCtx<KernelMsg<SidMsg>>,
        children: Vec<TaskInstance>,
    ) {
        let spawn = children.len() as Time * k.oracle.costs.spawn_us;
        ctx.compute(spawn, WorkKind::Overhead);
        k.exec.queue.extend(children);
    }

    fn after_task(&mut self, k: &mut Kernel, ctx: &mut impl ExecCtx<KernelMsg<SidMsg>>) {
        self.maybe_broadcast(k, ctx);
        self.maybe_push(k, ctx);
    }

    fn on_round_start(
        &mut self,
        k: &mut Kernel,
        ctx: &mut impl ExecCtx<KernelMsg<SidMsg>>,
        round: u32,
        _token: u32,
    ) {
        k.seed_round(ctx, round);
        self.maybe_broadcast(k, ctx);
        self.maybe_push(k, ctx);
    }
}

/// Runs `workload` under sender-initiated diffusion.
pub fn sid(
    workload: Arc<Workload>,
    topo: Arc<dyn Topology>,
    latency: LatencyModel,
    costs: Costs,
    seed: u64,
    params: SidParams,
) -> RunOutcome {
    assert!(
        (0.0..1.0).contains(&params.u),
        "update factor must be in [0,1)"
    );
    let topo2 = Arc::clone(&topo);
    let (outcome, _) = run_policy(workload, topo, latency, costs, seed, move |me| {
        sid_policy(topo2.as_ref(), me, params)
    });
    outcome
}

/// Node `me`'s sender-initiated-diffusion policy instance on `topo`.
pub fn sid_policy(topo: &dyn Topology, me: NodeId, params: SidParams) -> SidPolicy {
    let neighbors = topo.neighbors(me);
    SidPolicy {
        params,
        nb_load: vec![0; neighbors.len()],
        neighbors,
        last_broadcast: 0,
    }
}
