//! The gradient model (Lin & Keller): proximity propagation plus
//! one-hop task pushes down the gradient.
//!
//! Idle nodes advertise proximity 0; every other node's proximity is
//! `1 + min(neighbour proximities)`, capped at `diameter + 1` ("no idle
//! node known"). An overloaded node pushes a task to its
//! lowest-proximity neighbour; intermediate loaded nodes forward it
//! further downhill. The paper's verdict — "it cannot balance the load
//! well, since the load is spread slowly. In addition, the system
//! overhead is large because information and tasks are frequently
//! exchanged" — emerges from exactly these rules.

use std::sync::Arc;

use rips_desim::{Ctx, Engine, LatencyModel, Program};
use rips_runtime::{Costs, Oracle, RunOutcome};
use rips_taskgraph::Workload;
use rips_topology::{NodeId, Topology};

use crate::base::{Base, Msg, TAG_EXEC, TAG_ROUND};

/// Timer tag for the coalesced proximity notification.
const TAG_NOTIFY: u64 = 2;

/// Tuning knobs for the gradient model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GradientParams {
    /// A node pushes tasks away while its queue is longer than this.
    pub high_mark: i64,
    /// Proximity changes are batched and sent to neighbours at most
    /// once per this interval (µs) — the gradient surface is always a
    /// little stale, which is intrinsic to the model.
    pub update_interval_us: u64,
}

impl Default for GradientParams {
    fn default() -> Self {
        GradientParams {
            high_mark: 1,
            update_interval_us: 150,
        }
    }
}

struct GradientProg {
    base: Base,
    params: GradientParams,
    neighbors: Vec<NodeId>,
    nb_prox: Vec<u32>,
    my_prox: u32,
    /// Last proximity actually sent to neighbours.
    advertised: Option<u32>,
    /// A coalescing notification timer is pending.
    notify_pending: bool,
    /// Proximity saturation value: "no idle node reachable".
    cap: u32,
}

impl GradientProg {
    fn min_nb_prox(&self) -> u32 {
        self.nb_prox.iter().copied().min().unwrap_or(self.cap)
    }

    /// Recomputes own proximity and ensures the periodic gradient tick
    /// is armed whenever there is something to advertise or push.
    fn refresh_proximity(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.my_prox = if self.base.load() == 0 {
            0
        } else {
            self.cap.min(1 + self.min_nb_prox())
        };
        let must_advertise = self.advertised != Some(self.my_prox);
        let can_push = self.base.load() > self.params.high_mark && self.min_nb_prox() < self.cap;
        if (must_advertise || can_push) && !self.notify_pending {
            self.notify_pending = true;
            ctx.set_timer(self.params.update_interval_us, TAG_NOTIFY);
        }
    }

    /// One gradient tick: advertise a changed proximity, push a small
    /// burst of tasks downhill, and re-arm while pressure remains —
    /// the continuous task flow of the gradient model.
    fn gradient_tick(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.notify_pending = false;
        self.my_prox = if self.base.load() == 0 {
            0
        } else {
            self.cap.min(1 + self.min_nb_prox())
        };
        if self.advertised != Some(self.my_prox) {
            self.advertised = Some(self.my_prox);
            let prox = self.my_prox;
            for i in 0..self.neighbors.len() {
                let nb = self.neighbors[i];
                ctx.send(nb, Msg::Proximity(prox), self.base.oracle.costs.ctl_bytes);
            }
        }
        self.push_one(ctx);
        self.refresh_proximity(ctx);
    }

    /// Pushes one task downhill if overloaded and an idle node is
    /// known somewhere.
    fn push_one(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.base.load() <= self.params.high_mark || self.min_nb_prox() >= self.cap {
            return;
        }
        let target_idx = (0..self.neighbors.len())
            .min_by_key(|&i| (self.nb_prox[i], self.neighbors[i]))
            .expect("push with no neighbours");
        // Ship the most recently generated task (back of the queue):
        // freshly spawned work is the cheapest to move.
        let task = self.base.exec.queue.pop_back().expect("load > high_mark");
        let load = self.base.load();
        ctx.send(
            self.neighbors[target_idx],
            Msg::Tasks(vec![task], load),
            self.base.oracle.costs.task_bytes,
        );
    }
}

impl Program for GradientProg {
    type Msg = Msg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.base.seed_round(ctx, 0);
        self.refresh_proximity(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::Tasks(tasks, _) => {
                self.base.accept_tasks(ctx, tasks);
                self.refresh_proximity(ctx);
            }
            Msg::Proximity(p) => {
                let idx = self
                    .neighbors
                    .iter()
                    .position(|&nb| nb == from)
                    .expect("proximity from non-neighbour");
                self.nb_prox[idx] = p;
                self.refresh_proximity(ctx);
            }
            Msg::RoundStart(round) => {
                self.base.seed_round(ctx, round);
                self.refresh_proximity(ctx);
            }
            other => unreachable!("gradient model got {other:?}"),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: u64) {
        match tag {
            TAG_EXEC => {
                if let Some(inst) = self.base.run_one(ctx) {
                    // Children stay local; the gradient moves them
                    // later if pressure builds.
                    let children = self.base.oracle.children_of(&inst, self.base.me);
                    let spawn = children.len() as u64 * self.base.oracle.costs.spawn_us;
                    ctx.compute(spawn, rips_desim::WorkKind::Overhead);
                    self.base.exec.queue.extend(children);
                    self.base.after_task(ctx);
                    self.refresh_proximity(ctx);
                }
            }
            TAG_ROUND => self.base.on_round_timer(ctx),
            TAG_NOTIFY => self.gradient_tick(ctx),
            _ => unreachable!("unknown timer {tag}"),
        }
    }
}

/// Runs `workload` under the gradient model.
pub fn gradient(
    workload: Arc<Workload>,
    topo: Arc<dyn Topology>,
    latency: LatencyModel,
    costs: Costs,
    seed: u64,
    params: GradientParams,
) -> RunOutcome {
    assert!(
        latency.alpha_us > 0 || latency.per_hop_us > 0,
        "gradient model needs nonzero message latency to converge"
    );
    if workload.rounds.is_empty() {
        return RunOutcome::empty(topo.len());
    }
    let oracle = Oracle::new(Arc::clone(&workload), topo.as_ref(), costs);
    let cap = topo.diameter() as u32 + 1;
    let topo2 = Arc::clone(&topo);
    let engine = Engine::new(topo, latency, seed, move |me| {
        let neighbors = topo2.neighbors(me);
        GradientProg {
            base: Base::new(me, oracle.clone()),
            params,
            nb_prox: vec![cap; neighbors.len()],
            neighbors,
            my_prox: cap,
            advertised: None,
            notify_pending: false,
            cap,
        }
    });
    let mut engine = engine;
    engine.record_timeline(costs.record_timeline);
    engine.enable_contention(costs.contention);
    let (progs, stats) = engine.run();
    let executed: Vec<u64> = progs.iter().map(|p| p.base.exec.executed).collect();
    let nonlocal = progs.iter().map(|p| p.base.exec.nonlocal_executed).sum();
    RunOutcome {
        stats,
        executed,
        nonlocal,
        system_phases: 0,
    }
}
