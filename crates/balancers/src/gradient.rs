//! The gradient model (Lin & Keller): proximity propagation plus
//! one-hop task pushes down the gradient.
//!
//! Idle nodes advertise proximity 0; every other node's proximity is
//! `1 + min(neighbour proximities)`, capped at `diameter + 1` ("no idle
//! node known"). An overloaded node pushes a task to its
//! lowest-proximity neighbour; intermediate loaded nodes forward it
//! further downhill. The paper's verdict — "it cannot balance the load
//! well, since the load is spread slowly. In addition, the system
//! overhead is large because information and tasks are frequently
//! exchanged" — emerges from exactly these rules.

use std::sync::Arc;

use rips_desim::{LatencyModel, Time, WorkKind};
use rips_runtime::{
    run_policy, BalancerPolicy, Costs, ExecCtx, Kernel, KernelMsg, RunOutcome, TaskInstance,
    TAG_POLICY_BASE,
};
use rips_taskgraph::Workload;
use rips_topology::{NodeId, Topology};

/// Timer tag for the coalesced proximity notification.
const TAG_NOTIFY: u64 = TAG_POLICY_BASE;

/// Tuning knobs for the gradient model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GradientParams {
    /// A node pushes tasks away while its queue is longer than this.
    pub high_mark: i64,
    /// Proximity changes are batched and sent to neighbours at most
    /// once per this interval (µs) — the gradient surface is always a
    /// little stale, which is intrinsic to the model.
    pub update_interval_us: u64,
}

impl Default for GradientParams {
    fn default() -> Self {
        GradientParams {
            high_mark: 1,
            update_interval_us: 150,
        }
    }
}

/// Gradient-model policy messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GradientMsg {
    /// Sender's proximity value.
    Proximity(u32),
}

/// The gradient model as a [`BalancerPolicy`].
pub struct GradientPolicy {
    params: GradientParams,
    neighbors: Vec<NodeId>,
    nb_prox: Vec<u32>,
    my_prox: u32,
    /// Last proximity actually sent to neighbours.
    advertised: Option<u32>,
    /// A coalescing notification timer is pending.
    notify_pending: bool,
    /// Proximity saturation value: "no idle node reachable".
    cap: u32,
}

impl GradientPolicy {
    fn min_nb_prox(&self) -> u32 {
        self.nb_prox.iter().copied().min().unwrap_or(self.cap)
    }

    /// Recomputes own proximity and ensures the periodic gradient tick
    /// is armed whenever there is something to advertise or push.
    fn refresh_proximity(
        &mut self,
        k: &mut Kernel,
        ctx: &mut impl ExecCtx<KernelMsg<GradientMsg>>,
    ) {
        self.my_prox = if k.load() == 0 {
            0
        } else {
            self.cap.min(1 + self.min_nb_prox())
        };
        let must_advertise = self.advertised != Some(self.my_prox);
        let can_push = k.load() > self.params.high_mark && self.min_nb_prox() < self.cap;
        if (must_advertise || can_push) && !self.notify_pending {
            self.notify_pending = true;
            ctx.set_timer(self.params.update_interval_us, TAG_NOTIFY);
        }
    }

    /// One gradient tick: advertise a changed proximity, push a small
    /// burst of tasks downhill, and re-arm while pressure remains —
    /// the continuous task flow of the gradient model.
    fn gradient_tick(&mut self, k: &mut Kernel, ctx: &mut impl ExecCtx<KernelMsg<GradientMsg>>) {
        self.notify_pending = false;
        self.my_prox = if k.load() == 0 {
            0
        } else {
            self.cap.min(1 + self.min_nb_prox())
        };
        if self.advertised != Some(self.my_prox) {
            self.advertised = Some(self.my_prox);
            let prox = self.my_prox;
            for i in 0..self.neighbors.len() {
                let nb = self.neighbors[i];
                ctx.send(
                    nb,
                    KernelMsg::Policy(GradientMsg::Proximity(prox)),
                    k.oracle.costs.ctl_bytes,
                );
            }
        }
        self.push_one(k, ctx);
        self.refresh_proximity(k, ctx);
    }

    /// Pushes one task downhill if overloaded and an idle node is
    /// known somewhere.
    fn push_one(&mut self, k: &mut Kernel, ctx: &mut impl ExecCtx<KernelMsg<GradientMsg>>) {
        if k.load() <= self.params.high_mark || self.min_nb_prox() >= self.cap {
            return;
        }
        let target_idx = (0..self.neighbors.len())
            .min_by_key(|&i| (self.nb_prox[i], self.neighbors[i]))
            .expect("push with no neighbours");
        // Ship the most recently generated task (back of the queue):
        // freshly spawned work is the cheapest to move.
        let task = k.exec.queue.pop_back().expect("load > high_mark");
        let load = k.load();
        k.send_tasks(ctx, self.neighbors[target_idx], vec![task], load);
    }
}

impl BalancerPolicy for GradientPolicy {
    type Msg = GradientMsg;

    fn on_start(&mut self, k: &mut Kernel, ctx: &mut impl ExecCtx<KernelMsg<GradientMsg>>) {
        k.seed_round(ctx, 0);
        self.refresh_proximity(k, ctx);
    }

    fn on_msg(
        &mut self,
        k: &mut Kernel,
        ctx: &mut impl ExecCtx<KernelMsg<GradientMsg>>,
        from: NodeId,
        msg: GradientMsg,
    ) {
        let GradientMsg::Proximity(p) = msg;
        let idx = self
            .neighbors
            .iter()
            .position(|&nb| nb == from)
            .expect("proximity from non-neighbour");
        self.nb_prox[idx] = p;
        self.refresh_proximity(k, ctx);
    }

    fn on_tasks_accepted(
        &mut self,
        k: &mut Kernel,
        ctx: &mut impl ExecCtx<KernelMsg<GradientMsg>>,
        _from: NodeId,
        _sender_load: i64,
    ) {
        self.refresh_proximity(k, ctx);
    }

    fn on_timer(
        &mut self,
        k: &mut Kernel,
        ctx: &mut impl ExecCtx<KernelMsg<GradientMsg>>,
        tag: u64,
    ) {
        match tag {
            TAG_NOTIFY => self.gradient_tick(k, ctx),
            _ => unreachable!("unknown timer {tag}"),
        }
    }

    /// Children stay local; the gradient moves them later if pressure
    /// builds.
    fn place_children(
        &mut self,
        k: &mut Kernel,
        ctx: &mut impl ExecCtx<KernelMsg<GradientMsg>>,
        children: Vec<TaskInstance>,
    ) {
        let spawn = children.len() as Time * k.oracle.costs.spawn_us;
        ctx.compute(spawn, WorkKind::Overhead);
        k.exec.queue.extend(children);
    }

    fn after_task(&mut self, k: &mut Kernel, ctx: &mut impl ExecCtx<KernelMsg<GradientMsg>>) {
        self.refresh_proximity(k, ctx);
    }

    fn on_round_start(
        &mut self,
        k: &mut Kernel,
        ctx: &mut impl ExecCtx<KernelMsg<GradientMsg>>,
        round: u32,
        _token: u32,
    ) {
        k.seed_round(ctx, round);
        self.refresh_proximity(k, ctx);
    }
}

/// Runs `workload` under the gradient model.
pub fn gradient(
    workload: Arc<Workload>,
    topo: Arc<dyn Topology>,
    latency: LatencyModel,
    costs: Costs,
    seed: u64,
    params: GradientParams,
) -> RunOutcome {
    assert!(
        latency.alpha_us > 0 || latency.per_hop_us > 0,
        "gradient model needs nonzero message latency to converge"
    );
    let topo2 = Arc::clone(&topo);
    let (outcome, _) = run_policy(workload, topo, latency, costs, seed, move |me| {
        gradient_policy(topo2.as_ref(), me, params)
    });
    outcome
}

/// Node `me`'s gradient-model policy instance on `topo`.
pub fn gradient_policy(topo: &dyn Topology, me: NodeId, params: GradientParams) -> GradientPolicy {
    let cap = topo.diameter() as u32 + 1;
    let neighbors = topo.neighbors(me);
    GradientPolicy {
        params,
        nb_prox: vec![cap; neighbors.len()],
        neighbors,
        my_prox: cap,
        advertised: None,
        notify_pending: false,
        cap,
    }
}
