//! The three dynamic load-balancing baselines of Table I.
//!
//! * [`random`] — **randomized allocation**: every newly generated task
//!   is shipped to a uniformly random processor. Statistically balanced
//!   but with near-zero locality (the paper's low-overhead baseline).
//! * [`gradient`] — the **gradient model** (Lin–Keller): idle nodes set
//!   a proximity of 0, others propagate `1 + min(neighbour proximity)`,
//!   and overloaded nodes push tasks down the gradient one hop at a
//!   time. Spreads load slowly and chats constantly — the paper finds
//!   it both poorly balanced and expensive.
//! * [`rid`] — **receiver-initiated diffusion** (Willebeek-LeMair &
//!   Reeves): underloaded nodes (`load < L_LOW`) request work from
//!   their most-loaded neighbour; load information is exchanged between
//!   neighbours when a node's load drifts by the update factor `u`.
//!   The paper uses `L_LOW = 2`, `L_threshold = 1`, `u = 0.4` (and
//!   `u = 0.7` for IDA\* on ≥ 64 processors).
//!
//! A fourth baseline, [`sid`] (sender-initiated diffusion), is the
//! related-work counterpart the paper cites via Eager et al. — not in
//! Table I, but measured by the `sid_vs_rid` bench.
//!
//! All of them run on the same engine, workload harness, and cost model
//! as the RIPS runtime in `rips-core`, so Table I's columns are
//! measured identically for every row.

mod base;
mod gradient;
mod random;
mod rid;
mod sid;

pub use base::Msg;
pub use gradient::{gradient, GradientParams};
pub use random::random;
pub use rid::{rid, RidParams};
pub use sid::{sid, SidParams};
