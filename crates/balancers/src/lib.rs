//! The dynamic load-balancing baselines of Table I, expressed as
//! [`rips_runtime::BalancerPolicy`] implementations over the shared
//! policy kernel.
//!
//! * [`random`] — **randomized allocation**: every newly generated task
//!   is shipped to a uniformly random processor. Statistically balanced
//!   but with near-zero locality (the paper's low-overhead baseline).
//! * [`gradient`] — the **gradient model** (Lin–Keller): idle nodes set
//!   a proximity of 0, others propagate `1 + min(neighbour proximity)`,
//!   and overloaded nodes push tasks down the gradient one hop at a
//!   time. Spreads load slowly and chats constantly — the paper finds
//!   it both poorly balanced and expensive.
//! * [`rid`] — **receiver-initiated diffusion** (Willebeek-LeMair &
//!   Reeves): underloaded nodes (`load < L_LOW`) request work from
//!   their most-loaded neighbour; load information is exchanged between
//!   neighbours when a node's load drifts by the update factor `u`.
//!   The paper uses `L_LOW = 2`, `L_threshold = 1`, `u = 0.4` (and
//!   `u = 0.7` for IDA\* on ≥ 64 processors).
//!
//! A fourth baseline, [`sid`] (sender-initiated diffusion), is the
//! related-work counterpart the paper cites via Eager et al. — not in
//! Table I, but measured by the `sid_vs_rid` bench.
//!
//! Each balancer is a ~100-line policy: a message enum, the transfer
//! decisions, and nothing else. Task execution, migration accounting,
//! round barriers, and termination live once, in the runtime's
//! [`NodeDriver`](rips_runtime::NodeDriver) — so Table I's columns are
//! measured identically for every row, including the RIPS runtime in
//! `rips-core`, which plugs into the same kernel.

#![forbid(unsafe_code)]

mod gradient;
mod random;
mod rid;
mod sid;

pub use gradient::{gradient, gradient_policy, GradientParams, GradientPolicy};
pub use random::{random, random_policy, RandomPolicy};
pub use rid::{rid, rid_policy, RidParams, RidPolicy};
pub use sid::{sid, sid_policy, SidParams, SidPolicy};
