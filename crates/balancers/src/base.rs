//! Machinery shared by the three baseline programs: the execute loop,
//! round barriers, and the common message vocabulary.

use rips_desim::{Ctx, Time, WorkKind};
use rips_runtime::{NodeExec, Oracle, TaskInstance};
use rips_topology::NodeId;

/// Messages exchanged by the baseline balancers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// Migrated task instances. The sender's current load rides along
    /// so receivers refresh their load tables for free (RID uses this;
    /// others ignore it).
    Tasks(Vec<TaskInstance>, i64),
    /// Next round starts (sent by the node that completed the last
    /// task of the previous round, after the modelled barrier delay).
    RoundStart(u32),
    /// RID: sender's current load.
    LoadInfo(i64),
    /// RID: request for up to this many tasks.
    TaskRequest(i64),
    /// Gradient model: sender's proximity value.
    Proximity(u32),
}

/// Timer tags used by all baseline programs.
pub(crate) const TAG_EXEC: u64 = 0;
pub(crate) const TAG_ROUND: u64 = 1;

/// Common per-node state: queue, counters, and the exec-loop latch.
pub(crate) struct Base {
    pub me: NodeId,
    pub oracle: Oracle,
    pub exec: NodeExec,
    /// `true` while an EXEC timer is pending, so task arrivals don't
    /// double-schedule the loop.
    exec_scheduled: bool,
}

impl Base {
    pub fn new(me: NodeId, oracle: Oracle) -> Self {
        Base {
            me,
            oracle,
            exec: NodeExec::default(),
            exec_scheduled: false,
        }
    }

    /// Current queue length (every balancer's notion of "load").
    pub fn load(&self) -> i64 {
        self.exec.queue.len() as i64
    }

    /// Seeds this node's block of the round's roots and kicks the loop.
    /// An empty round is announced as complete right away (by node 0).
    pub fn seed_round(&mut self, ctx: &mut Ctx<'_, Msg>, round: u32) {
        let seeds = self.oracle.seed_for(self.me, round);
        ctx.compute(
            self.oracle.costs.spawn_us * seeds.len() as Time,
            WorkKind::Overhead,
        );
        self.exec.queue.extend(seeds);
        if self.oracle.outstanding() == 0 && self.me == 0 {
            ctx.set_timer(self.oracle.round_barrier_delay(), TAG_ROUND);
            return;
        }
        self.kick(ctx);
    }

    /// Ensures an EXEC timer is pending if there is work to do.
    pub fn kick(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if !self.exec_scheduled && !self.exec.queue.is_empty() {
            ctx.set_timer(0, TAG_EXEC);
            self.exec_scheduled = true;
        }
    }

    /// Runs one task off the queue front: dispatch overhead + grain.
    /// Returns the instance (for the caller to place its children) or
    /// `None` if the queue is empty. Re-arms the loop afterwards.
    ///
    /// Call only from the `TAG_EXEC` timer handler.
    pub fn run_one(&mut self, ctx: &mut Ctx<'_, Msg>) -> Option<TaskInstance> {
        self.exec_scheduled = false;
        let inst = self.exec.queue.pop_front()?;
        ctx.compute(self.oracle.costs.dispatch_us, WorkKind::Overhead);
        ctx.compute(inst.grain_us, WorkKind::User);
        self.exec.record(&inst, self.me);
        Some(inst)
    }

    /// Bookkeeping after a task (and its children) are fully handled:
    /// decrements the round counter and, on the round's last task,
    /// schedules the barrier announcement on this node. Then re-arms
    /// the exec loop.
    pub fn after_task(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.oracle.task_done() {
            ctx.set_timer(self.oracle.round_barrier_delay(), TAG_ROUND);
        }
        self.kick(ctx);
    }

    /// Schedules the round-barrier announcement on this node.
    pub fn announce_round(&mut self, ctx: &mut Ctx<'_, Msg>) {
        ctx.set_timer(self.oracle.round_barrier_delay(), TAG_ROUND);
    }

    /// Handles the barrier timer: advance to the next round (telling
    /// everyone) or halt the machine.
    pub fn on_round_timer(&mut self, ctx: &mut Ctx<'_, Msg>) {
        match self.oracle.advance_round() {
            Some(next) => {
                ctx.send_all(Msg::RoundStart(next), self.oracle.costs.ctl_bytes);
                self.seed_round(ctx, next);
            }
            None => ctx.halt(),
        }
    }

    /// Accepts migrated tasks.
    pub fn accept_tasks(&mut self, ctx: &mut Ctx<'_, Msg>, tasks: Vec<TaskInstance>) {
        ctx.compute(
            self.oracle.costs.spawn_us * tasks.len() as Time,
            WorkKind::Overhead,
        );
        self.exec.queue.extend(tasks);
        self.kick(ctx);
    }
}
