//! Randomized allocation: each newly generated task is shipped to a
//! uniformly random processor.

use std::sync::Arc;

use rand::RngExt;
use rips_desim::{Ctx, Engine, LatencyModel, Program};
use rips_runtime::{Costs, Oracle, RunOutcome, TaskInstance};
use rips_taskgraph::Workload;
use rips_topology::{NodeId, Topology};

use crate::base::{Base, Msg, TAG_EXEC, TAG_ROUND};

struct RandomProg {
    base: Base,
}

impl RandomProg {
    /// Ships `children` to uniformly random nodes, batching per
    /// destination; local picks stay in the queue.
    fn place_children(&mut self, ctx: &mut Ctx<'_, Msg>, children: Vec<TaskInstance>) {
        if children.is_empty() {
            return;
        }
        let n = ctx.num_nodes();
        let mut per_dest: Vec<Vec<TaskInstance>> = vec![Vec::new(); n];
        for child in children {
            let dest = ctx.rng().random_range(0..n);
            per_dest[dest].push(child);
        }
        let me = self.base.me;
        let load = self.base.load();
        for (dest, batch) in per_dest.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            if dest == me {
                self.base.exec.queue.extend(batch);
            } else {
                let bytes = self.base.oracle.costs.task_bytes * batch.len();
                ctx.send(dest, Msg::Tasks(batch, load), bytes);
            }
        }
    }
}

impl RandomProg {
    /// Seeds this node's block of the round and immediately scatters it:
    /// randomized allocation assigns *every* task — initial ones
    /// included — to a uniformly random processor. (This is why the
    /// paper's Table I shows ~(N−1)/N of even the flat GROMOS task set
    /// as non-local under random allocation.)
    fn seed_scattered(&mut self, ctx: &mut Ctx<'_, Msg>, round: u32) {
        let seeds = self.base.oracle.seed_for(self.base.me, round);
        ctx.compute(
            self.base.oracle.costs.spawn_us * seeds.len() as u64,
            rips_desim::WorkKind::Overhead,
        );
        self.place_children(ctx, seeds);
        if self.base.oracle.outstanding() == 0 && self.base.me == 0 {
            self.base.announce_round(ctx);
            return;
        }
        self.base.kick(ctx);
    }
}

impl Program for RandomProg {
    type Msg = Msg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.seed_scattered(ctx, 0);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
        match msg {
            Msg::Tasks(tasks, _) => self.base.accept_tasks(ctx, tasks),
            Msg::RoundStart(round) => self.seed_scattered(ctx, round),
            other => unreachable!("random allocation got {other:?}"),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: u64) {
        match tag {
            TAG_EXEC => {
                if let Some(inst) = self.base.run_one(ctx) {
                    let children = self.base.oracle.children_of(&inst, self.base.me);
                    self.place_children(ctx, children);
                    self.base.after_task(ctx);
                }
            }
            TAG_ROUND => self.base.on_round_timer(ctx),
            _ => unreachable!("unknown timer {tag}"),
        }
    }
}

/// Runs `workload` under randomized allocation. Deterministic under
/// `seed`.
pub fn random(
    workload: Arc<Workload>,
    topo: Arc<dyn Topology>,
    latency: LatencyModel,
    costs: Costs,
    seed: u64,
) -> RunOutcome {
    if workload.rounds.is_empty() {
        return RunOutcome::empty(topo.len());
    }
    let oracle = Oracle::new(Arc::clone(&workload), topo.as_ref(), costs);
    let engine = Engine::new(topo, latency, seed, |me| RandomProg {
        base: Base::new(me, oracle.clone()),
    });
    let mut engine = engine;
    engine.record_timeline(costs.record_timeline);
    engine.enable_contention(costs.contention);
    let (progs, stats) = engine.run();
    let executed: Vec<u64> = progs.iter().map(|p| p.base.exec.executed).collect();
    let nonlocal = progs.iter().map(|p| p.base.exec.nonlocal_executed).sum();
    RunOutcome {
        stats,
        executed,
        nonlocal,
        system_phases: 0,
    }
}
