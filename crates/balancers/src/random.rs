//! Randomized allocation: each newly generated task is shipped to a
//! uniformly random processor.

use std::sync::Arc;

use rand::RngExt;
use rips_desim::LatencyModel;
use rips_runtime::{
    run_policy, BalancerPolicy, Costs, ExecCtx, Kernel, KernelMsg, RunOutcome, TaskInstance,
};
use rips_taskgraph::Workload;
use rips_topology::{NodeId, Topology};

/// Randomized allocation as a [`BalancerPolicy`]: stateless — every
/// placement decision is a fresh RNG draw.
pub struct RandomPolicy;

/// Node `_me`'s randomized-allocation policy instance (stateless; the
/// per-node constructor exists so any backend can build a fleet).
pub fn random_policy(_me: NodeId) -> RandomPolicy {
    RandomPolicy
}

impl RandomPolicy {
    /// Seeds this node's block of the round and immediately scatters it:
    /// randomized allocation assigns *every* task — initial ones
    /// included — to a uniformly random processor. (This is why the
    /// paper's Table I shows ~(N−1)/N of even the flat GROMOS task set
    /// as non-local under random allocation.)
    fn seed_scattered(
        &mut self,
        k: &mut Kernel,
        ctx: &mut impl ExecCtx<KernelMsg<()>>,
        round: u32,
    ) {
        let seeds = k.take_seeds(ctx, round);
        self.place_children(k, ctx, seeds);
        if k.oracle.outstanding() == 0 && k.me == 0 {
            k.announce_round(ctx);
            return;
        }
        k.kick(ctx);
    }
}

impl BalancerPolicy for RandomPolicy {
    type Msg = ();

    fn on_start(&mut self, k: &mut Kernel, ctx: &mut impl ExecCtx<KernelMsg<()>>) {
        self.seed_scattered(k, ctx, 0);
    }

    fn on_msg(
        &mut self,
        _k: &mut Kernel,
        _ctx: &mut impl ExecCtx<KernelMsg<()>>,
        _from: NodeId,
        msg: (),
    ) {
        unreachable!("random allocation sends no policy messages, got {msg:?}");
    }

    /// Ships `children` to uniformly random nodes, batching per
    /// destination; local picks stay in the queue. Shipping is free for
    /// the sender — the receiver pays the spawn overhead on acceptance.
    fn place_children(
        &mut self,
        k: &mut Kernel,
        ctx: &mut impl ExecCtx<KernelMsg<()>>,
        children: Vec<TaskInstance>,
    ) {
        if children.is_empty() {
            return;
        }
        let n = ctx.num_nodes();
        let mut per_dest: Vec<Vec<TaskInstance>> = vec![Vec::new(); n];
        for child in children {
            let dest = ctx.rng().random_range(0..n);
            per_dest[dest].push(child);
        }
        let me = k.me;
        let load = k.load();
        for (dest, batch) in per_dest.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            if dest == me {
                k.exec.queue.extend(batch);
            } else {
                k.send_tasks(ctx, dest, batch, load);
            }
        }
    }

    fn on_round_start(
        &mut self,
        k: &mut Kernel,
        ctx: &mut impl ExecCtx<KernelMsg<()>>,
        round: u32,
        _token: u32,
    ) {
        self.seed_scattered(k, ctx, round);
    }
}

/// Runs `workload` under randomized allocation. Deterministic under
/// `seed`.
pub fn random(
    workload: Arc<Workload>,
    topo: Arc<dyn Topology>,
    latency: LatencyModel,
    costs: Costs,
    seed: u64,
) -> RunOutcome {
    let (outcome, _) = run_policy(workload, topo, latency, costs, seed, random_policy);
    outcome
}
