//! Behavioural tests for the three baseline balancers: completeness,
//! conservation, determinism, and the qualitative properties the paper
//! attributes to each.

use std::sync::Arc;

use rips_balancers::{gradient, random, rid, GradientParams, RidParams};
use rips_desim::LatencyModel;
use rips_runtime::{Costs, RunOutcome};
use rips_taskgraph::{flat_uniform, geometric_tree, skewed_flat, Workload};
use rips_topology::{Mesh2D, Topology};

fn mesh(n: usize) -> Arc<dyn Topology> {
    Arc::new(Mesh2D::near_square(n))
}

fn run_all(w: &Arc<Workload>, nodes: usize, seed: u64) -> [RunOutcome; 3] {
    let costs = Costs::default();
    let lat = LatencyModel::paragon();
    [
        random(Arc::clone(w), mesh(nodes), lat, costs, seed),
        gradient(
            Arc::clone(w),
            mesh(nodes),
            lat,
            costs,
            seed,
            GradientParams::default(),
        ),
        rid(
            Arc::clone(w),
            mesh(nodes),
            lat,
            costs,
            seed,
            RidParams::default(),
        ),
    ]
}

#[test]
fn all_balancers_execute_every_task_exactly_once() {
    let w = Arc::new(flat_uniform(200, 500, 3000, 9));
    for (i, out) in run_all(&w, 8, 42).iter().enumerate() {
        out.verify_complete(&w)
            .unwrap_or_else(|e| panic!("balancer {i}: {e}"));
    }
}

#[test]
fn multi_round_workloads_complete() {
    let w = Arc::new(Workload {
        name: "three-round".into(),
        rounds: vec![
            flat_uniform(60, 200, 900, 1).rounds[0].clone(),
            flat_uniform(45, 200, 900, 2).rounds[0].clone(),
            flat_uniform(70, 200, 900, 3).rounds[0].clone(),
        ],
    });
    for (i, out) in run_all(&w, 6, 7).iter().enumerate() {
        out.verify_complete(&w)
            .unwrap_or_else(|e| panic!("balancer {i}: {e}"));
    }
}

#[test]
fn dynamic_task_generation_completes() {
    let w = Arc::new(geometric_tree(6, 5, 3, 2000, 13));
    for (i, out) in run_all(&w, 9, 5).iter().enumerate() {
        out.verify_complete(&w)
            .unwrap_or_else(|e| panic!("balancer {i}: {e}"));
    }
}

#[test]
fn single_node_machine_works() {
    let w = Arc::new(flat_uniform(30, 100, 200, 4));
    for (i, out) in run_all(&w, 1, 1).iter().enumerate() {
        out.verify_complete(&w)
            .unwrap_or_else(|e| panic!("balancer {i}: {e}"));
        assert_eq!(out.nonlocal, 0, "balancer {i} moved tasks on 1 node");
    }
}

#[test]
fn runs_are_deterministic() {
    let w = Arc::new(skewed_flat(150, 300, 10, 20, 3));
    let a = run_all(&w, 8, 99);
    let b = run_all(&w, 8, 99);
    for i in 0..3 {
        assert_eq!(a[i].stats.end_time, b[i].stats.end_time, "balancer {i}");
        assert_eq!(a[i].executed, b[i].executed, "balancer {i}");
        assert_eq!(a[i].nonlocal, b[i].nonlocal, "balancer {i}");
    }
}

#[test]
fn random_allocation_has_poor_locality() {
    // ~ (N-1)/N of dynamically generated tasks land off-origin; the
    // paper's Table I shows 7342/7579 ≈ 97% nonlocal on 32 nodes.
    let w = Arc::new(geometric_tree(16, 5, 3, 2000, 21));
    let total = w.stats().tasks as f64;
    let out = random(
        Arc::clone(&w),
        mesh(16),
        LatencyModel::paragon(),
        Costs::default(),
        5,
    );
    let frac = out.nonlocal as f64 / total;
    assert!(frac > 0.75, "random locality unexpectedly good: {frac}");
}

#[test]
fn gradient_moves_fewer_tasks_than_random() {
    // The paper's locality ordering: random ≫ gradient > RID > RIPS.
    let w = Arc::new(geometric_tree(16, 5, 3, 2000, 21));
    let [rand_out, grad_out, rid_out] = run_all(&w, 16, 11);
    assert!(
        grad_out.nonlocal < rand_out.nonlocal,
        "gradient {} vs random {}",
        grad_out.nonlocal,
        rand_out.nonlocal
    );
    assert!(
        rid_out.nonlocal < rand_out.nonlocal,
        "RID {} vs random {}",
        rid_out.nonlocal,
        rand_out.nonlocal
    );
}

#[test]
fn rid_balances_imbalanced_load() {
    // All work starts on one side of the mesh: the first quarter of the
    // block-distributed tasks (the first 4 of 16 nodes) carry 10x
    // grains. RID must pull a meaningful share across and beat the
    // no-balancing lower bound on efficiency. (A skewed_flat forest is
    // too *evenly* skewed for this — every node gets the same count of
    // heavy tasks, so whether RID moves anything is seed-noise.)
    use rand::{rngs::SmallRng, RngExt, SeedableRng};
    use rips_taskgraph::TaskForest;
    let mut rng = SmallRng::seed_from_u64(8);
    let mut forest = TaskForest::new();
    for i in 0..400 {
        let jitter = rng.random_range(0..=500u64);
        let grain = if i < 100 { 10_000 } else { 1_000 } + jitter;
        forest.add_root(grain);
    }
    let w = Arc::new(Workload::single("one-sided", forest));
    let out = rid(
        Arc::clone(&w),
        mesh(16),
        LatencyModel::paragon(),
        Costs::default(),
        3,
        RidParams::default(),
    );
    out.verify_complete(&w).unwrap();
    assert!(out.nonlocal > 10, "RID moved too little: {}", out.nonlocal);
    assert!(out.efficiency() > 0.5, "efficiency {}", out.efficiency());
}

#[test]
fn gradient_pays_control_traffic_per_task_moved() {
    // "the system overhead is large because information and tasks are
    // frequently exchanged": gradient tasks move one hop per message
    // plus proximity updates, so messages-per-task-moved is a multiple
    // of random allocation's (which batches spawned children and sends
    // no control traffic at all).
    let w = Arc::new(skewed_flat(300, 800, 5, 8, 2));
    let [rand_out, grad_out, _] = run_all(&w, 16, 17);
    let per_moved = |o: &RunOutcome| o.stats.net.msgs as f64 / o.nonlocal.max(1) as f64;
    assert!(
        per_moved(&grad_out) > per_moved(&rand_out),
        "gradient {:.2} msgs/moved vs random {:.2}",
        per_moved(&grad_out),
        per_moved(&rand_out)
    );
}

#[test]
fn sid_completes_and_balances() {
    use rips_balancers::{sid, SidParams};
    let w = Arc::new(skewed_flat(400, 1000, 4, 10, 8));
    let out = sid(
        Arc::clone(&w),
        mesh(16),
        LatencyModel::paragon(),
        Costs::default(),
        3,
        SidParams::default(),
    );
    out.verify_complete(&w).unwrap();
    assert!(out.nonlocal > 0, "SID never moved a task");
    assert!(out.efficiency() > 0.5, "efficiency {}", out.efficiency());
}

#[test]
fn sid_handles_dynamic_generation_and_rounds() {
    use rips_balancers::{sid, SidParams};
    let w = Arc::new(Workload {
        name: "rounds".into(),
        rounds: vec![
            geometric_tree(6, 4, 3, 2000, 13).rounds[0].clone(),
            flat_uniform(45, 200, 900, 2).rounds[0].clone(),
        ],
    });
    let out = sid(
        Arc::clone(&w),
        mesh(9),
        LatencyModel::paragon(),
        Costs::default(),
        5,
        SidParams::default(),
    );
    out.verify_complete(&w).unwrap();
}
