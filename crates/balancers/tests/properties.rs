//! Property tests: every baseline balancer executes every task of an
//! arbitrary dynamic workload exactly once, deterministically, on
//! arbitrary machines.

use std::sync::Arc;

use proptest::prelude::*;
use rips_balancers::{gradient, random, rid, sid, GradientParams, RidParams, SidParams};
use rips_desim::LatencyModel;
use rips_runtime::Costs;
use rips_taskgraph::{TaskForest, Workload};
use rips_topology::{Mesh2D, Topology};

fn arb_workload() -> impl Strategy<Value = Workload> {
    let forest = (
        proptest::collection::vec(1u64..3_000, 1..20),
        proptest::collection::vec((0usize..20, 1u64..2_000), 0..15),
    )
        .prop_map(|(roots, children)| {
            let mut f = TaskForest::new();
            let ids: Vec<_> = roots.into_iter().map(|g| f.add_root(g)).collect();
            let mut all = ids.clone();
            for (parent_pick, grain) in children {
                let parent = all[parent_pick % all.len()];
                all.push(f.add_child(parent, grain));
            }
            f
        });
    proptest::collection::vec(forest, 1..=2).prop_map(|rounds| Workload {
        name: "arb".into(),
        rounds,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_balancer_completes_arbitrary_workloads(
        w in arb_workload(),
        nodes in 1usize..=12,
        seed in 0u64..50,
    ) {
        let w = Arc::new(w);
        let total = w.stats().tasks as u64;
        let lat = LatencyModel::paragon();
        let costs = Costs::default();
        let mesh = Mesh2D::near_square(nodes);
        let topo = || -> Arc<dyn Topology> { Arc::new(mesh.clone()) };

        prop_assert_eq!(
            random(Arc::clone(&w), topo(), lat, costs, seed).total_executed(),
            total
        );
        prop_assert_eq!(
            gradient(Arc::clone(&w), topo(), lat, costs, seed, GradientParams::default())
                .total_executed(),
            total
        );
        prop_assert_eq!(
            rid(Arc::clone(&w), topo(), lat, costs, seed, RidParams::default())
                .total_executed(),
            total
        );
        prop_assert_eq!(
            sid(Arc::clone(&w), topo(), lat, costs, seed, SidParams::default())
                .total_executed(),
            total
        );
    }

    /// Work conservation: total user time equals the workload's work,
    /// for every balancer.
    #[test]
    fn user_time_equals_total_work(w in arb_workload(), seed in 0u64..50) {
        let w = Arc::new(w);
        let want = w.stats().total_work_us;
        let lat = LatencyModel::paragon();
        let costs = Costs::default();
        let mesh = Mesh2D::near_square(6);
        let topo = || -> Arc<dyn Topology> { Arc::new(mesh.clone()) };
        for out in [
            random(Arc::clone(&w), topo(), lat, costs, seed),
            rid(Arc::clone(&w), topo(), lat, costs, seed, RidParams::default()),
            sid(Arc::clone(&w), topo(), lat, costs, seed, SidParams::default()),
        ] {
            prop_assert_eq!(out.stats.total_user_us(), want);
        }
    }
}
