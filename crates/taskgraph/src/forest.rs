//! Task forests and workloads.

/// Index of a task within its [`TaskForest`].
pub type TaskId = u32;

/// One unit of schedulable work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Task {
    /// Execution time on whichever node runs it (virtual µs).
    pub grain_us: u64,
    /// Tasks released when this one completes ("newly generated").
    pub children: Vec<TaskId>,
}

/// A forest of dynamically generated tasks: the roots are available at
/// the start of the round; children appear as their parents complete.
///
/// ```
/// use rips_taskgraph::TaskForest;
///
/// let mut f = TaskForest::new();
/// let root = f.add_root(100);
/// f.add_child(root, 250);
/// assert_eq!(f.total_work_us(), 350);
/// assert_eq!(f.critical_path_us(), 350); // chain: root then child
/// assert!(f.validate().is_ok());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaskForest {
    tasks: Vec<Task>,
    roots: Vec<TaskId>,
}

impl TaskForest {
    /// Empty forest.
    pub fn new() -> Self {
        TaskForest::default()
    }

    /// Adds a root task, returning its id.
    pub fn add_root(&mut self, grain_us: u64) -> TaskId {
        let id = self.push(grain_us);
        self.roots.push(id);
        id
    }

    /// Adds a task released by `parent`'s completion.
    ///
    /// # Panics
    /// Panics if `parent` does not exist.
    pub fn add_child(&mut self, parent: TaskId, grain_us: u64) -> TaskId {
        assert!((parent as usize) < self.tasks.len(), "no such parent");
        let id = self.push(grain_us);
        self.tasks[parent as usize].children.push(id);
        id
    }

    fn push(&mut self, grain_us: u64) -> TaskId {
        let id = u32::try_from(self.tasks.len()).expect("forest too large");
        self.tasks.push(Task {
            grain_us,
            children: Vec::new(),
        });
        id
    }

    /// Task lookup.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id as usize]
    }

    /// Root tasks available at round start.
    pub fn roots(&self) -> &[TaskId] {
        &self.roots
    }

    /// Number of tasks in the forest.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` when the forest holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total work (Σ grains) in µs.
    pub fn total_work_us(&self) -> u64 {
        self.tasks.iter().map(|t| t.grain_us).sum()
    }

    /// Largest single grain in µs.
    pub fn max_grain_us(&self) -> u64 {
        self.tasks.iter().map(|t| t.grain_us).max().unwrap_or(0)
    }

    /// Length (in µs) of the longest dependency chain: a lower bound on
    /// any schedule's makespan regardless of processor count.
    pub fn critical_path_us(&self) -> u64 {
        let mut memo = vec![u64::MAX; self.tasks.len()];
        fn depth(forest: &TaskForest, id: TaskId, memo: &mut [u64]) -> u64 {
            if memo[id as usize] != u64::MAX {
                return memo[id as usize];
            }
            let t = forest.task(id);
            let below = t
                .children
                .iter()
                .map(|&c| depth(forest, c, memo))
                .max()
                .unwrap_or(0);
            memo[id as usize] = t.grain_us + below;
            memo[id as usize]
        }
        self.roots
            .iter()
            .map(|&r| depth(self, r, &mut memo))
            .max()
            .unwrap_or(0)
    }

    /// Checks the forest is a true forest: every non-root task has
    /// exactly one parent and no task is reachable twice.
    pub fn validate(&self) -> Result<(), String> {
        let mut indegree = vec![0u32; self.tasks.len()];
        for t in &self.tasks {
            for &c in &t.children {
                if c as usize >= self.tasks.len() {
                    return Err(format!("dangling child id {c}"));
                }
                indegree[c as usize] += 1;
            }
        }
        for &r in &self.roots {
            if indegree[r as usize] != 0 {
                return Err(format!("root {r} has a parent"));
            }
        }
        let mut root_set = vec![false; self.tasks.len()];
        for &r in &self.roots {
            if std::mem::replace(&mut root_set[r as usize], true) {
                return Err(format!("duplicate root {r}"));
            }
        }
        for (id, &deg) in indegree.iter().enumerate() {
            if deg > 1 {
                return Err(format!("task {id} has {deg} parents"));
            }
            if deg == 0 && !root_set[id] {
                return Err(format!("task {id} unreachable"));
            }
        }
        Ok(())
    }
}

/// A complete application run: one forest per round, with a global
/// barrier between rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    /// Human-readable name (e.g. `"15-queens"`, `"gromos 16A"`).
    pub name: String,
    /// The rounds, executed in order with a barrier after each.
    pub rounds: Vec<TaskForest>,
}

/// Aggregate statistics over a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadStats {
    /// Total number of tasks across all rounds.
    pub tasks: usize,
    /// Total work in µs (the sequential execution time `Ts`).
    pub total_work_us: u64,
    /// Largest grain.
    pub max_grain_us: u64,
    /// Sum over rounds of each round's critical path: a lower bound on
    /// infinite-processor makespan.
    pub critical_path_us: u64,
}

impl Workload {
    /// Single-round workload.
    pub fn single(name: impl Into<String>, forest: TaskForest) -> Self {
        Workload {
            name: name.into(),
            rounds: vec![forest],
        }
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> WorkloadStats {
        WorkloadStats {
            tasks: self.rounds.iter().map(|r| r.len()).sum(),
            total_work_us: self.rounds.iter().map(|r| r.total_work_us()).sum(),
            max_grain_us: self
                .rounds
                .iter()
                .map(|r| r.max_grain_us())
                .max()
                .unwrap_or(0),
            critical_path_us: self.rounds.iter().map(|r| r.critical_path_us()).sum(),
        }
    }

    /// Validates every round.
    pub fn validate(&self) -> Result<(), String> {
        for (i, r) in self.rounds.iter().enumerate() {
            r.validate().map_err(|e| format!("round {i}: {e}"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamondless_tree() -> TaskForest {
        let mut f = TaskForest::new();
        let root = f.add_root(10);
        let a = f.add_child(root, 20);
        f.add_child(root, 5);
        f.add_child(a, 7);
        f
    }

    #[test]
    fn totals_and_max() {
        let f = diamondless_tree();
        assert_eq!(f.len(), 4);
        assert_eq!(f.total_work_us(), 42);
        assert_eq!(f.max_grain_us(), 20);
    }

    #[test]
    fn critical_path_follows_longest_chain() {
        let f = diamondless_tree();
        // 10 (root) + 20 (a) + 7 (a's child) = 37.
        assert_eq!(f.critical_path_us(), 37);
    }

    #[test]
    fn validate_accepts_forest() {
        assert_eq!(diamondless_tree().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_double_parent() {
        let mut f = TaskForest::new();
        let r1 = f.add_root(1);
        let r2 = f.add_root(1);
        let c = f.add_child(r1, 1);
        // Manually corrupt: also attach c under r2.
        f.tasks[r2 as usize].children.push(c);
        assert!(f.validate().unwrap_err().contains("2 parents"));
    }

    #[test]
    fn empty_forest_is_fine() {
        let f = TaskForest::new();
        assert!(f.is_empty());
        assert_eq!(f.critical_path_us(), 0);
        assert_eq!(f.validate(), Ok(()));
    }

    #[test]
    fn workload_stats_sum_rounds() {
        let w = Workload {
            name: "w".into(),
            rounds: vec![diamondless_tree(), diamondless_tree()],
        };
        let s = w.stats();
        assert_eq!(s.tasks, 8);
        assert_eq!(s.total_work_us, 84);
        assert_eq!(s.critical_path_us, 74);
        assert!(w.validate().is_ok());
    }
}
