//! The dynamic task model shared by every scheduler and workload.
//!
//! The paper's applications are divide-and-conquer style: executing a
//! task may *generate* new tasks (N-Queens node expansion), and some
//! applications impose a global barrier between *rounds* (IDA\*
//! iterations, molecular-dynamics time steps). A [`Workload`] captures
//! exactly that:
//!
//! * a sequence of [`TaskForest`]s, one per round, with a barrier
//!   between rounds ("synchronization at each iteration reduces the
//!   effective parallelism", §5);
//! * each forest is a set of root tasks; completing a task releases its
//!   children (the "newly generated tasks" rescheduled in the next
//!   system phase).
//!
//! Grain sizes are virtual microseconds consumed on the executing node.

mod forest;
mod synthetic;

pub use forest::{Task, TaskForest, TaskId, Workload, WorkloadStats};
pub use synthetic::{flat_uniform, geometric_tree, skewed_flat};
