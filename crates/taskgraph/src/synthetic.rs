//! Synthetic workload generators for tests and ablation benches.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::forest::{TaskForest, Workload};

/// Flat forest of `n` independent tasks with uniform grains in
/// `[lo, hi]` µs.
pub fn flat_uniform(n: usize, lo: u64, hi: u64, seed: u64) -> Workload {
    assert!(lo <= hi, "empty grain range");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut f = TaskForest::new();
    for _ in 0..n {
        f.add_root(rng.random_range(lo..=hi));
    }
    Workload::single(format!("flat-uniform n={n}"), f)
}

/// Flat forest with a heavy-tailed ("skewed") grain distribution: most
/// tasks tiny, a few `heavy_every`-th tasks `heavy_factor`× larger —
/// the unequal-grain-size situation incremental scheduling corrects.
pub fn skewed_flat(
    n: usize,
    base: u64,
    heavy_every: usize,
    heavy_factor: u64,
    seed: u64,
) -> Workload {
    assert!(heavy_every > 0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut f = TaskForest::new();
    for i in 0..n {
        let jitter = rng.random_range(0..=base / 2);
        let grain = if i % heavy_every == 0 {
            base * heavy_factor + jitter
        } else {
            base + jitter
        };
        f.add_root(grain);
    }
    Workload::single(format!("skewed-flat n={n}"), f)
}

/// Random divide-and-conquer tree: `roots` root tasks, each task at
/// depth `d < depth` spawns `0..=max_children` children (geometric-ish
/// via the RNG), leaves carrying most of the grain. Models N-Queens
/// style unpredictable expansion.
pub fn geometric_tree(
    roots: usize,
    depth: usize,
    max_children: usize,
    leaf_grain: u64,
    seed: u64,
) -> Workload {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut f = TaskForest::new();
    let mut frontier: Vec<(crate::TaskId, usize)> = (0..roots)
        .map(|_| (f.add_root(rng.random_range(1..=leaf_grain / 4 + 1)), 0))
        .collect();
    while let Some((parent, d)) = frontier.pop() {
        if d + 1 >= depth {
            continue;
        }
        let kids = rng.random_range(0..=max_children);
        for _ in 0..kids {
            let leafish = d + 2 >= depth;
            let grain = if leafish {
                rng.random_range(leaf_grain / 2..=leaf_grain)
            } else {
                rng.random_range(1..=leaf_grain / 4 + 1)
            };
            let id = f.add_child(parent, grain);
            frontier.push((id, d + 1));
        }
    }
    Workload::single(format!("geometric-tree roots={roots} depth={depth}"), f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_uniform_shape() {
        let w = flat_uniform(100, 10, 20, 7);
        let s = w.stats();
        assert_eq!(s.tasks, 100);
        assert!(s.max_grain_us <= 20);
        assert!(s.total_work_us >= 1000);
        assert!(w.validate().is_ok());
        // Flat: critical path == max grain.
        assert_eq!(s.critical_path_us, s.max_grain_us);
    }

    #[test]
    fn skewed_has_heavy_tasks() {
        let w = skewed_flat(100, 10, 10, 50, 3);
        let s = w.stats();
        assert!(s.max_grain_us >= 500);
        assert!(w.validate().is_ok());
    }

    #[test]
    fn geometric_tree_is_valid_forest() {
        let w = geometric_tree(4, 5, 3, 100, 42);
        assert!(w.validate().is_ok());
        assert!(w.stats().tasks >= 4);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(flat_uniform(50, 1, 9, 11), flat_uniform(50, 1, 9, 11));
        assert_eq!(
            geometric_tree(3, 4, 3, 50, 5),
            geometric_tree(3, 4, 3, 50, 5)
        );
    }
}
