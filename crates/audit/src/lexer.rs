//! A lightweight Rust tokenizer — just enough structure for the lint
//! rules, with none of the weight of a full parser.
//!
//! The lexer's one job is to let rules reason about *code* without
//! being fooled by comments and string literals: `HashMap` inside a
//! doc comment or a format string must not trigger RIPS-L001. It
//! handles the lexical constructs that matter for that goal — line and
//! (nested) block comments, string/raw-string/char literals, lifetimes
//! versus char literals, numeric literals — and classifies everything
//! else as identifiers or punctuation. Token text borrows from the
//! source; every token carries its 1-based line number.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `pub`, `fn`, …).
    Ident,
    /// A lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// One punctuation character (`{`, `!`, `(`, …).
    Punct,
    /// String, raw-string, char, byte, or numeric literal.
    Literal,
    /// `///` or `//!` doc comment (text includes the markers).
    DocComment,
    /// `//` line comment (text includes the markers).
    LineComment,
    /// `/* … */` block comment, nesting respected.
    BlockComment,
}

/// One token: kind, source text, and 1-based line of its first byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok<'a> {
    /// Classification.
    pub kind: TokKind,
    /// Exact source text.
    pub text: &'a str,
    /// 1-based line number where the token starts.
    pub line: u32,
}

/// Tokenizes `src`. Unterminated constructs (string or block comment
/// running to EOF) are tolerated: the token simply extends to the end
/// of the input — lint rules prefer resilience over rejection.
pub fn tokenize(src: &str) -> Vec<Tok<'_>> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;

    // Advances `line` for every newline in `src[from..to]`.
    let count_lines =
        |from: usize, to: usize| src[from..to].bytes().filter(|&c| c == b'\n').count();

    while i < b.len() {
        let start = i;
        let start_line = line;
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let end = src[i..].find('\n').map_or(b.len(), |p| i + p);
                let text = &src[i..end];
                let kind = if text.starts_with("///") || text.starts_with("//!") {
                    TokKind::DocComment
                } else {
                    TokKind::LineComment
                };
                toks.push(Tok {
                    kind,
                    text,
                    line: start_line,
                });
                i = end;
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Block comments nest in Rust.
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                line += count_lines(start, i) as u32;
                toks.push(Tok {
                    kind: TokKind::BlockComment,
                    text: &src[start..i],
                    line: start_line,
                });
            }
            b'"' => {
                i = scan_string(b, i + 1);
                line += count_lines(start, i) as u32;
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: &src[start..i],
                    line: start_line,
                });
            }
            b'r' | b'b' if is_raw_string_start(b, i) => {
                i = scan_raw_string(b, i);
                line += count_lines(start, i) as u32;
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: &src[start..i],
                    line: start_line,
                });
            }
            b'\'' => {
                // Lifetime (`'a`, `'static`) vs char literal (`'x'`,
                // `'\n'`): a lifetime is a quote followed by an
                // identifier *not* closed by another quote.
                let is_lifetime = match b.get(i + 1) {
                    Some(&n) if n == b'_' || n.is_ascii_alphabetic() => {
                        let mut j = i + 1;
                        while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                            j += 1;
                        }
                        b.get(j) != Some(&b'\'')
                    }
                    _ => false,
                };
                if is_lifetime {
                    let mut j = i + 1;
                    while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                        j += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: &src[i..j],
                        line: start_line,
                    });
                    i = j;
                } else {
                    i += 1;
                    if b.get(i) == Some(&b'\\') {
                        i += 2; // escape + escaped char
                    } else if i < b.len() {
                        i += 1;
                    }
                    while i < b.len() && b[i] != b'\'' {
                        i += 1; // tolerate multi-byte chars
                    }
                    i = (i + 1).min(b.len());
                    line += count_lines(start, i) as u32;
                    toks.push(Tok {
                        kind: TokKind::Literal,
                        text: &src[start..i],
                        line: start_line,
                    });
                }
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let mut j = i;
                while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: &src[i..j],
                    line: start_line,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < b.len()
                    && (b[j].is_ascii_alphanumeric() || b[j] == b'_' || b[j] == b'.')
                    && !(b[j] == b'.' && b.get(j + 1) == Some(&b'.'))
                {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: &src[i..j],
                    line: start_line,
                });
                i = j;
            }
            _ => {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: &src[i..i + 1],
                    line: start_line,
                });
                i += 1;
            }
        }
    }
    toks
}

/// Scans past a double-quoted string body starting *after* the opening
/// quote; returns the index one past the closing quote.
fn scan_string(b: &[u8], mut i: usize) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    b.len()
}

/// `r"…"`, `r#"…"#`, `br"…"`, … — does `b[i..]` start one?
fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    let mut j = i + 1;
    if b[i] == b'b' {
        match b.get(j) {
            Some(&b'"') => return true, // byte string b"…"
            Some(&b'r') => j += 1,
            _ => return false,
        }
    }
    matches!(b.get(j), Some(&b'"') | Some(&b'#'))
}

/// Scans a raw (or byte/raw-byte) string starting at its `r`/`b`;
/// returns the index one past the closing delimiter.
fn scan_raw_string(b: &[u8], mut i: usize) -> usize {
    if b[i] == b'b' {
        i += 1;
    }
    if b.get(i) == Some(&b'r') {
        i += 1;
    } else {
        // plain byte string b"…": same body rules as a normal string
        return scan_string(b, i + 1);
    }
    let mut hashes = 0;
    while b.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if b.get(i) != Some(&b'"') {
        return i; // not actually a raw string; resync
    }
    i += 1;
    while i < b.len() {
        if b[i] == b'"' {
            let mut k = 0;
            while k < hashes && b.get(i + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    b.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_punct() {
        assert_eq!(
            kinds("let x = y;"),
            vec![
                (TokKind::Ident, "let"),
                (TokKind::Ident, "x"),
                (TokKind::Punct, "="),
                (TokKind::Ident, "y"),
                (TokKind::Punct, ";"),
            ]
        );
    }

    #[test]
    fn strings_hide_identifiers() {
        let toks = kinds(r#"let s = "HashMap::new()";"#);
        assert!(toks
            .iter()
            .all(|&(k, t)| k != TokKind::Ident || t != "HashMap"));
        assert!(toks
            .iter()
            .any(|&(k, t)| k == TokKind::Literal && t.contains("HashMap")));
    }

    #[test]
    fn comments_are_classified() {
        let toks = kinds("// plain\n/// doc\n//! inner\n/* block */ x");
        assert_eq!(toks[0].0, TokKind::LineComment);
        assert_eq!(toks[1].0, TokKind::DocComment);
        assert_eq!(toks[2].0, TokKind::DocComment);
        assert_eq!(toks[3].0, TokKind::BlockComment);
        assert_eq!(toks[4], (TokKind::Ident, "x"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* a /* b */ c */ after");
        assert_eq!(toks[0].0, TokKind::BlockComment);
        assert_eq!(toks[1], (TokKind::Ident, "after"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"let s = r#"HashMap "quoted" body"#; next"###);
        assert!(toks
            .iter()
            .any(|&(k, t)| k == TokKind::Literal && t.contains("quoted")));
        assert_eq!(*toks.last().unwrap(), (TokKind::Ident, "next"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            toks.iter()
                .filter(|&&(k, _)| k == TokKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            toks.iter()
                .filter(|&&(k, t)| k == TokKind::Literal && t.starts_with('\''))
                .count(),
            2
        );
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = tokenize("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn multiline_string_advances_lines() {
        let toks = tokenize("let s = \"x\ny\";\nz");
        let z = toks.iter().find(|t| t.text == "z").unwrap();
        assert_eq!(z.line, 3);
    }
}
