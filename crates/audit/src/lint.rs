//! `rips-lint`: repo-specific static analysis over the workspace
//! source, built on the [`crate::lexer`] tokenizer (no `syn`, no
//! external dependencies — consistent with the offline-shims policy).
//!
//! # Rules
//!
//! | id | rule |
//! |----|------|
//! | RIPS-L001 | no `HashMap`/`HashSet` in the deterministic-path crates (`sched`, `balancers`, `runtime`, `core`): their iteration order is seeded per process and leaks into results |
//! | RIPS-L002 | no `Instant`/`SystemTime`/`thread_rng` outside the reasoned [`TIMING_PATHS`] allowlist (`crates/bench`, `shims`, `crates/live`): simulated runs must not observe wall-clock time or ambient randomness |
//! | RIPS-L003 | no `unwrap`/`expect`/`panic!`/`unreachable!` in the desim engine hot path (`crates/desim/src/engine.rs`) without a reasoned suppression |
//! | RIPS-L004 | `unsafe` is forbidden outside the reasoned [`UNSAFE_ALLOWLIST`] (exactly two files: the live backend's SPSC ring and the runtime's RCU cell) |
//! | RIPS-L005 | public items in `#![warn(missing_docs)]` crates must carry a doc comment |
//! | RIPS-L006 | no raw `std::sync::atomic` types (`Ordering` excepted) or `std::thread` park-family calls (`park`, `park_timeout`, `current`, `yield_now`) in `crates/live` + `crates/runtime`: lock-free code there must go through the `rips_verify::sync` / `vthread` seam so the bounded model checker can explore it |
//!
//! # Suppressions
//!
//! A finding is suppressed by a comment on the same line or the line
//! directly above:
//!
//! ```text
//! // rips-lint: allow(L003, engine invariant — queue is non-empty by construction)
//! let head = lane.pop().expect("armed node with empty lane");
//! ```
//!
//! The reason is mandatory; an `allow` without one is itself reported
//! (RIPS-L000), so every suppression documents *why* the rule does not
//! apply at that site.

use std::path::{Path, PathBuf};

use crate::lexer::{tokenize, Tok, TokKind};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule id (`RIPS-L001` … `RIPS-L006`, `RIPS-L000` for a
    /// malformed suppression).
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

/// Outcome of a lint pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    /// Non-suppressed findings, in (path, line) order.
    pub findings: Vec<Finding>,
    /// Files analysed.
    pub files_checked: usize,
    /// Findings silenced by a reasoned `rips-lint: allow` comment.
    pub suppressed: usize,
}

impl LintReport {
    /// `true` when the pass found nothing.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable rendering, one line per finding plus a summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                f.path, f.line, f.rule, f.message
            ));
        }
        out.push_str(&format!(
            "{} finding(s) in {} file(s), {} suppressed\n",
            self.findings.len(),
            self.files_checked,
            self.suppressed
        ));
        out
    }

    /// JSON rendering (hand-rolled — the workspace carries no serde).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
                f.rule,
                json_escape(&f.path),
                f.line,
                json_escape(&f.message)
            ));
        }
        out.push_str(&format!(
            "],\"count\":{},\"files_checked\":{},\"suppressed\":{}}}",
            self.findings.len(),
            self.files_checked,
            self.suppressed
        ));
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Crates whose results must be bit-for-bit reproducible: RIPS-L001
/// forbids seeded-order containers anywhere inside them.
const DETERMINISTIC_CRATES: &[&str] = &[
    "crates/sched/",
    "crates/balancers/",
    "crates/runtime/",
    "crates/core/",
];

/// Paths allowed to observe wall-clock time / ambient randomness
/// (RIPS-L002 does not apply). Every entry carries a mandatory reason,
/// mirroring the inline `allow(L00x, reason)` contract: an unexplained
/// scope hole is itself a lint smell. Keep entries narrow — a crate
/// goes here only if real time is its *purpose*, not a convenience.
pub const TIMING_PATHS: &[(&str, &str)] = &[
    (
        "crates/bench/",
        "the bench harness measures real elapsed time by design",
    ),
    (
        "shims/",
        "the vendored shims implement the timing APIs themselves",
    ),
    (
        "crates/live/",
        "the live backend's whole point is wall-clock execution: \
         Instant anchors its monotonic Clock (and the CycleClock the \
         metrics histograms sample), park timeouts / recv_timeout \
         realise its timer-wheel deadlines, and the stall watchdog \
         sleeps real intervals between progress samples — a virtual \
         clock cannot detect a wedged OS thread",
    ),
];

/// The desim engine hot path (RIPS-L003 scope).
const ENGINE_HOT_PATH: &str = "crates/desim/src/engine.rs";

/// Crates whose lock-free code must route atomics and park/unpark
/// through the `rips_verify::sync` / `vthread` seam (RIPS-L006), so
/// the bounded model checker can instrument and explore it. Raw
/// `std::sync::atomic` types (`Ordering` excepted — it is plain data)
/// and `std::thread` park-family calls there evade the checker.
const VERIFY_SEAM_CRATES: &[&str] = &["crates/live/", "crates/runtime/"];

/// `std::thread` functions with a `rips_verify::vthread` equivalent
/// (RIPS-L006): calling the raw version makes the schedule invisible
/// to the checker. `spawn`/`sleep`/`scope`/`panicking` stay legal —
/// real-thread plumbing is not part of a modelled protocol.
const PARK_FAMILY: &[&str] = &["park", "park_timeout", "current", "yield_now", "Thread"];

/// Files allowed to contain `unsafe` (RIPS-L004), pinned to exact file
/// paths with a mandatory reason (same contract as [`TIMING_PATHS`]).
/// Everything else is safe Rust, and the safe crates additionally carry
/// `#![forbid(unsafe_code)]` (or `#![deny]` with a module-scoped allow
/// for exactly these files). Adding an entry here requires a matching
/// DESIGN §7 note and a safety argument in the file's module docs.
pub const UNSAFE_ALLOWLIST: &[(&str, &str)] = &[
    (
        "crates/live/src/ring.rs",
        "SPSC ring slots are UnsafeCell<MaybeUninit>; non-Clone &mut \
         handles plus the head/tail acquire/release protocol make every \
         slot access data-race-free (safety argument in module docs)",
    ),
    (
        "crates/runtime/src/rcu.rs",
        "RCU cell with end-of-run reclamation: superseded snapshots are \
         only freed when the cell drops, so every read() borrow outlives \
         nothing it shouldn't (safety argument in module docs)",
    ),
];

/// A parsed `rips-lint: allow(...)` comment.
struct Suppression {
    /// Normalized rule id (`RIPS-L001`).
    rule: String,
    /// Comment line; suppresses findings on this line and the next.
    line: u32,
}

/// Lints one in-memory source file. `missing_docs` says whether the
/// file belongs to a `#![warn(missing_docs)]` crate (enables L005).
/// Returns `(findings, suppressed_count)`.
pub fn lint_source(path: &str, src: &str, missing_docs: bool) -> (Vec<Finding>, usize) {
    let toks = tokenize(src);
    let mut raw: Vec<Finding> = Vec::new();
    let mut suppressions: Vec<Suppression> = Vec::new();

    // Pass 0: collect suppressions (and report malformed ones).
    for t in &toks {
        if t.kind != TokKind::LineComment && t.kind != TokKind::BlockComment {
            continue;
        }
        let Some(pos) = t.text.find("rips-lint:") else {
            continue;
        };
        let rest = t.text[pos + "rips-lint:".len()..].trim_start();
        let Some(body) = rest
            .strip_prefix("allow(")
            .and_then(|r| r.split(')').next())
        else {
            raw.push(Finding {
                rule: "RIPS-L000",
                path: path.to_string(),
                line: t.line,
                message: "malformed rips-lint comment: expected `allow(L00x, reason)`".into(),
            });
            continue;
        };
        let mut parts = body.splitn(2, ',');
        let id = parts.next().unwrap_or("").trim();
        let reason = parts.next().map(str::trim).unwrap_or("");
        let norm = normalize_rule_id(id);
        match norm {
            Some(rule) if !reason.is_empty() => {
                suppressions.push(Suppression { rule, line: t.line })
            }
            Some(_) => raw.push(Finding {
                rule: "RIPS-L000",
                path: path.to_string(),
                line: t.line,
                message: format!("suppression of {id} carries no reason"),
            }),
            None => raw.push(Finding {
                rule: "RIPS-L000",
                path: path.to_string(),
                line: t.line,
                message: format!("unknown lint id {id:?} in suppression"),
            }),
        }
    }

    // Pass 1: the rules. Test modules (`#[cfg(test)] mod … { … }`) are
    // exempt from L003/L005 (assertion style and private helpers are
    // fine in tests) but NOT from L001/L002/L004 — determinism, time,
    // and unsafety matter in tests too.
    let test_ranges = cfg_test_ranges(&toks);
    let in_tests = |idx: usize| test_ranges.iter().any(|&(lo, hi)| idx >= lo && idx < hi);

    let l001 = DETERMINISTIC_CRATES.iter().any(|p| path.starts_with(p));
    let l002 = !TIMING_PATHS.iter().any(|(p, _)| path.starts_with(p));
    let l003 = path == ENGINE_HOT_PATH;
    let l004 = !UNSAFE_ALLOWLIST.iter().any(|(p, _)| *p == path);
    let l006 = VERIFY_SEAM_CRATES.iter().any(|p| path.starts_with(p));

    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let next_punct = |want: &str| {
            toks[i + 1..]
                .iter()
                .find(|n| {
                    !matches!(
                        n.kind,
                        TokKind::LineComment | TokKind::BlockComment | TokKind::DocComment
                    )
                })
                .is_some_and(|n| n.kind == TokKind::Punct && n.text == want)
        };
        match t.text {
            "HashMap" | "HashSet" if l001 => raw.push(Finding {
                rule: "RIPS-L001",
                path: path.to_string(),
                line: t.line,
                message: format!(
                    "`{}` in a deterministic-path crate: iteration order is seeded per \
                     process and can leak into results; use `BTreeMap`/`BTreeSet` or a sorted Vec",
                    t.text
                ),
            }),
            "SystemTime" | "thread_rng" if l002 => raw.push(Finding {
                rule: "RIPS-L002",
                path: path.to_string(),
                line: t.line,
                message: format!(
                    "`{}` outside bench timing code: simulated runs must not observe \
                     wall-clock time or ambient randomness",
                    t.text
                ),
            }),
            "Instant" if l002 => raw.push(Finding {
                rule: "RIPS-L002",
                path: path.to_string(),
                line: t.line,
                message: "`Instant` outside bench timing code: simulated runs must not \
                          observe wall-clock time"
                    .into(),
            }),
            "unwrap" | "expect" if l003 && !in_tests(i) && next_punct("(") => raw.push(Finding {
                rule: "RIPS-L003",
                path: path.to_string(),
                line: t.line,
                message: format!(
                    "`{}` in the engine hot path: a panic here takes down the whole \
                     simulation; handle the case or suppress with the invariant that rules it out",
                    t.text
                ),
            }),
            "panic" | "unreachable" if l003 && !in_tests(i) && next_punct("!") => {
                raw.push(Finding {
                    rule: "RIPS-L003",
                    path: path.to_string(),
                    line: t.line,
                    message: format!(
                        "`{}!` in the engine hot path: a panic here takes down the whole \
                         simulation; handle the case or suppress with the invariant that rules it out",
                        t.text
                    ),
                })
            }
            "unsafe" if l004 => raw.push(Finding {
                rule: "RIPS-L004",
                path: path.to_string(),
                line: t.line,
                message: "`unsafe` outside the allowlist (see crates/audit/src/lint.rs \
                          UNSAFE_ALLOWLIST); the workspace is safe Rust"
                    .into(),
            }),
            "std" if l006 => {
                // Path-shaped lookahead over significant tokens:
                // `std :: sync :: atomic [:: Tail]` / `std :: thread :: f`.
                let sig: Vec<(TokKind, &str)> = toks[i + 1..]
                    .iter()
                    .filter(|n| {
                        !matches!(
                            n.kind,
                            TokKind::LineComment | TokKind::BlockComment | TokKind::DocComment
                        )
                    })
                    .take(9)
                    .map(|n| (n.kind, n.text))
                    .collect();
                let colon2 = |k: usize| {
                    sig.get(k) == Some(&(TokKind::Punct, ":"))
                        && sig.get(k + 1) == Some(&(TokKind::Punct, ":"))
                };
                let ident = |k: usize, s: &str| sig.get(k) == Some(&(TokKind::Ident, s));
                if colon2(0) && ident(2, "sync") && colon2(3) && ident(5, "atomic") {
                    if !(colon2(6) && ident(8, "Ordering")) {
                        raw.push(Finding {
                            rule: "RIPS-L006",
                            path: path.to_string(),
                            line: t.line,
                            message: "raw `std::sync::atomic` in a model-checked crate: \
                                      import atomic types from `rips_verify::sync::atomic` \
                                      so the bounded checker can instrument them \
                                      (`std::sync::atomic::Ordering` alone is exempt)"
                                .into(),
                        });
                    }
                } else if colon2(0) && ident(2, "thread") && colon2(3) {
                    if let Some(&(TokKind::Ident, f)) = sig.get(5) {
                        if PARK_FAMILY.contains(&f) {
                            raw.push(Finding {
                                rule: "RIPS-L006",
                                path: path.to_string(),
                                line: t.line,
                                message: format!(
                                    "`std::thread::{f}` in a model-checked crate: use \
                                     `rips_verify::vthread::{f}` so park/wake protocols \
                                     run under the bounded checker's scheduler"
                                ),
                            });
                        }
                    }
                }
            }
            _ => {}
        }
    }

    if missing_docs {
        check_missing_docs(path, &toks, &test_ranges, &mut raw);
    }

    // Pass 2: apply suppressions (same line or the line directly below
    // the comment).
    let mut suppressed = 0;
    let findings = raw
        .into_iter()
        .filter(|f| {
            let hit = suppressions
                .iter()
                .any(|s| s.rule == f.rule && (s.line == f.line || s.line + 1 == f.line));
            if hit {
                suppressed += 1;
            }
            !hit
        })
        .collect();
    (findings, suppressed)
}

/// Accepts `L001` or `RIPS-L001` (any case), returns `RIPS-L001`.
fn normalize_rule_id(id: &str) -> Option<String> {
    let id = id.trim();
    let tail = id
        .strip_prefix("RIPS-")
        .or_else(|| id.strip_prefix("rips-"))
        .unwrap_or(id);
    let t = tail.to_ascii_uppercase();
    let ok = t.len() == 4
        && t.starts_with('L')
        && t[1..].chars().all(|c| c.is_ascii_digit())
        && ("L001"..="L006").contains(&t.as_str());
    ok.then(|| format!("RIPS-{t}"))
}

/// Token-index ranges covered by `#[cfg(test)]` items (the attribute
/// through the matching close brace of the item that follows).
fn cfg_test_ranges(toks: &[Tok<'_>]) -> Vec<(usize, usize)> {
    fn sig<'a>(t: &Tok<'a>) -> (TokKind, &'a str) {
        (t.kind, t.text)
    }
    let mut ranges = Vec::new();
    let mut i = 0;
    while i + 6 < toks.len() {
        let is_cfg_test = sig(&toks[i]) == (TokKind::Punct, "#")
            && sig(&toks[i + 1]) == (TokKind::Punct, "[")
            && sig(&toks[i + 2]) == (TokKind::Ident, "cfg")
            && sig(&toks[i + 3]) == (TokKind::Punct, "(")
            && sig(&toks[i + 4]) == (TokKind::Ident, "test")
            && sig(&toks[i + 5]) == (TokKind::Punct, ")")
            && sig(&toks[i + 6]) == (TokKind::Punct, "]");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Skip to the item's opening brace, then to its matching close.
        let mut j = i + 7;
        while j < toks.len() && !(toks[j].kind == TokKind::Punct && toks[j].text == "{") {
            j += 1;
        }
        let mut depth = 0usize;
        while j < toks.len() {
            if toks[j].kind == TokKind::Punct {
                match toks[j].text {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        ranges.push((i, j));
        i = j;
    }
    ranges
}

/// RIPS-L005: a `pub` item declaration must be preceded by a doc
/// comment (attributes may sit between the doc and the item).
/// `pub use` re-exports and restricted visibility (`pub(crate)` …) are
/// exempt, matching rustc's `missing_docs` behaviour closely enough
/// for this workspace.
fn check_missing_docs(
    path: &str,
    toks: &[Tok<'_>],
    test_ranges: &[(usize, usize)],
    out: &mut Vec<Finding>,
) {
    const ITEM_KEYWORDS: &[&str] = &[
        "fn", "struct", "enum", "trait", "mod", "const", "static", "type", "union",
    ];
    let in_tests = |idx: usize| test_ranges.iter().any(|&(lo, hi)| idx >= lo && idx < hi);
    let mut has_doc = false;
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::DocComment => has_doc = true,
            TokKind::LineComment | TokKind::BlockComment => {}
            TokKind::Punct if t.text == "#" => {
                // Attribute: skip its bracketed body, preserving the
                // doc flag (`/// doc` + `#[derive(..)]` + item is fine).
                let mut j = i + 1;
                if toks.get(j).is_some_and(|n| n.text == "!") {
                    j += 1;
                }
                if toks.get(j).is_some_and(|n| n.text == "[") {
                    let mut depth = 0usize;
                    while j < toks.len() {
                        match (toks[j].kind, toks[j].text) {
                            (TokKind::Punct, "[") => depth += 1,
                            (TokKind::Punct, "]") => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    i = j;
                }
            }
            TokKind::Ident if t.text == "pub" => {
                let mut j = i + 1;
                // Restricted visibility: pub(crate) / pub(super) …
                if toks
                    .get(j)
                    .is_some_and(|n| n.kind == TokKind::Punct && n.text == "(")
                {
                    while j < toks.len() && toks[j].text != ")" {
                        j += 1;
                    }
                    has_doc = false;
                    i = j + 1;
                    continue;
                }
                // Skip qualifiers between `pub` and the item keyword.
                while toks
                    .get(j)
                    .is_some_and(|n| matches!(n.text, "async" | "unsafe" | "extern" | "crate"))
                    || toks.get(j).is_some_and(|n| n.kind == TokKind::Literal)
                {
                    j += 1;
                }
                if let Some(kw) = toks.get(j) {
                    // An out-of-line `pub mod name;` is documented by
                    // the module file's own `//!` inner docs, which
                    // rustc's missing_docs accepts — exempt it.
                    let out_of_line_mod =
                        kw.text == "mod" && toks.get(j + 2).is_some_and(|n| n.text == ";");
                    if kw.kind == TokKind::Ident
                        && ITEM_KEYWORDS.contains(&kw.text)
                        && !out_of_line_mod
                        && !has_doc
                        && !in_tests(i)
                    {
                        let name = toks.get(j + 1).map(|n| n.text).unwrap_or("?");
                        out.push(Finding {
                            rule: "RIPS-L005",
                            path: path.to_string(),
                            line: t.line,
                            message: format!(
                                "public {} `{}` in a #![warn(missing_docs)] crate has no doc comment",
                                kw.text, name
                            ),
                        });
                    }
                }
                has_doc = false;
            }
            _ => has_doc = false,
        }
        i += 1;
    }
}

/// Lints a set of in-memory files (`(path, contents)` pairs, paths
/// workspace-relative and `/`-separated). The `#![warn(missing_docs)]`
/// crates are discovered from the provided `crates/*/src/lib.rs` files
/// themselves, so the fixture tests exercise the same discovery the
/// workspace walk uses.
pub fn lint_files(files: &[(String, String)]) -> LintReport {
    // Which crates opt into missing_docs?
    let mut doc_crates: Vec<String> = Vec::new();
    for (path, src) in files {
        let Some(rest) = path.strip_prefix("crates/") else {
            continue;
        };
        let Some(name) = rest.strip_suffix("/src/lib.rs") else {
            continue;
        };
        let toks = tokenize(src);
        // `#![warn(missing_docs)]` — match the attribute head, then
        // require the ident anywhere (tolerates other warns in the list).
        let has = toks.windows(5).any(|w| {
            w[0].text == "#"
                && w[1].text == "!"
                && w[2].text == "["
                && w[3].text == "warn"
                && w[4].text == "("
        }) && toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "missing_docs");
        if has {
            doc_crates.push(format!("crates/{name}/src/"));
        }
    }

    let mut report = LintReport::default();
    for (path, src) in files {
        let missing_docs = doc_crates.iter().any(|p| path.starts_with(p.as_str()));
        let (findings, suppressed) = lint_source(path, src, missing_docs);
        report.findings.extend(findings);
        report.suppressed += suppressed;
        report.files_checked += 1;
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    report
}

/// Walks the workspace rooted at `root` (skipping `target/`, `.git/`,
/// and the results archive) and lints every `.rs` file.
pub fn lint_workspace(root: &Path) -> std::io::Result<LintReport> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let p = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if p.is_dir() {
                if matches!(
                    name.as_ref(),
                    "target" | ".git" | "results" | "node_modules"
                ) {
                    continue;
                }
                stack.push(p);
            } else if name.ends_with(".rs") {
                let rel = rel_unix_path(root, &p);
                let src = std::fs::read_to_string(&p)?;
                files.push((rel, src));
            }
        }
    }
    Ok(lint_files(&files))
}

fn rel_unix_path(root: &Path, p: &Path) -> String {
    let rel: PathBuf = p.strip_prefix(root).unwrap_or(p).to_path_buf();
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_one(path: &str, src: &str) -> Vec<Finding> {
        lint_source(path, src, false).0
    }

    #[test]
    fn l001_fires_only_in_deterministic_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(lint_one("crates/sched/src/x.rs", src).len(), 1);
        assert_eq!(lint_one("crates/sched/src/x.rs", src)[0].rule, "RIPS-L001");
        assert!(lint_one("crates/desim/src/x.rs", src).is_empty());
    }

    #[test]
    fn l001_ignores_strings_and_comments() {
        let src = "// a HashMap here is fine\nlet s = \"HashMap\";\n";
        assert!(lint_one("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn l002_scopes_out_bench_and_shims() {
        let src = "let t = std::time::Instant::now();\n";
        assert_eq!(lint_one("crates/apps/src/x.rs", src)[0].rule, "RIPS-L002");
        assert!(lint_one("crates/bench/src/bin/perf.rs", src).is_empty());
        assert!(lint_one("shims/criterion/src/lib.rs", src).is_empty());
    }

    #[test]
    fn l002_allowlist_pins_live_scope_with_reasons() {
        // The live backend is the one *runtime* crate allowed to
        // observe wall-clock time — and only it. A rename or a new
        // sibling crate must not silently inherit the exemption.
        let src = "let t = std::time::Instant::now();\n";
        assert!(lint_one("crates/live/src/lib.rs", src).is_empty());
        for flagged in [
            "crates/livex/src/lib.rs", // prefix must not over-match
            "crates/runtime/src/driver.rs",
            "crates/core/src/program.rs",
            "crates/desim/src/engine.rs",
            "crates/trace/src/lib.rs",
        ] {
            let f = lint_one(flagged, src);
            assert_eq!(f.len(), 1, "{flagged} escaped L002");
            assert_eq!(f[0].rule, "RIPS-L002", "{flagged}");
        }
        // Every allowlist hole documents why it exists.
        for (path, reason) in TIMING_PATHS {
            assert!(
                !reason.trim().is_empty(),
                "TIMING_PATHS entry {path:?} carries no reason"
            );
            assert!(
                path.ends_with('/'),
                "TIMING_PATHS entry {path:?} must be a directory prefix"
            );
        }
        assert!(
            TIMING_PATHS.iter().any(|(p, _)| *p == "crates/live/"),
            "live backend missing from the timing allowlist"
        );
    }

    #[test]
    fn l003_only_in_engine_and_not_in_tests() {
        let src = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn g() { y.unwrap(); } }\n";
        let f = lint_one("crates/desim/src/engine.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "RIPS-L003");
        assert_eq!(f[0].line, 1);
        assert!(lint_one("crates/desim/src/latency.rs", src).is_empty());
    }

    #[test]
    fn l003_catches_panic_macros_not_field_names() {
        let f = lint_one(
            "crates/desim/src/engine.rs",
            "fn f() { panic!(\"boom\") }\nstruct S { expect: u32 }\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn l004_fires_everywhere() {
        let f = lint_one("crates/desim/src/engine.rs", "unsafe { *p }\n");
        assert_eq!(f[0].rule, "RIPS-L004");
    }

    #[test]
    fn l004_allowlist_pins_unsafe_scope_with_reasons() {
        // Exactly two audited files may contain `unsafe`: the live
        // backend's SPSC ring and the runtime's RCU cell. A rename, a
        // sibling module, or a new crate must not silently inherit the
        // exemption.
        let src = "unsafe { core::ptr::read(p) }\n";
        assert!(lint_one("crates/live/src/ring.rs", src).is_empty());
        assert!(lint_one("crates/runtime/src/rcu.rs", src).is_empty());
        for flagged in [
            "crates/live/src/lib.rs", // siblings don't inherit
            "crates/live/src/transport.rs",
            "crates/live/src/ring2.rs", // exact file match, not prefix
            "crates/runtime/src/lib.rs",
            "crates/runtime/src/driver.rs",
            "crates/desim/src/engine.rs",
        ] {
            let f = lint_one(flagged, src);
            assert_eq!(f.len(), 1, "{flagged} escaped L004");
            assert_eq!(f[0].rule, "RIPS-L004", "{flagged}");
        }
        // Every hole is an exact .rs file path and documents why it
        // exists (the reason doubles as the audit pointer).
        for (path, reason) in UNSAFE_ALLOWLIST {
            assert!(
                path.ends_with(".rs"),
                "UNSAFE_ALLOWLIST entry {path:?} must be a single file, not a prefix"
            );
            assert!(
                !reason.trim().is_empty(),
                "UNSAFE_ALLOWLIST entry {path:?} carries no reason"
            );
        }
        // The allowlist is *exactly* the SPSC ring and the RCU cell —
        // not a prefix, not a third file. The rips_verify seam refactor
        // kept both files' `unsafe` in place (the instrumented cells in
        // crates/verify are `#![forbid(unsafe_code)]` and need no
        // entry); any growth needs its own safety audit and DESIGN §7
        // note.
        let paths: Vec<&str> = UNSAFE_ALLOWLIST.iter().map(|(p, _)| *p).collect();
        assert_eq!(
            paths,
            ["crates/live/src/ring.rs", "crates/runtime/src/rcu.rs"],
            "UNSAFE_ALLOWLIST must stay pinned to exactly ring.rs + rcu.rs"
        );
        assert_eq!(
            lint_one("crates/verify/src/rt.rs", src)[0].rule,
            "RIPS-L004",
            "the verify crate itself is not exempt"
        );
    }

    #[test]
    fn l006_flags_raw_atomics_in_model_checked_crates_only() {
        let src = "use std::sync::atomic::AtomicU64;\n";
        for flagged in ["crates/live/src/x.rs", "crates/runtime/src/x.rs"] {
            let f = lint_one(flagged, src);
            assert_eq!(f.len(), 1, "{flagged} escaped L006");
            assert_eq!(f[0].rule, "RIPS-L006", "{flagged}");
        }
        // Outside the model-checked crates raw atomics are fine — the
        // checker seam is a live/runtime contract, not a global one.
        assert!(lint_one("crates/trace/src/x.rs", src).is_empty());
        assert!(lint_one("crates/verify/src/rt.rs", src).is_empty());
    }

    #[test]
    fn l006_exempts_ordering_but_not_brace_imports() {
        // `Ordering` is plain data (no instrumentation needed), so the
        // idiomatic `use std::sync::atomic::Ordering;` stays legal —
        // but a brace import smuggling atomic types does not.
        assert!(lint_one(
            "crates/live/src/x.rs",
            "use std::sync::atomic::Ordering;\nfn f(o: std::sync::atomic::Ordering) {}\n"
        )
        .is_empty());
        let f = lint_one(
            "crates/live/src/x.rs",
            "use std::sync::atomic::{AtomicBool, Ordering};\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "RIPS-L006");
    }

    #[test]
    fn l006_flags_park_family_but_not_thread_plumbing() {
        for call in ["park()", "park_timeout(d)", "current()", "yield_now()"] {
            let src = format!("fn f() {{ std::thread::{call}; }}\n");
            let f = lint_one("crates/live/src/x.rs", &src);
            assert_eq!(f.len(), 1, "std::thread::{call} escaped L006");
            assert_eq!(f[0].rule, "RIPS-L006");
            assert!(f[0].message.contains("vthread"), "{}", f[0].message);
        }
        // Real-thread plumbing has no vthread equivalent and stays
        // legal: spawning, sleeping, scoped threads, panic checks.
        let src = "fn f() { std::thread::sleep(d); std::thread::spawn(g); \
                   std::thread::scope(h); std::thread::panicking(); }\n";
        assert!(lint_one("crates/live/src/x.rs", src).is_empty());
        // The seam's own calls are what the rule pushes toward.
        assert!(lint_one("crates/live/src/x.rs", "fn f() { vthread::park(); }\n").is_empty());
    }

    #[test]
    fn l006_reasoned_suppression_works_like_the_others() {
        let src = "// rips-lint: allow(L006, watchdog thread is real-time by design)\n\
                   use std::sync::atomic::AtomicBool;\n";
        let (f, suppressed) = lint_source("crates/live/src/x.rs", src, false);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn suppression_needs_reason() {
        let src = "// rips-lint: allow(L001)\nuse std::collections::HashMap;\n";
        let f = lint_one("crates/core/src/x.rs", src);
        // The reasonless allow is itself a finding, and does not
        // suppress.
        assert!(f.iter().any(|f| f.rule == "RIPS-L000"));
        assert!(f.iter().any(|f| f.rule == "RIPS-L001"));
    }

    #[test]
    fn reasoned_suppression_silences_next_line() {
        let src =
            "// rips-lint: allow(L001, checked: map is drained in sorted order)\nuse std::collections::HashMap;\n";
        let (f, suppressed) = lint_source("crates/core/src/x.rs", src, false);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn reasoned_suppression_silences_same_line() {
        let src =
            "use std::collections::HashMap; // rips-lint: allow(RIPS-L001, test-only helper)\n";
        let (f, suppressed) = lint_source("crates/sched/src/x.rs", src, false);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn suppression_does_not_leak_to_other_rules_or_lines() {
        let src = "// rips-lint: allow(L001, reason here)\nuse std::collections::HashMap;\nuse std::collections::HashSet;\n";
        let f = lint_one("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1); // line 3 not covered
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn l005_requires_docs_on_pub_items() {
        let lib = (
            "crates/foo/src/lib.rs".to_string(),
            "#![warn(missing_docs)]\n\n/// Documented.\npub fn ok() {}\n\npub fn bad() {}\n"
                .to_string(),
        );
        let report = lint_files(&[lib]);
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert_eq!(report.findings[0].rule, "RIPS-L005");
        assert_eq!(report.findings[0].line, 6);
        assert!(report.findings[0].message.contains("`bad`"));
    }

    #[test]
    fn l005_allows_attributes_between_doc_and_item() {
        let lib = (
            "crates/foo/src/lib.rs".to_string(),
            "#![warn(missing_docs)]\n/// Doc.\n#[derive(Debug, Clone)]\npub struct S;\npub use std::rc::Rc;\npub(crate) fn helper() {}\n".to_string(),
        );
        let report = lint_files(&[lib]);
        assert!(report.is_clean(), "{:?}", report.findings);
    }

    #[test]
    fn l005_exempts_out_of_line_mods_but_not_inline_ones() {
        let lib = (
            "crates/foo/src/lib.rs".to_string(),
            "#![warn(missing_docs)]\npub mod child;\npub mod inline { }\n".to_string(),
        );
        let report = lint_files(&[lib]);
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert!(report.findings[0].message.contains("`inline`"));
    }

    #[test]
    fn l005_skips_crates_without_the_attr() {
        let lib = (
            "crates/foo/src/lib.rs".to_string(),
            "pub fn undocumented() {}\n".to_string(),
        );
        assert!(lint_files(&[lib]).is_clean());
    }

    #[test]
    fn json_rendering_is_wellformed() {
        let report = LintReport {
            findings: vec![Finding {
                rule: "RIPS-L001",
                path: "a/b.rs".into(),
                line: 7,
                message: "quote \" and backslash \\".into(),
            }],
            files_checked: 3,
            suppressed: 2,
        };
        let json = report.render_json();
        assert!(json.contains("\"rule\":\"RIPS-L001\""));
        assert!(json.contains("\\\""));
        assert!(json.contains("\"count\":1"));
        assert!(json.ends_with("\"suppressed\":2}"));
    }

    #[test]
    fn normalizes_rule_ids() {
        assert_eq!(normalize_rule_id("L001").as_deref(), Some("RIPS-L001"));
        assert_eq!(normalize_rule_id("rips-l005").as_deref(), Some("RIPS-L005"));
        assert_eq!(normalize_rule_id("L009"), None);
        assert_eq!(normalize_rule_id("bogus"), None);
    }
}
