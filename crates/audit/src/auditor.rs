//! The runtime invariant [`Auditor`]: a [`TraceSink`] that checks the
//! paper's theorems against a live trace stream.
//!
//! # Theorem-to-check mapping
//!
//! * **Theorem 1** (load balance): after every complete system phase,
//!   the post-schedule loads `post[i] = reported[i] − out[i] + in[i]`
//!   differ by at most one task across nodes.
//! * **Theorem 2 / Lemma 1** (non-local-task minimality): the number of
//!   tasks the phase migrates equals the *independently computed* lower
//!   bound `m = Σ_j (q_j − w_j)⁺` — each under-quota node must import
//!   its deficit, and the MWA is proven to move no more than that.
//! * **Conservation**: at halt, every spawned task was executed
//!   (`spawned − executed` = tasks stranded in a queue, which must be
//!   zero for a completed run), and every migrated task that departed
//!   also arrived.
//! * **Barrier pairing**: round barriers are announced in strictly
//!   increasing round order, and no round begins before the barrier of
//!   the previous round was announced.
//! * **Phase monotonicity**: system-phase indices strictly increase per
//!   node, and system phases never nest.
//!
//! # Attribution
//!
//! Per-phase accounting keys off the *sender's* open system-phase span:
//! `LoadSample` and `MigrateOut` are both emitted inside the emitting
//! node's `PhaseBegin(System) … PhaseEnd(System)` window, so the phase a
//! migration belongs to is exact. Inbound counts are derived from the
//! senders' `MigrateOut { to, .. }` events rather than `MigrateIn`
//! arrival times, because a batch can physically arrive after the
//! receiver has already resumed its user phase — Theorem 1 is a claim
//! about the *planned* post-schedule distribution, not about message
//! latency.
//!
//! Baseline schedulers emit no system phases, so the theorem checks are
//! vacuous for them and the same auditor runs unchanged across the
//! whole roster; the conservation and barrier checks still bite. The
//! theorem checks assume the task-count load metric (the paper's choice
//! and the workspace default): under the estimated-weight metric quotas
//! are weight-valued and indivisible tasks make them unfillable, so
//! task-count equality is not a theorem there.
//!
//! # Tiled (hierarchical) mode
//!
//! [`Auditor::with_tiles`] audits runs scheduled by the hierarchical
//! planner (`RIPS-H` / `rips_sched::tiled_mwa`). Theorem 1 generalises
//! cleanly and is checked *per tile* on top of the global spread: each
//! tile's post-schedule loads must differ by at most one task **and**
//! each tile's post-schedule total must equal its share of the
//! canonical quotas (the cross-tile exchange delivered exactly the
//! tile quota). Theorem 2's *equality* is not checked in tiled mode:
//! the cross-tile stage moves whole-tile imbalances point-to-point, so
//! a node can both import cross-tile tasks and export within its tile,
//! legitimately migrating more than the Lemma-1 bound. The bound
//! remains a feasibility floor for any balancing plan, so tiled mode
//! still flags `migrated < bound`.

use std::collections::BTreeMap;

use rips_trace::{NodeId, PhaseKind, Time, TraceEvent, TraceSink};

/// Balanced quotas for `total` tasks over `n` nodes, computed here from
/// first principles (deliberately *not* shared with `rips-flow`, so the
/// auditor cross-checks the scheduler rather than mirroring it): every
/// node gets `⌊total/n⌋`, the first `total mod n` nodes one extra.
pub fn quotas(total: i64, n: usize) -> Vec<i64> {
    let base = total / n as i64;
    let rem = (total % n as i64) as usize;
    (0..n)
        .map(|i| if i < rem { base + 1 } else { base })
        .collect()
}

/// Lemma 1 lower bound on non-local tasks for balancing `loads`: the
/// sum of the under-quota nodes' deficits, `Σ_j (q_j − w_j)⁺`.
pub fn min_nonlocal_lower_bound(loads: &[i64]) -> i64 {
    let q = quotas(loads.iter().sum(), loads.len());
    loads.iter().zip(&q).map(|(&w, &t)| (t - w).max(0)).sum()
}

/// Per-system-phase accounting, filled as the stream arrives.
#[derive(Debug, Clone)]
struct PhaseAcc {
    /// Load each node reported into the phase (`LoadSample`).
    loads: Vec<Option<i64>>,
    /// Tasks each node sent out during the phase.
    out: Vec<i64>,
    /// Tasks destined for each node, from the senders' `MigrateOut`s.
    inbound: Vec<i64>,
}

impl PhaseAcc {
    fn new(n: usize) -> Self {
        PhaseAcc {
            loads: vec![None; n],
            out: vec![0; n],
            inbound: vec![0; n],
        }
    }

    fn complete(&self) -> bool {
        self.loads.iter().all(Option::is_some)
    }
}

/// What the audit concluded. Produced by [`Auditor::finish`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Nodes in the audited machine.
    pub nodes: usize,
    /// System phases with a full load report that were checked against
    /// Theorems 1 and 2.
    pub phases_checked: usize,
    /// System phases begun but missing load reports at halt (0 on any
    /// completed run).
    pub phases_incomplete: usize,
    /// Largest post-schedule load spread observed across checked phases
    /// (Theorem 1 requires ≤ 1).
    pub max_spread: i64,
    /// Tiles in the audited decomposition (0 = flat mode; see
    /// [`Auditor::with_tiles`]).
    pub tiles: usize,
    /// Tasks spawned over the whole run.
    pub spawned: u64,
    /// Tasks executed over the whole run.
    pub executed: u64,
    /// Tasks that departed in migration batches.
    pub migrated_out: u64,
    /// Tasks that arrived in migration batches.
    pub migrated_in: u64,
    /// Round barriers announced.
    pub barriers: usize,
    /// Invariant violations, in detection order. Empty ⇔ the run upheld
    /// every audited invariant.
    pub errors: Vec<String>,
}

impl AuditReport {
    /// `true` when no invariant was violated.
    pub fn is_ok(&self) -> bool {
        self.errors.is_empty()
    }

    /// Human-readable rendering for the `rips audit` subcommand.
    pub fn render_human(&self) -> String {
        let mut out = format!(
            "nodes            {}\n\
             phases checked   {} (incomplete: {})\n\
             max load spread  {} (Theorem 1 bound: 1)\n\
             tasks            {} spawned / {} executed\n\
             migrations       {} out / {} in\n\
             barriers         {}\n",
            self.nodes,
            self.phases_checked,
            self.phases_incomplete,
            self.max_spread,
            self.spawned,
            self.executed,
            self.migrated_out,
            self.migrated_in,
            self.barriers
        );
        if self.tiles > 0 {
            out.push_str(&format!(
                "tiled mode       {} tiles (per-tile Theorem 1; Lemma 1 as a lower bound)\n",
                self.tiles
            ));
        }
        if self.errors.is_empty() {
            out.push_str("audit            OK\n");
        } else {
            for e in &self.errors {
                out.push_str(&format!("VIOLATION: {e}\n"));
            }
        }
        out
    }
}

/// A [`TraceSink`] that audits the paper's invariants as events stream
/// in. Install it with [`rips_trace::with_sink`] (alone, or fanned out
/// beside a `TraceBuffer` via [`rips_trace::Tee`]) and call
/// [`Auditor::finish`] after the run for the [`AuditReport`].
///
/// Auditing is purely observational: it consumes the same event stream
/// the exporters do and never feeds back into the run, so `RunStats`
/// are bit-for-bit identical with and without it (pinned by the golden
/// audit test).
#[derive(Debug)]
pub struct Auditor {
    n: usize,
    /// Per node: the system phase currently open on it, if any.
    open_sys: Vec<Option<u32>>,
    /// Per node: the last system-phase index it began.
    last_sys: Vec<Option<u32>>,
    /// Per node: the last round it began.
    last_round: Vec<Option<u32>>,
    phases: BTreeMap<u32, PhaseAcc>,
    /// Per-node tile index when auditing a hierarchical run.
    tile_of: Option<Vec<usize>>,
    last_barrier: Option<u32>,
    barriers: usize,
    spawned: u64,
    executed: u64,
    migrated_out: u64,
    migrated_in: u64,
    errors: Vec<String>,
}

impl Auditor {
    /// An auditor for an `n`-node machine.
    pub fn new(n: usize) -> Self {
        Auditor {
            n,
            open_sys: vec![None; n],
            last_sys: vec![None; n],
            last_round: vec![None; n],
            phases: BTreeMap::new(),
            tile_of: None,
            last_barrier: None,
            barriers: 0,
            spawned: 0,
            executed: 0,
            migrated_out: 0,
            migrated_in: 0,
            errors: Vec::new(),
        }
    }

    /// An auditor for an `n`-node machine scheduled hierarchically,
    /// with `tile_of[node]` giving each node's tile (the shape
    /// `rips_sched::TileGrid::assignment` produces). Enables the
    /// per-tile Theorem 1 generalisation and relaxes Theorem 2's
    /// equality to the feasibility inequality — see the module docs.
    ///
    /// # Panics
    /// Panics if `tile_of.len() != n`.
    pub fn with_tiles(n: usize, tile_of: Vec<usize>) -> Self {
        assert_eq!(tile_of.len(), n, "one tile index per node required");
        Auditor {
            tile_of: Some(tile_of),
            ..Auditor::new(n)
        }
    }

    fn err(&mut self, msg: String) {
        self.errors.push(msg);
    }

    /// Closes the stream and evaluates the end-of-run invariants
    /// (per-phase Theorem 1/2 checks over every complete phase, task
    /// and migration conservation), returning the report.
    pub fn finish(mut self) -> AuditReport {
        let mut report = AuditReport {
            nodes: self.n,
            tiles: self
                .tile_of
                .as_ref()
                .map_or(0, |t| t.iter().copied().max().map_or(0, |m| m + 1)),
            spawned: self.spawned,
            executed: self.executed,
            migrated_out: self.migrated_out,
            migrated_in: self.migrated_in,
            barriers: self.barriers,
            ..AuditReport::default()
        };

        // Conservation at halt.
        if self.spawned != self.executed {
            self.errors.push(format!(
                "conservation: {} task(s) spawned but only {} executed ({} stranded in queues at halt)",
                self.spawned,
                self.executed,
                self.spawned as i64 - self.executed as i64
            ));
        }
        if self.migrated_out != self.migrated_in {
            self.errors.push(format!(
                "conservation: {} task(s) departed in migration batches but {} arrived",
                self.migrated_out, self.migrated_in
            ));
        }

        // Per-phase theorem checks.
        let phases = std::mem::take(&mut self.phases);
        for (p, acc) in &phases {
            if !acc.complete() {
                report.phases_incomplete += 1;
                continue;
            }
            let loads: Vec<i64> = acc.loads.iter().map(|l| l.unwrap()).collect();
            let total: i64 = loads.iter().sum();
            let post: Vec<i64> = (0..self.n)
                .map(|i| loads[i] - acc.out[i] + acc.inbound[i])
                .collect();

            // Sanity: migrations move tasks, they don't create them.
            if post.iter().sum::<i64>() != total {
                self.errors.push(format!(
                    "phase {p}: post-schedule loads sum to {} but {} were reported",
                    post.iter().sum::<i64>(),
                    total
                ));
            }
            if let Some(&neg) = post.iter().find(|&&v| v < 0) {
                self.errors
                    .push(format!("phase {p}: a node is overdrawn to {neg} tasks"));
            }

            // Theorem 1: post-schedule loads differ by at most one.
            let spread = match (post.iter().max(), post.iter().min()) {
                (Some(max), Some(min)) => max - min,
                _ => 0,
            };
            report.max_spread = report.max_spread.max(spread);
            if spread > 1 {
                self.errors.push(format!(
                    "Theorem 1 violated in phase {p}: post-schedule load spread {spread} > 1 (post = {post:?})"
                ));
            }

            // Tiled mode: Theorem 1 per tile, and the cross-tile quota
            // check — each tile's post-schedule total must be exactly
            // its share of the canonical quotas.
            if let Some(tile_of) = &self.tile_of {
                let tiles = tile_of.iter().copied().max().map_or(0, |t| t + 1);
                let q = quotas(total, self.n);
                let mut post_sum = vec![0i64; tiles];
                let mut quota_sum = vec![0i64; tiles];
                let mut post_min = vec![i64::MAX; tiles];
                let mut post_max = vec![i64::MIN; tiles];
                for (i, &t) in tile_of.iter().enumerate() {
                    post_sum[t] += post[i];
                    quota_sum[t] += q[i];
                    post_min[t] = post_min[t].min(post[i]);
                    post_max[t] = post_max[t].max(post[i]);
                }
                for t in 0..tiles {
                    if post_min[t] > post_max[t] {
                        continue; // empty tile
                    }
                    let spread = post_max[t] - post_min[t];
                    if spread > 1 {
                        self.errors.push(format!(
                            "Theorem 1 (per tile) violated in phase {p}: tile {t} \
                             post-schedule load spread {spread} > 1"
                        ));
                    }
                    if post_sum[t] != quota_sum[t] {
                        self.errors.push(format!(
                            "cross-tile quota violated in phase {p}: tile {t} holds {} \
                             task(s) but its quota share is {}",
                            post_sum[t], quota_sum[t]
                        ));
                    }
                }
            }

            // Theorem 2 / Lemma 1: migrated tasks equal the lower
            // bound. The tiled planner legitimately exceeds it (its
            // cross-tile stage is not migration-minimal), so tiled
            // mode only enforces the feasibility direction.
            let moved: i64 = acc.out.iter().sum();
            let bound = min_nonlocal_lower_bound(&loads);
            if moved < bound {
                self.errors.push(format!(
                    "Theorem 2 violated in phase {p}: {moved} task(s) migrated but the \
                     Lemma 1 lower bound for loads {loads:?} is {bound} (below the \
                     feasibility bound)"
                ));
            } else if moved > bound && self.tile_of.is_none() {
                self.errors.push(format!(
                    "Theorem 2 violated in phase {p}: {moved} task(s) migrated but the \
                     Lemma 1 lower bound for loads {loads:?} is {bound} (not minimal)"
                ));
            }
            report.phases_checked += 1;
        }

        report.errors = self.errors;
        report
    }
}

impl TraceSink for Auditor {
    fn record(&mut self, _time_us: Time, node: NodeId, event: TraceEvent) {
        if node >= self.n {
            self.err(format!(
                "node {node} out of range for a {}-node machine",
                self.n
            ));
            return;
        }
        match event {
            TraceEvent::PhaseBegin {
                kind: PhaseKind::System,
                index,
            } => {
                if let Some(open) = self.open_sys[node] {
                    self.err(format!(
                        "node {node}: system phase {index} begins inside open system phase {open}"
                    ));
                }
                if let Some(prev) = self.last_sys[node] {
                    if index <= prev {
                        self.err(format!(
                            "node {node}: system phase index {index} not after {prev}"
                        ));
                    }
                }
                self.last_sys[node] = Some(index);
                self.open_sys[node] = Some(index);
                let n = self.n;
                self.phases.entry(index).or_insert_with(|| PhaseAcc::new(n));
            }
            TraceEvent::PhaseEnd {
                kind: PhaseKind::System,
                index,
            } => match self.open_sys[node].take() {
                Some(open) if open == index => {}
                open => self.err(format!(
                    "node {node}: PhaseEnd(System, {index}) closes {open:?}"
                )),
            },
            TraceEvent::LoadSample { load } => match self.open_sys[node] {
                Some(p) => {
                    let acc = self.phases.get_mut(&p).expect("opened above");
                    let duplicate = acc.loads[node].replace(load).is_some();
                    if duplicate {
                        self.err(format!("node {node}: duplicate load report in phase {p}"));
                    }
                }
                None => self.err(format!("node {node}: load sample outside any system phase")),
            },
            TraceEvent::MigrateOut { to, count } => {
                self.migrated_out += count as u64;
                if to >= self.n {
                    self.err(format!("node {node}: migration to out-of-range node {to}"));
                    return;
                }
                // Attribute to the sender's open system phase; baseline
                // schedulers migrate outside phases and are counted in
                // the conservation totals only.
                if let Some(p) = self.open_sys[node] {
                    let acc = self.phases.get_mut(&p).expect("opened above");
                    acc.out[node] += count as i64;
                    acc.inbound[to] += count as i64;
                }
            }
            TraceEvent::MigrateIn { count, .. } => self.migrated_in += count as u64,
            TraceEvent::Spawn { count, .. } => self.spawned += count as u64,
            TraceEvent::TaskExec { .. } => self.executed += 1,
            TraceEvent::Barrier { round } => {
                if let Some(prev) = self.last_barrier {
                    if round <= prev {
                        self.err(format!(
                            "barrier for round {round} announced after round {prev}'s barrier"
                        ));
                    }
                }
                self.last_barrier = Some(round);
                self.barriers += 1;
            }
            TraceEvent::RoundBegin { round } => {
                if let Some(prev) = self.last_round[node] {
                    if round <= prev {
                        self.err(format!(
                            "node {node}: round {round} begins after round {prev}"
                        ));
                    }
                }
                self.last_round[node] = Some(round);
                if round > 0 && self.last_barrier.is_none_or(|b| b < round - 1) {
                    self.err(format!(
                        "node {node}: round {round} begins before round {}'s barrier was announced",
                        round - 1
                    ));
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys_phase(
        a: &mut Auditor,
        p: u32,
        loads: &[i64],
        moves: &[(NodeId, NodeId, i64)],
        t0: Time,
    ) {
        let n = loads.len();
        for (node, &load) in loads.iter().enumerate() {
            a.record(
                t0,
                node,
                TraceEvent::PhaseBegin {
                    kind: PhaseKind::System,
                    index: p,
                },
            );
            a.record(t0, node, TraceEvent::LoadSample { load });
        }
        for &(from, to, count) in moves {
            a.record(
                t0 + 1,
                from,
                TraceEvent::MigrateOut {
                    to,
                    count: count as u32,
                },
            );
        }
        for node in 0..n {
            a.record(
                t0 + 2,
                node,
                TraceEvent::PhaseEnd {
                    kind: PhaseKind::System,
                    index: p,
                },
            );
        }
        // Deliveries land after the phase; conservation only needs the
        // totals to match by halt.
        for &(from, to, count) in moves {
            a.record(
                t0 + 3,
                to,
                TraceEvent::MigrateIn {
                    from,
                    count: count as u32,
                },
            );
        }
    }

    #[test]
    fn quotas_split_remainder_front_loaded() {
        assert_eq!(quotas(7, 3), vec![3, 2, 2]);
        assert_eq!(quotas(6, 3), vec![2, 2, 2]);
        assert_eq!(quotas(0, 4), vec![0, 0, 0, 0]);
    }

    #[test]
    fn lower_bound_sums_deficits() {
        assert_eq!(min_nonlocal_lower_bound(&[12, 0, 0]), 8);
        assert_eq!(min_nonlocal_lower_bound(&[4, 4, 4]), 0);
        assert_eq!(min_nonlocal_lower_bound(&[7, 0, 0]), 4);
    }

    #[test]
    fn accepts_a_valid_phase() {
        let mut a = Auditor::new(3);
        // loads [6,0,0] -> quotas [2,2,2]: move 2 to node 1, 2 to node 2.
        sys_phase(&mut a, 1, &[6, 0, 0], &[(0, 1, 2), (0, 2, 2)], 100);
        let r = a.finish();
        assert!(r.is_ok(), "{:?}", r.errors);
        assert_eq!(r.phases_checked, 1);
        assert_eq!(r.max_spread, 0);
        assert_eq!(r.migrated_out, 4);
    }

    #[test]
    fn thm1_catches_unbalanced_plan() {
        let mut a = Auditor::new(3);
        // Moves too little: post = [4, 1, 1].
        sys_phase(&mut a, 1, &[6, 0, 0], &[(0, 1, 1), (0, 2, 1)], 100);
        let r = a.finish();
        assert!(r.errors.iter().any(|e| e.contains("Theorem 1")), "{r:?}");
        assert_eq!(r.max_spread, 3);
    }

    #[test]
    fn thm2_catches_excess_migration() {
        let mut a = Auditor::new(3);
        // Balanced, but ping-pongs 2 extra tasks: post = [2,2,2] yet 6 moved.
        sys_phase(
            &mut a,
            1,
            &[6, 0, 0],
            &[(0, 1, 3), (0, 2, 2), (1, 0, 1)],
            100,
        );
        let r = a.finish();
        assert!(
            r.errors
                .iter()
                .any(|e| e.contains("Theorem 2") && e.contains("not minimal")),
            "{r:?}"
        );
        // Theorem 1 still holds for this stream.
        assert!(!r.errors.iter().any(|e| e.contains("Theorem 1")));
    }

    #[test]
    fn termination_phase_is_vacuously_fine() {
        let mut a = Auditor::new(2);
        sys_phase(&mut a, 1, &[0, 0], &[], 100);
        let r = a.finish();
        assert!(r.is_ok(), "{:?}", r.errors);
        assert_eq!(r.phases_checked, 1);
    }

    #[test]
    fn conservation_catches_stranded_tasks() {
        let mut a = Auditor::new(1);
        a.record(0, 0, TraceEvent::Spawn { round: 0, count: 3 });
        for t in 0..2 {
            a.record(
                t,
                0,
                TraceEvent::TaskExec {
                    task: t,
                    round: 0,
                    origin: 0,
                    hops: 0,
                    grain_us: 10,
                    dispatch_us: 1,
                },
            );
        }
        let r = a.finish();
        assert!(r.errors.iter().any(|e| e.contains("stranded")), "{r:?}");
    }

    #[test]
    fn conservation_catches_lost_migrations() {
        let mut a = Auditor::new(2);
        a.record(0, 0, TraceEvent::MigrateOut { to: 1, count: 2 });
        a.record(5, 1, TraceEvent::MigrateIn { from: 0, count: 1 });
        let r = a.finish();
        assert!(
            r.errors.iter().any(|e| e.contains("departed")),
            "{:?}",
            r.errors
        );
    }

    #[test]
    fn barrier_order_and_round_pairing() {
        let mut a = Auditor::new(2);
        a.record(10, 0, TraceEvent::Barrier { round: 0 });
        a.record(12, 0, TraceEvent::RoundBegin { round: 1 });
        a.record(12, 1, TraceEvent::RoundBegin { round: 1 });
        // Round 2 begins with no barrier for round 1.
        a.record(20, 0, TraceEvent::RoundBegin { round: 2 });
        let r = a.finish();
        assert_eq!(r.barriers, 1);
        assert!(
            r.errors
                .iter()
                .any(|e| e.contains("before round 1's barrier")),
            "{:?}",
            r.errors
        );
    }

    #[test]
    fn stale_phase_index_rejected() {
        let mut a = Auditor::new(1);
        sys_phase(&mut a, 2, &[0], &[], 10);
        sys_phase(&mut a, 2, &[0], &[], 20);
        let r = a.finish();
        assert!(
            r.errors.iter().any(|e| e.contains("not after")),
            "{:?}",
            r.errors
        );
    }

    #[test]
    fn incomplete_phase_is_reported_not_checked() {
        let mut a = Auditor::new(2);
        a.record(
            0,
            0,
            TraceEvent::PhaseBegin {
                kind: PhaseKind::System,
                index: 1,
            },
        );
        a.record(0, 0, TraceEvent::LoadSample { load: 5 });
        // Node 1 never reports.
        let r = a.finish();
        assert_eq!(r.phases_checked, 0);
        assert_eq!(r.phases_incomplete, 1);
    }

    #[test]
    fn tiled_mode_accepts_non_minimal_but_balanced_plan() {
        // 4 nodes, tiles {0,1} and {2,3}. loads [6,0,0,2] -> quotas
        // [2,2,2,2], Lemma-1 bound 4. The plan balances exactly but
        // ping-pongs an extra task inside tile 1, migrating 6: fine
        // when tiled, "not minimal" in flat mode.
        let moves = [(0, 1, 2), (0, 2, 2), (3, 2, 1), (2, 3, 1)];
        let mut tiled = Auditor::with_tiles(4, vec![0, 0, 1, 1]);
        sys_phase(&mut tiled, 1, &[6, 0, 0, 2], &moves, 100);
        let r = tiled.finish();
        assert!(r.is_ok(), "{:?}", r.errors);
        assert_eq!(r.tiles, 2);
        assert_eq!(r.max_spread, 0);

        let mut flat = Auditor::new(4);
        sys_phase(&mut flat, 1, &[6, 0, 0, 2], &moves, 100);
        let r = flat.finish();
        assert!(
            r.errors
                .iter()
                .any(|e| e.contains("Theorem 2") && e.contains("not minimal")),
            "{r:?}"
        );
    }

    #[test]
    fn tiled_mode_still_enforces_the_feasibility_floor() {
        // Deficit bound is 4 but only 2 tasks move: post unbalanced
        // AND below the Lemma-1 floor; both must be flagged.
        let mut a = Auditor::with_tiles(4, vec![0, 0, 1, 1]);
        sys_phase(&mut a, 1, &[8, 0, 0, 0], &[(0, 2, 2)], 100);
        let r = a.finish();
        assert!(
            r.errors
                .iter()
                .any(|e| e.contains("below the feasibility bound")),
            "{r:?}"
        );
    }

    #[test]
    fn cross_tile_quota_check_catches_wrong_tile_totals() {
        // Adversarial: global spread stays ≤ 1 but the remainder lands
        // in the wrong tile. loads [5,0,0,0] -> quotas [2,1,1,1]; tile
        // quota shares are [3, 2]. The plan leaves post = [1,1,2,1]:
        // globally balanced, but tile 0 holds 2 (< 3) and tile 1 holds
        // 3 (> 2). Only the per-tile generalisation can see this.
        let mut a = Auditor::with_tiles(4, vec![0, 0, 1, 1]);
        sys_phase(
            &mut a,
            1,
            &[5, 0, 0, 0],
            &[(0, 1, 1), (0, 2, 2), (0, 3, 1)],
            100,
        );
        let r = a.finish();
        assert_eq!(r.max_spread, 1, "globally the plan looks fine");
        assert!(
            r.errors.iter().any(|e| e.contains("cross-tile quota")),
            "{r:?}"
        );
        // A flat auditor cannot see the tile mismatch (it flags the
        // 4-vs-3 Theorem-2 excess instead, a different diagnosis).
        let mut flat = Auditor::new(4);
        sys_phase(
            &mut flat,
            1,
            &[5, 0, 0, 0],
            &[(0, 1, 1), (0, 2, 2), (0, 3, 1)],
            100,
        );
        let r = flat.finish();
        assert!(!r.errors.iter().any(|e| e.contains("cross-tile")), "{r:?}");
    }

    #[test]
    fn per_tile_spread_reported_with_tile_index() {
        // Tile 1 internally unbalanced: post = [2,2,3,1].
        let mut a = Auditor::with_tiles(4, vec![0, 0, 1, 1]);
        sys_phase(
            &mut a,
            1,
            &[8, 0, 0, 0],
            &[(0, 1, 2), (0, 2, 3), (0, 3, 1)],
            100,
        );
        let r = a.finish();
        assert!(
            r.errors
                .iter()
                .any(|e| e.contains("per tile") && e.contains("tile 1")),
            "{r:?}"
        );
    }

    #[test]
    fn baseline_migrations_outside_phases_only_hit_conservation() {
        let mut a = Auditor::new(2);
        a.record(0, 0, TraceEvent::MigrateOut { to: 1, count: 5 });
        a.record(3, 1, TraceEvent::MigrateIn { from: 0, count: 5 });
        let r = a.finish();
        assert!(r.is_ok(), "{:?}", r.errors);
        assert_eq!(r.phases_checked, 0);
        assert_eq!(r.migrated_out, 5);
    }
}
