//! Correctness tooling for the RIPS reproduction.
//!
//! Two cooperating halves keep the workspace honest about the
//! guarantees the paper states as theorems:
//!
//! * [`lint`] — **rips-lint**, a source-level static analysis pass
//!   with repo-specific rules (RIPS-L001 … RIPS-L005) that keep
//!   nondeterminism, wall-clock time, hot-path panics, `unsafe`, and
//!   undocumented public API out of the deterministic core. Run it via
//!   `rips lint`; CI gates on a clean report.
//! * [`auditor`] — the runtime invariant [`Auditor`], a trace sink
//!   that checks Theorem 1 (post-schedule load balance), Theorem 2 /
//!   Lemma 1 (non-local-task minimality), task and migration
//!   conservation, barrier pairing, and phase monotonicity against any
//!   traced scheduler run. Run it via `rips audit`; the golden and
//!   property tests run it across the whole roster. [`serve`] extends
//!   it to multi-job serve runs: each dispatch window feeds a fresh
//!   inner auditor, plus job-lifecycle invariants (per-job
//!   conservation, no overlapping windows, no work outside a window,
//!   shed jobs never dispatch).
//!
//! The crate is dependency-free apart from `rips-trace` (whose sink
//! interface the auditor implements), in keeping with the offline
//! vendored-shims policy: the linter carries its own minimal Rust
//! tokenizer ([`lexer`]) instead of pulling in `syn`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auditor;
pub mod lexer;
pub mod lint;
pub mod serve;

pub use auditor::{min_nonlocal_lower_bound, quotas, AuditReport, Auditor};
pub use lint::{lint_files, lint_source, lint_workspace, Finding, LintReport};
pub use serve::{ServeAuditReport, ServeAuditor};
