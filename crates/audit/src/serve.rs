//! Multi-job audit for serve runs (DESIGN §12).
//!
//! A serve run is a sequence of per-job fleet runs stitched onto one
//! timeline, bracketed by [`TraceEvent::JobDispatch`] /
//! [`TraceEvent::JobComplete`] and preceded by
//! [`TraceEvent::JobSubmit`] (with [`TraceEvent::JobShed`] for
//! rejected jobs). The [`ServeAuditor`] extends the single-run
//! [`Auditor`] to this regime:
//!
//! * **Job state machine** — every job id moves submit → (shed |
//!   dispatch → complete); a shed job must never dispatch, dispatch
//!   windows must never overlap (the fleet serves one job at a time),
//!   and every dispatched job must complete.
//! * **Per-job invariants** — each dispatch window feeds a *fresh*
//!   inner [`Auditor`], so Theorem 1 (post-schedule spread ≤ 1),
//!   conservation, and barrier pairing are re-checked per job exactly
//!   as `rips audit` checks a batch run.
//! * **Per-job conservation** — the tasks announced at dispatch must
//!   equal the tasks the backend reports at completion, and (when the
//!   window carries an inner trace) the tasks the inner auditor
//!   counted.
//! * **No cross-tenant leakage** — task work (exec, spawn, migration)
//!   outside any dispatch window belongs to no job, hence to no
//!   tenant, and is flagged.

use std::collections::BTreeMap;

use rips_trace::{NodeId, Time, TraceEvent, TraceSink};

use crate::auditor::Auditor;

/// Lifecycle position of one job id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Submitted,
    Shed,
    Dispatched,
    Completed,
}

/// What the serve audit concluded. Produced by
/// [`ServeAuditor::finish`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeAuditReport {
    /// Jobs offered (JobSubmit events).
    pub jobs_submitted: u64,
    /// Jobs admission rejected.
    pub jobs_shed: u64,
    /// Jobs dispatched onto the fleet.
    pub jobs_dispatched: u64,
    /// Jobs completed.
    pub jobs_completed: u64,
    /// Dispatch windows that carried an inner fleet trace (0 when the
    /// backend replays memoized service outcomes).
    pub jobs_with_inner_trace: u64,
    /// Largest post-schedule load spread over every audited window
    /// (Theorem 1 requires ≤ 1).
    pub max_spread: i64,
    /// System phases checked across all windows.
    pub phases_checked: usize,
    /// Violations, in detection order. Empty ⇔ every invariant held.
    pub errors: Vec<String>,
}

impl ServeAuditReport {
    /// `true` when no invariant was violated.
    pub fn is_ok(&self) -> bool {
        self.errors.is_empty()
    }

    /// Human-readable rendering for the `rips serve --audit` output.
    pub fn render_human(&self) -> String {
        let mut out = format!(
            "jobs             {} submitted / {} shed / {} dispatched / {} completed\n\
             inner traces     {} windows\n\
             phases checked   {}\n\
             max load spread  {} (Theorem 1 bound: 1)\n",
            self.jobs_submitted,
            self.jobs_shed,
            self.jobs_dispatched,
            self.jobs_completed,
            self.jobs_with_inner_trace,
            self.phases_checked,
            self.max_spread,
        );
        if self.errors.is_empty() {
            out.push_str("serve audit      OK\n");
        } else {
            for e in &self.errors {
                out.push_str(&format!("VIOLATION: {e}\n"));
            }
        }
        out
    }
}

/// One open dispatch window.
#[derive(Debug)]
struct OpenWindow {
    job: u64,
    tenant: u32,
    tasks: u64,
    inner: Option<Auditor>,
    saw_inner_events: bool,
}

/// A [`TraceSink`] auditing a multi-job serve run. Install it with
/// [`rips_trace::with_sink`] around [`run_serve`] — job lifecycle
/// events drive the state machine, and everything else is forwarded
/// to the current window's inner [`Auditor`].
///
/// [`run_serve`]: ../../rips_serve/fn.run_serve.html
#[derive(Debug)]
pub struct ServeAuditor {
    nodes: usize,
    state: BTreeMap<u64, JobState>,
    open: Option<OpenWindow>,
    report: ServeAuditReport,
}

impl ServeAuditor {
    /// An auditor for a fleet of `nodes` processors (the inner
    /// per-job auditors are sized to this).
    pub fn new(nodes: usize) -> Self {
        ServeAuditor {
            nodes,
            state: BTreeMap::new(),
            open: None,
            report: ServeAuditReport::default(),
        }
    }

    fn err(&mut self, msg: String) {
        self.report.errors.push(msg);
    }

    fn close_window(&mut self, executed_reported: u64) {
        let w = self.open.take().expect("window open");
        if let Some(inner) = w.inner {
            let r = inner.finish();
            self.report.max_spread = self.report.max_spread.max(r.max_spread);
            self.report.phases_checked += r.phases_checked;
            if w.saw_inner_events {
                self.report.jobs_with_inner_trace += 1;
                if r.executed != w.tasks {
                    self.err(format!(
                        "job {}: inner trace executed {} tasks, dispatch announced {}",
                        w.job, r.executed, w.tasks
                    ));
                }
                for e in r.errors {
                    self.err(format!("job {}: {e}", w.job));
                }
            }
        }
        if executed_reported != w.tasks {
            self.err(format!(
                "job {}: completion reports {} tasks executed, dispatch announced {}",
                w.job, executed_reported, w.tasks
            ));
        }
        self.state.insert(w.job, JobState::Completed);
        self.report.jobs_completed += 1;
    }

    /// Closes the stream, checks end-of-run consistency (no window
    /// left open, every admitted job served), and returns the report.
    pub fn finish(mut self) -> ServeAuditReport {
        if let Some(w) = &self.open {
            let job = w.job;
            self.err(format!("job {job}: dispatch window still open at halt"));
        }
        let stuck: Vec<(u64, JobState)> = self
            .state
            .iter()
            .filter(|(_, s)| matches!(s, JobState::Submitted | JobState::Dispatched))
            .map(|(j, s)| (*j, *s))
            .collect();
        for (job, s) in stuck {
            match s {
                JobState::Submitted => {
                    self.err(format!("job {job}: admitted but never dispatched"))
                }
                JobState::Dispatched => {
                    self.err(format!("job {job}: dispatched but never completed"))
                }
                _ => unreachable!(),
            }
        }
        self.report
    }
}

impl TraceSink for ServeAuditor {
    fn record(&mut self, time_us: Time, node: NodeId, event: TraceEvent) {
        match event {
            TraceEvent::JobSubmit { tenant: _, job } => {
                if self.state.insert(job, JobState::Submitted).is_some() {
                    self.err(format!("job {job}: submitted twice"));
                }
                self.report.jobs_submitted += 1;
            }
            TraceEvent::JobShed { tenant: _, job } => match self.state.get(&job) {
                Some(JobState::Submitted) => {
                    self.state.insert(job, JobState::Shed);
                    self.report.jobs_shed += 1;
                }
                other => self.err(format!("job {job}: shed from state {other:?}")),
            },
            TraceEvent::JobDispatch { tenant, job, tasks } => {
                match self.state.get(&job) {
                    Some(JobState::Submitted) => {}
                    other => self.err(format!("job {job}: dispatched from state {other:?}")),
                }
                if let Some(w) = &self.open {
                    let open = w.job;
                    self.err(format!(
                        "job {job}: dispatched while job {open}'s window is still open"
                    ));
                }
                self.state.insert(job, JobState::Dispatched);
                self.report.jobs_dispatched += 1;
                self.open = Some(OpenWindow {
                    job,
                    tenant,
                    tasks,
                    inner: Some(Auditor::new(self.nodes)),
                    saw_inner_events: false,
                });
            }
            TraceEvent::JobComplete {
                tenant,
                job,
                executed,
            } => match &self.open {
                Some(w) if w.job == job => {
                    if w.tenant != tenant {
                        let wt = w.tenant;
                        self.err(format!(
                            "job {job}: dispatched for tenant {wt}, completed for {tenant}"
                        ));
                    }
                    self.close_window(executed);
                }
                _ => self.err(format!("job {job}: completion without an open window")),
            },
            other => {
                let is_work = matches!(
                    other,
                    TraceEvent::TaskExec { .. }
                        | TraceEvent::Spawn { .. }
                        | TraceEvent::MigrateOut { .. }
                        | TraceEvent::MigrateIn { .. }
                        | TraceEvent::Barrier { .. }
                );
                match &mut self.open {
                    Some(w) => {
                        w.saw_inner_events = true;
                        if let Some(inner) = &mut w.inner {
                            inner.record(time_us, node, other);
                        }
                    }
                    None if is_work => self.err(format!(
                        "task work outside any job window (cross-tenant leakage): \
                         {other:?} on node {node}"
                    )),
                    None => {}
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn submit(a: &mut ServeAuditor, job: u64) {
        a.record(0, 0, TraceEvent::JobSubmit { tenant: 0, job });
    }

    #[test]
    fn clean_two_job_run_passes() {
        let mut a = ServeAuditor::new(2);
        for job in 0..2u64 {
            submit(&mut a, job);
        }
        for job in 0..2u64 {
            a.record(
                10 * job,
                0,
                TraceEvent::JobDispatch {
                    tenant: 0,
                    job,
                    tasks: 3,
                },
            );
            for t in 0..3u64 {
                a.record(10 * job + t, 0, TraceEvent::Spawn { round: 0, count: 1 });
                a.record(
                    10 * job + t,
                    (t % 2) as usize,
                    TraceEvent::TaskExec {
                        task: t,
                        round: 0,
                        origin: 0,
                        hops: 0,
                        grain_us: 1,
                        dispatch_us: 0,
                    },
                );
            }
            a.record(
                10 * job + 9,
                0,
                TraceEvent::JobComplete {
                    tenant: 0,
                    job,
                    executed: 3,
                },
            );
        }
        let r = a.finish();
        assert!(r.is_ok(), "{:?}", r.errors);
        assert_eq!(r.jobs_submitted, 2);
        assert_eq!(r.jobs_completed, 2);
        assert_eq!(r.jobs_with_inner_trace, 2);
    }

    #[test]
    fn shed_job_must_not_dispatch() {
        let mut a = ServeAuditor::new(2);
        submit(&mut a, 0);
        a.record(1, 0, TraceEvent::JobShed { tenant: 0, job: 0 });
        a.record(
            2,
            0,
            TraceEvent::JobDispatch {
                tenant: 0,
                job: 0,
                tasks: 1,
            },
        );
        a.record(
            3,
            0,
            TraceEvent::JobComplete {
                tenant: 0,
                job: 0,
                executed: 1,
            },
        );
        let r = a.finish();
        assert!(!r.is_ok());
        assert!(
            r.errors[0].contains("dispatched from state Some(Shed)"),
            "{:?}",
            r.errors
        );
    }

    #[test]
    fn overlapping_windows_are_flagged() {
        let mut a = ServeAuditor::new(2);
        submit(&mut a, 0);
        submit(&mut a, 1);
        a.record(
            1,
            0,
            TraceEvent::JobDispatch {
                tenant: 0,
                job: 0,
                tasks: 1,
            },
        );
        a.record(
            2,
            0,
            TraceEvent::JobDispatch {
                tenant: 0,
                job: 1,
                tasks: 1,
            },
        );
        let r = a.finish();
        assert!(r
            .errors
            .iter()
            .any(|e| e.contains("while job 0's window is still open")));
    }

    #[test]
    fn per_job_conservation_mismatch_is_flagged() {
        let mut a = ServeAuditor::new(2);
        submit(&mut a, 0);
        a.record(
            1,
            0,
            TraceEvent::JobDispatch {
                tenant: 0,
                job: 0,
                tasks: 5,
            },
        );
        a.record(
            2,
            0,
            TraceEvent::JobComplete {
                tenant: 0,
                job: 0,
                executed: 4,
            },
        );
        let r = a.finish();
        assert!(r
            .errors
            .iter()
            .any(|e| e.contains("completion reports 4 tasks executed, dispatch announced 5")));
    }

    #[test]
    fn work_outside_any_window_is_leakage() {
        let mut a = ServeAuditor::new(2);
        a.record(
            1,
            0,
            TraceEvent::TaskExec {
                task: 0,
                round: 0,
                origin: 0,
                hops: 0,
                grain_us: 1,
                dispatch_us: 0,
            },
        );
        let r = a.finish();
        assert!(r.errors.iter().any(|e| e.contains("cross-tenant leakage")));
    }

    #[test]
    fn admitted_but_never_dispatched_is_flagged() {
        let mut a = ServeAuditor::new(2);
        submit(&mut a, 7);
        let r = a.finish();
        assert!(r.errors.iter().any(|e| e.contains("never dispatched")));
    }
}
