//! Tests for the Theorem 1/2 checkers themselves: feed the [`Auditor`]
//! synthetic traces built from *real* MWA plans over adversarial 2-D
//! mesh load distributions (everything on one corner, checkerboard,
//! zero-load rows, and proptest-random meshes) and assert it accepts
//! them — then hand-break the same plans and assert it rejects them
//! with the right theorem named.

use proptest::prelude::*;
use rips_audit::{min_nonlocal_lower_bound, quotas, AuditReport, Auditor};
use rips_sched::mwa;
use rips_topology::Mesh2D;
use rips_trace::{NodeId, PhaseKind, TraceEvent, TraceSink};

/// Streams one synthetic system phase into `a`: every node reports its
/// load, then the `(from, to, count)` transfers execute, then the phase
/// closes and the batches arrive.
fn feed_phase(a: &mut Auditor, p: u32, loads: &[i64], transfers: &[(NodeId, NodeId, i64)]) {
    for (node, &load) in loads.iter().enumerate() {
        a.record(
            0,
            node,
            TraceEvent::PhaseBegin {
                kind: PhaseKind::System,
                index: p,
            },
        );
        a.record(0, node, TraceEvent::LoadSample { load });
    }
    for &(from, to, count) in transfers {
        a.record(
            1,
            from,
            TraceEvent::MigrateOut {
                to,
                count: count as u32,
            },
        );
    }
    for node in 0..loads.len() {
        a.record(
            2,
            node,
            TraceEvent::PhaseEnd {
                kind: PhaseKind::System,
                index: p,
            },
        );
    }
    for &(from, to, count) in transfers {
        a.record(
            3,
            to,
            TraceEvent::MigrateIn {
                from,
                count: count as u32,
            },
        );
    }
}

/// Plans `loads` on `mesh` with the real MWA and audits the resulting
/// net transfers, optionally mutilated by `break_plan`.
fn audit_mwa(
    mesh: &Mesh2D,
    loads: &[i64],
    break_plan: impl FnOnce(&mut Vec<(NodeId, NodeId, i64)>),
) -> AuditReport {
    let (plan, _) = mwa(mesh, loads);
    let mut transfers = plan.net_transfers(loads);
    break_plan(&mut transfers);
    let mut a = Auditor::new(loads.len());
    feed_phase(&mut a, 1, loads, &transfers);
    a.finish()
}

fn assert_accepts(mesh: &Mesh2D, loads: &[i64]) {
    let r = audit_mwa(mesh, loads, |_| {});
    assert!(
        r.is_ok(),
        "valid MWA plan rejected for {loads:?}: {:?}",
        r.errors
    );
    assert_eq!(r.phases_checked, 1);
    assert!(r.max_spread <= 1);
}

#[test]
fn accepts_all_load_on_one_corner() {
    let mesh = Mesh2D::new(4, 4);
    let mut loads = vec![0i64; 16];
    loads[0] = 163; // corner hoards everything, remainder 163 % 16 ≠ 0
    assert_accepts(&mesh, &loads);
}

#[test]
fn accepts_checkerboard() {
    let mesh = Mesh2D::new(4, 6);
    let loads: Vec<i64> = (0..4)
        .flat_map(|r| (0..6).map(move |c| if (r + c) % 2 == 0 { 17 } else { 0 }))
        .collect();
    assert_accepts(&mesh, &loads);
}

#[test]
fn accepts_zero_load_rows() {
    let mesh = Mesh2D::new(5, 4);
    let loads: Vec<i64> = (0..5)
        .flat_map(|r| (0..4).map(move |_| if r < 2 { 31 } else { 0 }))
        .collect();
    assert_accepts(&mesh, &loads);
}

#[test]
fn accepts_already_balanced() {
    let mesh = Mesh2D::new(3, 3);
    assert_accepts(&mesh, &[5; 9]);
}

#[test]
fn rejects_dropped_transfer_as_thm1() {
    let mesh = Mesh2D::new(4, 4);
    let mut loads = vec![0i64; 16];
    loads[0] = 160;
    let r = audit_mwa(&mesh, &loads, |t| {
        t.pop(); // one under-quota node never gets its tasks
    });
    assert!(
        r.errors.iter().any(|e| e.contains("Theorem 1")),
        "dropped transfer not caught: {:?}",
        r.errors
    );
}

#[test]
fn rejects_ping_pong_as_thm2() {
    let mesh = Mesh2D::new(4, 4);
    let mut loads = vec![0i64; 16];
    loads[0] = 160;
    // Balanced outcome, but two extra tasks make a round trip — the
    // spread stays ≤ 1, only minimality is violated.
    let r = audit_mwa(&mesh, &loads, |t| {
        t.push((0, 15, 2));
        t.push((15, 0, 2));
    });
    assert!(
        r.errors
            .iter()
            .any(|e| e.contains("Theorem 2") && e.contains("not minimal")),
        "ping-pong not caught: {:?}",
        r.errors
    );
    assert!(!r.errors.iter().any(|e| e.contains("Theorem 1")));
}

#[test]
fn rejects_overshoot_as_thm1_and_thm2() {
    let mesh = Mesh2D::new(2, 2);
    let loads = [8i64, 0, 0, 0];
    // Ship everything to one victim instead of balancing.
    let r = audit_mwa(&mesh, &loads, |t| {
        t.clear();
        t.push((0, 3, 8));
    });
    assert!(
        r.errors.iter().any(|e| e.contains("Theorem 1")),
        "{:?}",
        r.errors
    );
    assert!(
        r.errors.iter().any(|e| e.contains("Theorem 2")),
        "{:?}",
        r.errors
    );
}

proptest! {
    /// The auditor accepts every real MWA plan over random meshes and
    /// loads (Theorems 1 and 2 hold — this doubles as an end-to-end
    /// regression net for the planner itself).
    #[test]
    fn accepts_every_real_mwa_plan(
        rows in 1usize..=5,
        cols in 1usize..=5,
        seed_loads in proptest::collection::vec(0i64..=40, 25),
    ) {
        let mesh = Mesh2D::new(rows, cols);
        let loads = &seed_loads[..rows * cols];
        let r = audit_mwa(&mesh, loads, |_| {});
        prop_assert!(r.is_ok(), "{:?}", r.errors);
        prop_assert_eq!(r.phases_checked, 1);
    }

    /// The auditor's independently computed quota vector and Lemma 1
    /// bound agree with the scheduler's own arithmetic — two separate
    /// implementations, one theorem.
    #[test]
    fn bounds_agree_with_scheduler_arithmetic(
        loads in proptest::collection::vec(0i64..=100, 1..=30),
    ) {
        prop_assert_eq!(
            quotas(loads.iter().sum(), loads.len()),
            rips_sched::quota_vector(&loads)
        );
        prop_assert_eq!(
            min_nonlocal_lower_bound(&loads),
            rips_sched::min_nonlocal_tasks(&loads)
        );
    }

    /// Dropping any single transfer from a plan that needed one makes
    /// the auditor object: the invariants leave no slack.
    #[test]
    fn rejects_any_dropped_transfer(
        rows in 1usize..=4,
        cols in 1usize..=4,
        seed_loads in proptest::collection::vec(0i64..=40, 16),
        pick in 0usize..64,
    ) {
        let mesh = Mesh2D::new(rows, cols);
        let loads = &seed_loads[..rows * cols];
        let (plan, _) = mwa(&mesh, loads);
        let mut transfers = plan.net_transfers(loads);
        if transfers.is_empty() {
            // Already balanced: nothing to drop (the vendored proptest
            // shim has no prop_assume).
            return Ok(());
        }
        transfers.remove(pick % transfers.len());
        let mut a = Auditor::new(loads.len());
        feed_phase(&mut a, 1, loads, &transfers);
        let r = a.finish();
        prop_assert!(!r.is_ok(), "dropped transfer accepted for {loads:?}");
    }
}
