//! Shared experiment drivers behind the table/figure regenerators.
//!
//! Every binary in `src/bin/` prints the rows or series of one paper
//! artifact (see DESIGN.md §4 for the index):
//!
//! | binary              | paper artifact |
//! |---------------------|----------------|
//! | `fig4`              | Figure 4 (a)+(b): MWA normalized communication cost |
//! | `table1`            | Table I: scheduler comparison on 32 processors |
//! | `table2`            | Table II: optimal efficiencies |
//! | `fig5`              | Figure 5 (a)–(c): normalized quality factors |
//! | `table3`            | Table III: speedups on 64 and 128 processors |
//! | `ablation_policies` | eager/lazy × ALL/ANY (± eureka) policy matrix (paper §2, ref \[24\]) |
//! | `ablation_interval` | periodic transfer-test interval sweep (paper §2) |
//! | `ablation_weighted` | task-count vs estimated-weight load metric |
//! | `ablation_contention` | contention-free vs store-and-forward network |
//! | `sid_vs_rid`        | sender- vs receiver-initiated diffusion (ref \[11\]) |
//! | `scaling`           | speedup/efficiency across machine sizes (§6) |
//! | `timeline`          | per-node utilization Gantt charts |
//! | `phase_anatomy`     | §5's 15-Queens system-phase breakdown |

pub mod live;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use rips_apps::{gromos, nqueens, puzzle, GromosConfig, NQueensConfig, PuzzleConfig};
use rips_balancers::{gradient, random, rid, sid, GradientParams, RidParams, SidParams};
use rips_core::{rips, Machine, RipsConfig};
use rips_desim::LatencyModel;
use rips_runtime::{Costs, PhaseLog, RunOutcome, RunSpec, ScheduledRun, SchedulerRegistry};
use rips_taskgraph::Workload;
use rips_topology::{Mesh2D, Topology};

/// The nine Table I workloads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum App {
    /// Exhaustive N-Queens search.
    Queens(u32),
    /// IDA\* 15-puzzle, paper configuration 1–3.
    Ida(u32),
    /// GROMOS-like MD at the given cutoff (Å).
    Gromos(f64),
}

impl App {
    /// Table I's rows, in paper order.
    pub fn paper_set() -> Vec<App> {
        vec![
            App::Queens(13),
            App::Queens(14),
            App::Queens(15),
            App::Ida(1),
            App::Ida(2),
            App::Ida(3),
            App::Gromos(8.0),
            App::Gromos(12.0),
            App::Gromos(16.0),
        ]
    }

    /// Table III's subset: the largest instance of each family.
    pub fn table3_set() -> Vec<App> {
        vec![App::Queens(15), App::Ida(3), App::Gromos(16.0)]
    }

    /// Paper row label.
    pub fn label(&self) -> String {
        match self {
            App::Queens(n) => format!("{n}-Queens"),
            App::Ida(c) => format!("IDA* config #{c}"),
            App::Gromos(r) => format!("GROMOS ({r} A)"),
        }
    }

    /// Builds the workload (expensive: runs the real application).
    pub fn build(&self) -> Workload {
        match *self {
            App::Queens(n) => nqueens(NQueensConfig::paper(n)),
            App::Ida(c) => puzzle(PuzzleConfig::paper(c)),
            App::Gromos(r) => gromos(GromosConfig::paper(r)),
        }
    }

    /// The RID load-update factor the paper uses for this app/machine
    /// size: 0.4 everywhere except IDA\* on ≥ 64 processors (0.7).
    pub fn rid_u(&self, nodes: usize) -> f64 {
        match self {
            App::Ida(_) if nodes >= 64 => 0.7,
            _ => 0.4,
        }
    }
}

/// One scheduler's measured Table I row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Scheduler name as printed.
    pub scheduler: String,
    /// Total tasks in the workload.
    pub tasks: u64,
    /// The measured outcome.
    pub outcome: RunOutcome,
    /// RIPS phase log (empty for the baselines).
    pub phases: Vec<PhaseLog>,
}

/// Tuning knobs for the canonical registry — one field per registered
/// scheduler. [`RegistryTuning::default`] reproduces the paper's
/// settings; ablations override a single field and leave the rest.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RegistryTuning {
    /// RIPS policy configuration.
    pub rips: RipsConfig,
    /// Gradient-model parameters.
    pub gradient: GradientParams,
    /// RID parameters. The update factor `u` is still overridden
    /// per-cell by [`RunSpec::rid_u`] (the paper tunes it per
    /// app/machine size).
    pub rid: RidParams,
    /// SID parameters.
    pub sid: SidParams,
}

/// The canonical scheduler roster with paper-default tuning: the four
/// Table I schedulers in paper order, plus RIPS-H (RIPS on the
/// hierarchical tiled planner, for large meshes) and SID (the
/// `sid_vs_rid` counterpart). Everything that enumerates schedulers —
/// the grid, the golden tests, the `rips` CLI — goes through this
/// table.
pub fn registry() -> SchedulerRegistry {
    registry_with(RegistryTuning::default())
}

/// The canonical roster with explicit tuning (ablation support).
pub fn registry_with(t: RegistryTuning) -> SchedulerRegistry {
    fn mesh(spec: &RunSpec) -> Arc<dyn Topology> {
        Arc::new(Mesh2D::near_square(spec.nodes))
    }
    let mut reg = SchedulerRegistry::new();
    reg.register(
        "Random",
        Box::new(|s: &RunSpec| ScheduledRun {
            outcome: random(Arc::clone(&s.workload), mesh(s), s.latency, s.costs, s.seed),
            phases: Vec::new(),
        }),
    );
    reg.register(
        "Gradient",
        Box::new(move |s: &RunSpec| ScheduledRun {
            outcome: gradient(
                Arc::clone(&s.workload),
                mesh(s),
                s.latency,
                s.costs,
                s.seed,
                t.gradient,
            ),
            phases: Vec::new(),
        }),
    );
    reg.register(
        "RID",
        Box::new(move |s: &RunSpec| ScheduledRun {
            outcome: rid(
                Arc::clone(&s.workload),
                mesh(s),
                s.latency,
                s.costs,
                s.seed,
                RidParams {
                    u: s.rid_u,
                    ..t.rid
                },
            ),
            phases: Vec::new(),
        }),
    );
    reg.register(
        "RIPS",
        Box::new(move |s: &RunSpec| {
            let out = rips(
                Arc::clone(&s.workload),
                Machine::Mesh(Mesh2D::near_square(s.nodes)),
                s.latency,
                s.costs,
                s.seed,
                t.rips,
            );
            ScheduledRun {
                outcome: out.run,
                phases: out.phases,
            }
        }),
    );
    reg.register(
        "RIPS-H",
        Box::new(move |s: &RunSpec| {
            let out = rips(
                Arc::clone(&s.workload),
                Machine::MeshHier(Mesh2D::near_square(s.nodes)),
                s.latency,
                s.costs,
                s.seed,
                t.rips,
            );
            ScheduledRun {
                outcome: out.run,
                phases: out.phases,
            }
        }),
    );
    reg.register(
        "SID",
        Box::new(move |s: &RunSpec| ScheduledRun {
            outcome: sid(
                Arc::clone(&s.workload),
                mesh(s),
                s.latency,
                s.costs,
                s.seed,
                t.sid,
            ),
            phases: Vec::new(),
        }),
    );
    reg
}

/// Runs one registry cell under the paper's machine model (Paragon
/// latency, default costs) and verifies work conservation.
///
/// # Panics
/// If `scheduler` is not registered, or the run lost or duplicated
/// tasks.
pub fn run_cell(
    reg: &SchedulerRegistry,
    scheduler: &str,
    workload: &Arc<Workload>,
    nodes: usize,
    rid_u: f64,
    seed: u64,
) -> Row {
    let spec = RunSpec {
        workload: Arc::clone(workload),
        nodes,
        latency: LatencyModel::paragon(),
        costs: Costs::default(),
        seed,
        rid_u,
    };
    let run = reg.run(scheduler, &spec);
    run.outcome
        .verify_complete(workload)
        .unwrap_or_else(|e| panic!("{scheduler} on {}: {e}", workload.name));
    Row {
        scheduler: scheduler.to_string(),
        tasks: workload.stats().tasks as u64,
        outcome: run.outcome,
        phases: run.phases,
    }
}

/// Runs one scheduler from the default registry on `workload` over a
/// near-square mesh of `nodes` processors. The workload is shared by
/// reference count — no per-run deep copy — so one build serves the
/// whole scheduler grid.
pub fn run_scheduler(
    scheduler: &str,
    workload: &Arc<Workload>,
    nodes: usize,
    rid_u: f64,
    seed: u64,
) -> Row {
    run_cell(&registry(), scheduler, workload, nodes, rid_u, seed)
}

/// Runs the full Table I grid — every workload × every scheduler — on
/// a bounded worker pool. Workloads are built once (in parallel, one
/// thread per app) and shared across their four scheduler runs; the
/// `apps × schedulers` cells then drain through `available_parallelism`
/// workers pulling from an atomic job counter. Each simulation is
/// single-threaded and seed-deterministic, so the row contents are
/// independent of worker scheduling.
pub fn run_table(apps: &[App], nodes: usize, seed: u64) -> Vec<(App, Vec<Row>)> {
    let reg = registry();
    let schedulers = reg.names();

    // Phase 1: build every workload once, in parallel.
    let mut built: Vec<Option<Arc<Workload>>> = (0..apps.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (slot, &app) in built.iter_mut().zip(apps) {
            scope.spawn(move || *slot = Some(Arc::new(app.build())));
        }
    });
    let workloads: Vec<Arc<Workload>> = built.into_iter().map(|w| w.expect("built")).collect();

    // Phase 2: run the full grid through a bounded pool. The registry
    // is shared by reference — constructors are `Send + Sync`.
    let jobs: Vec<(usize, usize)> = (0..apps.len())
        .flat_map(|a| (0..schedulers.len()).map(move |s| (a, s)))
        .collect();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(jobs.len())
        .max(1);
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Vec<Option<Row>>> = (0..apps.len())
        .map(|_| (0..schedulers.len()).map(|_| None).collect())
        .collect();
    std::thread::scope(|scope| {
        let next = &next;
        let jobs = &jobs;
        let workloads = &workloads;
        let reg = &reg;
        let schedulers = &schedulers;
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let j = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&(a, s)) = jobs.get(j) else { break };
                        let row = run_cell(
                            reg,
                            schedulers[s],
                            &workloads[a],
                            nodes,
                            apps[a].rid_u(nodes),
                            seed,
                        );
                        done.push((a, s, row));
                    }
                    done
                })
            })
            .collect();
        for h in handles {
            for (a, s, row) in h.join().expect("grid worker panicked") {
                slots[a][s] = Some(row);
            }
        }
    });
    apps.iter()
        .zip(slots)
        .map(|(&app, rows)| {
            (
                app,
                rows.into_iter().map(|r| r.expect("cell filled")).collect(),
            )
        })
        .collect()
}

/// Runs RIPS with an explicit configuration (ablation support), via a
/// registry tuned to that configuration.
pub fn run_rips_with(workload: &Arc<Workload>, nodes: usize, cfg: RipsConfig, seed: u64) -> Row {
    let reg = registry_with(RegistryTuning {
        rips: cfg,
        ..RegistryTuning::default()
    });
    run_cell(&reg, "RIPS", workload, nodes, 0.4, seed)
}

/// `--nodes N` style flag parsing for the report binaries.
pub fn arg_usize(name: &str, default: usize) -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} needs an integer"));
        }
    }
    default
}

/// `--flag` presence check.
pub fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_set_has_nine_rows() {
        assert_eq!(App::paper_set().len(), 9);
    }

    #[test]
    fn rid_u_follows_paper_rules() {
        assert_eq!(App::Queens(15).rid_u(128), 0.4);
        assert_eq!(App::Ida(3).rid_u(32), 0.4);
        assert_eq!(App::Ida(3).rid_u(64), 0.7);
    }

    #[test]
    fn labels_match_paper_wording() {
        assert_eq!(App::Queens(13).label(), "13-Queens");
        assert_eq!(App::Ida(2).label(), "IDA* config #2");
        assert_eq!(App::Gromos(16.0).label(), "GROMOS (16 A)");
    }

    #[test]
    fn small_grid_runs_end_to_end() {
        // A miniature Table I cell: tiny queens instance, every
        // registered scheduler, 8 nodes.
        let w = Arc::new(nqueens(NQueensConfig {
            n: 9,
            split_depth: 3,
            root_depth: 2,
            ns_per_node: 1800,
        }));
        let reg = registry();
        assert_eq!(
            reg.names(),
            vec!["Random", "Gradient", "RID", "RIPS", "RIPS-H", "SID"]
        );
        for s in reg.names() {
            let row = run_cell(&reg, s, &w, 8, 0.4, 1);
            assert_eq!(row.outcome.total_executed(), w.stats().tasks as u64);
        }
    }
}
