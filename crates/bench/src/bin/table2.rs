//! Table II: optimal efficiencies for the test problems.
//!
//! "An optimal efficiency is calculated assuming (1) optimal
//! scheduling; and (2) no overhead." Computed by zero-overhead LPT
//! list scheduling over each workload's precedence-constrained task
//! forest, with round barriers. `--nodes N` defaults to the paper's 32.

use rips_bench::{arg_usize, App};
use rips_metrics::{optimal_efficiency, Table};

fn main() {
    let nodes = arg_usize("--nodes", 32);
    println!("Table II: optimal efficiencies for the test problems ({nodes} processors)\n");
    let apps = App::paper_set();
    let mut rows: Vec<Option<(String, f64)>> = (0..apps.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (slot, &app) in rows.iter_mut().zip(&apps) {
            scope.spawn(move || {
                let w = app.build();
                *slot = Some((app.label(), optimal_efficiency(&w, nodes)));
            });
        }
    });

    let mut table = Table::new(vec!["workload", "optimal efficiency"]);
    for row in rows {
        let (label, mu) = row.expect("slot filled");
        table.row(vec![label, format!("{:.1}%", mu * 100.0)]);
    }
    println!("{}", table.render());
}
