//! Ablation: task-count vs estimated-weight load metric.
//!
//! The paper balances task *counts* ("each task is presumed to require
//! the equal execution time"), correcting grain-size error in later
//! incremental phases, and notes that a programmer/compiler could
//! estimate execution times instead. This bench measures what that
//! estimation buys on the paper's own workloads plus a synthetic one
//! with extreme skew.

use rips_bench::{arg_usize, run_rips_with, App};
use rips_core::{LoadMetric, RipsConfig};
use rips_metrics::Table;
use std::sync::Arc;

use rips_taskgraph::{skewed_flat, Workload};

fn main() {
    let nodes = arg_usize("--nodes", 32);
    println!("Load-metric ablation: task count vs estimated weight ({nodes} processors)\n");

    let workloads: Vec<(String, Arc<Workload>)> = vec![
        ("13-Queens".into(), Arc::new(App::Queens(13).build())),
        ("GROMOS (8 A)".into(), Arc::new(App::Gromos(8.0).build())),
        (
            "synthetic whale mix".into(),
            Arc::new(skewed_flat(600, 1000, 4, 15, 6)),
        ),
    ];

    let mut table = Table::new(vec![
        "workload", "metric", "phases", "nonlocal", "Ti (s)", "T (s)", "mu",
    ]);
    for (name, w) in &workloads {
        for (label, metric) in [
            ("count", LoadMetric::TaskCount),
            ("weight", LoadMetric::EstimatedWeight),
        ] {
            let row = run_rips_with(
                w,
                nodes,
                RipsConfig {
                    metric,
                    ..RipsConfig::default()
                },
                1,
            );
            table.row(vec![
                name.clone(),
                label.to_string(),
                row.outcome.system_phases.to_string(),
                row.outcome.nonlocal.to_string(),
                format!("{:.2}", row.outcome.idle_s()),
                format!("{:.2}", row.outcome.exec_time_s()),
                format!("{:.0}%", row.outcome.efficiency() * 100.0),
            ]);
        }
    }
    println!("{}", table.render());
    println!("\nAn accurate weight estimate reduces the correction phases the");
    println!("count metric needs; the paper's incremental design makes the");
    println!("count metric competitive anyway — that is its point.");
}
