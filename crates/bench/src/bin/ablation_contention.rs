//! Ablation: contention-free vs store-and-forward network.
//!
//! The default simulator charges each message its full route latency up
//! front (links never queue). Real meshes serialize per link; bursts
//! toward the same region slow each other down. This bench measures
//! how much each scheduler depends on the contention-free assumption:
//! randomized allocation sprays long-haul traffic constantly, while
//! RIPS packs its migrations into a few neighbour-structured bursts per
//! phase.

use std::sync::Arc;

use rips_bench::{arg_usize, registry, App};
use rips_desim::LatencyModel;
use rips_metrics::Table;
use rips_runtime::{Costs, RunSpec};

fn main() {
    let nodes = arg_usize("--nodes", 32);
    println!("Network-contention ablation, 13-Queens ({nodes} processors)\n");
    let w = Arc::new(App::Queens(13).build());
    let reg = registry();

    let mut table = Table::new(vec!["scheduler", "network", "T (s)", "mu", "slowdown"]);
    for name in ["Random", "RIPS"] {
        let mut base_t = 0.0;
        for contention in [false, true] {
            let spec = RunSpec {
                workload: Arc::clone(&w),
                nodes,
                latency: LatencyModel::paragon(),
                costs: Costs {
                    contention,
                    ..Costs::default()
                },
                seed: 1,
                rid_u: 0.4,
            };
            let out = reg.run(name, &spec).outcome;
            out.verify_complete(&w).expect("complete");
            let (t, mu) = (out.exec_time_s(), out.efficiency());
            if !contention {
                base_t = t;
            }
            table.row(vec![
                name.to_string(),
                if contention {
                    "store-and-forward"
                } else {
                    "contention-free"
                }
                .to_string(),
                format!("{t:.3}"),
                format!("{:.0}%", mu * 100.0),
                format!("{:.2}x", t / base_t),
            ]);
        }
    }
    println!("{}", table.render());
}
