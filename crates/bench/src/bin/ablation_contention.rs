//! Ablation: contention-free vs store-and-forward network.
//!
//! The default simulator charges each message its full route latency up
//! front (links never queue). Real meshes serialize per link; bursts
//! toward the same region slow each other down. This bench measures
//! how much each scheduler depends on the contention-free assumption:
//! randomized allocation sprays long-haul traffic constantly, while
//! RIPS packs its migrations into a few neighbour-structured bursts per
//! phase.

use std::sync::Arc;

use rips_balancers::random;
use rips_bench::{arg_usize, App};
use rips_core::{rips, Machine, RipsConfig};
use rips_desim::LatencyModel;
use rips_metrics::Table;
use rips_runtime::Costs;
use rips_topology::{Mesh2D, Topology};

fn main() {
    let nodes = arg_usize("--nodes", 32);
    println!("Network-contention ablation, 13-Queens ({nodes} processors)\n");
    let w = Arc::new(App::Queens(13).build());
    let mesh = Mesh2D::near_square(nodes);
    let lat = LatencyModel::paragon();

    let mut table = Table::new(vec!["scheduler", "network", "T (s)", "mu", "slowdown"]);
    for (name, is_rips) in [("Random", false), ("RIPS", true)] {
        let mut base_t = 0.0;
        for contention in [false, true] {
            let costs = Costs {
                contention,
                ..Costs::default()
            };
            let (t, mu) = if is_rips {
                let out = rips(
                    Arc::clone(&w),
                    Machine::Mesh(mesh.clone()),
                    lat,
                    costs,
                    1,
                    RipsConfig::default(),
                );
                out.run.verify_complete(&w).expect("complete");
                (out.run.exec_time_s(), out.run.efficiency())
            } else {
                let topo: Arc<dyn Topology> = Arc::new(mesh.clone());
                let out = random(Arc::clone(&w), topo, lat, costs, 1);
                out.verify_complete(&w).expect("complete");
                (out.exec_time_s(), out.efficiency())
            };
            if !contention {
                base_t = t;
            }
            table.row(vec![
                name.to_string(),
                if contention {
                    "store-and-forward"
                } else {
                    "contention-free"
                }
                .to_string(),
                format!("{t:.3}"),
                format!("{:.0}%", mu * 100.0),
                format!("{:.2}x", t / base_t),
            ]);
        }
    }
    println!("{}", table.render());
}
