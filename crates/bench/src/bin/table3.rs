//! Table III: speedup comparison on 64 and 128 processors.
//!
//! Speedup = `Ts / Tp` with `Ts` the workload's total sequential work.
//! The largest instance of each family, as in the paper: 15-Queens,
//! IDA\* configuration #3, GROMOS at 16 Å. RID's update factor follows
//! the paper's adjustment (0.7 for IDA\* at these sizes, 0.4 elsewhere).

use rips_bench::{run_table, App};
use rips_metrics::{speedup, Table};

fn main() {
    println!("Table III: speedup comparison on 64 and 128 processors\n");
    let apps = App::table3_set();
    let mut table = Table::new(vec!["workload", "scheduler", "64 procs", "128 procs"]);
    let results64 = run_table(&apps, 64, 1);
    let results128 = run_table(&apps, 128, 1);
    for ((app, rows64), (_, rows128)) in results64.iter().zip(&results128) {
        for (r64, r128) in rows64.iter().zip(rows128) {
            let ts = r64.outcome.stats.total_user_us();
            table.row(vec![
                app.label(),
                r64.scheduler.to_string(),
                format!("{:.1}", speedup(ts, r64.outcome.stats.end_time)),
                format!("{:.1}", speedup(ts, r128.outcome.stats.end_time)),
            ]);
        }
    }
    println!("{}", table.render());
}
