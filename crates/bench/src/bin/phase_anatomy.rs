//! §5's system-phase anatomy for 15-Queens on the 8×4 mesh.
//!
//! The paper narrates: "Execution of this problem takes 8 system
//! phases. There are about 1000 non-local tasks and an average of 125
//! non-local tasks per system phase. … each system phase takes about
//! 12 ms for task migration. The total time for task migration of 8
//! system phases is about 96 ms. It is a small fraction of the total
//! system overhead, which is 510 ms." This binary reproduces that
//! breakdown from the structured trace: the run executes under a
//! [`rips_trace::TraceBuffer`] sink and the table below is the
//! [`rips_trace::PhaseReport`] aggregation — per-phase spans, stage
//! durations (load collection, plan, migration), idle-detect latency
//! and migration volume, each as p50/p95/max over nodes.
//!
//! Flags: `--nodes N` (default 32), `--jsonl` for machine-readable
//! output instead of the text table.

use rips_bench::{arg_flag, arg_usize, run_scheduler, App};
use rips_trace::{with_sink, TraceBuffer};

fn main() {
    let nodes = arg_usize("--nodes", 32);
    let w = std::sync::Arc::new(App::Queens(15).build());
    let (buf, row) = with_sink(TraceBuffer::new(), || {
        run_scheduler("RIPS", &w, nodes, 0.4, 1)
    });
    let out = &row.outcome;
    let mut report = buf.report(out.stats.end_time);

    if arg_flag("--jsonl") {
        print!("{}", report.to_jsonl());
        return;
    }

    println!("15-Queens under RIPS on {nodes} processors (8x4 mesh at 32)\n");
    print!("{}", report.render());

    // The paper's headline numbers, from the aggregate counters the
    // trace-derived table above decomposes.
    println!("\npaper comparison (§5):");
    println!("  system phases:        {}", out.system_phases);
    println!("  non-local tasks:      {}", out.nonlocal);
    if out.system_phases > 0 {
        println!(
            "  non-local per phase:  {:.0}",
            out.nonlocal as f64 / out.system_phases as f64
        );
    }
    let migrate_total_us: u64 = report.phases.iter_mut().map(|p| p.migrate_us.max()).sum();
    println!(
        "  migration time:       {:.1} ms total across phases (slowest node per phase)",
        migrate_total_us as f64 / 1e3
    );
    println!("  mean overhead Th:     {:.3} s", out.overhead_s());
    println!("  mean idle Ti:         {:.3} s", out.idle_s());
    println!("  execution time T:     {:.3} s", out.exec_time_s());
    println!(
        "  speedup:              {:.1}",
        out.stats.total_user_us() as f64 / out.stats.end_time as f64
    );
    println!("  efficiency:           {:.0}%", out.efficiency() * 100.0);
}
