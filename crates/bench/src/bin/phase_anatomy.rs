//! §5's system-phase anatomy for 15-Queens on the 8×4 mesh.
//!
//! The paper narrates: "Execution of this problem takes 8 system
//! phases. There are about 1000 non-local tasks and an average of 125
//! non-local tasks per system phase. … each system phase takes about
//! 12 ms for task migration. The total time for task migration of 8
//! system phases is about 96 ms. It is a small fraction of the total
//! system overhead, which is 510 ms." This binary prints the same
//! breakdown for the reproduction.

use rips_bench::{arg_usize, run_scheduler, App};
use rips_desim::Time;

fn main() {
    let nodes = arg_usize("--nodes", 32);
    let w = std::sync::Arc::new(App::Queens(15).build());
    let row = run_scheduler("RIPS", &w, nodes, 0.4, 1);
    let out = &row.outcome;

    println!("15-Queens under RIPS on {nodes} processors (8x4 mesh at 32)\n");
    println!("system phases:        {}", out.system_phases);
    println!("total tasks:          {}", row.tasks);
    println!("non-local tasks:      {}", out.nonlocal);
    if out.system_phases > 0 {
        println!(
            "non-local per phase:  {:.0}",
            out.nonlocal as f64 / out.system_phases as f64
        );
    }
    let mig_bytes: u64 = out.stats.net.bytes;
    println!(
        "migration traffic:    {} messages, {} bytes",
        out.stats.net.msgs, mig_bytes
    );
    println!("mean overhead Th:     {:.3} s", out.overhead_s());
    println!("mean idle Ti:         {:.3} s", out.idle_s());
    println!("execution time T:     {:.3} s", out.exec_time_s());
    let ts: Time = out.stats.total_user_us();
    println!(
        "speedup:              {:.1}",
        ts as f64 / out.stats.end_time as f64
    );
    println!("efficiency:           {:.0}%", out.efficiency() * 100.0);
    println!("\nper-phase log:");
    for p in &row.phases {
        println!(
            "  phase {:3}: {:6} tasks queued, {:5} migrated, edge cost {:6}",
            p.phase, p.total_tasks, p.migrated, p.edge_cost
        );
    }
}
