//! Paragon-at-2026-scale sweep: one audited simulation per machine
//! size n ∈ {1k, 10k, 100k, 1M}, under RIPS (flat MWA) and RIPS-H
//! (tiled MWA), writing `BENCH_DESIM.scaling.json`.
//!
//! The point of the curve is the *absence* of quadratic structure:
//! after the scaling refactor every layer — closed-form routing above
//! the table threshold, SoA event cores, on-the-fly trace distances,
//! tiled planning — costs O(n) bytes, so the peak RSS column should
//! grow linearly with n while Theorem 1 (audited `max_spread ≤ 1`)
//! holds at every size.
//!
//! Each (size, scheduler) cell runs in a **subprocess** (`--one`
//! mode) so its `VmHWM` peak-RSS reading is its own, not the high
//! water of earlier, larger cells.
//!
//! Flags: `--max-n 100000` truncates the sweep, `--out FILE`
//! redirects the JSON, `--tasks-per-node K` scales the workload
//! (default 4).

use std::fmt::Write as _;
use std::process::Command;
use std::sync::Arc;
use std::time::Instant;

use rips_audit::Auditor;
use rips_bench::{arg_usize, registry_with, run_cell, RegistryTuning};
use rips_core::RipsConfig;
use rips_sched::TileGrid;
use rips_taskgraph::skewed_flat;
use rips_topology::Mesh2D;
use rips_trace::with_sink;

const SIZES: [usize; 4] = [1_000, 10_000, 100_000, 1_000_000];
const SCHEDULERS: [&str; 2] = ["RIPS", "RIPS-H"];

fn arg_str(name: &str, default: &str) -> String {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args
                .next()
                .unwrap_or_else(|| panic!("{name} needs a value"));
        }
    }
    default.to_string()
}

/// Peak resident set of this process (bytes), from `VmHWM` in
/// `/proc/self/status`; 0 where the file is unavailable (non-Linux).
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Runs one audited cell and prints its JSON object on stdout
/// (subprocess mode).
fn run_one(nodes: usize, scheduler: &str, tasks_per_node: usize, seed: u64) {
    let workload = Arc::new(skewed_flat(nodes * tasks_per_node, 2_000, 64, 20, seed));
    let auditor = if scheduler == "RIPS-H" {
        let mesh = Mesh2D::near_square(nodes);
        Auditor::with_tiles(nodes, TileGrid::new(&mesh).assignment())
    } else {
        Auditor::new(nodes)
    };
    // Eureka (hardware or-barrier) init signalling: the software
    // broadcast's simultaneous-idle storm is O(n²) events per phase
    // and unrepresentative of the paper's T3D mode at these sizes.
    let reg = registry_with(RegistryTuning {
        rips: RipsConfig {
            eureka: true,
            ..RipsConfig::default()
        },
        ..RegistryTuning::default()
    });
    let t0 = Instant::now();
    let (auditor, row) = with_sink(auditor, || {
        run_cell(&reg, scheduler, &workload, nodes, 0.4, seed)
    });
    let wall = t0.elapsed().as_secs_f64();
    let report = auditor.finish();
    assert!(
        report.is_ok(),
        "{scheduler} at n={nodes} violates invariants:\n{}",
        report.errors.join("\n")
    );
    assert!(report.max_spread <= 1, "Theorem 1 spread escaped the audit");
    let stats = &row.outcome.stats;
    let mem = stats.mem;
    println!(
        "{{\"scheduler\": \"{scheduler}\", \"nodes\": {nodes}, \
         \"tasks\": {}, \"events\": {}, \"wall_ms\": {:.1}, \
         \"events_per_sec\": {:.0}, \"end_time_us\": {}, \
         \"system_phases\": {}, \"phases_checked\": {}, \
         \"max_spread\": {}, \"tiles\": {}, \
         \"modelled_bytes\": {}, \"routing_table_bytes\": {}, \
         \"peak_rss_bytes\": {}}}",
        row.tasks,
        stats.events,
        wall * 1e3,
        stats.events as f64 / wall,
        stats.end_time,
        row.outcome.system_phases,
        report.phases_checked,
        report.max_spread,
        report.tiles,
        mem.total_bytes(),
        mem.routing_table_bytes,
        peak_rss_bytes(),
    );
}

fn main() {
    let tasks_per_node = arg_usize("--tasks-per-node", 4);
    let seed = arg_usize("--seed", 1) as u64;
    if let Some(pos) = std::env::args().position(|a| a == "--one") {
        let nodes: usize = std::env::args()
            .nth(pos + 1)
            .and_then(|v| v.parse().ok())
            .expect("--one needs a node count");
        let sched = arg_str("--sched", "RIPS");
        run_one(nodes, &sched, tasks_per_node, seed);
        return;
    }

    let max_n = arg_usize("--max-n", 1_000_000);
    let out = arg_str("--out", "BENCH_DESIM.scaling.json");
    let exe = std::env::current_exe().expect("own path");
    let mut points = String::new();
    for (i, &n) in SIZES.iter().filter(|&&n| n <= max_n).enumerate() {
        let mut cells = String::new();
        for (j, sched) in SCHEDULERS.into_iter().enumerate() {
            eprintln!("n={n}: {sched}...");
            let run = Command::new(&exe)
                .args(["--one", &n.to_string(), "--sched", sched])
                .args(["--tasks-per-node", &tasks_per_node.to_string()])
                .args(["--seed", &seed.to_string()])
                .output()
                .expect("spawn subprocess");
            assert!(
                run.status.success(),
                "cell n={n} {sched} failed:\n{}",
                String::from_utf8_lossy(&run.stderr)
            );
            let cell = String::from_utf8(run.stdout).expect("utf8 cell");
            eprintln!("  {}", cell.trim());
            if j > 0 {
                cells.push_str(",\n");
            }
            write!(cells, "      {}", cell.trim()).unwrap();
        }
        if i > 0 {
            points.push_str(",\n");
        }
        write!(
            points,
            "    {{\"nodes\": {n}, \"cells\": [\n{cells}\n    ]}}"
        )
        .unwrap();
    }
    let json = format!(
        "{{\n  \"bench\": \"scale_curve\",\n  \"workload\": \"skewed-flat {tasks_per_node} tasks/node\",\n  \"seed\": {seed},\n  \"points\": [\n{points}\n  ]\n}}\n"
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    print!("{json}");
}
