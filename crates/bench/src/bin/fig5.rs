//! Figure 5: normalized quality factors.
//!
//! For each scheduler `g`, `(µ_opt − µ_rand) / (µ_opt − µ_g)`: the
//! randomized baseline scores 1; better schedulers score higher. One
//! panel per application family, as in the paper. `--nodes N` defaults
//! to 32.

use rips_bench::{arg_usize, registry, run_table, App};
use rips_metrics::{optimal_efficiency, quality_factor, Series};

fn main() {
    let nodes = arg_usize("--nodes", 32);
    println!("Figure 5: normalized quality factors ({nodes} processors)");
    println!("(mu_opt - mu_rand) / (mu_opt - mu_g); random == 1; larger is better\n");

    let results = run_table(&App::paper_set(), nodes, 1);

    // µ_opt per workload (rebuilding the workloads is cheaper than
    // plumbing them out of the parallel table runner).
    let apps = App::paper_set();
    let mut mu_opt: Vec<Option<f64>> = (0..apps.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (slot, &app) in mu_opt.iter_mut().zip(&apps) {
            scope.spawn(move || {
                *slot = Some(optimal_efficiency(&app.build(), nodes));
            });
        }
    });
    let mu_opt: Vec<f64> = mu_opt.into_iter().map(|m| m.expect("filled")).collect();

    type Filter = Box<dyn Fn(&App) -> bool>;
    let panels: [(&str, Filter); 3] = [
        (
            "(a) Exhaustive Search",
            Box::new(|a| matches!(a, App::Queens(_))),
        ),
        (
            "(b) IDA* Search (15-puzzle)",
            Box::new(|a| matches!(a, App::Ida(_))),
        ),
        ("(c) GROMOS", Box::new(|a| matches!(a, App::Gromos(_)))),
    ];
    for (title, filter) in panels {
        let mut series = Series::new(
            "workload".to_string(),
            registry().names().iter().map(|s| s.to_string()).collect(),
        );
        for (i, (app, rows)) in results.iter().enumerate() {
            if !filter(app) {
                continue;
            }
            let mu_rand = rows
                .iter()
                .find(|r| r.scheduler == "Random")
                .expect("random row")
                .outcome
                .efficiency();
            let values: Vec<f64> = rows
                .iter()
                .map(|r| {
                    // Clamp into the valid domain: simulated µ can
                    // graze µ_opt on easy instances.
                    let mu_g = r.outcome.efficiency().min(mu_opt[i] - 1e-6);
                    quality_factor(mu_opt[i], mu_rand.min(mu_opt[i] - 1e-6), mu_g)
                })
                .collect();
            series.point(app.label(), values);
        }
        println!("{title}");
        println!("{}", series.render());
        println!();
    }
}
