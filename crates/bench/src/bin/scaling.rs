//! Scalability sweep: "parallel scheduling is fast and scalable" (§6).
//!
//! Speedup and efficiency of RIPS vs randomized allocation across
//! machine sizes on one workload (14-Queens by default; `--queens 15`
//! for the paper's largest instance).

use rips_bench::{arg_usize, run_scheduler, App};
use rips_metrics::{speedup, Table};

fn main() {
    let n = arg_usize("--queens", 14) as u32;
    let app = App::Queens(n);
    println!(
        "Scaling sweep: {} under RIPS vs random allocation\n",
        app.label()
    );
    let workload = std::sync::Arc::new(app.build());
    let ts = workload.stats().total_work_us;
    println!(
        "sequential work Ts = {:.2} s over {} tasks\n",
        ts as f64 / 1e6,
        workload.stats().tasks
    );

    let sizes = [8usize, 16, 32, 64, 128];
    let mut table = Table::new(vec![
        "procs",
        "RIPS speedup",
        "RIPS mu",
        "random speedup",
        "random mu",
        "RIPS phases",
    ]);
    let mut rows: Vec<Option<Vec<String>>> = (0..sizes.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (slot, &nodes) in rows.iter_mut().zip(&sizes) {
            let workload = &workload;
            scope.spawn(move || {
                let rips = run_scheduler("RIPS", workload, nodes, 0.4, 1);
                let rand = run_scheduler("Random", workload, nodes, 0.4, 1);
                *slot = Some(vec![
                    nodes.to_string(),
                    format!("{:.1}", speedup(ts, rips.outcome.stats.end_time)),
                    format!("{:.0}%", rips.outcome.efficiency() * 100.0),
                    format!("{:.1}", speedup(ts, rand.outcome.stats.end_time)),
                    format!("{:.0}%", rand.outcome.efficiency() * 100.0),
                    rips.outcome.system_phases.to_string(),
                ]);
            });
        }
    });
    for row in rows {
        table.row(row.expect("slot filled"));
    }
    println!("{}", table.render());
}
