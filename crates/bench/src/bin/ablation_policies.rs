//! Ablation: the 2×2 transfer-policy matrix (paper §2).
//!
//! Eager/Lazy × ALL/ANY over one instance of each application family.
//! The paper (citing its reference \[24\]) reports ANY-Lazy as the best
//! combination; this bench shows where each policy's time goes.

use rips_bench::{arg_usize, App};
use rips_core::{GlobalPolicy, LocalPolicy};
use rips_metrics::Table;

fn main() {
    let nodes = arg_usize("--nodes", 32);
    println!("RIPS transfer-policy ablation ({nodes} processors)\n");
    let apps = [App::Queens(13), App::Ida(1), App::Gromos(8.0)];
    let mk = |local, global, eureka| rips_core::RipsConfig {
        local,
        global,
        eureka,
        ..rips_core::RipsConfig::default()
    };
    let combos = [
        (
            "ALL-Eager",
            mk(LocalPolicy::Eager, GlobalPolicy::All, false),
        ),
        ("ALL-Lazy", mk(LocalPolicy::Lazy, GlobalPolicy::All, false)),
        (
            "ANY-Eager",
            mk(LocalPolicy::Eager, GlobalPolicy::Any, false),
        ),
        ("ANY-Lazy", mk(LocalPolicy::Lazy, GlobalPolicy::Any, false)),
        (
            "ANY-Lazy+eureka",
            mk(LocalPolicy::Lazy, GlobalPolicy::Any, true),
        ),
    ];
    let mut table = Table::new(vec![
        "workload", "policy", "phases", "nonlocal", "Th (s)", "Ti (s)", "T (s)", "mu",
    ]);
    let mut rows: Vec<Option<Vec<Vec<String>>>> = (0..apps.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (slot, &app) in rows.iter_mut().zip(&apps) {
            let combos = &combos;
            scope.spawn(move || {
                let w = std::sync::Arc::new(app.build());
                let mut out = Vec::new();
                for &(name, cfg) in combos {
                    let row = rips_bench::run_rips_with(&w, nodes, cfg, 1);
                    out.push(vec![
                        app.label(),
                        name.to_string(),
                        row.outcome.system_phases.to_string(),
                        row.outcome.nonlocal.to_string(),
                        format!("{:.2}", row.outcome.overhead_s()),
                        format!("{:.2}", row.outcome.idle_s()),
                        format!("{:.2}", row.outcome.exec_time_s()),
                        format!("{:.0}%", row.outcome.efficiency() * 100.0),
                    ]);
                }
                *slot = Some(out);
            });
        }
    });
    for group in rows {
        for row in group.expect("slot filled") {
            table.row(row);
        }
    }
    println!("{}", table.render());
}
