//! `live_speedup` — wall-clock speedup curves on the live backend.
//!
//! Runs RIPS on real OS threads (1, 2, 4 per app) executing real
//! application grains, and writes `BENCH_LIVE.json` with
//! threads-vs-wall-clock rows per app, per grain mode, per transport:
//!
//! * `compute` — only the real application closures run; speedup then
//!   reflects the host's physical parallelism (a 1-core container
//!   shows ~1x, honestly recorded as such).
//! * `timed`  — each grain additionally occupies its node for the
//!   task's modelled duration, so node-level concurrency (the thing
//!   the scheduler controls) is measurable on any host: sleeping
//!   nodes overlap regardless of core count.
//!
//! The transport axis compares the sharded SPSC ring fabric (`ring`,
//! the default fast path) against the `mpsc` fallback it replaced, so
//! the fabric's cost shows up in the same table as the speedup it buys.
//!
//! Honesty fields: every series entry repeats the host's
//! `available_parallelism` (`host_parallelism`) and its `transport`,
//! so a number can never be quoted without the hardware and fabric
//! that produced it. Every cell carries its parallelism ceiling
//! (`tasks / threads`) — when that ratio is small (the 38-task
//! 15-puzzle instance at 4 threads, for example) poor speedup is a
//! property of the instance, not a scheduler regression.
//!
//! Every run is cross-validated: solutions and execution checksum must
//! equal the sequential reference, or the binary panics.
//!
//! Each series additionally carries an `overhead_breakdown`: one extra
//! run at the widest thread count with the metrics registry, wall
//! cycle clock, and a flight-recorder trace sink installed, so the
//! per-dispatch cycle attribution ({grain setup, grain execute,
//! transport send/recv, timer wheel, trace emission}; ROADMAP item 1)
//! lands in the same JSON as the speedups. The profiled run is kept
//! out of the timing cells — the published wall clocks stay
//! measurement-free.
//!
//! ```text
//! live_speedup [--out BENCH_LIVE.json] [--repeats 2] [--seed 1]
//!              [--transport ring|mpsc|both]
//! ```

use std::sync::Arc;

use rips_apps::{
    gromos_with_grains, nqueens_with_grains, puzzle_with_grains, GrainTable, GromosConfig,
    NQueensConfig, PuzzleConfig,
};
use rips_bench::live::{live_opts, live_run};
use rips_bench::{arg_usize, registry};
use rips_live::{GrainMode, TransportKind, WallClock};
use rips_taskgraph::Workload;
use rips_trace::metrics_rt::{Counter, CycleClock, Histo};
use rips_trace::{with_metrics_clocked, with_sink_clocked, Clock, FlightRecorder, MetricsRegistry};

const THREADS: &[usize] = &[1, 2, 4];

/// The profiled phases of a dispatch round, in rendering order.
const PHASES: &[(&str, Histo)] = &[
    ("dispatch_round", Histo::DispatchRoundNs),
    ("grain_setup", Histo::GrainSetupNs),
    ("grain_exec", Histo::GrainExecNs),
    ("transport_send", Histo::TransportSendNs),
    ("transport_recv", Histo::TransportRecvNs),
    ("timer_wheel", Histo::TimerWheelNs),
    ("trace_emit", Histo::TraceEmitNs),
    ("park", Histo::ParkNs),
];

struct Cell {
    threads: usize,
    wall_us: u64,
    speedup: f64,
    /// Tasks per thread at this width — the instance's parallelism
    /// ceiling. Speedup cannot meaningfully exceed ~min(ceiling,
    /// host cores); small values flag instance-limited rows.
    ceiling: f64,
}

/// Per-dispatch cycle attribution from one profiled run at the widest
/// thread count: where a dispatch round's non-grain time goes.
struct Breakdown {
    threads: usize,
    dispatch_rounds: u64,
    /// `(phase, sample count, total ns, mean ns)` in [`PHASES`] order.
    phases: Vec<(&'static str, u64, u64, f64)>,
}

struct Series {
    app: String,
    tasks: usize,
    solutions: u64,
    mode: &'static str,
    transport: &'static str,
    cells: Vec<Cell>,
    breakdown: Breakdown,
}

fn arg(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

/// Benchmark-sized instances: real algorithms, minutes not hours.
fn apps() -> Vec<(String, Arc<Workload>, Arc<GrainTable>)> {
    let (qw, qt) = nqueens_with_grains(NQueensConfig {
        n: 10,
        split_depth: 3,
        root_depth: 2,
        ns_per_node: 1800,
    });
    let (pw, pt) = puzzle_with_grains(PuzzleConfig {
        scramble_len: 20,
        seed: 3,
        min_tasks: 32,
        ns_per_node: 1500,
        split_divisor: 1024,
        split_floor_nodes: 20_000,
    });
    let mut gcfg = GromosConfig::paper(8.0);
    gcfg.atoms = 800;
    gcfg.groups = 571;
    let (gw, gt) = gromos_with_grains(gcfg);
    vec![
        ("10-queens".into(), Arc::new(qw), Arc::new(qt)),
        ("15-puzzle (s20)".into(), Arc::new(pw), Arc::new(pt)),
        ("gromos 8A (800 atoms)".into(), Arc::new(gw), Arc::new(gt)),
    ]
}

#[allow(clippy::too_many_arguments)]
fn measure(
    name: &str,
    workload: &Arc<Workload>,
    table: &Arc<GrainTable>,
    mode: GrainMode,
    mode_label: &'static str,
    transport: TransportKind,
    repeats: usize,
    seed: u64,
) -> Series {
    let truth = table.static_totals();
    let tasks = workload.stats().tasks;
    let mut cells = Vec::new();
    let mut base_us = 0u64;
    for &threads in THREADS {
        // Best-of-N damps OS-scheduler noise; every repeat is still
        // fully cross-validated.
        let mut best = u64::MAX;
        for r in 0..repeats {
            let mut opts = live_opts(table, mode, 1.0);
            opts.transport = transport;
            let out = live_run("RIPS", workload, threads, 0.4, seed + r as u64, opts);
            assert_eq!(out.solutions, truth.solutions, "{name} at {threads}t");
            assert_eq!(out.checksum, truth.checksum, "{name} at {threads}t");
            best = best.min(out.wall_us);
        }
        if threads == 1 {
            base_us = best;
        }
        let ceiling = tasks as f64 / threads as f64;
        cells.push(Cell {
            threads,
            wall_us: best,
            speedup: base_us as f64 / best.max(1) as f64,
            ceiling,
        });
        let note = if ceiling < 16.0 {
            format!(" [ceiling {ceiling:.1} tasks/thread — instance-limited]")
        } else {
            String::new()
        };
        eprintln!(
            "  {name} [{mode_label}/{}] {threads} threads: {:.3} s (speedup {:.2}){note}",
            transport.name(),
            best as f64 / 1e6,
            base_us as f64 / best.max(1) as f64
        );
    }
    // One extra profiled run at the widest width: metrics registry +
    // wall cycle clock + flight-recorder sink (so trace-emission cost
    // is exercised too). Separate from the timing cells above so the
    // published wall clocks carry no measurement overhead.
    let pthreads = *THREADS.last().unwrap();
    let clock: Arc<WallClock> = Arc::new(WallClock::new());
    let metrics = MetricsRegistry::new(pthreads);
    let (_flight, out) =
        with_metrics_clocked(&metrics, Arc::clone(&clock) as Arc<dyn CycleClock>, || {
            with_sink_clocked(
                FlightRecorder::new(pthreads, 64),
                Arc::clone(&clock) as Arc<dyn Clock>,
                || {
                    let mut opts = live_opts(table, mode, 1.0);
                    opts.transport = transport;
                    opts.clock = Some(Arc::clone(&clock) as Arc<dyn Clock>);
                    live_run("RIPS", workload, pthreads, 0.4, seed, opts)
                },
            )
        });
    assert_eq!(out.solutions, truth.solutions, "{name} profiled run");
    assert_eq!(out.checksum, truth.checksum, "{name} profiled run");
    let snap = metrics.snapshot();
    let phases: Vec<(&'static str, u64, u64, f64)> = PHASES
        .iter()
        .map(|&(label, h)| {
            let hs = snap.histo(h);
            (label, hs.count, hs.sum, hs.mean())
        })
        .collect();
    let breakdown = Breakdown {
        threads: pthreads,
        dispatch_rounds: snap.counter(Counter::DispatchRounds),
        phases,
    };
    let round = snap.histo(Histo::DispatchRoundNs);
    let setup = snap.histo(Histo::GrainSetupNs);
    eprintln!(
        "  {name} [{mode_label}/{}] overhead at {pthreads}t: {} rounds, \
         mean {:.0} ns/round ({:.0} ns setup)",
        transport.name(),
        breakdown.dispatch_rounds,
        round.mean(),
        setup.mean()
    );

    Series {
        app: name.to_string(),
        tasks,
        solutions: truth.solutions,
        mode: mode_label,
        transport: transport.name(),
        cells,
        breakdown,
    }
}

fn best_at_4_threads<'a>(
    series: &'a [Series],
    mode: &str,
    transport: &str,
) -> Option<(&'a str, f64)> {
    series
        .iter()
        .filter(|s| s.mode == mode && s.transport == transport)
        .filter_map(|s| {
            s.cells
                .iter()
                .find(|c| c.threads == 4)
                .map(|c| (s.app.as_str(), c.speedup))
        })
        .max_by(|a, b| a.1.total_cmp(&b.1))
}

fn main() {
    let out_path = arg("--out").unwrap_or_else(|| "BENCH_LIVE.json".into());
    let repeats = arg_usize("--repeats", 2).max(1);
    let seed: u64 = arg("--seed").and_then(|v| v.parse().ok()).unwrap_or(1);
    let transports: Vec<TransportKind> = match arg("--transport").as_deref() {
        None | Some("both") => vec![TransportKind::Ring, TransportKind::Mpsc],
        Some(other) => match TransportKind::parse(other) {
            Some(t) => vec![t],
            None => {
                eprintln!("unknown --transport '{other}' (ring|mpsc|both)");
                std::process::exit(2);
            }
        },
    };
    let host = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    let mut series = Vec::new();
    for (name, workload, table) in apps() {
        eprintln!("{name}: {} tasks", workload.stats().tasks);
        for &transport in &transports {
            for (mode, label) in [(GrainMode::Compute, "compute"), (GrainMode::Timed, "timed")] {
                series.push(measure(
                    &name, &workload, &table, mode, label, transport, repeats, seed,
                ));
            }
        }
    }

    let best_timed_4t = best_at_4_threads(&series, "timed", transports[0].name());
    let best_compute_ring_4t = best_at_4_threads(&series, "compute", "ring");

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"live_speedup\",\n");
    json.push_str("  \"scheduler\": \"RIPS\",\n");
    json.push_str(&format!("  \"host_parallelism\": {host},\n"));
    json.push_str(&format!(
        "  \"transports\": [{}],\n",
        transports
            .iter()
            .map(|t| format!("{:?}", t.name()))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str(&format!("  \"repeats\": {repeats},\n"));
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"roster\": {:?},\n", registry().names()));
    if let Some((app, s)) = best_timed_4t {
        json.push_str(&format!(
            "  \"best_timed_speedup_at_4_threads\": {{\"app\": {app:?}, \"speedup\": {s:.3}}},\n"
        ));
    }
    if let Some((app, s)) = best_compute_ring_4t {
        json.push_str(&format!(
            "  \"best_compute_speedup_at_4_threads_ring\": \
             {{\"app\": {app:?}, \"speedup\": {s:.3}}},\n"
        ));
    }
    json.push_str("  \"series\": [\n");
    for (i, s) in series.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"app\": {:?}, \"mode\": {:?}, \"transport\": {:?}, \
             \"host_parallelism\": {host}, \"tasks\": {}, \"solutions\": {}, \"runs\": [",
            s.app, s.mode, s.transport, s.tasks, s.solutions
        ));
        for (j, c) in s.cells.iter().enumerate() {
            json.push_str(&format!(
                "{{\"threads\": {}, \"wall_us\": {}, \"speedup\": {:.3}, \"ceiling\": {:.1}}}{}",
                c.threads,
                c.wall_us,
                c.speedup,
                c.ceiling,
                if j + 1 < s.cells.len() { ", " } else { "" }
            ));
        }
        json.push_str(&format!(
            "], \"overhead_breakdown\": {{\"threads\": {}, \"dispatch_rounds\": {}, \
             \"phases\": {{",
            s.breakdown.threads, s.breakdown.dispatch_rounds
        ));
        for (j, (label, count, total, mean)) in s.breakdown.phases.iter().enumerate() {
            json.push_str(&format!(
                "{label:?}: {{\"count\": {count}, \"total_ns\": {total}, \
                 \"mean_ns\": {mean:.1}}}{}",
                if j + 1 < s.breakdown.phases.len() {
                    ", "
                } else {
                    ""
                }
            ));
        }
        json.push_str(&format!(
            "}}}}}}{}\n",
            if i + 1 < series.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    if let Some((app, s)) = best_timed_4t {
        println!("best timed speedup at 4 threads: {s:.2}x on {app}");
    }
    if let Some((app, s)) = best_compute_ring_4t {
        println!("best compute speedup at 4 threads (ring): {s:.2}x on {app} (host cores: {host})");
    }
    println!("wrote {out_path}");
}
