//! Figure 4: normalized communication cost of MWA against the optimal
//! (min-cost max-flow) scheduler.
//!
//! "In this test set, the load at each processor is randomly generated,
//! with the mean equal to the specified average number of tasks. The
//! average number of tasks in each processor varies from 2 to 100. …
//! The mesh organization is either M × M or M × M/2. Each data
//! presented here is the average of 100 different test cases."
//!
//! Output: one aligned series per panel — (a) 8/16/32 processors,
//! (b) 64/128/256 processors — with the mean of
//! `(C_MWA − C_OPT) / C_OPT` per weight. `--trials K` overrides the
//! 100-case default.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use rips_bench::arg_usize;
use rips_flow::optimal_rebalance;
use rips_metrics::{Aggregate, Series};
use rips_sched::mwa;
use rips_topology::Mesh2D;

const WEIGHTS: [i64; 6] = [2, 5, 10, 20, 50, 100];

fn normalized_cost(mesh: &Mesh2D, weight: i64, trials: usize, seed: u64) -> Aggregate {
    use rips_topology::Topology;
    let mut agg = Aggregate::new();
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..trials {
        // Uniform in [0, 2w]: mean w, matching the paper's setup.
        let loads: Vec<i64> = (0..mesh.len())
            .map(|_| rng.random_range(0..=2 * weight))
            .collect();
        let (plan, _) = mwa(mesh, &loads);
        let opt = optimal_rebalance(mesh, &loads);
        let c_mwa = plan.edge_cost();
        let c_opt = opt.cost;
        debug_assert!(c_mwa >= c_opt);
        if c_opt > 0 {
            agg.push((c_mwa - c_opt) as f64 / c_opt as f64);
        } else {
            debug_assert_eq!(c_mwa, 0);
            agg.push(0.0);
        }
    }
    agg
}

fn panel(title: &str, sizes: &[usize], trials: usize) {
    let names: Vec<String> = sizes.iter().map(|n| format!("{n} procs")).collect();
    let mut series = Series::new(
        "weight".to_string(),
        names.iter().map(|s| s.to_string()).collect(),
    );
    // One thread per (size, weight) cell; MCMF on 256 nodes x 100
    // trials is the slow corner.
    let mut cells: Vec<Vec<Aggregate>> = vec![vec![Aggregate::new(); sizes.len()]; WEIGHTS.len()];
    std::thread::scope(|scope| {
        for (wi, row) in cells.iter_mut().enumerate() {
            for (si, slot) in row.iter_mut().enumerate() {
                let n = sizes[si];
                scope.spawn(move || {
                    let mesh = Mesh2D::near_square(n);
                    let seed = 0xF1640 + (wi * 16 + si) as u64;
                    *slot = normalized_cost(&mesh, WEIGHTS[wi], trials, seed);
                });
            }
        }
    });
    for (wi, row) in cells.iter().enumerate() {
        series.point(
            WEIGHTS[wi].to_string(),
            row.iter().map(|a| a.mean()).collect(),
        );
    }
    println!("{title}");
    println!("{}", series.render());
    println!();
}

fn main() {
    let trials = arg_usize("--trials", 100);
    println!("Figure 4: normalized communication cost (C_MWA - C_OPT) / C_OPT");
    println!("mean over {trials} random load vectors per point\n");
    panel("(a) 8, 16, and 32 processors", &[8, 16, 32], trials);
    panel("(b) 64, 128, and 256 processors", &[64, 128, 256], trials);
}
