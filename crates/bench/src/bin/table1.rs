//! Table I: comparison of scheduling algorithms on 32 processors.
//!
//! Columns as in the paper: number of tasks, non-local tasks, overhead
//! time `Th`, idle time `Ti`, execution time `T` (all seconds of
//! virtual machine time), and efficiency `µ`. `--nodes N` changes the
//! machine size; `--verbose` appends the RIPS per-phase log.

use rips_bench::{arg_flag, arg_usize, run_table, App};
use rips_metrics::Table;

fn main() {
    let nodes = arg_usize("--nodes", 32);
    let verbose = arg_flag("--verbose");
    println!("Table I: comparison of scheduling algorithms on {nodes} processors\n");
    let results = run_table(&App::paper_set(), nodes, 1);

    let mut table = Table::new(vec![
        "workload",
        "scheduler",
        "# tasks",
        "# nonlocal",
        "Th (s)",
        "Ti (s)",
        "T (s)",
        "mu",
    ]);
    for (app, rows) in &results {
        for row in rows {
            table.row(vec![
                app.label(),
                row.scheduler.to_string(),
                row.tasks.to_string(),
                row.outcome.nonlocal.to_string(),
                format!("{:.2}", row.outcome.overhead_s()),
                format!("{:.2}", row.outcome.idle_s()),
                format!("{:.2}", row.outcome.exec_time_s()),
                format!("{:.0}%", row.outcome.efficiency() * 100.0),
            ]);
        }
    }
    println!("{}", table.render());

    if verbose {
        for (app, rows) in &results {
            let rips = rows
                .iter()
                .find(|r| r.scheduler == "RIPS")
                .expect("RIPS row");
            println!(
                "\n{}: {} system phases",
                app.label(),
                rips.outcome.system_phases
            );
            for p in &rips.phases {
                println!(
                    "  phase {:3} round {:2}: {:6} tasks queued, {:5} migrated, edge cost {:6}",
                    p.phase, p.round, p.total_tasks, p.migrated, p.edge_cost
                );
            }
        }
    }
}
