//! Per-node utilization timeline: *see* the RIPS phase structure.
//!
//! Runs 13-Queens under RIPS and under randomized allocation with
//! timeline recording and renders ASCII Gantt charts: RIPS shows thin
//! synchronized overhead stripes (system phases) between solid user
//! phases; random shows per-task overhead smeared everywhere.

use rips_bench::{arg_usize, App};
use rips_core::{rips, Machine, RipsConfig};
use rips_desim::LatencyModel;
use rips_metrics::utilization_chart;
use rips_runtime::Costs;
use rips_topology::{Mesh2D, Topology};
use std::sync::Arc;

fn main() {
    let nodes = arg_usize("--nodes", 16);
    let width = arg_usize("--width", 100);
    let w = Arc::new(App::Queens(13).build());
    let costs = Costs {
        record_timeline: true,
        ..Costs::default()
    };
    let mesh = Mesh2D::near_square(nodes);

    let out = rips(
        Arc::clone(&w),
        Machine::Mesh(mesh.clone()),
        LatencyModel::paragon(),
        costs,
        1,
        RipsConfig::default(),
    );
    out.run.verify_complete(&w).expect("complete");
    println!(
        "RIPS, 13-Queens on {nodes} nodes ({} system phases):\n",
        out.run.system_phases
    );
    println!("{}", utilization_chart(&out.run.stats, width));

    let topo: Arc<dyn Topology> = Arc::new(mesh);
    let rand = rips_balancers::random(Arc::clone(&w), topo, LatencyModel::paragon(), costs, 1);
    rand.verify_complete(&w).expect("complete");
    println!("Randomized allocation, same workload:\n");
    println!("{}", utilization_chart(&rand.stats, width));
}
