//! Per-node utilization timeline: *see* the RIPS phase structure.
//!
//! Runs 13-Queens under RIPS and under randomized allocation with
//! timeline recording and renders ASCII Gantt charts: RIPS shows thin
//! synchronized overhead stripes (system phases) between solid user
//! phases; random shows per-task overhead smeared everywhere.

use rips_bench::{arg_usize, registry, App};
use rips_desim::LatencyModel;
use rips_metrics::utilization_chart;
use rips_runtime::{Costs, RunSpec};
use std::sync::Arc;

fn main() {
    let nodes = arg_usize("--nodes", 16);
    let width = arg_usize("--width", 100);
    let w = Arc::new(App::Queens(13).build());
    let reg = registry();
    let spec = RunSpec {
        workload: Arc::clone(&w),
        nodes,
        latency: LatencyModel::paragon(),
        costs: Costs {
            record_timeline: true,
            ..Costs::default()
        },
        seed: 1,
        rid_u: 0.4,
    };

    let out = reg.run("RIPS", &spec);
    out.outcome.verify_complete(&w).expect("complete");
    println!(
        "RIPS, 13-Queens on {nodes} nodes ({} system phases):\n",
        out.outcome.system_phases
    );
    println!("{}", utilization_chart(&out.outcome.stats, width));

    let rand = reg.run("Random", &spec).outcome;
    rand.verify_complete(&w).expect("complete");
    println!("Randomized allocation, same workload:\n");
    println!("{}", utilization_chart(&rand.stats, width));
}
