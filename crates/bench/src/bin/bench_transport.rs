//! `bench_transport` — fabric microbenchmark: mpsc vs SPSC rings.
//!
//! Isolates the transport swap from everything else the live backend
//! does: N producer threads hammer one consumer with `u64` payloads,
//! once over a shared `std::sync::mpsc` channel (the old fabric, one
//! MPSC queue per receiver) and once over one `rips_live::ring::spsc`
//! ring per producer with the consumer round-robin draining them (the
//! new fabric, sharded per edge). Both sides busy-poll the consumer so
//! the comparison is queue mechanics, not wakeup policy.
//!
//! Paper connection: incremental scheduling's protocol traffic is many
//! tiny messages on latency-sensitive paths; §"message batching" of
//! DESIGN.md motivates why per-message transfer cost is the number to
//! shrink. This binary prints ns/message for 1..=4 producers and the
//! ring:mpsc ratio, and exits nonzero only on lost messages.
//!
//! ```text
//! bench_transport [--msgs 200000] [--repeats 3]
//! ```

use std::sync::mpsc;
use std::time::Instant;

use rips_bench::arg_usize;
use rips_live::ring::spsc;

/// Consumer-side checksum folding order-independent content: count and
/// wrapping sum pin that nothing was lost or duplicated.
#[derive(Default, PartialEq, Eq, Debug)]
struct Tally {
    count: u64,
    sum: u64,
}

impl Tally {
    fn add(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
    }
}

fn expected(producers: usize, msgs: usize) -> Tally {
    let mut t = Tally::default();
    for p in 0..producers {
        for i in 0..msgs {
            t.add((p as u64) << 32 | i as u64);
        }
    }
    t
}

/// All producers share one mpsc sender; the consumer drains the single
/// queue. This is the live backend's fallback fabric shape.
fn run_mpsc(producers: usize, msgs: usize) -> (u64, Tally) {
    let (tx, rx) = mpsc::channel::<u64>();
    let start = Instant::now();
    let tally = std::thread::scope(|s| {
        for p in 0..producers {
            let tx = tx.clone();
            s.spawn(move || {
                for i in 0..msgs {
                    tx.send((p as u64) << 32 | i as u64).unwrap();
                }
            });
        }
        drop(tx);
        let mut tally = Tally::default();
        while let Ok(v) = rx.recv() {
            tally.add(v);
        }
        tally
    });
    (start.elapsed().as_nanos() as u64, tally)
}

/// One SPSC ring per producer; the consumer round-robins across them.
/// This is the live backend's sharded fast-path fabric shape.
fn run_ring(producers: usize, msgs: usize) -> (u64, Tally) {
    let total = (producers * msgs) as u64;
    let mut txs = Vec::new();
    let mut rxs = Vec::new();
    for _ in 0..producers {
        let (tx, rx) = spsc::<u64>(256);
        txs.push(tx);
        rxs.push(rx);
    }
    let start = Instant::now();
    let tally = std::thread::scope(|s| {
        for (p, mut tx) in txs.into_iter().enumerate() {
            s.spawn(move || {
                for i in 0..msgs {
                    let mut v = (p as u64) << 32 | i as u64;
                    // Full ring: yield until the consumer catches up,
                    // like the live sender does under backpressure
                    // (essential on hosts with fewer cores than
                    // threads — a pure spin starves the consumer).
                    while let Err(back) = tx.push(v) {
                        v = back;
                        std::thread::yield_now();
                    }
                }
            });
        }
        let mut tally = Tally::default();
        let mut cursor = 0usize;
        let mut idle = 0usize;
        while tally.count < total {
            if let Some(v) = rxs[cursor].pop() {
                tally.add(v);
                idle = 0;
            } else {
                // A full empty sweep means the producers are behind —
                // give them the core instead of burning it.
                idle += 1;
                if idle >= rxs.len() {
                    idle = 0;
                    std::thread::yield_now();
                }
            }
            cursor = (cursor + 1) % rxs.len();
        }
        tally
    });
    (start.elapsed().as_nanos() as u64, tally)
}

fn main() {
    let msgs = arg_usize("--msgs", 200_000);
    let repeats = arg_usize("--repeats", 3).max(1);
    println!("transport microbenchmark: {msgs} msgs/producer, best of {repeats}");
    println!(
        "{:>9} {:>14} {:>14} {:>12}",
        "producers", "mpsc ns/msg", "ring ns/msg", "ring:mpsc"
    );
    let mut lost = false;
    for producers in 1..=4 {
        let want = expected(producers, msgs);
        let total = (producers * msgs) as f64;
        let mut best_mpsc = u64::MAX;
        let mut best_ring = u64::MAX;
        for _ in 0..repeats {
            let (ns, tally) = run_mpsc(producers, msgs);
            lost |= tally != want;
            best_mpsc = best_mpsc.min(ns);
            let (ns, tally) = run_ring(producers, msgs);
            lost |= tally != want;
            best_ring = best_ring.min(ns);
        }
        println!(
            "{producers:>9} {:>14.1} {:>14.1} {:>11.2}x",
            best_mpsc as f64 / total,
            best_ring as f64 / total,
            best_mpsc as f64 / best_ring as f64
        );
    }
    if lost {
        eprintln!("FAILED: a fabric lost or duplicated messages");
        std::process::exit(1);
    }
}
