//! Engine throughput benchmark: 15-Queens under RID and RIPS on 32
//! processors (the paper's headline machine size), reported as
//! simulator events per wall-clock second.
//!
//! Writes `BENCH_DESIM.json` in the current directory:
//!
//! ```json
//! {
//!   "nodes": 32,
//!   "cells": [
//!     {"scheduler": "RID", "events": ..., "wall_ms": ...,
//!      "events_per_sec": ..., "peak_queue_depth": ...},
//!     ...
//!   ],
//!   "total_events_per_sec": ...
//! }
//! ```
//!
//! The simulated results are seed-deterministic and engine-version
//! invariant (see `crates/bench/tests/golden.rs`), so `events` is
//! constant across engine changes and `events_per_sec` moves 1:1 with
//! wall time — the honest throughput metric for the hot-path work.

use std::fmt::Write as _;
use std::time::Instant;

use rips_bench::{arg_usize, run_scheduler, App};

fn main() {
    let nodes = arg_usize("--nodes", 32);
    let seed = arg_usize("--seed", 1) as u64;
    let reps = arg_usize("--reps", 5).max(1);
    let app = App::Queens(15);
    eprintln!("building {} workload...", app.label());
    let workload = std::sync::Arc::new(app.build());

    let mut cells = String::new();
    let mut total_events = 0u64;
    let mut total_wall_s = 0f64;
    for (i, sched) in ["RID", "RIPS"].into_iter().enumerate() {
        eprintln!("running {sched} on {nodes} nodes x{reps}...");
        // Deterministic sims: every rep replays the identical run, so
        // repetition only tightens the wall-clock estimate (best-of).
        let mut wall = f64::INFINITY;
        let mut row = None;
        for _ in 0..reps {
            let t0 = Instant::now();
            let r = run_scheduler(sched, &workload, nodes, app.rid_u(nodes), seed);
            wall = wall.min(t0.elapsed().as_secs_f64());
            row = Some(r);
        }
        let row = row.expect("reps >= 1");
        let events = row.outcome.stats.events;
        let eps = events as f64 / wall;
        total_events += events;
        total_wall_s += wall;
        eprintln!(
            "  {sched}: {events} events in {:.0} ms -> {:.0} events/sec (peak queue {})",
            wall * 1e3,
            eps,
            row.outcome.stats.peak_queue_depth
        );
        if i > 0 {
            cells.push_str(",\n");
        }
        write!(
            cells,
            "    {{\"scheduler\": \"{sched}\", \"events\": {events}, \
             \"wall_ms\": {:.1}, \"events_per_sec\": {:.0}, \
             \"peak_queue_depth\": {}}}",
            wall * 1e3,
            eps,
            row.outcome.stats.peak_queue_depth
        )
        .unwrap();
    }

    let total_eps = total_events as f64 / total_wall_s;
    let json = format!(
        "{{\n  \"workload\": \"{}\",\n  \"nodes\": {nodes},\n  \"cells\": [\n{cells}\n  ],\n  \"total_events_per_sec\": {total_eps:.0}\n}}\n",
        app.label()
    );
    std::fs::write("BENCH_DESIM.json", &json).expect("write BENCH_DESIM.json");
    print!("{json}");
}
