//! Ablation: the naive periodic transfer-condition test (paper §2).
//!
//! "A naive implementation periodically invokes a global reduction
//! operation. … An interval that is too short increases communication
//! overhead, and an interval that is too long may result in unnecessary
//! processor idle. The optimal length of the interval is to be
//! determined by empirical study." — this is that empirical study,
//! with the event-driven ANY policy as the reference.

use rips_bench::{arg_usize, run_rips_with, App};
use rips_core::{GlobalPolicy, LocalPolicy};
use rips_metrics::Table;

fn main() {
    let nodes = arg_usize("--nodes", 32);
    println!("Periodic transfer-test interval sweep, 13-Queens ({nodes} processors)\n");
    let w = std::sync::Arc::new(App::Queens(13).build());
    let intervals_ms = [0.5f64, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0];

    let mut table = Table::new(vec!["policy", "phases", "Th (s)", "Ti (s)", "T (s)", "mu"]);
    for &ms in &intervals_ms {
        let us = (ms * 1000.0) as u64;
        let row = run_rips_with(
            &w,
            nodes,
            rips_core::RipsConfig {
                local: LocalPolicy::Lazy,
                global: GlobalPolicy::Periodic(us),
                ..rips_core::RipsConfig::default()
            },
            1,
        );
        table.row(vec![
            format!("periodic {ms} ms"),
            row.outcome.system_phases.to_string(),
            format!("{:.2}", row.outcome.overhead_s()),
            format!("{:.2}", row.outcome.idle_s()),
            format!("{:.2}", row.outcome.exec_time_s()),
            format!("{:.0}%", row.outcome.efficiency() * 100.0),
        ]);
    }
    let any = run_rips_with(
        &w,
        nodes,
        rips_core::RipsConfig {
            local: LocalPolicy::Lazy,
            global: GlobalPolicy::Any,
            ..rips_core::RipsConfig::default()
        },
        1,
    );
    table.row(vec![
        "event-driven ANY".to_string(),
        any.outcome.system_phases.to_string(),
        format!("{:.2}", any.outcome.overhead_s()),
        format!("{:.2}", any.outcome.idle_s()),
        format!("{:.2}", any.outcome.exec_time_s()),
        format!("{:.0}%", any.outcome.efficiency() * 100.0),
    ]);
    println!("{}", table.render());
}
