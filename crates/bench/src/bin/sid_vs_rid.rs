//! Sender-initiated vs receiver-initiated diffusion (Eager et al.,
//! the paper's reference \[11\]) on the paper's workloads.
//!
//! The classic result: sender-initiated wins when the system is lightly
//! loaded (work spreads as soon as it exists; idle receivers have
//! nothing to poll for), receiver-initiated wins when heavily loaded
//! (requests target nodes that actually have surplus; pushes chase
//! moving targets). IDA\*'s light iterations vs N-Queens' saturated
//! drain make the contrast visible on the paper's own applications.

use std::sync::Arc;

use rips_bench::{arg_usize, registry, run_cell, App, Row};
use rips_metrics::Table;

fn main() {
    let nodes = arg_usize("--nodes", 32);
    println!("Sender- vs receiver-initiated diffusion ({nodes} processors)\n");
    let apps = [App::Queens(13), App::Ida(1), App::Ida(3), App::Gromos(8.0)];
    let mut table = Table::new(vec![
        "workload", "strategy", "nonlocal", "Th (s)", "Ti (s)", "T (s)", "mu",
    ]);
    let reg = registry();
    let mut rows: Vec<Option<Vec<Vec<String>>>> = (0..apps.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let reg = &reg;
        for (slot, &app) in rows.iter_mut().zip(&apps) {
            scope.spawn(move || {
                let w = Arc::new(app.build());
                let rid_row = run_cell(reg, "RID", &w, nodes, app.rid_u(nodes), 1);
                let sid_row = run_cell(reg, "SID", &w, nodes, app.rid_u(nodes), 1);
                let fmt = |r: &Row| {
                    vec![
                        app.label(),
                        r.scheduler.clone(),
                        r.outcome.nonlocal.to_string(),
                        format!("{:.2}", r.outcome.overhead_s()),
                        format!("{:.2}", r.outcome.idle_s()),
                        format!("{:.2}", r.outcome.exec_time_s()),
                        format!("{:.0}%", r.outcome.efficiency() * 100.0),
                    ]
                };
                *slot = Some(vec![fmt(&rid_row), fmt(&sid_row)]);
            });
        }
    });
    for group in rows {
        for row in group.expect("slot filled") {
            table.row(row);
        }
    }
    println!("{}", table.render());
}
