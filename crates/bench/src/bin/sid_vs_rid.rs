//! Sender-initiated vs receiver-initiated diffusion (Eager et al.,
//! the paper's reference \[11\]) on the paper's workloads.
//!
//! The classic result: sender-initiated wins when the system is lightly
//! loaded (work spreads as soon as it exists; idle receivers have
//! nothing to poll for), receiver-initiated wins when heavily loaded
//! (requests target nodes that actually have surplus; pushes chase
//! moving targets). IDA\*'s light iterations vs N-Queens' saturated
//! drain make the contrast visible on the paper's own applications.

use std::sync::Arc;

use rips_balancers::{rid, sid, RidParams, SidParams};
use rips_bench::{arg_usize, App};
use rips_desim::LatencyModel;
use rips_metrics::Table;
use rips_runtime::Costs;
use rips_topology::{Mesh2D, Topology};

fn main() {
    let nodes = arg_usize("--nodes", 32);
    println!("Sender- vs receiver-initiated diffusion ({nodes} processors)\n");
    let apps = [App::Queens(13), App::Ida(1), App::Ida(3), App::Gromos(8.0)];
    let mut table = Table::new(vec![
        "workload", "strategy", "nonlocal", "Th (s)", "Ti (s)", "T (s)", "mu",
    ]);
    let mut rows: Vec<Option<Vec<Vec<String>>>> = (0..apps.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (slot, &app) in rows.iter_mut().zip(&apps) {
            scope.spawn(move || {
                let w = Arc::new(app.build());
                let mesh = Mesh2D::near_square(nodes);
                let topo = || -> Arc<dyn Topology> { Arc::new(mesh.clone()) };
                let lat = LatencyModel::paragon();
                let costs = Costs::default();
                let rid_out = rid(
                    Arc::clone(&w),
                    topo(),
                    lat,
                    costs,
                    1,
                    RidParams {
                        u: app.rid_u(nodes),
                        ..RidParams::default()
                    },
                );
                let sid_out = sid(Arc::clone(&w), topo(), lat, costs, 1, SidParams::default());
                rid_out.verify_complete(&w).expect("RID complete");
                sid_out.verify_complete(&w).expect("SID complete");
                let fmt = |name: &str, o: &rips_runtime::RunOutcome| {
                    vec![
                        app.label(),
                        name.to_string(),
                        o.nonlocal.to_string(),
                        format!("{:.2}", o.overhead_s()),
                        format!("{:.2}", o.idle_s()),
                        format!("{:.2}", o.exec_time_s()),
                        format!("{:.0}%", o.efficiency() * 100.0),
                    ]
                };
                *slot = Some(vec![fmt("RID", &rid_out), fmt("SID", &sid_out)]);
            });
        }
    });
    for group in rows {
        for row in group.expect("slot filled") {
            table.row(row);
        }
    }
    println!("{}", table.render());
}
