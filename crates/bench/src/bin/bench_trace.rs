//! `bench_trace` — observability microbenchmark: what one event costs.
//!
//! The telemetry story (DESIGN §10) rests on two claims: the tracer
//! and the meter are a single predictable branch when nothing is
//! installed, and cheap enough to leave always-on when something is.
//! This binary measures both claims the same way `bench_transport`
//! measures the fabric swap: a tight loop over one operation, best of
//! N repeats, ns/op.
//!
//! Five rows:
//!
//! * `tracer-off`   — [`Tracer::emit`] with no sink installed (the
//!   simulator's default); the event closure must never run.
//! * `tracer-on`    — emit into an installed [`TraceBuffer`]: payload
//!   construction + sink lock + record.
//! * `flight-on`    — emit into a [`FlightRecorder`] overwrite ring,
//!   the always-on live-run configuration.
//! * `counter-add`  — [`Meter::inc`] against an installed registry:
//!   one relaxed fetch-add on a cache-line-padded shard.
//! * `histo-observe` — [`Meter::observe`]: fetch-adds on the log2
//!   bucket, sum, and count cells.
//!
//! Exits nonzero if any instrumented run recorded the wrong number of
//! events (a lost tap would make every cost number a lie).
//!
//! ```text
//! bench_trace [--events 1000000] [--repeats 3]
//! ```

use std::time::Instant;

use rips_bench::arg_usize;
use rips_trace::metrics_rt::{Counter, Histo};
use rips_trace::{
    with_metrics, with_sink, FlightRecorder, Meter, MetricsRegistry, TraceBuffer, TraceEvent,
    Tracer,
};

/// One emitted payload, varied per iteration so the compiler cannot
/// hoist the closure body out of the loop.
fn event(i: u64) -> TraceEvent {
    TraceEvent::QueueDepth {
        depth: (i & 0xffff) as u32,
    }
}

/// Times `f` over `events` iterations and returns total ns.
fn timed(f: impl FnOnce()) -> u64 {
    let start = Instant::now();
    f();
    start.elapsed().as_nanos() as u64
}

fn run_tracer_off(events: u64) -> (u64, bool) {
    // No sink installed: `current()` hands back a disabled tracer and
    // every emit must take the single `installed.is_none()` branch.
    let tracer = Tracer::current();
    let mut closures_ran = 0u64;
    let ns = timed(|| {
        for i in 0..events {
            tracer.emit(i, (i % 7) as usize, || {
                closures_ran += 1;
                event(i)
            });
        }
    });
    (ns, closures_ran == 0)
}

fn run_tracer_on(events: u64) -> (u64, bool) {
    let mut ns = 0;
    let (buf, ()) = with_sink(TraceBuffer::new(), || {
        let tracer = Tracer::current();
        ns = timed(|| {
            for i in 0..events {
                tracer.emit(i, (i % 7) as usize, || event(i));
            }
        });
    });
    (ns, buf.records.len() as u64 == events)
}

fn run_flight_on(events: u64) -> (u64, bool) {
    let mut ns = 0;
    let (rec, ()) = with_sink(FlightRecorder::new(8, 64), || {
        let tracer = Tracer::current();
        ns = timed(|| {
            for i in 0..events {
                tracer.emit(i, (i % 7) as usize, || event(i));
            }
        });
    });
    (ns, rec.total_recorded() == events)
}

fn run_counter_add(events: u64) -> (u64, bool) {
    let reg = MetricsRegistry::new(8);
    let mut ns = 0;
    with_metrics(&reg, || {
        let meter = Meter::current().for_shard(3);
        ns = timed(|| {
            for _ in 0..events {
                meter.inc(Counter::TasksExecuted);
            }
        });
    });
    (ns, reg.counter_total(Counter::TasksExecuted) == events)
}

fn run_histo_observe(events: u64) -> (u64, bool) {
    let reg = MetricsRegistry::new(8);
    let mut ns = 0;
    with_metrics(&reg, || {
        let meter = Meter::current().for_shard(3);
        ns = timed(|| {
            for i in 0..events {
                meter.observe(Histo::GrainExecNs, i);
            }
        });
    });
    (ns, reg.snapshot().histo(Histo::GrainExecNs).count == events)
}

fn main() {
    let events = arg_usize("--events", 1_000_000) as u64;
    let repeats = arg_usize("--repeats", 3).max(1);
    println!("trace/metrics microbenchmark: {events} events/op, best of {repeats}");
    println!("{:>14} {:>12}", "op", "ns/event");

    /// One benchmark row: returns (total ns, event-count check).
    type Row = fn(u64) -> (u64, bool);
    let rows: &[(&str, Row)] = &[
        ("tracer-off", run_tracer_off),
        ("tracer-on", run_tracer_on),
        ("flight-on", run_flight_on),
        ("counter-add", run_counter_add),
        ("histo-observe", run_histo_observe),
    ];
    let mut ok = true;
    for &(label, f) in rows {
        let mut best = u64::MAX;
        for _ in 0..repeats {
            let (ns, counted) = f(events);
            ok &= counted;
            best = best.min(ns);
        }
        println!("{label:>14} {:>12.2}", best as f64 / events as f64);
    }
    if !ok {
        eprintln!("FAILED: an instrumented run lost events");
        std::process::exit(1);
    }
}
