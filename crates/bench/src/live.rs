//! Live-backend experiment driver: runs any roster scheduler on real
//! OS threads (one per node) with real application grains, for
//! cross-validation against the simulator and wall-clock speedup
//! measurement (`BENCH_LIVE.json`, the `live-smoke` CI job, and
//! `rips live`).
//!
//! The scheduler roster here is *the same* as [`registry`](crate::registry) —
//! both dispatch by the same names onto the same policy constructors —
//! so every cross-backend comparison runs identical policy code on
//! both backends.

use std::sync::Arc;

use rips_apps::{
    gromos_with_grains, nqueens_with_grains, puzzle_with_grains, GrainTable, GromosConfig,
    NQueensConfig, PuzzleConfig,
};
use rips_balancers::{gradient_policy, random_policy, rid_policy, sid_policy, RidParams};
use rips_core::{Machine, RipsConfig, RipsFleet};
use rips_live::{run_live, GrainMode, GrainResult, GrainRunner, LiveOpts, LiveOutcome};
use rips_runtime::{Costs, TaskInstance};
use rips_taskgraph::Workload;
use rips_topology::{Mesh2D, Topology};

use crate::{App, RegistryTuning};

/// Adapts an app [`GrainTable`] to the live backend's [`GrainRunner`]
/// contract: each executed task runs its recorded real computation.
pub struct TableRunner(pub Arc<GrainTable>);

impl GrainRunner for TableRunner {
    fn run(&self, inst: &TaskInstance) -> GrainResult {
        let out = self.0.run(inst.round, inst.task);
        GrainResult {
            checksum: out.checksum,
            solutions: out.solutions,
        }
    }
}

/// A workload paired with the grain table that executes it for real.
pub struct LiveApp {
    /// The task structure (same object both backends schedule).
    pub workload: Arc<Workload>,
    /// The real work behind each task.
    pub table: Arc<GrainTable>,
}

impl App {
    /// Builds the workload together with its grain table (the live
    /// counterpart of [`App::build`]).
    pub fn build_live(&self) -> LiveApp {
        let (w, t) = match *self {
            App::Queens(n) => nqueens_with_grains(NQueensConfig::paper(n)),
            App::Ida(c) => puzzle_with_grains(PuzzleConfig::paper(c)),
            App::Gromos(r) => gromos_with_grains(GromosConfig::paper(r)),
        };
        LiveApp {
            workload: Arc::new(w),
            table: Arc::new(t),
        }
    }
}

/// Builds [`LiveOpts`] running grains out of `table`.
pub fn live_opts(table: &Arc<GrainTable>, mode: GrainMode, timed_scale: f64) -> LiveOpts {
    LiveOpts {
        mode,
        timed_scale,
        runner: Arc::new(TableRunner(Arc::clone(table))),
        ..LiveOpts::default()
    }
}

/// Runs one roster scheduler (by its [`registry`](crate::registry)
/// name) on the live backend: `threads` OS threads over the same
/// near-square mesh the simulator uses, default costs, paper-default
/// tuning. For RIPS the outcome's `system_phases` is filled from the
/// fleet.
///
/// # Panics
/// If `scheduler` is not a roster name, or the run lost or duplicated
/// tasks.
pub fn live_run(
    scheduler: &str,
    workload: &Arc<Workload>,
    threads: usize,
    rid_u: f64,
    seed: u64,
    opts: LiveOpts,
) -> LiveOutcome {
    let t = RegistryTuning::default();
    let topo: Arc<dyn Topology> = Arc::new(Mesh2D::near_square(threads));
    let costs = Costs::default();
    let w = Arc::clone(workload);
    let out = match scheduler {
        "Random" => run_live(w, topo, costs, seed, opts, random_policy).0,
        "Gradient" => {
            let t2 = Arc::clone(&topo);
            run_live(w, topo, costs, seed, opts, move |me| {
                gradient_policy(t2.as_ref(), me, t.gradient)
            })
            .0
        }
        "RID" => {
            let t2 = Arc::clone(&topo);
            let params = RidParams { u: rid_u, ..t.rid };
            run_live(w, topo, costs, seed, opts, move |me| {
                rid_policy(t2.as_ref(), me, params)
            })
            .0
        }
        "SID" => {
            let t2 = Arc::clone(&topo);
            run_live(w, topo, costs, seed, opts, move |me| {
                sid_policy(t2.as_ref(), me, t.sid)
            })
            .0
        }
        "RIPS" => {
            let fleet = RipsFleet::new(t.rips, Machine::Mesh(Mesh2D::near_square(threads)));
            let ftopo = fleet.topology();
            let (mut out, policies) = run_live(w, ftopo, costs, seed, opts, |me| fleet.make(me));
            drop(policies);
            let (phases, _logs) = fleet.finish();
            out.system_phases = phases;
            out
        }
        "RIPS-H" => {
            let fleet = RipsFleet::new(t.rips, Machine::MeshHier(Mesh2D::near_square(threads)));
            let ftopo = fleet.topology();
            let (mut out, policies) = run_live(w, ftopo, costs, seed, opts, |me| fleet.make(me));
            drop(policies);
            let (phases, _logs) = fleet.finish();
            out.system_phases = phases;
            out
        }
        other => panic!("unknown scheduler {other:?}"),
    };
    out.verify_complete(workload)
        .unwrap_or_else(|e| panic!("{scheduler} live on {}: {e}", workload.name));
    // `system_phases` stays 0 for the baselines, like the simulator's
    // RunOutcome.
    out
}

/// Runs RIPS live with an explicit configuration (CLI support).
pub fn live_run_rips(
    workload: &Arc<Workload>,
    threads: usize,
    cfg: RipsConfig,
    seed: u64,
    opts: LiveOpts,
) -> LiveOutcome {
    let fleet = RipsFleet::new(cfg, Machine::Mesh(Mesh2D::near_square(threads)));
    let topo = fleet.topology();
    let (mut out, policies) = run_live(
        Arc::clone(workload),
        topo,
        costs_default(),
        seed,
        opts,
        |me| fleet.make(me),
    );
    drop(policies);
    let (phases, _logs) = fleet.finish();
    out.system_phases = phases;
    out.verify_complete(workload)
        .unwrap_or_else(|e| panic!("RIPS live on {}: {e}", workload.name));
    out
}

fn costs_default() -> Costs {
    Costs::default()
}
