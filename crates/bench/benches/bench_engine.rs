//! Microbenchmarks of the desim event loop itself, isolated from the
//! schedulers: the two traffic shapes the hot-path work targets.
//!
//! * `ping_pong` — every node pair bounces a counter back and forth.
//!   Exercises the heap push/pop path, the reusable effect buffers,
//!   and the flat distance table; no node is ever busy on arrival.
//! * `deferral_storm` — every node floods node 0 with work while node
//!   0 grinds through a long compute per message. Nearly every arrival
//!   parks in node 0's deferral lane, so this measures the lane +
//!   armed-wake-marker machinery under maximum pressure.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rips_desim::{Ctx, Engine, LatencyModel, Program, WorkKind};
use rips_topology::{Mesh2D, Topology};

/// Node pairs (2k, 2k+1) volley a hop counter until `rounds` is hit.
struct PingPong {
    me: usize,
    rounds: u32,
}

impl Program for PingPong {
    type Msg = u32;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
        // Even nodes serve; odd nodes open the rally with their peer.
        if self.me % 2 == 1 {
            ctx.send(self.me - 1, 0, 16);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, from: usize, hops: u32) {
        ctx.compute(2, WorkKind::User);
        if hops < self.rounds {
            ctx.send(from, hops + 1, 16);
        }
    }
}

/// Every node but 0 fires `burst` messages at node 0 as fast as the
/// network allows; node 0 needs `grind` µs per message, so the lane
/// behind it stays deep for the whole run.
struct Storm {
    me: usize,
    burst: u32,
    grind: u64,
}

impl Program for Storm {
    type Msg = u32;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
        if self.me != 0 {
            for i in 0..self.burst {
                ctx.send(0, i, 16);
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, _from: usize, _msg: u32) {
        ctx.compute(self.grind, WorkKind::User);
    }
}

fn bench_ping_pong(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/ping_pong");
    group.sample_size(20);
    for nodes in [16usize, 64] {
        let topo: Arc<dyn Topology> = Arc::new(Mesh2D::near_square(nodes));
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
            b.iter(|| {
                let engine = Engine::new(Arc::clone(&topo), LatencyModel::paragon(), 1, |me| {
                    PingPong { me, rounds: 400 }
                });
                engine.run()
            });
        });
    }
    group.finish();
}

fn bench_deferral_storm(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/deferral_storm");
    group.sample_size(20);
    for nodes in [16usize, 64] {
        let topo: Arc<dyn Topology> = Arc::new(Mesh2D::near_square(nodes));
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
            b.iter(|| {
                let engine =
                    Engine::new(Arc::clone(&topo), LatencyModel::paragon(), 1, |me| Storm {
                        me,
                        burst: 200,
                        grind: 40,
                    });
                engine.run()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ping_pong, bench_deferral_storm);
criterion_main!(benches);
