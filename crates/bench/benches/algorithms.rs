//! Criterion microbenchmarks of the parallel scheduling algorithms
//! themselves: MWA across mesh sizes (the `3(n1+n2)`-step algorithm is
//! also cheap *as code*), TWA, DEM, and the MCMF optimal scheduler that
//! Figure 4 normalizes against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use rips_flow::optimal_rebalance;
use rips_sched::{dem, mwa, mwa_distributed, twa, twa_distributed};
use rips_topology::{BinaryTree, Hypercube, Mesh2D, Topology};

fn random_loads(n: usize, mean: i64, seed: u64) -> Vec<i64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random_range(0..=2 * mean)).collect()
}

fn bench_mwa(c: &mut Criterion) {
    let mut group = c.benchmark_group("mwa");
    for n in [32usize, 64, 128, 256] {
        let mesh = Mesh2D::near_square(n);
        let loads = random_loads(n, 50, n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| mwa(&mesh, &loads));
        });
    }
    group.finish();
}

fn bench_twa(c: &mut Criterion) {
    let mut group = c.benchmark_group("twa");
    for n in [31usize, 127, 255] {
        let tree = BinaryTree::new(n);
        let loads = random_loads(n, 50, n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| twa(&tree, &loads));
        });
    }
    group.finish();
}

fn bench_dem(c: &mut Criterion) {
    let mut group = c.benchmark_group("dem");
    for d in [5usize, 7, 8] {
        let cube = Hypercube::new(d);
        let loads = random_loads(cube.len(), 50, d as u64);
        group.bench_with_input(BenchmarkId::from_parameter(cube.len()), &d, |b, _| {
            b.iter(|| dem(&cube, &loads));
        });
    }
    group.finish();
}

fn bench_optimal(c: &mut Criterion) {
    let mut group = c.benchmark_group("mcmf_optimal");
    group.sample_size(20);
    for n in [32usize, 64, 128] {
        let mesh = Mesh2D::near_square(n);
        let loads = random_loads(n, 50, n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| optimal_rebalance(&mesh, &loads));
        });
    }
    group.finish();
}

fn bench_distributed(c: &mut Criterion) {
    // The BSP realisations pay for their message-level fidelity; this
    // quantifies the as-code cost relative to the centralized
    // arithmetic above.
    let mut group = c.benchmark_group("distributed");
    group.sample_size(20);
    for n in [32usize, 64] {
        let mesh = Mesh2D::near_square(n);
        let loads = random_loads(n, 50, n as u64);
        group.bench_with_input(BenchmarkId::new("mwa_bsp", n), &n, |b, _| {
            b.iter(|| mwa_distributed(&mesh, &loads));
        });
    }
    for n in [31usize, 127] {
        let tree = BinaryTree::new(n);
        let loads = random_loads(n, 50, n as u64);
        group.bench_with_input(BenchmarkId::new("twa_bsp", n), &n, |b, _| {
            b.iter(|| twa_distributed(&tree, &loads));
        });
    }
    group.finish();
}

fn bench_engine_throughput(c: &mut Criterion) {
    // End-to-end simulator throughput: a full RIPS run of a small
    // workload, in simulated-events-per-wall-second terms.
    use rips_core::{rips, Machine, RipsConfig};
    use rips_desim::LatencyModel;
    use rips_runtime::Costs;
    use rips_taskgraph::skewed_flat;
    use std::sync::Arc;
    let mut group = c.benchmark_group("rips_end_to_end");
    group.sample_size(10);
    let w = Arc::new(skewed_flat(500, 800, 5, 8, 3));
    for nodes in [16usize, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &n| {
            b.iter(|| {
                rips(
                    Arc::clone(&w),
                    Machine::Mesh(Mesh2D::near_square(n)),
                    LatencyModel::paragon(),
                    Costs::default(),
                    1,
                    RipsConfig::default(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_mwa,
    bench_twa,
    bench_dem,
    bench_optimal,
    bench_distributed,
    bench_engine_throughput
);
criterion_main!(benches);
