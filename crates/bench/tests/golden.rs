//! Bit-for-bit golden outcomes for fixed seeds.
//!
//! The engine hot path is performance-tuned under one invariant: no
//! optimisation may change a simulated result. These tests pin the
//! complete outcome of several scheduler × workload × seed cells —
//! virtual end time, per-node CPU split, network counters, event
//! count, executed-task distribution, nonlocal moves — as a compact
//! string plus an FNV-1a digest of every per-node field. Any engine
//! change that shifts a single microsecond or reorders one delivery
//! shows up here.
//!
//! To regenerate after an *intentional* semantic change:
//!
//! ```text
//! cargo test -p rips-bench --test golden -- --ignored --nocapture
//! ```
//!
//! and paste the printed constants below, with a justification in the
//! commit message.

use std::sync::Arc;

use rips_apps::{nqueens, NQueensConfig};
use rips_bench::run_scheduler;
use rips_taskgraph::{geometric_tree, Workload};

/// FNV-1a over every numeric field of the outcome, in a fixed order.
fn digest(row: &rips_bench::Row) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    let out = &row.outcome;
    eat(out.stats.end_time);
    for n in &out.stats.nodes {
        eat(n.user_us);
        eat(n.overhead_us);
        eat(n.msgs_sent);
        eat(n.bytes_sent);
    }
    eat(out.stats.net.msgs);
    eat(out.stats.net.bytes);
    eat(out.stats.net.hops);
    eat(out.stats.events);
    for &e in &out.executed {
        eat(e);
    }
    eat(out.nonlocal);
    eat(out.system_phases as u64);
    for p in &row.phases {
        eat(p.phase as u64);
        eat(p.round as u64);
        eat(p.total_tasks as u64);
        eat(p.migrated as u64);
        eat(p.edge_cost as u64);
    }
    h
}

/// Human-readable summary line; the digest catches the long tail.
fn fingerprint(row: &rips_bench::Row) -> String {
    let s = &row.outcome.stats;
    format!(
        "end={} events={} msgs={} bytes={} hops={} exec={:?} nonlocal={} fnv={:#018x}",
        s.end_time,
        s.events,
        s.net.msgs,
        s.net.bytes,
        s.net.hops,
        row.outcome.executed,
        row.outcome.nonlocal,
        digest(row),
    )
}

fn queens9() -> Arc<Workload> {
    Arc::new(nqueens(NQueensConfig {
        n: 9,
        split_depth: 3,
        root_depth: 2,
        ns_per_node: 1800,
    }))
}

fn tree() -> Arc<Workload> {
    Arc::new(geometric_tree(6, 5, 3, 2500, 5))
}

/// (scheduler, workload, nodes, seed) cells pinned by the goldens.
fn cells() -> Vec<(&'static str, Arc<Workload>, usize, u64)> {
    vec![
        ("Random", queens9(), 8, 1),
        ("Gradient", queens9(), 8, 1),
        ("RID", queens9(), 8, 1),
        ("RIPS", queens9(), 8, 1),
        ("SID", queens9(), 8, 1),
        ("RID", tree(), 9, 3),
        ("RIPS", tree(), 9, 3),
        ("RIPS-H", queens9(), 8, 1),
        ("RIPS-H", tree(), 9, 3),
    ]
}

#[rustfmt::skip]
const GOLDEN: [&str; 9] = [
    "end=24197 events=508 msgs=209 bytes=12576 hops=428 exec=[30, 33, 43, 44, 32, 30, 33, 45] nonlocal=262 fnv=0xa873474ae8354021", // Random
    "end=18761 events=369 msgs=47 bytes=848 hops=47 exec=[38, 38, 34, 35, 36, 34, 37, 38] nonlocal=3 fnv=0x1ac6bb9cf312ae13", // Gradient
    "end=21278 events=516 msgs=217 bytes=3888 hops=217 exec=[37, 35, 36, 38, 37, 34, 35, 38] nonlocal=9 fnv=0x64d08f17305229b7", // RID
    "end=36698 events=598 msgs=305 bytes=5376 hops=602 exec=[39, 36, 35, 35, 35, 35, 36, 39] nonlocal=7 fnv=0xcb3b1779e69bf78b", // RIPS
    "end=49051 events=1101 msgs=802 bytes=31888 hops=802 exec=[38, 45, 24, 13, 39, 33, 51, 47] nonlocal=129 fnv=0x7d9275675c88ed6a", // SID
    "end=30107 events=450 msgs=329 bytes=6080 hops=329 exec=[21, 12, 6, 16, 7, 5, 6, 9, 0] nonlocal=21 fnv=0x265d236cf4288215", // RID
    "end=40607 events=449 msgs=372 bytes=6784 hops=740 exec=[12, 9, 9, 11, 9, 11, 7, 6, 8] nonlocal=24 fnv=0xb2c53342bee47891", // RIPS
    "end=38948 events=598 msgs=305 bytes=5376 hops=602 exec=[39, 36, 35, 35, 35, 35, 36, 39] nonlocal=7 fnv=0x77e9c31cf65924e2", // RIPS-H
    "end=44067 events=417 msgs=355 bytes=6528 hops=703 exec=[11, 10, 10, 12, 9, 10, 7, 5, 8] nonlocal=23 fnv=0x7e10421406286b2f", // RIPS-H
];

#[test]
fn fixed_seed_outcomes_are_bit_for_bit_stable() {
    for (i, (sched, w, nodes, seed)) in cells().into_iter().enumerate() {
        let row = run_scheduler(sched, &w, nodes, 0.4, seed);
        let got = fingerprint(&row);
        assert_eq!(
            got, GOLDEN[i],
            "golden mismatch for cell {i} ({sched} on {} / {nodes} nodes / seed {seed})",
            w.name
        );
    }
}

/// Every scheduler in the canonical registry must be pinned by at
/// least one golden cell — registering a scheduler without freezing
/// its behaviour is how silent drift starts.
#[test]
fn every_registry_entry_has_a_golden_cell() {
    let pinned: Vec<&str> = cells().iter().map(|&(s, ..)| s).collect();
    for name in rips_bench::registry().names() {
        assert!(
            pinned.contains(&name),
            "scheduler {name:?} is registered but has no golden cell"
        );
    }
}

/// Regeneration helper — prints the constants for `GOLDEN`.
#[test]
#[ignore = "generator: run with --ignored --nocapture to reprint goldens"]
fn print_goldens() {
    for (sched, w, nodes, seed) in cells() {
        let row = run_scheduler(sched, &w, nodes, 0.4, seed);
        println!("    \"{}\", // {sched}", fingerprint(&row));
    }
}
