//! Registry-generic property tests: every scheduler in the canonical
//! registry executes every task of an arbitrary dynamic workload
//! exactly once, deterministically, on arbitrary machine sizes.
//!
//! These used to be per-balancer copies in `rips-balancers`; running
//! them off the registry means a newly registered scheduler is
//! property-tested with zero new test code.

use std::sync::Arc;

use proptest::prelude::*;
use rips_audit::Auditor;
use rips_bench::registry;
use rips_desim::LatencyModel;
use rips_runtime::{Costs, RunSpec};
use rips_taskgraph::{TaskForest, Workload};

fn arb_workload() -> impl Strategy<Value = Workload> {
    let forest = (
        proptest::collection::vec(1u64..3_000, 1..20),
        proptest::collection::vec((0usize..20, 1u64..2_000), 0..15),
    )
        .prop_map(|(roots, children)| {
            let mut f = TaskForest::new();
            let ids: Vec<_> = roots.into_iter().map(|g| f.add_root(g)).collect();
            let mut all = ids.clone();
            for (parent_pick, grain) in children {
                let parent = all[parent_pick % all.len()];
                all.push(f.add_child(parent, grain));
            }
            f
        });
    proptest::collection::vec(forest, 1..=2).prop_map(|rounds| Workload {
        name: "arb".into(),
        rounds,
    })
}

fn spec(w: &Arc<Workload>, nodes: usize, seed: u64) -> RunSpec {
    RunSpec {
        workload: Arc::clone(w),
        nodes,
        latency: LatencyModel::paragon(),
        costs: Costs::default(),
        seed,
        rid_u: 0.4,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Exactly-once execution, with `verify_complete` distinguishing
    /// the two failure modes (lost tasks vs double execution).
    #[test]
    fn every_scheduler_executes_each_task_exactly_once(
        w in arb_workload(),
        nodes in 1usize..=12,
        seed in 0u64..50,
    ) {
        let w = Arc::new(w);
        let reg = registry();
        for name in reg.names() {
            let run = reg.run(name, &spec(&w, nodes, seed));
            let verdict = run.outcome.verify_complete(&w);
            prop_assert!(
                verdict.is_ok(),
                "{name} on {nodes} nodes, seed {seed}: {}",
                verdict.unwrap_err()
            );
        }
    }

    /// The paper's invariants hold on *arbitrary* workloads, not just
    /// the golden cells: every registered scheduler, run under the
    /// invariant auditor, upholds Theorem 1/2 on each complete system
    /// phase plus conservation and barrier pairing.
    #[test]
    fn every_scheduler_upholds_the_paper_invariants(
        w in arb_workload(),
        nodes in 1usize..=12,
        seed in 0u64..50,
    ) {
        let w = Arc::new(w);
        let reg = registry();
        for name in reg.names() {
            let (auditor, _run) = rips_trace::with_sink(Auditor::new(nodes), || {
                reg.run(name, &spec(&w, nodes, seed))
            });
            let report = auditor.finish();
            prop_assert!(
                report.is_ok(),
                "{} on {} nodes, seed {}:\n{}",
                name, nodes, seed, report.errors.join("\n")
            );
        }
    }

    /// Work conservation: total user time equals the workload's work —
    /// schedulers move tasks, they never shrink or inflate them.
    #[test]
    fn user_time_equals_total_work(w in arb_workload(), seed in 0u64..50) {
        let w = Arc::new(w);
        let want = w.stats().total_work_us;
        let reg = registry();
        for name in reg.names() {
            let run = reg.run(name, &spec(&w, 6, seed));
            prop_assert!(
                run.outcome.stats.total_user_us() == want,
                "{name}: user time {} != total work {want}",
                run.outcome.stats.total_user_us()
            );
        }
    }
}
