//! Registry-generic trace well-formedness and zero-cost guarantees.
//!
//! Every scheduler in the canonical roster must (a) produce a
//! well-formed trace when a sink is installed — balanced and properly
//! nested spans, monotone per-node span timestamps, strictly
//! increasing system-phase indices — and (b) produce *bit-identical
//! results* whether or not it is being traced: instrumentation must
//! observe the simulation, never perturb it. The golden digests pin
//! the untraced path across commits; this file pins traced == untraced
//! within a commit.

use std::sync::Arc;

use rips_apps::{nqueens, NQueensConfig};
use rips_bench::{registry, run_cell};
use rips_trace::{validate, with_sink, TraceBuffer, TraceEvent};

fn small_queens() -> Arc<rips_taskgraph::Workload> {
    Arc::new(nqueens(NQueensConfig {
        n: 9,
        split_depth: 3,
        root_depth: 2,
        ns_per_node: 1800,
    }))
}

#[test]
fn every_scheduler_emits_a_well_formed_trace() {
    let w = small_queens();
    let reg = registry();
    let tasks = w.stats().tasks as u64;
    for s in reg.names() {
        let (buf, row) = with_sink(TraceBuffer::new(), || run_cell(&reg, s, &w, 8, 0.4, 1));
        assert!(!buf.records.is_empty(), "{s}: no events recorded");
        assert!(buf.num_nodes() <= 8, "{s}: event from out-of-range node");
        let check = validate(&buf).unwrap_or_else(|e| panic!("{s}: malformed trace: {e}"));
        assert_eq!(
            check.task_execs as u64,
            row.outcome.total_executed(),
            "{s}: one TaskExec per executed task"
        );
        assert_eq!(check.task_execs as u64, tasks, "{s}: all tasks traced");
        // Every scheduler runs through the policy kernel, so queue
        // activity must be visible regardless of balancing strategy.
        assert!(
            buf.records
                .iter()
                .any(|r| matches!(r.event, TraceEvent::QueueDepth { .. })),
            "{s}: no queue-depth samples"
        );
    }
}

#[test]
fn rips_trace_has_phases_and_stages() {
    let w = small_queens();
    let reg = registry();
    let (buf, row) = with_sink(TraceBuffer::new(), || run_cell(&reg, "RIPS", &w, 8, 0.4, 1));
    let check = validate(&buf).expect("well-formed");
    assert!(check.closed_phases > 0, "RIPS must close phase spans");
    if row.outcome.system_phases > 0 {
        assert!(check.closed_stages > 0, "system phases have sub-stages");
    }
    // The machine halts inside the final termination phase: whatever is
    // still open is bounded by one phase span per node.
    assert!(check.open_spans <= 8, "at most one open span per node");
}

#[test]
fn tracing_never_perturbs_the_simulation() {
    let w = small_queens();
    let reg = registry();
    for s in reg.names() {
        let plain = run_cell(&reg, s, &w, 8, 0.4, 1);
        let (_buf, traced) = with_sink(TraceBuffer::new(), || run_cell(&reg, s, &w, 8, 0.4, 1));
        assert_eq!(
            plain.outcome.stats, traced.outcome.stats,
            "{s}: RunStats differ under tracing"
        );
        assert_eq!(plain.outcome.executed, traced.outcome.executed, "{s}");
        assert_eq!(plain.outcome.nonlocal, traced.outcome.nonlocal, "{s}");
        assert_eq!(
            plain.outcome.system_phases, traced.outcome.system_phases,
            "{s}"
        );
    }
}

#[test]
fn chrome_export_balances_spans_for_a_real_run() {
    let w = small_queens();
    let reg = registry();
    let (buf, row) = with_sink(TraceBuffer::new(), || run_cell(&reg, "RIPS", &w, 8, 0.4, 1));
    let json = buf.chrome_json("RIPS · queens9", row.outcome.stats.end_time);
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.ends_with("\"displayTimeUnit\":\"ms\"}"));
    // The exporter closes halt-open spans at end_time, so B and E
    // always balance in the emitted JSON.
    assert_eq!(
        json.matches("\"ph\":\"B\"").count(),
        json.matches("\"ph\":\"E\"").count(),
        "unbalanced B/E in export"
    );
    assert!(json.contains("\"ph\":\"X\""), "no task spans");
    assert!(json.contains("\"ph\":\"M\""), "no metadata track names");
}
