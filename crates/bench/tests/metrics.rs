//! Metrics-registry zero-cost and fidelity guarantees.
//!
//! The observability contract (DESIGN §10) mirrors the tracer's: the
//! registry must *observe* a run, never perturb it. Every scheduler in
//! the canonical roster must produce bit-identical results with and
//! without a registry installed — the golden digests pin the
//! metrics-off path across commits; this file pins metered ==
//! unmetered within a commit, and that the numbers the registry
//! reports agree with what the run actually did.

use std::sync::Arc;

use rips_apps::{nqueens, nqueens_with_grains, NQueensConfig};
use rips_bench::live::{live_opts, live_run};
use rips_bench::{registry, run_cell};
use rips_live::{GrainMode, WallClock};
use rips_trace::metrics_rt::{validate_openmetrics, Counter, CycleClock, Histo};
use rips_trace::{with_metrics, with_metrics_clocked, Clock, MetricsRegistry};

fn small_queens_cfg() -> NQueensConfig {
    NQueensConfig {
        n: 9,
        split_depth: 3,
        root_depth: 2,
        ns_per_node: 1800,
    }
}

fn small_queens() -> Arc<rips_taskgraph::Workload> {
    Arc::new(nqueens(small_queens_cfg()))
}

#[test]
fn metrics_never_perturb_the_simulation() {
    let w = small_queens();
    let reg = registry();
    for s in reg.names() {
        let plain = run_cell(&reg, s, &w, 8, 0.4, 1);
        let metrics = MetricsRegistry::new(8);
        let metered = with_metrics(&metrics, || run_cell(&reg, s, &w, 8, 0.4, 1));
        assert_eq!(
            plain.outcome.stats, metered.outcome.stats,
            "{s}: RunStats differ under metrics"
        );
        assert_eq!(plain.outcome.executed, metered.outcome.executed, "{s}");
        assert_eq!(plain.outcome.nonlocal, metered.outcome.nonlocal, "{s}");
        assert_eq!(
            plain.outcome.system_phases, metered.outcome.system_phases,
            "{s}"
        );
    }
}

#[test]
fn sim_counters_agree_with_run_outcome() {
    let w = small_queens();
    let reg = registry();
    let metrics = MetricsRegistry::new(8);
    let row = with_metrics(&metrics, || run_cell(&reg, "RIPS", &w, 8, 0.4, 1));
    let snap = metrics.snapshot();
    assert_eq!(
        snap.counter(Counter::TasksExecuted),
        row.outcome.total_executed(),
        "per-kernel executed taps must sum to the outcome"
    );
    assert_eq!(
        snap.counter(Counter::SimEvents),
        row.outcome.stats.events,
        "engine event tap must match the engine's own count"
    );
    assert!(
        snap.counter(Counter::MsgsSent) > 0,
        "protocol runs on messages"
    );
    assert!(
        snap.counter(Counter::TimerFires) > 0,
        "RIPS arms clock ticks"
    );
    // Virtual time: the ns histograms must stay empty in the simulator.
    assert_eq!(snap.histo(Histo::DispatchRoundNs).count, 0);
    assert_eq!(snap.histo(Histo::TraceEmitNs).count, 0);
}

#[test]
fn sim_snapshot_renders_valid_openmetrics_with_all_names() {
    let w = small_queens();
    let reg = registry();
    let metrics = MetricsRegistry::new(8);
    with_metrics(&metrics, || run_cell(&reg, "RIPS", &w, 8, 0.4, 1));
    let text = metrics.snapshot().render_openmetrics();
    let samples = validate_openmetrics(&text).expect("render must be valid OpenMetrics");
    // One sample per counter and gauge, several per histogram family.
    assert!(
        samples >= Counter::COUNT + rips_trace::metrics_rt::Gauge::COUNT + 3 * Histo::COUNT,
        "only {samples} sample lines rendered"
    );
    for c in Counter::ALL {
        assert!(
            text.contains(&format!("# TYPE {} counter", c.name())),
            "catalog entry {} missing from render",
            c.name()
        );
    }
    for required in [
        "rips_tasks_executed_total",
        "rips_msgs_sent_total",
        "rips_sim_events_total",
        "rips_dispatch_round_ns_bucket",
        "rips_queue_depth",
    ] {
        assert!(text.contains(required), "missing {required} in:\n{text}");
    }
}

#[test]
fn live_run_fills_the_dispatch_breakdown() {
    let (w, table) = nqueens_with_grains(small_queens_cfg());
    let (w, table) = (Arc::new(w), Arc::new(table));
    let truth = table.static_totals();
    let clock: Arc<WallClock> = Arc::new(WallClock::new());
    let metrics = MetricsRegistry::new(2);
    let out = with_metrics_clocked(&metrics, Arc::clone(&clock) as Arc<dyn CycleClock>, || {
        let mut opts = live_opts(&table, GrainMode::Compute, 1.0);
        opts.clock = Some(Arc::clone(&clock) as Arc<dyn Clock>);
        live_run("RIPS", &w, 2, 0.4, 1, opts)
    });
    assert_eq!(out.solutions, truth.solutions, "metered run still correct");
    assert_eq!(out.checksum, truth.checksum);

    let snap = metrics.snapshot();
    let rounds = snap.counter(Counter::DispatchRounds);
    assert!(rounds > 0, "node loops must count dispatch rounds");
    let round = snap.histo(Histo::DispatchRoundNs);
    let grain = snap.histo(Histo::GrainExecNs);
    assert_eq!(round.count, rounds, "every round timed");
    assert_eq!(
        grain.count,
        out.total_executed(),
        "every executed grain timed"
    );
    // Grain time nests inside its dispatch round under the same
    // clock, so the attribution can never exceed the total.
    assert!(
        round.sum >= grain.sum,
        "grain ns ({}) exceed round ns ({})",
        grain.sum,
        round.sum
    );
    assert_eq!(
        snap.histo(Histo::GrainSetupNs).count,
        rounds,
        "setup = round minus grain, once per round"
    );
    assert!(
        snap.counter(Counter::TasksExecuted) == out.total_executed(),
        "live kernels tap the same counters as simulated ones"
    );
}
