//! The invariant [`Auditor`] across the whole golden roster, plus the
//! workspace-wide rips-lint gate.
//!
//! Three guarantees ride here:
//!
//! * every golden cell upholds the paper's invariants — Theorem 1 load
//!   balance and Theorem 2 migration minimality on each complete
//!   system phase, task/migration conservation, barrier pairing, and
//!   phase monotonicity (`Auditor::finish` returns no errors);
//! * auditing is purely observational: running under the auditor (even
//!   fanned out beside a `TraceBuffer`) leaves `RunStats` bit-for-bit
//!   identical with the untraced run;
//! * `rips lint` is clean on the workspace source, so the CI gate can
//!   never go red on a commit that passes `cargo test`.

use std::sync::Arc;

use rips_apps::{nqueens, NQueensConfig};
use rips_audit::{lint_workspace, Auditor};
use rips_bench::{registry, run_cell, run_scheduler};
use rips_sched::TileGrid;
use rips_taskgraph::{geometric_tree, Workload};
use rips_topology::Mesh2D;
use rips_trace::{with_sink, Tee, TraceBuffer};

/// The auditor matching a scheduler's planning mode: RIPS-H gets the
/// tiling-aware auditor (per-tile Theorem 1, Lemma 1 as a lower
/// bound), everything else the flat one.
fn auditor_for(sched: &str, nodes: usize) -> Auditor {
    if sched == "RIPS-H" {
        let mesh = Mesh2D::near_square(nodes);
        Auditor::with_tiles(nodes, TileGrid::new(&mesh).assignment())
    } else {
        Auditor::new(nodes)
    }
}

fn queens9() -> Arc<Workload> {
    Arc::new(nqueens(NQueensConfig {
        n: 9,
        split_depth: 3,
        root_depth: 2,
        ns_per_node: 1800,
    }))
}

fn tree() -> Arc<Workload> {
    Arc::new(geometric_tree(6, 5, 3, 2500, 5))
}

/// The golden roster: same cells `tests/golden.rs` pins bit-for-bit.
fn cells() -> Vec<(&'static str, Arc<Workload>, usize, u64)> {
    vec![
        ("Random", queens9(), 8, 1),
        ("Gradient", queens9(), 8, 1),
        ("RID", queens9(), 8, 1),
        ("RIPS", queens9(), 8, 1),
        ("SID", queens9(), 8, 1),
        ("RID", tree(), 9, 3),
        ("RIPS", tree(), 9, 3),
        ("RIPS-H", queens9(), 8, 1),
        ("RIPS-H", tree(), 9, 3),
    ]
}

#[test]
fn every_golden_cell_upholds_the_paper_invariants() {
    for (sched, w, nodes, seed) in cells() {
        let (auditor, row) = with_sink(auditor_for(sched, nodes), || {
            run_scheduler(sched, &w, nodes, 0.4, seed)
        });
        let report = auditor.finish();
        assert!(
            report.is_ok(),
            "{sched} on {} ({nodes} nodes, seed {seed}) violates invariants:\n{}",
            w.name,
            report.errors.join("\n")
        );
        // The audit must agree with the run's own accounting.
        assert_eq!(
            report.executed,
            row.outcome.total_executed(),
            "{sched}: audited execution count diverges from RunStats"
        );
        assert_eq!(report.phases_incomplete, 0, "{sched}: phase lost loads");
        if sched.starts_with("RIPS") {
            // The theorem checks must actually bite on RIPS cells: one
            // checked phase per system phase the run reported, with a
            // post-schedule spread within Theorem 1's bound.
            assert_eq!(
                report.phases_checked, row.outcome.system_phases as usize,
                "{sched}: audited phases diverge from the run's phase count"
            );
            assert!(report.phases_checked > 0, "{sched} ran no system phases");
            assert!(report.max_spread <= 1, "Theorem 1 spread escaped the check");
            if sched == "RIPS-H" {
                assert!(report.tiles > 1, "tiled audit mode was not active");
            }
        } else {
            // Baselines never enter a system phase; the theorem checks
            // are vacuous but conservation and barriers still held.
            assert_eq!(report.phases_checked, 0, "{sched} has system phases?");
        }
    }
}

#[test]
fn auditing_never_perturbs_the_simulation() {
    let w = queens9();
    let reg = registry();
    for s in reg.names() {
        let plain = run_cell(&reg, s, &w, 8, 0.4, 1);
        // Fan out to a TraceBuffer *and* the auditor — the worst-case
        // instrumentation a user can attach.
        let (sink, audited) = with_sink(Tee(TraceBuffer::new(), auditor_for(s, 8)), || {
            run_cell(&reg, s, &w, 8, 0.4, 1)
        });
        let Tee(buf, auditor) = sink;
        assert!(!buf.records.is_empty(), "{s}: tee starved the buffer");
        assert!(auditor.finish().is_ok(), "{s}: invariants violated");
        assert_eq!(
            plain.outcome.stats, audited.outcome.stats,
            "{s}: RunStats differ under audit"
        );
        assert_eq!(plain.outcome.executed, audited.outcome.executed, "{s}");
        assert_eq!(plain.outcome.nonlocal, audited.outcome.nonlocal, "{s}");
    }
}

#[test]
fn workspace_is_lint_clean() {
    // crates/bench -> workspace root.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let report = lint_workspace(root).expect("workspace walk");
    assert!(report.files_checked > 50, "walk missed the workspace");
    assert!(
        report.is_clean(),
        "rips-lint findings (fix or add a reasoned suppression):\n{}",
        report.render_human()
    );
}
