//! Cross-backend validation: the live (real-threads) backend and the
//! simulator must agree on everything scheduling cannot change.
//!
//! For every scheduler in the roster, on N-Queens and a 15-puzzle
//! instance, at 2 and 4 threads, on **both transports** (sharded SPSC
//! rings and the mpsc fallback):
//!
//! * both backends execute every task exactly once (conservation —
//!   `verify_complete` returns no `VerifyError`), and
//! * the live run's solution count and execution checksum equal the
//!   scheduler-independent static totals of the grain table — i.e.
//!   running the *real application* under real concurrency finds
//!   exactly the answers the sequential reference finds, no matter how
//!   the OS interleaved the threads.
//!
//! A separate property pins the batching layer: batched and unbatched
//! delivery must produce identical checksums *and* identical invariant
//! [`Auditor`] verdicts across the whole roster.

use std::sync::Arc;

use rips_apps::{nqueens_with_grains, puzzle_with_grains, GrainTable, NQueensConfig, PuzzleConfig};
use rips_audit::Auditor;
use rips_bench::live::{live_opts, live_run};
use rips_bench::{registry, run_cell};
use rips_live::{GrainMode, TransportKind, WallClock};
use rips_taskgraph::Workload;
use rips_trace::Clock;

fn queens9() -> (Arc<Workload>, Arc<GrainTable>) {
    let (w, t) = nqueens_with_grains(NQueensConfig {
        n: 9,
        split_depth: 3,
        root_depth: 2,
        ns_per_node: 1800,
    });
    (Arc::new(w), Arc::new(t))
}

fn puzzle14() -> (Arc<Workload>, Arc<GrainTable>) {
    let (w, t) = puzzle_with_grains(PuzzleConfig {
        scramble_len: 14,
        seed: 5,
        min_tasks: 16,
        ns_per_node: 1000,
        split_divisor: 1024,
        split_floor_nodes: 20_000,
    });
    (Arc::new(w), Arc::new(t))
}

/// Runs the whole roster on both backends at `threads` nodes, on both
/// live transports, and checks the cross-backend contract.
fn cross_validate(workload: &Arc<Workload>, table: &Arc<GrainTable>, threads: usize) {
    let reg = registry();
    let expected_tasks = workload.stats().tasks as u64;
    let truth = table.static_totals();
    for scheduler in reg.names() {
        // Simulator side: run_cell panics on any VerifyError.
        let sim = run_cell(&reg, scheduler, workload, threads, 0.4, 42);
        assert_eq!(
            sim.outcome.total_executed(),
            expected_tasks,
            "{scheduler} sim executed-count at {threads} nodes"
        );
        // Live side, once per fabric: live_run panics on any
        // VerifyError; the contract must hold regardless of whether
        // packets ride the SPSC rings or the mpsc fallback.
        for transport in [TransportKind::Ring, TransportKind::Mpsc] {
            let mut opts = live_opts(table, GrainMode::Compute, 0.0);
            opts.transport = transport;
            let live = live_run(scheduler, workload, threads, 0.4, 42, opts);
            let tag = format!("{scheduler} live/{} at {threads} threads", transport.name());
            assert_eq!(
                live.total_executed(),
                expected_tasks,
                "{tag} executed-count"
            );
            assert_eq!(live.solutions, truth.solutions, "{tag} solutions");
            assert_eq!(live.checksum, truth.checksum, "{tag} checksum");
        }
    }
}

/// Runs one scheduler live under the invariant [`Auditor`] and returns
/// (solutions, checksum, audit verdict, error list).
fn audited_live(
    scheduler: &str,
    workload: &Arc<Workload>,
    table: &Arc<GrainTable>,
    threads: usize,
    batch: bool,
) -> (u64, u64, bool, Vec<String>) {
    let clock: Arc<WallClock> = Arc::new(WallClock::new());
    let mut opts = live_opts(table, GrainMode::Compute, 0.0);
    opts.batch = batch;
    opts.clock = Some(Arc::clone(&clock) as Arc<dyn Clock>);
    let (auditor, out) = rips_trace::with_sink_clocked(
        Auditor::new(threads),
        Arc::clone(&clock) as Arc<dyn Clock>,
        || live_run(scheduler, workload, threads, 0.4, 42, opts),
    );
    let report = auditor.finish();
    (out.solutions, out.checksum, report.is_ok(), report.errors)
}

/// The batching layer is pure plumbing: coalescing a dispatch round's
/// messages into one packet per destination must not change what the
/// application computes or whether the paper's invariants hold.
///
/// For every roster scheduler at 2 and 4 threads, batched and
/// unbatched delivery must produce identical `static_totals()`
/// checksums and identical [`Auditor`] verdicts.
#[test]
fn batching_is_invisible_to_checksums_and_auditor() {
    let (w, t) = queens9();
    let truth = t.static_totals();
    let reg = registry();
    for threads in [2usize, 4] {
        for scheduler in reg.names() {
            let (b_sol, b_sum, b_ok, b_err) = audited_live(scheduler, &w, &t, threads, true);
            let (u_sol, u_sum, u_ok, u_err) = audited_live(scheduler, &w, &t, threads, false);
            let tag = format!("{scheduler} at {threads} threads");
            assert_eq!(b_sol, u_sol, "{tag}: batched vs unbatched solutions");
            assert_eq!(b_sum, u_sum, "{tag}: batched vs unbatched checksum");
            assert_eq!(b_sol, truth.solutions, "{tag}: solutions vs sequential");
            assert_eq!(b_sum, truth.checksum, "{tag}: checksum vs sequential");
            assert_eq!(
                b_ok, u_ok,
                "{tag}: audit verdicts diverge (batched: {b_err:?}, unbatched: {u_err:?})"
            );
            assert!(b_ok, "{tag}: audit must pass, got {b_err:?}");
        }
    }
}

#[test]
fn queens9_roster_agrees_at_2_threads() {
    let (w, t) = queens9();
    assert_eq!(t.static_totals().solutions, 352, "9-queens ground truth");
    cross_validate(&w, &t, 2);
}

#[test]
fn queens9_roster_agrees_at_4_threads() {
    let (w, t) = queens9();
    cross_validate(&w, &t, 4);
}

#[test]
fn puzzle_roster_agrees_at_2_threads() {
    let (w, t) = puzzle14();
    assert!(t.static_totals().solutions >= 1, "puzzle must be solved");
    cross_validate(&w, &t, 2);
}

#[test]
fn puzzle_roster_agrees_at_4_threads() {
    let (w, t) = puzzle14();
    cross_validate(&w, &t, 4);
}

#[test]
fn live_solutions_stable_across_seeds_and_modes() {
    // Different seeds (different migration patterns) and the timed
    // grain mode must not change what the application computes.
    let (w, t) = queens9();
    let truth = t.static_totals();
    for seed in [1u64, 7, 1234] {
        let out = live_run(
            "RIPS",
            &w,
            4,
            0.4,
            seed,
            live_opts(&t, GrainMode::Compute, 0.0),
        );
        assert_eq!(out.solutions, truth.solutions, "seed {seed}");
        assert_eq!(out.checksum, truth.checksum, "seed {seed}");
    }
    // Timed mode at a tiny scale: same answers, nonzero wall time.
    let out = live_run("RID", &w, 2, 0.4, 3, live_opts(&t, GrainMode::Timed, 0.001));
    assert_eq!(out.solutions, truth.solutions);
    assert!(out.wall_us > 0);
}
