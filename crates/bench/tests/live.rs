//! Cross-backend validation: the live (real-threads) backend and the
//! simulator must agree on everything scheduling cannot change.
//!
//! For every scheduler in the roster, on N-Queens and a 15-puzzle
//! instance, at 2 and 4 threads:
//!
//! * both backends execute every task exactly once (conservation —
//!   `verify_complete` returns no `VerifyError`), and
//! * the live run's solution count and execution checksum equal the
//!   scheduler-independent static totals of the grain table — i.e.
//!   running the *real application* under real concurrency finds
//!   exactly the answers the sequential reference finds, no matter how
//!   the OS interleaved the threads.

use std::sync::Arc;

use rips_apps::{nqueens_with_grains, puzzle_with_grains, GrainTable, NQueensConfig, PuzzleConfig};
use rips_bench::live::{live_opts, live_run};
use rips_bench::{registry, run_cell};
use rips_live::GrainMode;
use rips_taskgraph::Workload;

fn queens9() -> (Arc<Workload>, Arc<GrainTable>) {
    let (w, t) = nqueens_with_grains(NQueensConfig {
        n: 9,
        split_depth: 3,
        root_depth: 2,
        ns_per_node: 1800,
    });
    (Arc::new(w), Arc::new(t))
}

fn puzzle14() -> (Arc<Workload>, Arc<GrainTable>) {
    let (w, t) = puzzle_with_grains(PuzzleConfig {
        scramble_len: 14,
        seed: 5,
        min_tasks: 16,
        ns_per_node: 1000,
        split_divisor: 1024,
        split_floor_nodes: 20_000,
    });
    (Arc::new(w), Arc::new(t))
}

/// Runs the whole roster on both backends at `threads` nodes and
/// checks the cross-backend contract.
fn cross_validate(workload: &Arc<Workload>, table: &Arc<GrainTable>, threads: usize) {
    let reg = registry();
    let expected_tasks = workload.stats().tasks as u64;
    let truth = table.static_totals();
    for scheduler in reg.names() {
        // Simulator side: run_cell panics on any VerifyError.
        let sim = run_cell(&reg, scheduler, workload, threads, 0.4, 42);
        assert_eq!(
            sim.outcome.total_executed(),
            expected_tasks,
            "{scheduler} sim executed-count at {threads} nodes"
        );
        // Live side: live_run panics on any VerifyError.
        let live = live_run(
            scheduler,
            workload,
            threads,
            0.4,
            42,
            live_opts(table, GrainMode::Compute, 0.0),
        );
        assert_eq!(
            live.total_executed(),
            expected_tasks,
            "{scheduler} live executed-count at {threads} threads"
        );
        assert_eq!(
            live.solutions, truth.solutions,
            "{scheduler} live solutions at {threads} threads"
        );
        assert_eq!(
            live.checksum, truth.checksum,
            "{scheduler} live checksum at {threads} threads"
        );
    }
}

#[test]
fn queens9_roster_agrees_at_2_threads() {
    let (w, t) = queens9();
    assert_eq!(t.static_totals().solutions, 352, "9-queens ground truth");
    cross_validate(&w, &t, 2);
}

#[test]
fn queens9_roster_agrees_at_4_threads() {
    let (w, t) = queens9();
    cross_validate(&w, &t, 4);
}

#[test]
fn puzzle_roster_agrees_at_2_threads() {
    let (w, t) = puzzle14();
    assert!(t.static_totals().solutions >= 1, "puzzle must be solved");
    cross_validate(&w, &t, 2);
}

#[test]
fn puzzle_roster_agrees_at_4_threads() {
    let (w, t) = puzzle14();
    cross_validate(&w, &t, 4);
}

#[test]
fn live_solutions_stable_across_seeds_and_modes() {
    // Different seeds (different migration patterns) and the timed
    // grain mode must not change what the application computes.
    let (w, t) = queens9();
    let truth = t.static_totals();
    for seed in [1u64, 7, 1234] {
        let out = live_run(
            "RIPS",
            &w,
            4,
            0.4,
            seed,
            live_opts(&t, GrainMode::Compute, 0.0),
        );
        assert_eq!(out.solutions, truth.solutions, "seed {seed}");
        assert_eq!(out.checksum, truth.checksum, "seed {seed}");
    }
    // Timed mode at a tiny scale: same answers, nonzero wall time.
    let out = live_run("RID", &w, 2, 0.4, 3, live_opts(&t, GrainMode::Timed, 0.001));
    assert_eq!(out.solutions, truth.solutions);
    assert!(out.wall_us > 0);
}
