use rips_apps::{puzzle, PuzzleConfig};
fn main() {
    for c in 1..=3u32 {
        let w = puzzle(PuzzleConfig::paper(c));
        for (i, r) in w.rounds.iter().enumerate() {
            let mut g: Vec<u64> = (0..r.len() as u32).map(|id| r.task(id).grain_us).collect();
            g.sort_unstable();
            let total: u64 = g.iter().sum();
            println!(
                "cfg{c} round {i}: tasks={} total={:.2}s max={:.3}s p99={:.3}s median={}us",
                g.len(),
                total as f64 / 1e6,
                *g.last().unwrap() as f64 / 1e6,
                g[g.len() * 99 / 100] as f64 / 1e6,
                g[g.len() / 2]
            );
        }
    }
}
