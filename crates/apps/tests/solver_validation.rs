//! Cross-validation of the application solvers against independent
//! reference implementations.

use rips_apps::puzzle::{ida_star, successors, Board};

/// Breadth-first search: the independent ground truth for optimal
/// 15-puzzle solution lengths (tiny scrambles only — BFS explodes).
fn bfs_optimal(start: &Board) -> u32 {
    use std::collections::{HashMap, VecDeque};
    if start.is_goal() {
        return 0;
    }
    let mut dist: HashMap<Board, u32> = HashMap::new();
    dist.insert(*start, 0);
    let mut q = VecDeque::from([*start]);
    while let Some(b) = q.pop_front() {
        let d = dist[&b];
        for nb in successors(&b) {
            if let std::collections::hash_map::Entry::Vacant(slot) = dist.entry(nb) {
                if nb.is_goal() {
                    return d + 1;
                }
                slot.insert(d + 1);
                q.push_back(nb);
            }
        }
    }
    unreachable!("15-puzzle state space is connected within a parity class");
}

#[test]
fn ida_star_matches_bfs_on_short_scrambles() {
    for (len, seed) in [(4u32, 1u64), (6, 2), (8, 3), (10, 4), (12, 5)] {
        let b = Board::scrambled(len, seed);
        let (ida, _, _) = ida_star(&b);
        let bfs = bfs_optimal(&b);
        assert_eq!(ida, bfs, "len={len} seed={seed}");
    }
}

#[test]
fn manhattan_never_overestimates_bfs() {
    for seed in 0..8u64 {
        let b = Board::scrambled(10, seed);
        assert!(b.manhattan() <= bfs_optimal(&b), "seed={seed}");
    }
}

mod gromos_physics {
    use rips_apps::gromos::{half_pair_counts, synthetic_protein};

    /// The synthetic globule's pair counts must match the analytic
    /// estimate for a uniform sphere: a bulk atom sees
    /// `ρ · (4/3)π r³` neighbours (half-shell halves it); surface
    /// effects lower the mean, so check a generous band.
    #[test]
    fn pair_counts_match_uniform_density_estimate() {
        let n = 3000;
        let atoms = synthetic_protein(n, 7);
        let r_max = atoms
            .iter()
            .map(|a| (a[0] * a[0] + a[1] * a[1] + a[2] * a[2]).sqrt())
            .fold(0.0f64, f64::max);
        let density = n as f64 / (4.0 / 3.0 * std::f64::consts::PI * r_max.powi(3));
        for cutoff in [6.0, 9.0] {
            let pairs = half_pair_counts(&atoms, cutoff);
            let total: u64 = pairs.iter().sum();
            let mean_half = total as f64 / n as f64;
            let bulk_half = density * (4.0 / 3.0) * std::f64::consts::PI * cutoff.powi(3) / 2.0;
            assert!(
                mean_half > bulk_half * 0.5 && mean_half < bulk_half * 1.05,
                "cutoff {cutoff}: mean {mean_half:.1} vs bulk {bulk_half:.1}"
            );
        }
    }

    /// Pair counting is symmetric in aggregate: Σ half-pairs equals the
    /// exact number of unordered in-range pairs, which must be
    /// monotone in the cutoff.
    #[test]
    fn totals_monotone_in_cutoff() {
        let atoms = synthetic_protein(1200, 3);
        let mut last = 0;
        for cutoff in [4.0, 6.0, 8.0, 12.0] {
            let total: u64 = half_pair_counts(&atoms, cutoff).iter().sum();
            assert!(total >= last, "not monotone at {cutoff}");
            last = total;
        }
    }
}
