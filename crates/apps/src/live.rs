//! Grain closures for live execution: the *real work* behind each task.
//!
//! The simulator only needs a task's modelled duration; a live backend
//! (one OS thread per node, wall-clock time) needs the task's actual
//! computation. Each app's `*_with_grains` constructor returns its
//! [`Workload`](rips_taskgraph::Workload) together with a [`GrainTable`]
//! mapping `(round, task id)` to a [`GrainSpec`] — a self-contained
//! description of the work that task stands for:
//!
//! * N-Queens: interior tasks re-probe one row's free squares; leaf
//!   tasks enumerate their whole subtree (nodes *and* solutions).
//! * 15-puzzle: every task is a threshold-bounded DFS from its frontier
//!   state (solutions = goals found at the final threshold).
//! * GROMOS: every task counts its atom group's half-shell pairs within
//!   the cutoff against the full position set.
//!
//! Running a spec yields a [`GrainOut`]: a deterministic, execution-
//! derived checksum and a solution count. Both are summed
//! order-independently across tasks, so a live run's totals must equal
//! [`GrainTable::static_totals`] — computed without any scheduler —
//! whatever the thread interleaving was. That equality (plus task
//! conservation) is the cross-backend validation contract.

use std::sync::{Arc, OnceLock};

use crate::nqueens;
use crate::puzzle::{self, Board};

/// What executing one grain produced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GrainOut {
    /// Deterministic fingerprint of the computation's result (mixing
    /// measured quantities like node counts and pair sums — not just
    /// the inputs), summed wrapping across tasks.
    pub checksum: u64,
    /// Solutions found (queens placements, puzzle goals; 0 for MD).
    pub solutions: u64,
}

/// Shared context for GROMOS grains: every group's pair search scans
/// the same position set.
#[derive(Debug)]
pub struct GromosCtx {
    /// Spatially sorted atom positions (Å).
    pub atoms: Vec<[f64; 3]>,
    /// Nonbonded cutoff radius (Å).
    pub cutoff: f64,
}

/// The real computation behind one task.
#[derive(Debug, Clone)]
pub enum GrainSpec {
    /// N-Queens interior task: probe the free squares of row `row`
    /// under the given occupancy masks (the expansion work whose valid
    /// placements became this task's children).
    QueensInterior {
        /// Board size.
        n: u32,
        /// Row this prefix has reached.
        row: u32,
        /// Occupied-column mask.
        cols: u32,
        /// Occupied ↘-diagonal mask.
        diag1: u32,
        /// Occupied ↗-diagonal mask.
        diag2: u32,
    },
    /// N-Queens leaf task: exhaustively enumerate the subtree under
    /// this split-depth prefix.
    QueensLeaf {
        /// Board size.
        n: u32,
        /// Row this prefix has reached (the split depth).
        row: u32,
        /// Occupied-column mask.
        cols: u32,
        /// Occupied ↘-diagonal mask.
        diag1: u32,
        /// Occupied ↗-diagonal mask.
        diag2: u32,
    },
    /// 15-puzzle task: threshold-bounded DFS from a frontier state.
    PuzzleDfs {
        /// Frontier position.
        board: Board,
        /// Moves already made to reach it.
        g: u32,
        /// Arriving move (as a direction index), so the DFS does not
        /// immediately undo it.
        last: Option<u8>,
        /// This IDA* iteration's cost threshold.
        threshold: u32,
    },
    /// GROMOS task: half-shell pair count for one contiguous atom
    /// group against the whole molecule.
    GromosGroup {
        /// The molecule (shared by every group of the workload).
        ctx: Arc<GromosCtx>,
        /// First atom index of this group.
        start: u32,
        /// Number of atoms in this group.
        len: u32,
    },
}

/// FNV-1a-style mix of measured quantities into a fingerprint.
fn mix(vals: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &v in vals {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl GrainSpec {
    /// Runs the grain. Deterministic: same spec, same result, on any
    /// thread.
    pub fn run(&self) -> GrainOut {
        match *self {
            GrainSpec::QueensInterior {
                n,
                row,
                cols,
                diag1,
                diag2,
            } => {
                let full = (1u32 << n) - 1;
                let free = full & !(cols | diag1 | diag2);
                GrainOut {
                    checksum: mix(&[
                        u64::from(row),
                        u64::from(cols),
                        u64::from(free),
                        u64::from(free.count_ones()),
                    ]),
                    solutions: 0,
                }
            }
            GrainSpec::QueensLeaf {
                n,
                row,
                cols,
                diag1,
                diag2,
            } => {
                let (nodes, sols) = nqueens::enumerate(n, row, cols, diag1, diag2);
                GrainOut {
                    checksum: mix(&[nodes, sols, u64::from(cols), u64::from(diag1)]),
                    solutions: sols,
                }
            }
            GrainSpec::PuzzleDfs {
                ref board,
                g,
                last,
                threshold,
            } => {
                let (nodes, exceed, found) = puzzle::run_bounded(board, g, threshold, last);
                GrainOut {
                    checksum: mix(&[nodes, u64::from(exceed), u64::from(found)]),
                    solutions: u64::from(found),
                }
            }
            GrainSpec::GromosGroup {
                ref ctx,
                start,
                len,
            } => {
                let atoms = &ctx.atoms;
                let cut2 = ctx.cutoff * ctx.cutoff;
                let mut pairs = 0u64;
                let mut quantized = 0u64;
                for i in start as usize..(start + len) as usize {
                    let a = &atoms[i];
                    for b in &atoms[i + 1..] {
                        let d2 =
                            (a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2);
                        if d2 <= cut2 {
                            pairs += 1;
                            // Stand-in for a force term: accumulate a
                            // quantized function of the pair distance.
                            quantized = quantized.wrapping_add((d2 * 4096.0) as u64);
                        }
                    }
                }
                GrainOut {
                    checksum: mix(&[pairs, quantized, u64::from(start)]),
                    solutions: 0,
                }
            }
        }
    }
}

/// Per-round grain specs for a workload, indexed exactly like its
/// forests: `rounds[r][task_id]`.
#[derive(Debug, Clone)]
pub struct GrainTable {
    rounds: Vec<Vec<GrainSpec>>,
    /// Lazily computed [`static_totals`](GrainTable::static_totals),
    /// so a table shared across repeated job submissions (the serve
    /// layer resubmits the same app spec many times) derives its
    /// ground truth once. Cloning carries the cached value along.
    totals: OnceLock<GrainOut>,
}

impl GrainTable {
    pub(crate) fn new(rounds: Vec<Vec<GrainSpec>>) -> Self {
        GrainTable {
            rounds,
            totals: OnceLock::new(),
        }
    }

    /// Number of rounds covered.
    pub fn rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Number of tasks in round `r`.
    pub fn tasks_in(&self, r: usize) -> usize {
        self.rounds[r].len()
    }

    /// The spec for task `task` of round `round`.
    ///
    /// # Panics
    /// Panics if the table does not cover that task — the table must be
    /// built from the same config as the workload being executed.
    pub fn spec(&self, round: u32, task: u32) -> &GrainSpec {
        &self.rounds[round as usize][task as usize]
    }

    /// Runs task `task` of round `round`.
    pub fn run(&self, round: u32, task: u32) -> GrainOut {
        self.spec(round, task).run()
    }

    /// Runs every grain once, sequentially, summing the outputs: the
    /// scheduler-independent reference a live run's totals must match.
    ///
    /// The first call does the full traversal; the result is cached
    /// in the table, so per-job-instance ground truth is O(1) when
    /// the same spec is submitted repeatedly.
    pub fn static_totals(&self) -> GrainOut {
        *self.totals.get_or_init(|| {
            let mut out = GrainOut::default();
            for round in &self.rounds {
                for spec in round {
                    let r = spec.run();
                    out.checksum = out.checksum.wrapping_add(r.checksum);
                    out.solutions += r.solutions;
                }
            }
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gromos::{gromos_with_grains, GromosConfig};
    use crate::nqueens::{nqueens_with_grains, solve, NQueensConfig};
    use crate::puzzle::{puzzle_with_grains, PuzzleConfig};

    #[test]
    fn queens_table_covers_workload_and_finds_all_solutions() {
        let cfg = NQueensConfig::paper(9);
        let (w, table) = nqueens_with_grains(cfg);
        assert_eq!(table.rounds(), w.rounds.len());
        for (r, forest) in w.rounds.iter().enumerate() {
            assert_eq!(table.tasks_in(r), forest.len());
        }
        // Every complete placement lives in exactly one leaf subtree.
        assert_eq!(table.static_totals().solutions, solve(9).1);
    }

    #[test]
    fn queens_leaf_grains_do_the_measured_work() {
        // A leaf's recorded grain is its subtree node count (scaled);
        // re-running the spec must traverse that same subtree.
        let cfg = NQueensConfig {
            n: 8,
            split_depth: 3,
            root_depth: 2,
            ns_per_node: 1000, // grain µs == node count
        };
        let (w, table) = nqueens_with_grains(cfg);
        let f = &w.rounds[0];
        for id in 0..f.len() as u32 {
            if !f.task(id).children.is_empty() {
                continue;
            }
            if let GrainSpec::QueensLeaf {
                n,
                row,
                cols,
                diag1,
                diag2,
            } = *table.spec(0, id)
            {
                let (nodes, _) = crate::nqueens::enumerate(n, row, cols, diag1, diag2);
                assert_eq!(f.task(id).grain_us, nodes.max(1));
            } else {
                panic!("childless task {id} is not a leaf spec");
            }
        }
    }

    #[test]
    fn puzzle_table_matches_rounds_and_solves() {
        let cfg = PuzzleConfig {
            scramble_len: 14,
            seed: 5,
            min_tasks: 16,
            ns_per_node: 1000,
            split_divisor: 1024,
            split_floor_nodes: 20_000,
        };
        let (w, table) = puzzle_with_grains(cfg);
        assert_eq!(table.rounds(), w.rounds.len());
        for (r, forest) in w.rounds.iter().enumerate() {
            assert_eq!(table.tasks_in(r), forest.len());
        }
        let totals = table.static_totals();
        // The final iteration finds the goal (possibly through several
        // frontier subtrees via transpositions).
        assert!(totals.solutions >= 1, "no goal found");
    }

    #[test]
    fn gromos_table_is_deterministic_and_solution_free() {
        let mut cfg = GromosConfig::paper(8.0);
        cfg.atoms = 400;
        cfg.groups = 286;
        let (w, table) = gromos_with_grains(cfg);
        assert_eq!(table.rounds(), w.rounds.len());
        assert_eq!(table.tasks_in(0), 286);
        let a = table.static_totals();
        let b = table.static_totals();
        assert_eq!(a, b);
        assert_eq!(a.solutions, 0);
        assert_ne!(a.checksum, 0);
    }

    #[test]
    fn static_totals_memoized_and_survives_clone() {
        let cfg = NQueensConfig::paper(8);
        let (_, table) = nqueens_with_grains(cfg);
        let first = table.static_totals();
        // Second call returns the cached value (same result, no
        // re-derivation observable through the OnceLock), and a clone
        // carries the cache along — so repeated job instances sharing
        // the table (or cloning it) get O(1) ground truth.
        assert_eq!(table.static_totals(), first);
        let cloned = table.clone();
        assert_eq!(cloned.totals.get().copied(), Some(first));
        assert_eq!(cloned.static_totals(), first);
    }

    #[test]
    fn builders_with_and_without_grains_agree() {
        let qcfg = NQueensConfig::paper(8);
        assert_eq!(crate::nqueens::nqueens(qcfg), nqueens_with_grains(qcfg).0);
        let pcfg = PuzzleConfig {
            scramble_len: 12,
            seed: 7,
            min_tasks: 8,
            ns_per_node: 500,
            split_divisor: 1024,
            split_floor_nodes: 20_000,
        };
        assert_eq!(crate::puzzle::puzzle(pcfg), puzzle_with_grains(pcfg).0);
        let mut gcfg = GromosConfig::paper(8.0);
        gcfg.atoms = 300;
        gcfg.groups = 200;
        assert_eq!(crate::gromos::gromos(gcfg), gromos_with_grains(gcfg).0);
    }
}
