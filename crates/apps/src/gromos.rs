//! GROMOS-like molecular-dynamics force workload.
//!
//! The paper runs GROMOS on the bovine superoxide dismutase molecule
//! (SOD, 6 968 atoms) with cutoff radii of 8, 12 and 16 Å. We do not
//! have the proprietary coordinates, so we build a synthetic globule of
//! the same size and density (see DESIGN.md §2): what the paper needs
//! from GROMOS is only its *load profile* — a fixed number of processes
//! ("the number of processes is known with the given input data") with
//! nonuniform, spatially correlated computation densities ("the
//! computation density in each process varies").
//!
//! Tasks are atom groups (≈1.4 atoms each, giving the paper's 4 986
//! tasks); a task's grain is its half-shell pair count within the
//! cutoff, found by real cell-list neighbour search.

use std::sync::Arc;

use crate::live::{GrainSpec, GrainTable, GromosCtx};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use rips_taskgraph::{TaskForest, Workload};

/// Parameters for the GROMOS-like workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GromosConfig {
    /// Number of atoms (the paper's SOD has 6 968).
    pub atoms: usize,
    /// Number of atom-group tasks (the paper reports 4 986 for every
    /// cutoff).
    pub groups: usize,
    /// Nonbonded cutoff radius in Å (8, 12, 16 in Table I).
    pub cutoff: f64,
    /// MD steps simulated; each is one workload round with a barrier.
    pub steps: usize,
    /// Virtual nanoseconds per atom pair (calibrated in EXPERIMENTS.md
    /// to the paper's per-task grains: ~56 s sequential at 8 Å).
    pub ns_per_pair: u64,
    /// Position RNG seed.
    pub seed: u64,
}

impl GromosConfig {
    /// Paper-faithful configuration at the given cutoff radius.
    pub fn paper(cutoff_angstrom: f64) -> Self {
        GromosConfig {
            atoms: 6968,
            groups: 4986,
            cutoff: cutoff_angstrom,
            steps: 3,
            ns_per_pair: 32_000,
            seed: 2206,
        }
    }
}

/// Synthetic SOD stand-in: `n` atoms uniformly filling a sphere whose
/// radius gives protein-like density (~0.095 atoms/Å³), plus a little
/// clustering noise. Deterministic under `seed`.
pub fn synthetic_protein(n: usize, seed: u64) -> Vec<[f64; 3]> {
    // radius so that n / (4/3 π r³) ≈ 0.095 atoms/Å³.
    let radius = (3.0 * n as f64 / (4.0 * std::f64::consts::PI * 0.095)).cbrt();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut atoms = Vec::with_capacity(n);
    while atoms.len() < n {
        let p = [
            rng.random_range(-radius..radius),
            rng.random_range(-radius..radius),
            rng.random_range(-radius..radius),
        ];
        if p[0] * p[0] + p[1] * p[1] + p[2] * p[2] <= radius * radius {
            atoms.push(p);
        }
    }
    atoms
}

/// Cell-list half-shell pair counting: for each atom, the number of
/// *higher-indexed* atoms within `cutoff`. Index order is spatial
/// (z-sorted), so grains are spatially correlated like real charge
/// groups.
pub fn half_pair_counts(atoms: &[[f64; 3]], cutoff: f64) -> Vec<u64> {
    assert!(cutoff > 0.0, "cutoff must be positive");
    let n = atoms.len();
    if n == 0 {
        return Vec::new();
    }
    let mut min = [f64::INFINITY; 3];
    let mut max = [f64::NEG_INFINITY; 3];
    for a in atoms {
        for d in 0..3 {
            min[d] = min[d].min(a[d]);
            max[d] = max[d].max(a[d]);
        }
    }
    let cells_per_dim = |d: usize| (((max[d] - min[d]) / cutoff).floor() as usize + 1).max(1);
    let (cx, cy, cz) = (cells_per_dim(0), cells_per_dim(1), cells_per_dim(2));
    let cell_of = |a: &[f64; 3]| {
        let ix = (((a[0] - min[0]) / cutoff) as usize).min(cx - 1);
        let iy = (((a[1] - min[1]) / cutoff) as usize).min(cy - 1);
        let iz = (((a[2] - min[2]) / cutoff) as usize).min(cz - 1);
        (ix * cy + iy) * cz + iz
    };
    let mut cells: Vec<Vec<usize>> = vec![Vec::new(); cx * cy * cz];
    for (i, a) in atoms.iter().enumerate() {
        cells[cell_of(a)].push(i);
    }
    let cut2 = cutoff * cutoff;
    let mut counts = vec![0u64; n];
    for (i, a) in atoms.iter().enumerate() {
        let ix = (((a[0] - min[0]) / cutoff) as usize).min(cx - 1) as isize;
        let iy = (((a[1] - min[1]) / cutoff) as usize).min(cy - 1) as isize;
        let iz = (((a[2] - min[2]) / cutoff) as usize).min(cz - 1) as isize;
        for dx in -1..=1isize {
            for dy in -1..=1isize {
                for dz in -1..=1isize {
                    let (jx, jy, jz) = (ix + dx, iy + dy, iz + dz);
                    if jx < 0 || jy < 0 || jz < 0 {
                        continue;
                    }
                    let (jx, jy, jz) = (jx as usize, jy as usize, jz as usize);
                    if jx >= cx || jy >= cy || jz >= cz {
                        continue;
                    }
                    for &j in &cells[(jx * cy + jy) * cz + jz] {
                        if j <= i {
                            continue;
                        }
                        let b = &atoms[j];
                        let d2 =
                            (a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2);
                        if d2 <= cut2 {
                            counts[i] += 1;
                        }
                    }
                }
            }
        }
    }
    counts
}

/// Builds the GROMOS workload: `steps` rounds of the same flat forest
/// of `groups` tasks, grain = pair count × `ns_per_pair`.
pub fn gromos(cfg: GromosConfig) -> Workload {
    gromos_with_grains(cfg).0
}

/// Like [`gromos`], but also returns the [`GrainTable`] mapping each
/// task to its group's pair search, for live execution. Every round
/// shares the same specs (the forest repeats per MD step).
pub fn gromos_with_grains(cfg: GromosConfig) -> (Workload, GrainTable) {
    assert!(
        cfg.groups >= 1 && cfg.groups <= cfg.atoms,
        "bad group count"
    );
    assert!(cfg.steps >= 1, "need at least one MD step");
    let mut atoms = synthetic_protein(cfg.atoms, cfg.seed);
    // Spatial index order (sort by z then y then x) so groups are
    // contiguous in space, like GROMOS charge groups.
    atoms.sort_by(|a, b| {
        (a[2], a[1], a[0])
            .partial_cmp(&(b[2], b[1], b[0]))
            .expect("finite coordinates")
    });
    let pairs = half_pair_counts(&atoms, cfg.cutoff);

    // Split `atoms` into `groups` contiguous chunks as evenly as
    // possible (sizes differ by at most one).
    let base = cfg.atoms / cfg.groups;
    let extra = cfg.atoms % cfg.groups;
    let ctx = Arc::new(GromosCtx {
        atoms,
        cutoff: cfg.cutoff,
    });
    let mut forest = TaskForest::new();
    let mut specs = Vec::with_capacity(cfg.groups);
    let mut idx = 0usize;
    for g in 0..cfg.groups {
        let size = base + usize::from(g < extra);
        let pair_total: u64 = pairs[idx..idx + size].iter().sum();
        specs.push(GrainSpec::GromosGroup {
            ctx: Arc::clone(&ctx),
            start: idx as u32,
            len: size as u32,
        });
        idx += size;
        // Every group costs at least its bookkeeping even with no
        // neighbours in range.
        let grain = (pair_total.max(1) * cfg.ns_per_pair).div_ceil(1000).max(1);
        forest.add_root(grain);
    }
    debug_assert_eq!(idx, cfg.atoms);

    let w = Workload {
        name: format!("gromos {}A", cfg.cutoff),
        rounds: vec![forest; cfg.steps],
    };
    debug_assert!(w.validate().is_ok());
    let spec_rounds = vec![specs; cfg.steps];
    (w, GrainTable::new(spec_rounds))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force half pair count for validation.
    fn brute(atoms: &[[f64; 3]], cutoff: f64) -> Vec<u64> {
        let n = atoms.len();
        let cut2 = cutoff * cutoff;
        let mut counts = vec![0u64; n];
        for i in 0..n {
            for j in i + 1..n {
                let d2 = (atoms[i][0] - atoms[j][0]).powi(2)
                    + (atoms[i][1] - atoms[j][1]).powi(2)
                    + (atoms[i][2] - atoms[j][2]).powi(2);
                if d2 <= cut2 {
                    counts[i] += 1;
                }
            }
        }
        counts
    }

    #[test]
    fn cell_list_matches_brute_force() {
        let atoms = synthetic_protein(300, 17);
        for cutoff in [4.0, 8.0, 13.5] {
            assert_eq!(
                half_pair_counts(&atoms, cutoff),
                brute(&atoms, cutoff),
                "cutoff {cutoff}"
            );
        }
    }

    #[test]
    fn density_is_protein_like() {
        let atoms = synthetic_protein(6968, 1);
        let r_max = atoms
            .iter()
            .map(|a| (a[0] * a[0] + a[1] * a[1] + a[2] * a[2]).sqrt())
            .fold(0.0f64, f64::max);
        let density = 6968.0 / (4.0 / 3.0 * std::f64::consts::PI * r_max.powi(3));
        assert!((0.07..0.13).contains(&density), "density {density}");
    }

    #[test]
    fn task_count_is_fixed_across_cutoffs() {
        for cutoff in [8.0, 12.0, 16.0] {
            let mut cfg = GromosConfig::paper(cutoff);
            cfg.atoms = 800; // keep tests fast
            cfg.groups = 571;
            let w = gromos(cfg);
            assert_eq!(w.rounds[0].len(), 571);
            assert_eq!(w.rounds.len(), cfg.steps);
        }
    }

    #[test]
    fn work_grows_roughly_cubically_with_cutoff() {
        let mut small = GromosConfig::paper(8.0);
        small.atoms = 1500;
        small.groups = 1073;
        let mut large = small;
        large.cutoff = 16.0;
        let w8 = gromos(small).stats().total_work_us;
        let w16 = gromos(large).stats().total_work_us;
        let ratio = w16 as f64 / w8 as f64;
        // (16/8)³ = 8 in the bulk; surface effects pull it down.
        assert!((3.0..9.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn grains_vary_surface_vs_core() {
        let mut cfg = GromosConfig::paper(8.0);
        cfg.atoms = 1500;
        cfg.groups = 1073;
        let w = gromos(cfg);
        let f = &w.rounds[0];
        let grains: Vec<u64> = (0..f.len() as u32).map(|id| f.task(id).grain_us).collect();
        let max = *grains.iter().max().unwrap();
        let min = *grains.iter().min().unwrap();
        assert!(max >= min * 2, "no surface/core contrast: {min}..{max}");
    }

    #[test]
    fn deterministic() {
        let mut cfg = GromosConfig::paper(8.0);
        cfg.atoms = 400;
        cfg.groups = 286;
        assert_eq!(gromos(cfg), gromos(cfg));
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert!(half_pair_counts(&[], 5.0).is_empty());
        let one = [[0.0, 0.0, 0.0]];
        assert_eq!(half_pair_counts(&one, 5.0), vec![0]);
    }
}
