//! Exhaustive N-Queens search (bitmask backtracking) and its task
//! decomposition.
//!
//! A task is a valid placement of queens in the first `split_depth`
//! rows. Interior tasks (depth < split_depth) *generate* their valid
//! extensions as child tasks — the dynamic task creation RIPS
//! reschedules incrementally — and leaf tasks carry the exact node
//! count of the subtree they enumerate, converted to virtual time.

use crate::live::{GrainSpec, GrainTable};
use rips_taskgraph::{TaskForest, Workload};

/// Parameters for the N-Queens workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NQueensConfig {
    /// Board size (13, 14, 15 in the paper's Table I).
    pub n: u32,
    /// Rows fixed per task; the paper's task counts (7 579 / 11 166 /
    /// 15 941 for 13/14/15 queens) match a split depth of 4.
    pub split_depth: u32,
    /// Depth of the *root* tasks. The top of the prefix tree is cheap
    /// and deterministic, so an SPMD program expands it redundantly on
    /// every node ("we rely on a uniform code image accessible at each
    /// processor") and each node takes its block of the depth-`root`
    /// prefixes — the initial tasks the first system phase schedules.
    pub root_depth: u32,
    /// Nanoseconds of virtual time per search-tree node. Calibrated in
    /// EXPERIMENTS.md to the paper's i860-era speed: 13-queens ≈ 8.5 s
    /// and 15-queens ≈ 330 s of sequential work, keeping the paper's
    /// task-grain-to-message-latency ratio.
    pub ns_per_node: u64,
}

impl NQueensConfig {
    /// Paper-faithful configuration for `n` queens.
    pub fn paper(n: u32) -> Self {
        NQueensConfig {
            n,
            split_depth: 4,
            root_depth: 2,
            ns_per_node: 1800,
        }
    }
}

/// Fully enumerates the `n`-queens search tree, returning
/// `(nodes, solutions)` for the subtree under the given bitmask state.
/// `cols`/`diag1`/`diag2` are the standard occupied-column and
/// occupied-diagonal masks; a "node" is a placed queen.
pub(crate) fn enumerate(n: u32, row: u32, cols: u32, diag1: u32, diag2: u32) -> (u64, u64) {
    if row == n {
        return (0, 1);
    }
    let full = (1u32 << n) - 1;
    let mut free = full & !(cols | diag1 | diag2);
    let mut nodes = 0u64;
    let mut sols = 0u64;
    while free != 0 {
        let bit = free & free.wrapping_neg();
        free ^= bit;
        let (sub_nodes, sub_sols) = enumerate(
            n,
            row + 1,
            cols | bit,
            (diag1 | bit) << 1,
            (diag2 | bit) >> 1,
        );
        nodes += 1 + sub_nodes;
        sols += sub_sols;
    }
    (nodes, sols)
}

/// Sequential solver: `(search_nodes, solutions)` for `n` queens.
pub fn solve(n: u32) -> (u64, u64) {
    assert!((1..=16).contains(&n), "board size out of range");
    enumerate(n, 0, 0, 0, 0)
}

struct Builder {
    n: u32,
    split_depth: u32,
    ns_per_node: u64,
    forest: TaskForest,
    /// Grain specs in task-id order (one per forest task), for live
    /// execution.
    specs: Vec<GrainSpec>,
}

impl Builder {
    /// Recursively adds the task for the prefix reaching `row` with the
    /// given masks under `parent` (or as a root), returning its id.
    fn build(
        &mut self,
        parent: Option<rips_taskgraph::TaskId>,
        row: u32,
        cols: u32,
        diag1: u32,
        diag2: u32,
    ) {
        let full = (1u32 << self.n) - 1;
        if row == self.split_depth {
            // Leaf task: grain = exact subtree node count.
            let (nodes, _) = enumerate(self.n, row, cols, diag1, diag2);
            let grain = ((nodes.max(1)) * self.ns_per_node).div_ceil(1000).max(1);
            match parent {
                Some(p) => self.forest.add_child(p, grain),
                None => self.forest.add_root(grain),
            };
            self.specs.push(GrainSpec::QueensLeaf {
                n: self.n,
                row,
                cols,
                diag1,
                diag2,
            });
            return;
        }
        // Interior task: expanding one row costs ~one node per child
        // probe; its children are the valid extensions.
        let mut free = full & !(cols | diag1 | diag2);
        let expansion_cost = ((self.n as u64) * self.ns_per_node).div_ceil(1000).max(1);
        let id = match parent {
            Some(p) => self.forest.add_child(p, expansion_cost),
            None => self.forest.add_root(expansion_cost),
        };
        self.specs.push(GrainSpec::QueensInterior {
            n: self.n,
            row,
            cols,
            diag1,
            diag2,
        });
        while free != 0 {
            let bit = free & free.wrapping_neg();
            free ^= bit;
            self.build(
                Some(id),
                row + 1,
                cols | bit,
                (diag1 | bit) << 1,
                (diag2 | bit) >> 1,
            );
        }
    }
}

/// Builds the N-Queens workload: a single round whose roots are the
/// first-row placements; tasks expand until `split_depth`, where leaf
/// grains carry the measured subtree sizes.
pub fn nqueens(cfg: NQueensConfig) -> Workload {
    nqueens_with_grains(cfg).0
}

/// Like [`nqueens`], but also returns the [`GrainTable`] mapping each
/// task to its real computation, for live execution.
pub fn nqueens_with_grains(cfg: NQueensConfig) -> (Workload, GrainTable) {
    assert!((1..=16).contains(&cfg.n), "board size out of range");
    assert!(cfg.split_depth >= 1 && cfg.split_depth <= cfg.n);
    assert!(cfg.root_depth <= cfg.split_depth, "roots below the split");
    let mut b = Builder {
        n: cfg.n,
        split_depth: cfg.split_depth,
        ns_per_node: cfg.ns_per_node,
        forest: TaskForest::new(),
        specs: Vec::new(),
    };
    // Enumerate the valid prefixes at `root_depth`; each becomes a root
    // task that expands (dynamically) down to the split depth.
    let full = (1u32 << cfg.n) - 1;
    let mut stack = vec![(0u32, 0u32, 0u32, 0u32)];
    for _ in 0..cfg.root_depth {
        let mut next = Vec::with_capacity(stack.len() * cfg.n as usize);
        for (row, cols, d1, d2) in stack {
            let mut free = full & !(cols | d1 | d2);
            while free != 0 {
                let bit = free & free.wrapping_neg();
                free ^= bit;
                next.push((row + 1, cols | bit, (d1 | bit) << 1, (d2 | bit) >> 1));
            }
        }
        stack = next;
    }
    for (row, cols, d1, d2) in stack {
        b.build(None, row, cols, d1, d2);
    }
    let w = Workload::single(format!("{}-queens", cfg.n), b.forest);
    debug_assert!(w.validate().is_ok());
    debug_assert_eq!(b.specs.len(), w.rounds[0].len());
    (w, GrainTable::new(vec![b.specs]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_solution_counts() {
        // OEIS A000170.
        assert_eq!(solve(1).1, 1);
        assert_eq!(solve(4).1, 2);
        assert_eq!(solve(6).1, 4);
        assert_eq!(solve(8).1, 92);
        assert_eq!(solve(10).1, 724);
    }

    #[test]
    fn node_count_matches_sum_of_leaf_subtrees() {
        // The forest's leaf grains must add up to the sequential node
        // count (modulo the per-node→µs rounding, so compare in nodes
        // by using ns_per_node = 1000 for exact µs = nodes).
        let cfg = NQueensConfig {
            n: 8,
            split_depth: 3,
            root_depth: 2,
            ns_per_node: 1000,
        };
        let w = nqueens(cfg);
        let (total_nodes, _) = solve(8);
        let f = &w.rounds[0];
        // Interior tasks cost n nodes each (expansion probes); count
        // leaves only: tasks with no children.
        let leaf_work: u64 = (0..f.len() as u32)
            .filter(|&id| f.task(id).children.is_empty())
            .map(|id| f.task(id).grain_us)
            .sum();
        // Leaf subtrees exclude the first `split_depth` placed queens;
        // the prefix nodes are 1 (root expansion) + valid 1-prefixes +
        // valid 2-prefixes + valid 3-prefixes.
        let mut prefix_nodes = 0u64;
        fn count_prefixes(n: u32, row: u32, depth: u32, cols: u32, d1: u32, d2: u32) -> u64 {
            if row == depth {
                return 0;
            }
            let full = (1u32 << n) - 1;
            let mut free = full & !(cols | d1 | d2);
            let mut c = 0;
            while free != 0 {
                let bit = free & free.wrapping_neg();
                free ^= bit;
                c += 1 + count_prefixes(
                    n,
                    row + 1,
                    depth,
                    cols | bit,
                    (d1 | bit) << 1,
                    (d2 | bit) >> 1,
                );
            }
            c
        }
        prefix_nodes += count_prefixes(8, 0, 3, 0, 0, 0);
        assert_eq!(leaf_work + prefix_nodes, total_nodes);
    }

    #[test]
    fn forest_is_valid_and_deterministic() {
        let cfg = NQueensConfig::paper(9);
        let a = nqueens(cfg);
        let b = nqueens(cfg);
        assert_eq!(a, b);
        assert!(a.validate().is_ok());
    }

    #[test]
    fn task_count_grows_with_board() {
        let t9 = nqueens(NQueensConfig::paper(9)).stats().tasks;
        let t10 = nqueens(NQueensConfig::paper(10)).stats().tasks;
        assert!(t10 > t9, "{t10} <= {t9}");
    }

    #[test]
    fn grain_variance_is_large() {
        // The paper: "the computation amount in each task are
        // unpredictable" — leaf grains should spread widely.
        let w = nqueens(NQueensConfig::paper(10));
        let f = &w.rounds[0];
        let leaves: Vec<u64> = (0..f.len() as u32)
            .filter(|&id| f.task(id).children.is_empty())
            .map(|id| f.task(id).grain_us)
            .collect();
        let max = *leaves.iter().max().unwrap();
        let min = *leaves.iter().min().unwrap();
        assert!(max >= min * 4, "grains too uniform: {min}..{max}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_board_rejected() {
        solve(17);
    }
}
