//! The paper's three application problems, as real task generators.
//!
//! Each function produces a [`rips_taskgraph::Workload`] whose task
//! structure and grain sizes come from actually running the underlying
//! algorithm (not from synthetic distributions):
//!
//! * [`nqueens()`](nqueens()) — exhaustive N-Queens search (bitmask backtracking).
//!   Tasks are the valid board prefixes at a split depth; leaf grains
//!   are the *exact* node counts of the subtrees they stand for.
//!   "The number of tasks generated and the computation amount in each
//!   task are unpredictable."
//! * [`puzzle()`](puzzle()) — iterative-deepening A\* on the 15-puzzle (Manhattan
//!   heuristic, adaptive frontier splitting). One workload round per IDA\*
//!   iteration — the global synchronisation the paper blames for this
//!   problem's lower efficiency — with per-task grains equal to the
//!   measured bounded-DFS node counts.
//! * [`gromos()`](gromos()) — a GROMOS-like molecular-dynamics force workload on a
//!   synthetic 6968-atom SOD stand-in (see DESIGN.md §2): fixed task
//!   count independent of the cutoff radius, spatially correlated
//!   nonuniform grains from real cell-list neighbour counting.

pub mod gromos;
pub mod live;
pub mod nqueens;
pub mod puzzle;

pub use gromos::{gromos, gromos_with_grains, GromosConfig};
pub use live::{GrainOut, GrainSpec, GrainTable, GromosCtx};
pub use nqueens::{nqueens, nqueens_with_grains, NQueensConfig};
pub use puzzle::{puzzle, puzzle_with_grains, PuzzleConfig};
