//! Iterative-deepening A\* on the 15-puzzle (Korf 1985), and its
//! per-iteration task decomposition.
//!
//! Each IDA\* iteration deepens the cost threshold; the paper runs the
//! iterations with a global synchronisation, which is why the 15-puzzle
//! rounds map onto [`Workload`] rounds. Within an iteration, tasks are
//! the frontier states at a small expansion depth; a task's grain is
//! the *measured* node count of its threshold-bounded DFS. "The grain
//! size may vary substantially, since it dynamically depends on the
//! currently estimated cost."

use crate::live::{GrainSpec, GrainTable};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use rips_taskgraph::{TaskForest, Workload};

/// Parameters for the 15-puzzle IDA\* workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PuzzleConfig {
    /// Length of the random scramble applied to the goal state
    /// (guarantees solvability); longer ⇒ harder.
    pub scramble_len: u32,
    /// Scramble RNG seed.
    pub seed: u64,
    /// Frontier expansion keeps splitting until at least this many
    /// tasks exist (or the frontier depth cap is hit).
    pub min_tasks: usize,
    /// Virtual nanoseconds per expanded node.
    pub ns_per_node: u64,
    /// Adaptive splitting: within an iteration, any frontier subtree
    /// whose measured node count exceeds
    /// `max(iteration_total / split_divisor, split_floor_nodes)` is
    /// replaced by its children (recursively). Parallel IDA\*
    /// implementations do exactly this with the previous iteration's
    /// counts; without it a single monster subtree gates the whole
    /// machine.
    pub split_divisor: u64,
    /// Absolute node-count floor below which tasks are never split.
    pub split_floor_nodes: u64,
}

impl PuzzleConfig {
    /// The paper's "three different configurations" of increasing
    /// difficulty (config #3 is by far the largest, as in Table I).
    pub fn paper(config: u32) -> Self {
        // Seeds selected (see EXPERIMENTS.md) so that the three
        // instances increase in difficulty like the paper's: #1 ≈ 3k
        // tasks / ~8M nodes, #2 ≈ 23M nodes, #3 is an order of
        // magnitude larger (the paper's config #3 has 29 046 tasks and
        // dominates Table I's IDA* rows).
        let (seed, min_tasks) = match config {
            1 => (5, 256),
            2 => (10, 256),
            3 => (9, 2048),
            _ => panic!("the paper has configurations 1..=3"),
        };
        PuzzleConfig {
            scramble_len: 100,
            seed,
            min_tasks,
            ns_per_node: 1500,
            split_divisor: 1024,
            split_floor_nodes: 20_000,
        }
    }
}

/// A 15-puzzle position: `cells[i]` is the tile at square `i` (0 =
/// blank). Goal: `1..=15` then blank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Board {
    cells: [u8; 16],
    blank: u8,
}

const GOAL: [u8; 16] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 0];

/// The four slide directions, encoded as blank-index deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    Up,
    Down,
    Left,
    Right,
}

const DIRS: [Dir; 4] = [Dir::Up, Dir::Down, Dir::Left, Dir::Right];

impl Dir {
    /// Index into [`DIRS`] — the encoding grain specs store.
    fn index(self) -> u8 {
        match self {
            Dir::Up => 0,
            Dir::Down => 1,
            Dir::Left => 2,
            Dir::Right => 3,
        }
    }

    fn opposite(self) -> Dir {
        match self {
            Dir::Up => Dir::Down,
            Dir::Down => Dir::Up,
            Dir::Left => Dir::Right,
            Dir::Right => Dir::Left,
        }
    }
}

impl Board {
    /// The solved position.
    pub fn goal() -> Self {
        Board {
            cells: GOAL,
            blank: 15,
        }
    }

    /// `true` if solved.
    pub fn is_goal(&self) -> bool {
        self.cells == GOAL
    }

    /// Applies a slide if legal, returning the successor.
    fn slide(&self, dir: Dir) -> Option<Board> {
        let (r, c) = (self.blank / 4, self.blank % 4);
        let target = match dir {
            Dir::Up if r > 0 => self.blank - 4,
            Dir::Down if r < 3 => self.blank + 4,
            Dir::Left if c > 0 => self.blank - 1,
            Dir::Right if c < 3 => self.blank + 1,
            _ => return None,
        };
        let mut next = *self;
        next.cells[next.blank as usize] = next.cells[target as usize];
        next.cells[target as usize] = 0;
        next.blank = target;
        Some(next)
    }

    /// Sum of Manhattan distances of all tiles to their home squares —
    /// the admissible heuristic Korf's IDA\* uses.
    pub fn manhattan(&self) -> u32 {
        let mut h = 0u32;
        for (sq, &tile) in self.cells.iter().enumerate() {
            if tile != 0 {
                let home = (tile - 1) as usize;
                let dr = (sq / 4).abs_diff(home / 4);
                let dc = (sq % 4).abs_diff(home % 4);
                h += (dr + dc) as u32;
            }
        }
        h
    }

    /// Scrambles the goal with `len` random moves (never undoing the
    /// previous move), deterministic under `seed`.
    pub fn scrambled(len: u32, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut b = Board::goal();
        let mut last: Option<Dir> = None;
        let mut made = 0;
        while made < len {
            let dir = DIRS[rng.random_range(0..4)];
            if Some(dir.opposite()) == last {
                continue;
            }
            if let Some(next) = b.slide(dir) {
                b = next;
                last = Some(dir);
                made += 1;
            }
        }
        b
    }
}

/// All successor positions of `board` (one slide each). Exposed for
/// cross-validation against reference searches.
pub fn successors(board: &Board) -> Vec<Board> {
    DIRS.iter().filter_map(|&d| board.slide(d)).collect()
}

/// Bounded DFS of one IDA\* iteration from `board` at depth `g` with
/// the given threshold. Returns `(nodes_expanded, min_exceeded_f,
/// found)`; stops early when the goal is found (like the sequential
/// reference the paper compares against).
fn bounded_dfs(
    board: &Board,
    g: u32,
    threshold: u32,
    last: Option<Dir>,
    nodes: &mut u64,
) -> (u32, bool) {
    let f = g + board.manhattan();
    if f > threshold {
        return (f, false);
    }
    if board.is_goal() {
        return (f, true);
    }
    *nodes += 1;
    let mut min_exceed = u32::MAX;
    for dir in DIRS {
        if Some(dir.opposite()) == last {
            continue;
        }
        if let Some(next) = board.slide(dir) {
            let (exceed, found) = bounded_dfs(&next, g + 1, threshold, Some(dir), nodes);
            if found {
                return (exceed, true);
            }
            min_exceed = min_exceed.min(exceed);
        }
    }
    (min_exceed, false)
}

/// Solves `board` by sequential IDA\*, returning `(optimal_length,
/// thresholds, nodes_per_iteration)`.
pub fn ida_star(board: &Board) -> (u32, Vec<u32>, Vec<u64>) {
    let mut threshold = board.manhattan();
    let mut thresholds = Vec::new();
    let mut nodes_per_iter = Vec::new();
    loop {
        thresholds.push(threshold);
        let mut nodes = 0u64;
        let (next, found) = bounded_dfs(board, 0, threshold, None, &mut nodes);
        nodes_per_iter.push(nodes);
        if found {
            return (threshold, thresholds, nodes_per_iter);
        }
        assert!(next > threshold, "IDA* failed to make progress");
        threshold = next;
    }
}

/// Runs one task's bounded DFS for live execution: `last` is a
/// direction index as stored in [`GrainSpec::PuzzleDfs`]. Returns
/// `(nodes_expanded, min_exceeded_f, found)`.
pub(crate) fn run_bounded(
    board: &Board,
    g: u32,
    threshold: u32,
    last: Option<u8>,
) -> (u64, u32, bool) {
    let last = last.map(|i| DIRS[i as usize]);
    let mut nodes = 0u64;
    let (exceed, found) = bounded_dfs(board, g, threshold, last, &mut nodes);
    (nodes, exceed, found)
}

/// A frontier entry: a state, its depth, and the move that reached it.
#[derive(Clone, Copy)]
struct Frontier {
    board: Board,
    g: u32,
    last: Option<Dir>,
}

impl Frontier {
    /// Legal successors (excluding the reverse of the arriving move).
    fn children(&self) -> Vec<Frontier> {
        let mut out = Vec::with_capacity(3);
        for dir in DIRS {
            if Some(dir.opposite()) == self.last {
                continue;
            }
            if let Some(b) = self.board.slide(dir) {
                out.push(Frontier {
                    board: b,
                    g: self.g + 1,
                    last: Some(dir),
                });
            }
        }
        out
    }
}

/// Expands the root into at least `min_tasks` frontier states (or until
/// depth 12), breadth-first without duplicate detection — the same
/// state tree a parallel IDA\* would partition.
fn expand_frontier(start: &Board, min_tasks: usize) -> Vec<Frontier> {
    let mut frontier = vec![Frontier {
        board: *start,
        g: 0,
        last: None,
    }];
    let mut depth = 0;
    while frontier.len() < min_tasks && depth < 12 {
        let mut next = Vec::with_capacity(frontier.len() * 3);
        for f in &frontier {
            for dir in DIRS {
                if Some(dir.opposite()) == f.last {
                    continue;
                }
                if let Some(b) = f.board.slide(dir) {
                    next.push(Frontier {
                        board: b,
                        g: f.g + 1,
                        last: Some(dir),
                    });
                }
            }
        }
        frontier = next;
        depth += 1;
    }
    frontier
}

/// Builds the IDA\* workload: one round per iteration, flat tasks per
/// frontier subtree (adaptively split so no subtree dominates the
/// iteration), grains measured by the threshold-bounded DFS.
pub fn puzzle(cfg: PuzzleConfig) -> Workload {
    puzzle_with_grains(cfg).0
}

/// Like [`puzzle`], but also returns the [`GrainTable`] mapping each
/// task to its bounded DFS, for live execution.
pub fn puzzle_with_grains(cfg: PuzzleConfig) -> (Workload, GrainTable) {
    assert!(cfg.split_divisor > 0, "zero split divisor");
    let start = Board::scrambled(cfg.scramble_len, cfg.seed);
    let frontier = expand_frontier(&start, cfg.min_tasks);
    let mut rounds = Vec::new();
    let mut spec_rounds = Vec::new();
    let mut threshold = start.manhattan();
    loop {
        // First pass: measure every base frontier subtree.
        let mut measured: Vec<(Frontier, u64, u32, bool)> = frontier
            .iter()
            .map(|f| {
                let mut nodes = 0u64;
                let (exceed, hit) = bounded_dfs(&f.board, f.g, threshold, f.last, &mut nodes);
                (*f, nodes, exceed, hit)
            })
            .collect();
        let total: u64 = measured.iter().map(|&(_, n, _, _)| n).sum();
        let split_at = (total / cfg.split_divisor).max(cfg.split_floor_nodes);
        // Second pass: replace oversized subtrees by their children
        // until every task is below the split threshold (goal-carrying
        // tasks are kept whole — they end the search).
        let mut forest = TaskForest::new();
        let mut specs = Vec::new();
        let mut next_threshold = u32::MAX;
        let mut found = false;
        while let Some((f, nodes, exceed, hit)) = measured.pop() {
            if !hit && nodes > split_at {
                for child in f.children() {
                    let mut n = 0u64;
                    let (e, h) = bounded_dfs(&child.board, child.g, threshold, child.last, &mut n);
                    measured.push((child, n, e, h));
                }
                continue;
            }
            // Even a pruned-at-the-root task costs one heuristic
            // evaluation.
            let grain = ((nodes.max(1)) * cfg.ns_per_node).div_ceil(1000).max(1);
            forest.add_root(grain);
            specs.push(GrainSpec::PuzzleDfs {
                board: f.board,
                g: f.g,
                last: f.last.map(Dir::index),
                threshold,
            });
            if hit {
                found = true;
            } else {
                next_threshold = next_threshold.min(exceed);
            }
        }
        rounds.push(forest);
        spec_rounds.push(specs);
        if found {
            break;
        }
        assert!(
            next_threshold > threshold && next_threshold != u32::MAX,
            "IDA* stalled"
        );
        threshold = next_threshold;
    }
    let w = Workload {
        name: format!("15-puzzle scramble={} seed={}", cfg.scramble_len, cfg.seed),
        rounds,
    };
    debug_assert!(w.validate().is_ok());
    (w, GrainTable::new(spec_rounds))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goal_has_zero_heuristic() {
        assert_eq!(Board::goal().manhattan(), 0);
        assert!(Board::goal().is_goal());
    }

    #[test]
    fn manhattan_is_admissible_on_scrambles() {
        // h(scramble of length L) ≤ L for all L (each move changes h
        // by exactly 1).
        for len in [1, 5, 12, 20] {
            let b = Board::scrambled(len, 99);
            assert!(b.manhattan() <= len, "h > moves for len={len}");
        }
    }

    #[test]
    fn ida_star_solves_short_scrambles_optimally() {
        // For short scrambles the optimal length has the same parity
        // as, and is at most, the scramble length.
        for (len, seed) in [(6u32, 1), (10, 2), (14, 3)] {
            let b = Board::scrambled(len, seed);
            let (opt, thresholds, nodes) = ida_star(&b);
            assert!(opt <= len);
            assert_eq!(opt % 2, len % 2, "parity must match");
            assert!(thresholds.windows(2).all(|w| w[1] > w[0]));
            assert_eq!(thresholds.len(), nodes.len());
        }
    }

    #[test]
    fn slide_roundtrip() {
        let b = Board::goal();
        let up = b.slide(Dir::Up).unwrap();
        assert_eq!(up.slide(Dir::Down).unwrap(), b);
        // Blank in the corner: right/down illegal.
        assert!(b.slide(Dir::Right).is_none());
        assert!(b.slide(Dir::Down).is_none());
    }

    #[test]
    fn workload_rounds_match_iterations() {
        let cfg = PuzzleConfig {
            scramble_len: 14,
            seed: 5,
            min_tasks: 16,
            ns_per_node: 1000,
            split_divisor: 1024,
            split_floor_nodes: 20_000,
        };
        let w = puzzle(cfg);
        let start = Board::scrambled(14, 5);
        let (_, thresholds, _) = ida_star(&start);
        assert_eq!(w.rounds.len(), thresholds.len());
        assert!(w.rounds.iter().all(|r| r.len() >= 16));
    }

    #[test]
    fn frontier_tasks_cover_iteration_work() {
        // Σ frontier-task nodes ≈ sequential iteration nodes (small
        // differences: the frontier skips the first few shared levels,
        // and early termination differs) — check the totals are the
        // same order of magnitude for a non-final iteration.
        let b = Board::scrambled(16, 8);
        let (_, thresholds, nodes) = ida_star(&b);
        if thresholds.len() < 2 {
            return; // degenerate scramble; nothing to compare
        }
        let frontier = expand_frontier(&b, 16);
        let t0 = thresholds[0];
        let mut task_total = 0u64;
        for f in &frontier {
            let mut n = 0u64;
            bounded_dfs(&f.board, f.g, t0, f.last, &mut n);
            task_total += n;
        }
        // The tree-BFS frontier duplicates transpositions, so the task
        // total can exceed the sequential count; it must be at least
        // the sequential count minus the shared prefix and within a
        // small factor of it.
        assert!(
            task_total + 100 >= nodes[0] / 4,
            "{task_total} vs {}",
            nodes[0]
        );
        assert!(task_total <= nodes[0].max(100) * 10);
    }

    #[test]
    fn adaptive_splitting_bounds_monster_tasks() {
        // With splitting enabled, no task's grain may exceed the split
        // threshold by more than one expansion level (a child can be at
        // most the whole parent).
        let cfg = PuzzleConfig {
            scramble_len: 40,
            seed: 9,
            min_tasks: 16,
            ns_per_node: 1000, // grain µs == node count
            split_divisor: 64,
            split_floor_nodes: 500,
        };
        let w = puzzle(cfg);
        for (i, round) in w.rounds.iter().enumerate() {
            let total: u64 = (0..round.len() as u32)
                .map(|id| round.task(id).grain_us)
                .sum();
            let threshold = (total / cfg.split_divisor).max(cfg.split_floor_nodes);
            let max = (0..round.len() as u32)
                .map(|id| round.task(id).grain_us)
                .max()
                .unwrap();
            assert!(
                max <= threshold * 4,
                "round {i}: max grain {max} vs threshold {threshold}"
            );
        }
    }

    #[test]
    fn splitting_disabled_by_huge_floor() {
        // A floor larger than any subtree disables splitting entirely:
        // the task count per round equals the base frontier size.
        let base = PuzzleConfig {
            scramble_len: 20,
            seed: 3,
            min_tasks: 8,
            ns_per_node: 1000,
            split_divisor: 1024,
            split_floor_nodes: u64::MAX,
        };
        let w = puzzle(base);
        let sizes: Vec<usize> = w.rounds.iter().map(|r| r.len()).collect();
        assert!(sizes.windows(2).all(|p| p[0] == p[1]), "{sizes:?}");
    }

    #[test]
    fn deterministic_workload() {
        let cfg = PuzzleConfig {
            scramble_len: 12,
            seed: 7,
            min_tasks: 8,
            ns_per_node: 500,
            split_divisor: 1024,
            split_floor_nodes: 20_000,
        };
        assert_eq!(puzzle(cfg), puzzle(cfg));
    }
}
