//! Shared harness for executing a [`rips_taskgraph::Workload`] on the
//! simulated multicomputer.
//!
//! Every scheduler in this reproduction — the RIPS runtime
//! (`rips-core`) and the three dynamic baselines (`rips-balancers`) —
//! executes the same workloads under the same rules:
//!
//! * root tasks of each round are **block-distributed** over the nodes
//!   (the natural SPMD data decomposition; spatially correlated
//!   imbalance is exactly what load balancers must fix);
//! * completing a task *generates* its children on the executing node;
//! * rounds are separated by a barrier (modelled as a convergecast +
//!   broadcast over the topology, see [`Oracle::round_barrier_delay`]);
//! * per-task dispatch costs a fixed overhead, and task descriptors
//!   have a fixed wire size ([`Costs`]).
//!
//! The [`Oracle`] is shared mutable state between the per-node programs
//! of one engine. It plays the role of *instantaneously observable
//! global state* for two purposes only: detecting "all tasks of this
//! round are done" (a real system would run distributed termination
//! detection; we charge its latency via the barrier model but skip its
//! implementation) and carrying scheduler-specific rendezvous data
//! (e.g. the MWA plan of a RIPS system phase). It never short-circuits
//! the costs that the paper measures.
//!
//! On top of this harness sit the two pieces that make schedulers
//! interchangeable: the [`driver`] module (the policy kernel — one SPMD
//! [`NodeDriver`] parameterized by a [`BalancerPolicy`]) and the
//! [`registry`] module (the `name → constructor` table the benches,
//! golden tests, and CLI enumerate).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod driver;
#[allow(unsafe_code)]
pub mod rcu;
pub mod registry;

pub use driver::{
    dispatch_message, dispatch_start, dispatch_timer, exec_step, run_policy, BalancerPolicy,
    ExecCtx, Kernel, KernelMsg, NodeDriver, TAG_EXEC, TAG_POLICY_BASE, TAG_ROUND,
};
pub use registry::{RunSpec, ScheduledRun, SchedulerCtor, SchedulerRegistry};

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

use rips_verify::sync::atomic::{AtomicBool, AtomicU32, AtomicU64};
use rips_verify::sync::{ord, swap_bool};

use rips_desim::Time;
use rips_taskgraph::{TaskId, Workload};
use rips_topology::{NodeId, Topology};

/// One schedulable task instance travelling through the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskInstance {
    /// Task within its round's forest.
    pub task: TaskId,
    /// Round index.
    pub round: u32,
    /// Execution time (µs).
    pub grain_us: u64,
    /// Node where the task was generated — an execution elsewhere makes
    /// it *non-local* (Table I's locality column).
    pub origin: NodeId,
}

/// Cost constants shared by all schedulers (calibrated in
/// EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Costs {
    /// CPU overhead to dispatch one task from the local queue (µs).
    pub dispatch_us: Time,
    /// CPU overhead to create/enqueue one generated task (µs).
    pub spawn_us: Time,
    /// Wire size of one task descriptor (bytes). "A uniform code image
    /// is accessible at each processor and only data are transferred."
    pub task_bytes: usize,
    /// Wire size of a small control message (bytes).
    pub ctl_bytes: usize,
    /// Modelled duration of one synchronous communication step inside
    /// a collective (µs). These are small control messages (a scan or
    /// broadcast hop ≈ one short-message latency); the paper's "about
    /// 1 ms" step applies to *task migration*, which this simulator
    /// charges separately through real task messages.
    pub comm_step_us: Time,
    /// Record per-node busy spans during the run (costs memory on long
    /// runs; used by the `timeline` visualisation).
    pub record_timeline: bool,
    /// Simulate store-and-forward link contention (directed links
    /// serialize transmissions). Off by default; the `ablation_contention`
    /// bench measures its effect on each scheduler.
    pub contention: bool,
}

impl Default for Costs {
    fn default() -> Self {
        Costs {
            dispatch_us: 250,
            spawn_us: 150,
            task_bytes: 48,
            ctl_bytes: 16,
            comm_step_us: 100,
            record_timeline: false,
            contention: false,
        }
    }
}

/// Shared per-engine state (see module docs for the rules of use).
///
/// The round counters are plain atomics: [`Oracle::task_done`] — the
/// one call on the per-task hot path — is a single `fetch_sub`, so
/// under the live backend node threads never contend on a lock to
/// retire tasks. Only the scheduler scratch space (system-phase
/// rendezvous data, off the per-task path) still sits behind a mutex.
pub struct Oracle {
    shared: Arc<OracleShared>,
    /// The workload being executed (immutable, shared).
    pub workload: Arc<Workload>,
    /// Cost constants.
    pub costs: Costs,
    /// Trace handle for the run, captured from the thread's installed
    /// sink ([`rips_trace::with_sink`]) at construction; disabled
    /// otherwise. The kernel and policies emit through it.
    pub tracer: rips_trace::Tracer,
    /// Metrics handle for the run, captured from the thread's
    /// installed registry ([`rips_trace::with_metrics`]) at
    /// construction; disabled (one dead branch per call) otherwise.
    /// Kernels re-shard it per node via [`rips_trace::Meter::for_shard`].
    pub meter: rips_trace::Meter,
    /// The machine topology, for task-locality trace annotations.
    /// Distances are computed on the fly — an `n × n` table here would
    /// be 2 TB at a million nodes, and every provided topology answers
    /// `distance` in closed form (see
    /// [`rips_topology::Topology::computed_routes`]).
    topo: Arc<dyn Topology>,
    n: usize,
    diameter: usize,
}

struct OracleShared {
    round: AtomicU32,
    outstanding: AtomicU64,
    round_announced: AtomicBool,
    /// Scratch space for scheduler-specific rendezvous (e.g. loads
    /// reported to a RIPS system phase). Touched only during system
    /// phases / barriers, never per task.
    scratch: Mutex<SchedScratch>,
}

/// Scheduler-specific rendezvous data living inside the oracle.
#[derive(Default)]
pub struct SchedScratch {
    /// Loads reported by nodes that entered the current system phase
    /// (RIPS), `None` where not yet reported.
    pub reported_loads: Vec<Option<i64>>,
    /// Count of nodes that entered the current system phase.
    pub entered: usize,
    /// Per-source outgoing transfers `(dst, count)` of the current
    /// system phase plan.
    pub outgoing: Vec<Vec<(NodeId, i64)>>,
    /// Per-destination expected incoming task count.
    pub expected_in: Vec<i64>,
}

impl Clone for Oracle {
    fn clone(&self) -> Self {
        Oracle {
            shared: Arc::clone(&self.shared),
            workload: Arc::clone(&self.workload),
            costs: self.costs,
            tracer: self.tracer.clone(),
            meter: self.meter.clone(),
            topo: Arc::clone(&self.topo),
            n: self.n,
            diameter: self.diameter,
        }
    }
}

impl Oracle {
    /// Creates the oracle for one engine run.
    pub fn new(workload: Arc<Workload>, topo: Arc<dyn Topology>, costs: Costs) -> Self {
        let first_round = workload.rounds.first().map_or(0, |r| r.len() as u64);
        let tracer = rips_trace::Tracer::current();
        let meter = rips_trace::Meter::current();
        let n = topo.len();
        Oracle {
            shared: Arc::new(OracleShared {
                round: AtomicU32::new(0),
                outstanding: AtomicU64::new(first_round),
                round_announced: AtomicBool::new(false),
                scratch: Mutex::new(SchedScratch::default()),
            }),
            workload,
            costs,
            tracer,
            meter,
            diameter: topo.diameter(),
            topo,
            n,
        }
    }

    /// Hop distance between two nodes, for trace locality annotations.
    /// Only meaningful while tracing (returns 0 otherwise, matching
    /// the historical table-free untraced path bit for bit).
    pub fn hops(&self, from: NodeId, to: NodeId) -> u32 {
        if self.tracer.enabled() {
            self.topo.distance(from, to) as u32
        } else {
            0
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Current round index.
    pub fn round(&self) -> u32 {
        self.shared.round.load(Ordering::Acquire)
    }

    /// Unexecuted tasks remaining in the current round (including tasks
    /// not yet generated — children count from the start, because the
    /// forest is known to the oracle; what matters is that it reaches
    /// zero exactly when the round's last task finishes).
    pub fn outstanding(&self) -> u64 {
        self.shared.outstanding.load(Ordering::Acquire)
    }

    /// Root task instances of round `round` owned by `node` under the
    /// block distribution.
    pub fn seed_for(&self, node: NodeId, round: u32) -> Vec<TaskInstance> {
        let forest = &self.workload.rounds[round as usize];
        let roots = forest.roots();
        let per = roots.len().div_ceil(self.n.max(1)).max(1);
        let lo = (node * per).min(roots.len());
        let hi = ((node + 1) * per).min(roots.len());
        roots[lo..hi]
            .iter()
            .map(|&id| TaskInstance {
                task: id,
                round,
                grain_us: forest.task(id).grain_us,
                origin: node,
            })
            .collect()
    }

    /// Marks one task of the current round executed. Returns `true`
    /// exactly once per round: to the caller that completed the round's
    /// last task (the node that then announces the barrier).
    ///
    /// Lock-free: one `fetch_sub` on the hot path, and the
    /// announcement token is claimed with a `swap` so concurrent
    /// finishers of the last two tasks cannot both win.
    pub fn task_done(&self) -> bool {
        let prev = self
            .shared
            .outstanding
            .fetch_sub(1, ord("oracle.retire", Ordering::AcqRel));
        assert!(prev > 0, "task_done underflow");
        prev == 1 && self.claim_announce()
    }

    /// Claims the round's announcement token: `true` for the single
    /// winner. The `swap` is what keeps the barrier announcement unique
    /// when a finisher and a saw-zero observer race for it.
    fn claim_announce(&self) -> bool {
        !swap_bool(
            "oracle.announce",
            &self.shared.round_announced,
            true,
            Ordering::AcqRel,
        )
    }

    /// Child instances generated by completing `inst` on `node`.
    pub fn children_of(&self, inst: &TaskInstance, node: NodeId) -> Vec<TaskInstance> {
        let forest = &self.workload.rounds[inst.round as usize];
        forest
            .task(inst.task)
            .children
            .iter()
            .map(|&c| TaskInstance {
                task: c,
                round: inst.round,
                grain_us: forest.task(c).grain_us,
                origin: node,
            })
            .collect()
    }

    /// Advances to the next round, resetting the outstanding counter.
    /// Returns the new round index, or `None` if the workload is
    /// complete.
    ///
    /// Only the barrier announcer calls this (the node whose
    /// [`Oracle::task_done`] returned `true`), so it never races with
    /// itself; peers act on the new round only after receiving the
    /// announcer's `RoundStart` message, whose delivery provides the
    /// happens-before edge for these stores.
    pub fn advance_round(&self) -> Option<u32> {
        debug_assert_eq!(self.outstanding(), 0, "advancing with work outstanding");
        let next = self.round() + 1;
        if (next as usize) >= self.workload.rounds.len() {
            return None;
        }
        *self.scratch_lock() = SchedScratch::default();
        self.shared.outstanding.store(
            self.workload.rounds[next as usize].len() as u64,
            Ordering::Release,
        );
        self.shared.round_announced.store(false, Ordering::Release);
        self.shared.round.store(next, Ordering::Release);
        Some(next)
    }

    /// Locks the scratch space, recovering from poisoning: if a live
    /// node thread panicked mid-update the rendezvous data may be
    /// stale, but the surviving threads' shutdown paths still run.
    fn scratch_lock(&self) -> std::sync::MutexGuard<'_, SchedScratch> {
        self.shared
            .scratch
            .lock()
            .unwrap_or_else(|p| p.into_inner())
    }

    /// Modelled latency of the inter-round barrier: a convergecast plus
    /// a broadcast across the topology.
    pub fn round_barrier_delay(&self) -> Time {
        2 * self.diameter as Time * self.costs.comm_step_us
    }

    /// Runs `f` with mutable access to the scheduler scratch space,
    /// holding its lock for the duration (system-phase rendezvous
    /// only — never called on the per-task path).
    pub fn with_scratch<R>(&self, f: impl FnOnce(&mut SchedScratch) -> R) -> R {
        f(&mut self.scratch_lock())
    }
}

/// Per-node execution bookkeeping shared by every scheduler program.
#[derive(Debug, Default)]
pub struct NodeExec {
    /// Ready-to-execute queue.
    pub queue: VecDeque<TaskInstance>,
    /// Tasks executed by this node.
    pub executed: u64,
    /// Executed tasks whose origin was another node.
    pub nonlocal_executed: u64,
}

impl NodeExec {
    /// Records the execution of `inst` on `me`.
    pub fn record(&mut self, inst: &TaskInstance, me: NodeId) {
        self.executed += 1;
        if inst.origin != me {
            self.nonlocal_executed += 1;
        }
    }
}

/// One system phase, as recorded for the paper's §5 overhead anecdote
/// (8 phases for 15-Queens, ~125 nonlocal tasks per phase, …). Lives
/// here (not in `rips-core`) so the scheduler registry can return phase
/// logs for any scheduler that has them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseLog {
    /// Phase index (1-based; phase 1 schedules the initial tasks).
    pub phase: u32,
    /// Round during which the phase ran.
    pub round: u32,
    /// Total tasks in all queues when the phase ran.
    pub total_tasks: i64,
    /// Tasks that ended on a different node than they started.
    pub migrated: i64,
    /// Σ eₖ of the transfer plan.
    pub edge_cost: i64,
}

/// How [`RunOutcome::verify_complete`] failed: the executed-task total
/// disagrees with the workload, in one of two distinguishable ways.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyError {
    /// Fewer executions than tasks: some tasks were dropped in flight
    /// (the classic migration/termination race).
    TasksLost {
        /// Tasks actually executed.
        executed: u64,
        /// Tasks the workload contains.
        expected: u64,
    },
    /// More executions than tasks: some task ran more than once (a
    /// duplicated migration or double dispatch).
    DoubleExecution {
        /// Tasks actually executed.
        executed: u64,
        /// Tasks the workload contains.
        expected: u64,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            VerifyError::TasksLost { executed, expected } => write!(
                f,
                "executed {executed} of {expected} tasks: {} lost",
                expected - executed
            ),
            VerifyError::DoubleExecution { executed, expected } => write!(
                f,
                "executed {executed} of {expected} tasks: {} duplicate executions",
                executed - expected
            ),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Outcome of one scheduler run, aggregating the engine statistics with
/// the scheduler-level counters — the columns of the paper's Table I.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Raw engine statistics.
    pub stats: rips_desim::RunStats,
    /// Tasks executed per node.
    pub executed: Vec<u64>,
    /// Non-local tasks (executed off their origin node), total.
    pub nonlocal: u64,
    /// Number of system phases (RIPS) or 0 for dynamic baselines.
    pub system_phases: u32,
}

impl RunOutcome {
    /// Outcome of running nothing on `n` nodes — the degenerate result
    /// every scheduler driver returns for a workload with no rounds.
    pub fn empty(n: usize) -> Self {
        RunOutcome {
            stats: rips_desim::RunStats {
                end_time: 0,
                nodes: vec![Default::default(); n],
                net: Default::default(),
                events: 0,
                peak_queue_depth: 0,
                mem: Default::default(),
                timelines: None,
            },
            executed: vec![0; n],
            nonlocal: 0,
            system_phases: 0,
        }
    }

    /// Total tasks executed.
    pub fn total_executed(&self) -> u64 {
        self.executed.iter().sum()
    }

    /// Parallel execution time `T` in seconds.
    pub fn exec_time_s(&self) -> f64 {
        self.stats.end_time as f64 / 1e6
    }

    /// Mean per-node overhead `Th` in seconds.
    pub fn overhead_s(&self) -> f64 {
        self.stats.mean_overhead_us() / 1e6
    }

    /// Mean per-node idle `Ti` in seconds.
    pub fn idle_s(&self) -> f64 {
        self.stats.mean_idle_us() / 1e6
    }

    /// Efficiency `µ = Ts / (Tp · N)`.
    pub fn efficiency(&self) -> f64 {
        self.stats.efficiency()
    }

    /// Sanity check: every task of the workload ran exactly once.
    /// Distinguishes losing tasks from executing some twice — they
    /// point at different bugs (see [`VerifyError`]).
    pub fn verify_complete(&self, workload: &Workload) -> Result<(), VerifyError> {
        let expected: u64 = workload.rounds.iter().map(|r| r.len() as u64).sum();
        let executed = self.total_executed();
        match executed.cmp(&expected) {
            std::cmp::Ordering::Equal => Ok(()),
            std::cmp::Ordering::Less => Err(VerifyError::TasksLost { executed, expected }),
            std::cmp::Ordering::Greater => Err(VerifyError::DoubleExecution { executed, expected }),
        }
    }
}

/// Bounded model checking of the round-barrier announce protocol
/// (PR 9): two workers retire the round's last two tasks while each
/// also watches for the count to hit zero — the last finisher and a
/// saw-zero observer race for the announcement token. The `AcqRel`
/// retire chain orders every worker's round results before the
/// announcer reads them, and the `swap` elects exactly one announcer.
/// Compiled only under `--cfg rips_verify`.
#[cfg(all(test, rips_verify))]
mod verify_model {
    use super::*;
    use rips_taskgraph::flat_uniform;
    use rips_topology::Mesh2D;
    use rips_verify::sync::atomic::AtomicUsize;
    use rips_verify::sync::cell::UnsafeCellWrap;
    use rips_verify::{vthread, Checker, Mutation, MutationKind, ViolationKind};

    fn barrier_model() -> impl Fn() + Send + Sync + 'static {
        || {
            let w = Arc::new(flat_uniform(2, 1, 1, 0));
            let o = Arc::new(Oracle::new(
                w,
                Arc::new(Mesh2D::new(1, 2)),
                Costs::default(),
            ));
            // One result slot per worker, written before its retire;
            // the announcer reads both (the barrier's rendezvous). The
            // accesses carry no data — the checker races the *accesses*
            // themselves, so no `unsafe` deref is needed and the L004
            // allowlist stays pinned to ring.rs + rcu.rs.
            let results = Arc::new([UnsafeCellWrap::new(0u64), UnsafeCellWrap::new(0u64)]);
            let wins = Arc::new(AtomicUsize::new(0));
            let worker = {
                let (o, results, wins) = (Arc::clone(&o), Arc::clone(&results), Arc::clone(&wins));
                move |idx: usize| {
                    results[idx].with_mut(|_| ());
                    let mut won = o.task_done();
                    if !won && o.outstanding() == 0 {
                        won = o.claim_announce();
                    }
                    if won {
                        results[0].with(|_| ());
                        results[1].with(|_| ());
                        wins.fetch_add(1, Ordering::Relaxed);
                    }
                }
            };
            let rival = {
                let worker = worker.clone();
                vthread::spawn_named("rival", move || worker(1))
            };
            worker(0);
            rival.join().unwrap();
            assert_eq!(
                wins.load(Ordering::Relaxed),
                1,
                "exactly one barrier announcer"
            );
        }
    }

    #[test]
    fn model_single_barrier_announcer() {
        let stats = Checker::from_env("runtime.oracle.announce")
            .check(barrier_model())
            .expect("shipped announce protocol must be violation-free");
        assert!(stats.executions > 1);
    }

    /// `swap` → load+store admits a double announcement; `AcqRel` →
    /// `Relaxed` on the retire unorders the results from the announcer.
    #[test]
    fn sweep_announce_token_and_retire_ordering_are_load_bearing() {
        for (site, kind, expect) in [
            (
                "oracle.announce",
                MutationKind::SplitRmw,
                ViolationKind::AssertionFailure,
            ),
            (
                "oracle.retire",
                MutationKind::WeakenToRelaxed,
                ViolationKind::DataRace,
            ),
        ] {
            let v = Checker::from_env(&format!("runtime.oracle.sweep.{site}"))
                .mutation(Mutation { site, kind })
                .check(barrier_model())
                .unwrap_err();
            assert_eq!(v.kind, expect, "mutating {site}, got:\n{}", v.replay);
            assert!(
                !v.schedule.is_empty(),
                "violation must carry a replay schedule"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rips_taskgraph::flat_uniform;
    use rips_topology::Mesh2D;

    fn oracle(tasks: usize, nodes: usize) -> Oracle {
        let w = Arc::new(flat_uniform(tasks, 5, 10, 1));
        let topo = Mesh2D::near_square(nodes);
        Oracle::new(w, Arc::new(topo), Costs::default())
    }

    #[test]
    fn block_distribution_covers_all_roots_once() {
        let o = oracle(10, 4);
        let mut seen = vec![0u32; 10];
        for node in 0..4 {
            for inst in o.seed_for(node, 0) {
                seen[inst.task as usize] += 1;
                assert_eq!(inst.origin, node);
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
    }

    #[test]
    fn uneven_block_distribution() {
        let o = oracle(7, 4);
        let counts: Vec<usize> = (0..4).map(|n| o.seed_for(n, 0).len()).collect();
        assert_eq!(counts.iter().sum::<usize>(), 7);
        assert_eq!(counts, vec![2, 2, 2, 1]);
    }

    #[test]
    fn task_done_fires_once_at_zero() {
        let o = oracle(3, 2);
        assert!(!o.task_done());
        assert!(!o.task_done());
        assert!(o.task_done());
        assert_eq!(o.outstanding(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn task_done_underflow_detected() {
        let o = oracle(1, 1);
        o.task_done();
        o.task_done();
    }

    #[test]
    fn advance_round_exhausts() {
        let w = Arc::new(rips_taskgraph::Workload {
            name: "two-round".into(),
            rounds: vec![
                flat_uniform(2, 1, 1, 0).rounds[0].clone(),
                flat_uniform(3, 1, 1, 0).rounds[0].clone(),
            ],
        });
        let topo = Mesh2D::new(1, 2);
        let o = Oracle::new(w, Arc::new(topo), Costs::default());
        o.task_done();
        o.task_done();
        assert_eq!(o.advance_round(), Some(1));
        assert_eq!(o.outstanding(), 3);
        for _ in 0..3 {
            o.task_done();
        }
        assert_eq!(o.advance_round(), None);
    }

    #[test]
    fn nonlocal_counting() {
        let mut exec = NodeExec::default();
        let inst = TaskInstance {
            task: 0,
            round: 0,
            grain_us: 5,
            origin: 3,
        };
        exec.record(&inst, 3);
        exec.record(&inst, 1);
        assert_eq!(exec.executed, 2);
        assert_eq!(exec.nonlocal_executed, 1);
    }
}
