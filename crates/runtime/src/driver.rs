//! The **policy kernel**: one SPMD node driver for every scheduler.
//!
//! Every scheduler in this reproduction — RIPS itself and the dynamic
//! baselines — runs the *same* per-node event loop: pop a task, charge
//! dispatch overhead, execute the grain, generate children, decrement
//! the round counter, and keep a single pending EXEC timer alive while
//! the queue is non-empty. Likewise they all migrate tasks the same way
//! (one packed message per destination, spawn overhead charged at the
//! receiver, cumulative expected/received counters so an overtaking
//! migration is never lost) and pace rounds the same way (the node that
//! completes a round's last task announces the barrier; the barrier
//! timer advances the round or halts the machine).
//!
//! [`NodeDriver`] owns exactly that machinery, once. What *differs*
//! between schedulers — where children go, when load information is
//! exchanged, how a system phase is initiated — is expressed through
//! the [`BalancerPolicy`] trait. A new scheduler is a ~100-line trait
//! implementation (see `examples/custom_balancer.rs`), not a fork of
//! the event loop.
//!
//! # The execution-backend seam
//!
//! Policies never touch the simulator directly: every hook receives an
//! `&mut impl `[`ExecCtx`] — the narrow surface (time, sends, timers,
//! compute, grain execution) that both backends provide. Under the
//! discrete-event simulator the context is [`rips_desim::Ctx`]
//! (virtual time, modelled costs); under `rips-live` it is a real
//! thread's channel-backed context (wall-clock time, actual work). The
//! three `dispatch_*` entry points are the backend-facing API: desim
//! calls them from its [`rips_desim::Program`] handlers (via
//! [`NodeDriver`]), the live backend from its per-node thread loop.
//!
//! # Invariants the kernel maintains
//!
//! * **Migration counters.** `received_in` counts `Tasks` messages ever
//!   received; `expected_in` counts messages a policy has announced it
//!   is owed. Both are *cumulative* (never reset), so a migration that
//!   overtakes its announcement — possible, because broadcasts
//!   serialise per-recipient send costs — is never lost; the balance
//!   `received_in == expected_in` means "no migration in flight".
//! * **Progress.** At most one EXEC timer is pending per node
//!   ([`Kernel::kick`] is idempotent), and it is re-armed after every
//!   task execution and every task arrival, so a node with queued work
//!   and an enabled exec loop always runs it.
//! * **Round pacing.** [`Oracle::task_done`] returns `true` exactly
//!   once per round; the driver turns that into a single barrier
//!   announcement (unless the policy paces rounds itself, as RIPS does
//!   with its empty system phase).

use std::sync::Arc;

use rand::rngs::SmallRng;
use rips_desim::{Ctx, Engine, LatencyModel, Time, WorkKind};
use rips_taskgraph::Workload;
use rips_topology::{NodeId, Topology};
use rips_trace::metrics_rt::{Counter, Gauge};
use rips_trace::TraceEvent;

use crate::{Costs, NodeExec, Oracle, RunOutcome, TaskInstance};

/// Timer tag of the kernel's exec loop.
pub const TAG_EXEC: u64 = 0;
/// Timer tag of the kernel's round barrier.
pub const TAG_ROUND: u64 = 1;
/// First timer tag available to policies; the driver forwards every
/// tag `>= TAG_POLICY_BASE` to [`BalancerPolicy::on_timer`].
pub const TAG_POLICY_BASE: u64 = 2;

/// Messages exchanged by kernel-driven nodes. The kernel owns task
/// migration and round pacing; everything else is a policy message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelMsg<M> {
    /// Migrated task instances, plus the sender's advertised load at
    /// send time (diffusion policies refresh their load tables for
    /// free; others ignore it).
    Tasks(Vec<TaskInstance>, i64),
    /// Round `r` begins, with a policy-defined token word (RIPS carries
    /// the opening system-phase index; round-paced policies send 0).
    RoundStart(u32, u32),
    /// A policy-specific message, delivered to
    /// [`BalancerPolicy::on_msg`].
    Policy(M),
}

/// The execution-backend seam: everything a [`Kernel`] and its
/// [`BalancerPolicy`] may ask of the machine they run on.
///
/// Implemented by the discrete-event simulator's [`rips_desim::Ctx`]
/// (virtual time, modelled compute) and by `rips-live`'s per-thread
/// context (wall-clock time, real channels, real work). Writing the
/// policy kernel against this trait — and only this trait — is what
/// lets one scheduler implementation run on both backends unchanged.
pub trait ExecCtx<M: Clone> {
    /// Current time in µs: virtual under the simulator, monotonic
    /// wall-clock under a live backend.
    fn now(&self) -> Time;
    /// This node's id.
    fn me(&self) -> NodeId;
    /// Number of nodes in the machine.
    fn num_nodes(&self) -> usize;
    /// Deterministic per-node random number generator.
    fn rng(&mut self) -> &mut SmallRng;
    /// Consume `dur` µs of CPU classified as `kind`. The simulator
    /// advances virtual time; a live backend treats modelled overhead
    /// charges as free (its overheads are real and implicit).
    fn compute(&mut self, dur: Time, kind: WorkKind);
    /// Send `msg` (`bytes` of payload) to node `to`.
    fn send(&mut self, to: NodeId, msg: M, bytes: usize);
    /// Send a copy of `msg` to every other node (software broadcast:
    /// the sender pays a per-recipient send cost).
    fn send_all(&mut self, msg: M, bytes: usize);
    /// Broadcast a hardware-assisted signal to every other node: no
    /// payload, no sender CPU (the paper's eureka/or-barrier).
    fn signal_all(&mut self, msg: M);
    /// Arrange for the backend to call the timer dispatch with `tag`
    /// after `delay` µs.
    fn set_timer(&mut self, delay: Time, tag: u64);
    /// Stop the whole machine once this handler returns.
    fn halt(&mut self);
    /// Execute the grain of `inst`. The default charges its modelled
    /// duration as user compute (what the simulator measures); a live
    /// backend overrides this to run the actual application closure.
    fn execute_grain(&mut self, inst: &TaskInstance) {
        self.compute(inst.grain_us, WorkKind::User);
    }
}

impl<M: Clone> ExecCtx<M> for Ctx<'_, M> {
    fn now(&self) -> Time {
        Ctx::now(self)
    }
    fn me(&self) -> NodeId {
        Ctx::me(self)
    }
    fn num_nodes(&self) -> usize {
        Ctx::num_nodes(self)
    }
    fn rng(&mut self) -> &mut SmallRng {
        Ctx::rng(self)
    }
    fn compute(&mut self, dur: Time, kind: WorkKind) {
        Ctx::compute(self, dur, kind);
    }
    fn send(&mut self, to: NodeId, msg: M, bytes: usize) {
        Ctx::send(self, to, msg, bytes);
    }
    fn send_all(&mut self, msg: M, bytes: usize) {
        Ctx::send_all(self, msg, bytes);
    }
    fn signal_all(&mut self, msg: M) {
        Ctx::signal_all(self, msg);
    }
    fn set_timer(&mut self, delay: Time, tag: u64) {
        let _ = Ctx::set_timer(self, delay, tag);
    }
    fn halt(&mut self) {
        Ctx::halt(self);
    }
}

/// Per-node kernel state: the task queue, execution counters, the
/// exec-loop latch, and the cumulative migration counters. Policies
/// receive `&mut Kernel` in every hook.
pub struct Kernel {
    /// This node's id.
    pub me: NodeId,
    /// The run's shared oracle (rounds, task generation, costs).
    pub oracle: Oracle,
    /// Queue and execution counters.
    pub exec: NodeExec,
    /// Gate on the exec loop. Policies that suspend execution (RIPS
    /// during a system phase) clear it; [`Kernel::kick`] and the EXEC
    /// timer are no-ops while it is `false`. Defaults to `true`.
    pub exec_enabled: bool,
    /// Cumulative count of migration messages this node was promised
    /// (see the module docs for why it never resets).
    pub expected_in: i64,
    /// Cumulative count of migration messages received.
    pub received_in: i64,
    /// `true` while an EXEC timer is pending, so task arrivals don't
    /// double-schedule the loop.
    exec_scheduled: bool,
    /// The run's metrics handle, bound to this node's shard. One dead
    /// branch per call when no registry is installed.
    pub meter: rips_trace::Meter,
}

impl Kernel {
    /// Fresh kernel state for node `me`.
    pub fn new(me: NodeId, oracle: Oracle) -> Self {
        let meter = oracle.meter.for_shard(me);
        Kernel {
            me,
            oracle,
            exec: NodeExec::default(),
            exec_enabled: true,
            expected_in: 0,
            received_in: 0,
            exec_scheduled: false,
            meter,
        }
    }

    /// Current queue length — the default notion of "load".
    #[inline]
    pub fn load(&self) -> i64 {
        self.exec.queue.len() as i64
    }

    /// Ensures an EXEC timer is pending if there is work to do and the
    /// exec loop is enabled. Idempotent.
    pub fn kick<M: Clone>(&mut self, ctx: &mut impl ExecCtx<KernelMsg<M>>) {
        if !self.exec_scheduled && self.exec_enabled && !self.exec.queue.is_empty() {
            ctx.set_timer(0, TAG_EXEC);
            self.exec_scheduled = true;
        }
    }

    /// Takes this node's block of round `round`'s roots, charging the
    /// spawn overhead, *without* enqueueing them — for policies that
    /// place even the initial tasks themselves (random allocation,
    /// RIPS's opening system phase).
    pub fn take_seeds<M: Clone>(
        &mut self,
        ctx: &mut impl ExecCtx<KernelMsg<M>>,
        round: u32,
    ) -> Vec<TaskInstance> {
        let seeds = self.oracle.seed_for(self.me, round);
        ctx.compute(
            self.oracle.costs.spawn_us * seeds.len() as Time,
            WorkKind::Overhead,
        );
        self.meter.add(Counter::TasksSpawned, seeds.len() as u64);
        if self.oracle.tracer.enabled() && !seeds.is_empty() {
            let (t, count) = (ctx.now(), seeds.len() as u32);
            self.oracle
                .tracer
                .emit(t, self.me, || TraceEvent::Spawn { round, count });
        }
        seeds
    }

    /// Seeds this node's block of the round's roots and kicks the loop.
    /// An empty round is announced as complete right away (by node 0).
    pub fn seed_round<M: Clone>(&mut self, ctx: &mut impl ExecCtx<KernelMsg<M>>, round: u32) {
        let seeds = self.take_seeds(ctx, round);
        self.exec.queue.extend(seeds);
        if self.oracle.outstanding() == 0 && self.me == 0 {
            self.announce_round(ctx);
            return;
        }
        self.kick(ctx);
    }

    /// Schedules the round-barrier announcement on this node: after the
    /// modelled barrier delay the driver advances the round (telling
    /// everyone) or halts the machine.
    pub fn announce_round<M: Clone>(&mut self, ctx: &mut impl ExecCtx<KernelMsg<M>>) {
        if self.oracle.tracer.enabled() {
            let (t, round) = (ctx.now(), self.oracle.round());
            self.oracle
                .tracer
                .emit(t, self.me, || TraceEvent::Barrier { round });
        }
        ctx.set_timer(self.oracle.round_barrier_delay(), TAG_ROUND);
    }

    /// Sends a batch of migrated tasks to `to`, advertising `load` as
    /// the sender's current load. Charges the per-descriptor wire size;
    /// the *receiver* pays the spawn overhead on acceptance. Policies
    /// that model a packing cost charge it themselves before calling.
    pub fn send_tasks<M: Clone>(
        &mut self,
        ctx: &mut impl ExecCtx<KernelMsg<M>>,
        to: NodeId,
        batch: Vec<TaskInstance>,
        load: i64,
    ) {
        if self.oracle.tracer.enabled() {
            let (t, count) = (ctx.now(), batch.len() as u32);
            self.oracle
                .tracer
                .emit(t, self.me, || TraceEvent::MigrateOut { to, count });
        }
        let bytes = self.oracle.costs.task_bytes * batch.len();
        ctx.send(to, KernelMsg::Tasks(batch, load), bytes);
    }
}

/// A transfer policy plugged into the [`NodeDriver`].
///
/// The driver calls these hooks from its event handlers; each receives
/// the node's [`Kernel`] and an [`ExecCtx`] for whichever backend is
/// running the node. Defaults implement the plain round-paced scheduler
/// with local child placement disabled (placement is the one hook every
/// policy must provide).
pub trait BalancerPolicy: Sized {
    /// Policy-specific message payload (delivered via
    /// [`KernelMsg::Policy`]). Use `()` if the policy has none.
    type Msg: Clone + std::fmt::Debug;

    /// Machine boot. Default: seed round 0 and start executing.
    fn on_start(&mut self, k: &mut Kernel, ctx: &mut impl ExecCtx<KernelMsg<Self::Msg>>) {
        k.seed_round(ctx, 0);
    }

    /// A policy message arrived from `from`.
    fn on_msg(
        &mut self,
        k: &mut Kernel,
        ctx: &mut impl ExecCtx<KernelMsg<Self::Msg>>,
        from: NodeId,
        msg: Self::Msg,
    );

    /// Migrated tasks from `from` were accepted into the queue. The
    /// driver has already bumped `received_in`, charged the spawn
    /// overhead, enqueued the batch, and re-armed the exec loop;
    /// `sender_load` is the load the sender advertised at send time.
    fn on_tasks_accepted(
        &mut self,
        _k: &mut Kernel,
        _ctx: &mut impl ExecCtx<KernelMsg<Self::Msg>>,
        _from: NodeId,
        _sender_load: i64,
    ) {
    }

    /// A policy timer (tag `>=` [`TAG_POLICY_BASE`]) fired.
    fn on_timer(
        &mut self,
        _k: &mut Kernel,
        _ctx: &mut impl ExecCtx<KernelMsg<Self::Msg>>,
        tag: u64,
    ) {
        unreachable!("policy armed no timer, got tag {tag}");
    }

    /// Children generated by a completed task: place them, charging
    /// whatever placement overhead the policy models (most charge
    /// `spawn_us` per child kept or shipped; random allocation ships
    /// for free and lets the receiver pay).
    fn place_children(
        &mut self,
        k: &mut Kernel,
        ctx: &mut impl ExecCtx<KernelMsg<Self::Msg>>,
        children: Vec<TaskInstance>,
    );

    /// Called after every executed task, once children are placed, the
    /// round counter is decremented, and the exec loop is re-armed —
    /// the policy's chance to rebalance (broadcast load, request work,
    /// check a transfer condition, …).
    fn after_task(&mut self, _k: &mut Kernel, _ctx: &mut impl ExecCtx<KernelMsg<Self::Msg>>) {}

    /// Whether the driver announces the round barrier when this node
    /// executes the round's last task. RIPS returns `false`: its empty
    /// system phase detects termination instead.
    fn announces_rounds(&self) -> bool {
        true
    }

    /// Token word attached to the next round-start broadcast (asked of
    /// the announcing node right before it broadcasts). RIPS carries
    /// the round-opening system-phase index; the default is 0.
    fn round_token(&self, _k: &Kernel) -> u32 {
        0
    }

    /// A [`KernelMsg::RoundStart`] broadcast arrived: a new round
    /// begins on this (non-announcing) node. Default: block-seed the
    /// round and resume.
    fn on_round_start(
        &mut self,
        k: &mut Kernel,
        ctx: &mut impl ExecCtx<KernelMsg<Self::Msg>>,
        round: u32,
        _token: u32,
    ) {
        k.seed_round(ctx, round);
    }

    /// The round-barrier timer fired on this node (the announcer): the
    /// round is advanced and RoundStart already broadcast. Default:
    /// block-seed the new round with *no* policy action — the announcer
    /// just executed the previous round's last task, so its policy
    /// state is refreshed by the normal execution path. RIPS overrides
    /// this to open the round with a system phase, like its receivers.
    fn on_round_announced(
        &mut self,
        k: &mut Kernel,
        ctx: &mut impl ExecCtx<KernelMsg<Self::Msg>>,
        round: u32,
        _token: u32,
    ) {
        k.seed_round(ctx, round);
    }
}

/// Executes one task off the queue front through `policy`: dispatch
/// overhead + grain, child placement, round accounting, loop re-arm,
/// and the policy's post-task hook. No-op if the queue is empty or the
/// exec loop is disabled.
///
/// The driver calls this from the EXEC timer; policies may also call it
/// directly to run a task *inside* one of their own handlers (RIPS
/// commits to the first task of a new user phase this way, so a queued
/// init can never preempt an all-idle machine into a zero-progress
/// phase storm).
pub fn exec_step<P: BalancerPolicy>(
    policy: &mut P,
    k: &mut Kernel,
    ctx: &mut impl ExecCtx<KernelMsg<P::Msg>>,
) {
    if !k.exec_enabled {
        return;
    }
    let Some(inst) = k.exec.queue.pop_front() else {
        return;
    };
    let traced = k.oracle.tracer.enabled();
    let t0 = if traced { ctx.now() } else { 0 };
    ctx.compute(k.oracle.costs.dispatch_us, WorkKind::Overhead);
    ctx.execute_grain(&inst);
    k.exec.record(&inst, k.me);
    k.meter.inc(Counter::TasksExecuted);
    if traced {
        // Stamped at the grain's start (dispatch already charged), so
        // exporters draw the execution as a span of `grain_us`.
        let dispatch_us = k.oracle.costs.dispatch_us;
        let hops = k.oracle.hops(inst.origin, k.me);
        k.oracle
            .tracer
            .emit(t0 + dispatch_us, k.me, || TraceEvent::TaskExec {
                task: inst.task as u64,
                round: inst.round,
                origin: inst.origin,
                hops,
                grain_us: inst.grain_us,
                dispatch_us,
            });
    }
    let children = k.oracle.children_of(&inst, k.me);
    if !children.is_empty() {
        k.meter.add(Counter::TasksSpawned, children.len() as u64);
        if traced {
            let (t, round, count) = (ctx.now(), inst.round, children.len() as u32);
            k.oracle
                .tracer
                .emit(t, k.me, || TraceEvent::Spawn { round, count });
        }
    }
    policy.place_children(k, &mut *ctx, children);
    // The round counter must drop for every execution; only the node
    // completing the round's last task sees `true`.
    if k.oracle.task_done() && policy.announces_rounds() {
        k.announce_round(ctx);
    }
    k.meter
        .set_gauge(Gauge::QueueDepth, k.exec.queue.len() as u64);
    if traced {
        let (t, depth) = (ctx.now(), k.exec.queue.len() as u32);
        k.oracle
            .tracer
            .emit(t, k.me, || TraceEvent::QueueDepth { depth });
    }
    k.kick(ctx);
    policy.after_task(k, ctx);
}

/// Backend entry point: the machine booted; run the policy's start
/// hook on this node. Called once per node at time 0.
pub fn dispatch_start<P: BalancerPolicy>(
    policy: &mut P,
    k: &mut Kernel,
    ctx: &mut impl ExecCtx<KernelMsg<P::Msg>>,
) {
    policy.on_start(k, ctx);
}

/// Backend entry point: a [`KernelMsg`] arrived from `from`. Handles
/// the kernel-owned messages (task migration, round start) and routes
/// policy payloads to [`BalancerPolicy::on_msg`].
pub fn dispatch_message<P: BalancerPolicy>(
    policy: &mut P,
    k: &mut Kernel,
    ctx: &mut impl ExecCtx<KernelMsg<P::Msg>>,
    from: NodeId,
    msg: KernelMsg<P::Msg>,
) {
    match msg {
        KernelMsg::Tasks(tasks, sender_load) => {
            k.received_in += 1;
            let count = tasks.len() as u32;
            ctx.compute(
                k.oracle.costs.spawn_us * tasks.len() as Time,
                WorkKind::Overhead,
            );
            k.exec.queue.extend(tasks);
            k.meter.add(Counter::TasksMigratedIn, count as u64);
            k.meter
                .set_gauge(Gauge::QueueDepth, k.exec.queue.len() as u64);
            if k.oracle.tracer.enabled() {
                let (t, depth) = (ctx.now(), k.exec.queue.len() as u32);
                k.oracle
                    .tracer
                    .emit(t, k.me, || TraceEvent::MigrateIn { from, count });
                k.oracle
                    .tracer
                    .emit(t, k.me, || TraceEvent::QueueDepth { depth });
            }
            k.kick(ctx);
            policy.on_tasks_accepted(k, ctx, from, sender_load);
        }
        KernelMsg::RoundStart(round, token) => {
            if k.oracle.tracer.enabled() {
                let t = ctx.now();
                k.oracle
                    .tracer
                    .emit(t, k.me, || TraceEvent::RoundBegin { round });
            }
            policy.on_round_start(k, ctx, round, token);
        }
        KernelMsg::Policy(m) => policy.on_msg(k, ctx, from, m),
    }
}

/// Backend entry point: a timer fired with `tag`. Handles the kernel's
/// EXEC and ROUND tags and forwards policy tags (`>=`
/// [`TAG_POLICY_BASE`]) to [`BalancerPolicy::on_timer`].
pub fn dispatch_timer<P: BalancerPolicy>(
    policy: &mut P,
    k: &mut Kernel,
    ctx: &mut impl ExecCtx<KernelMsg<P::Msg>>,
    tag: u64,
) {
    match tag {
        TAG_EXEC => {
            k.exec_scheduled = false;
            exec_step(policy, k, ctx);
        }
        TAG_ROUND => match k.oracle.advance_round() {
            Some(next) => {
                let token = policy.round_token(k);
                ctx.send_all(KernelMsg::RoundStart(next, token), k.oracle.costs.ctl_bytes);
                if k.oracle.tracer.enabled() {
                    let t = ctx.now();
                    k.oracle
                        .tracer
                        .emit(t, k.me, || TraceEvent::RoundBegin { round: next });
                }
                policy.on_round_announced(k, ctx, next, token);
            }
            None => ctx.halt(),
        },
        tag => policy.on_timer(k, ctx, tag),
    }
}

/// The generic SPMD node program: [`Kernel`] mechanics driven by a
/// [`BalancerPolicy`]. One instance per node; see the module docs.
pub struct NodeDriver<P: BalancerPolicy> {
    /// Kernel-owned node state.
    pub kernel: Kernel,
    /// The plugged-in transfer policy.
    pub policy: P,
}

impl<P: BalancerPolicy> rips_desim::Program for NodeDriver<P> {
    type Msg = KernelMsg<P::Msg>;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        dispatch_start(&mut self.policy, &mut self.kernel, ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, from: NodeId, msg: Self::Msg) {
        dispatch_message(&mut self.policy, &mut self.kernel, ctx, from, msg);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg>, tag: u64) {
        dispatch_timer(&mut self.policy, &mut self.kernel, ctx, tag);
    }
}

/// Runs `workload` on `topo` under `policy` instances built by `make`
/// (one per node), returning the outcome and the final policy states.
///
/// This is the one place a scheduler meets the engine: it builds the
/// shared [`Oracle`], wraps each policy in a [`NodeDriver`], honours
/// the timeline/contention switches in [`Costs`], and extracts the
/// per-node execution counters. An empty workload short-circuits to
/// [`RunOutcome::empty`].
pub fn run_policy<P, F>(
    workload: Arc<Workload>,
    topo: Arc<dyn Topology>,
    latency: LatencyModel,
    costs: Costs,
    seed: u64,
    make: F,
) -> (RunOutcome, Vec<P>)
where
    P: BalancerPolicy,
    F: FnMut(NodeId) -> P,
{
    if workload.rounds.is_empty() {
        return (RunOutcome::empty(topo.len()), Vec::new());
    }
    let oracle = Oracle::new(Arc::clone(&workload), Arc::clone(&topo), costs);
    let tracer = oracle.tracer.clone();
    let meter = oracle.meter.clone();
    let mut make = make;
    let mut engine = Engine::new(topo, latency, seed, move |me| NodeDriver {
        kernel: Kernel::new(me, oracle.clone()),
        policy: make(me),
    });
    engine.set_tracer(tracer);
    engine.set_meter(meter);
    engine.record_timeline(costs.record_timeline);
    engine.enable_contention(costs.contention);
    let (drivers, stats) = engine.run();
    let executed: Vec<u64> = drivers.iter().map(|d| d.kernel.exec.executed).collect();
    let nonlocal = drivers
        .iter()
        .map(|d| d.kernel.exec.nonlocal_executed)
        .sum();
    let policies = drivers.into_iter().map(|d| d.policy).collect();
    (
        RunOutcome {
            stats,
            executed,
            nonlocal,
            system_phases: 0,
        },
        policies,
    )
}
