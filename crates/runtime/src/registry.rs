//! The scheduler registry: `name → constructor`, so benches, golden
//! tests, and the CLI enumerate one roster instead of hard-coding it.
//!
//! A [`SchedulerRegistry`] maps display names ("RIPS", "Gradient", …)
//! to boxed constructors that take a [`RunSpec`] — the full description
//! of one experiment cell — and produce a [`ScheduledRun`]. The
//! registry preserves registration order, which is the row/column order
//! everywhere results are tabulated, and rejects duplicate names at
//! registration time so a typo can't silently shadow a scheduler.
//!
//! The canonical roster lives in `rips-bench::registry()`; this module
//! only provides the mechanism, so that adding a scheduler (see
//! `examples/custom_balancer.rs`) is one `register` call.

use std::sync::Arc;

use rips_desim::LatencyModel;
use rips_taskgraph::Workload;

use crate::{Costs, PhaseLog, RunOutcome};

/// Everything a scheduler constructor needs to run one experiment cell.
#[derive(Clone)]
pub struct RunSpec {
    /// The workload to execute.
    pub workload: Arc<Workload>,
    /// Machine size; constructors derive their topology from it (the
    /// paper's machines are near-square 2-D meshes).
    pub nodes: usize,
    /// Link latency model.
    pub latency: LatencyModel,
    /// Cost constants (timeline/contention switches included).
    pub costs: Costs,
    /// Engine RNG seed.
    pub seed: u64,
    /// Receiver-initiated reservation fraction `u` — per-cell because
    /// the paper tunes it by application and machine size (Table III).
    pub rid_u: f64,
}

/// What a registered scheduler returns: the run outcome plus the
/// system-phase log (empty for schedulers without system phases).
pub struct ScheduledRun {
    /// Aggregated outcome (Table I columns).
    pub outcome: RunOutcome,
    /// Per-system-phase migration log (RIPS; empty otherwise).
    pub phases: Vec<PhaseLog>,
}

/// A boxed scheduler constructor. `Send + Sync` so one registry can be
/// shared by the parallel experiment grid's worker threads.
pub type SchedulerCtor = Box<dyn Fn(&RunSpec) -> ScheduledRun + Send + Sync>;

/// Ordered `name → constructor` table (see module docs).
#[derive(Default)]
pub struct SchedulerRegistry {
    entries: Vec<(String, SchedulerCtor)>,
}

impl SchedulerRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `ctor` under `name`, keeping registration order.
    ///
    /// # Panics
    /// If `name` is already registered.
    pub fn register(&mut self, name: impl Into<String>, ctor: SchedulerCtor) {
        let name = name.into();
        assert!(
            self.get(&name).is_none(),
            "scheduler {name:?} registered twice"
        );
        self.entries.push((name, ctor));
    }

    /// Looks up a constructor by exact name.
    pub fn get(&self, name: &str) -> Option<&SchedulerCtor> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, c)| c)
    }

    /// Runs scheduler `name` on `spec`.
    ///
    /// # Panics
    /// If `name` is not registered (callers enumerate [`Self::names`]
    /// or validate via [`Self::get`] first).
    pub fn run(&self, name: &str, spec: &RunSpec) -> ScheduledRun {
        match self.get(name) {
            Some(ctor) => ctor(spec),
            None => panic!("unknown scheduler {name:?}; registered: {:?}", self.names()),
        }
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Iterates `(name, constructor)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &SchedulerCtor)> {
        self.entries.iter().map(|(n, c)| (n.as_str(), c))
    }

    /// Number of registered schedulers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_ctor() -> SchedulerCtor {
        Box::new(|spec| ScheduledRun {
            outcome: RunOutcome::empty(spec.nodes),
            phases: Vec::new(),
        })
    }

    fn spec() -> RunSpec {
        RunSpec {
            workload: Arc::new(rips_taskgraph::flat_uniform(1, 1, 1, 0)),
            nodes: 4,
            latency: LatencyModel::ideal(),
            costs: Costs::default(),
            seed: 0,
            rid_u: 0.4,
        }
    }

    #[test]
    fn preserves_registration_order() {
        let mut reg = SchedulerRegistry::new();
        for name in ["C", "A", "B"] {
            reg.register(name, dummy_ctor());
        }
        assert_eq!(reg.names(), vec!["C", "A", "B"]);
        assert_eq!(reg.len(), 3);
    }

    #[test]
    fn runs_registered_scheduler() {
        let mut reg = SchedulerRegistry::new();
        reg.register("X", dummy_ctor());
        let run = reg.run("X", &spec());
        assert_eq!(run.outcome.executed.len(), 4);
        assert!(run.phases.is_empty());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn rejects_duplicate_names() {
        let mut reg = SchedulerRegistry::new();
        reg.register("X", dummy_ctor());
        reg.register("X", dummy_ctor());
    }

    #[test]
    #[should_panic(expected = "unknown scheduler")]
    fn unknown_name_panics_with_roster() {
        let reg = SchedulerRegistry::new();
        reg.run("nope", &spec());
    }
}
