//! A minimal RCU-style publication cell for read-mostly shared state.
//!
//! The live backend's read-mostly structures (the RIPS phase-plan
//! board, most prominently) are written rarely — once per system
//! phase — but read on latency-sensitive paths by every node thread.
//! A mutex makes every reader pay for the writer's rarity; an
//! [`RcuCell`] makes reads a single atomic pointer load.
//!
//! # Reclamation model
//!
//! Classic RCU defers freeing an old version until every reader that
//! might hold it has passed a quiescent point. This cell uses the
//! simplest sound variant for *run-scoped* state: superseded versions
//! are parked in a graveyard owned by the cell and freed only when the
//! cell itself drops (at end of run). That makes
//! [`RcuCell::read`]'s returned reference valid for the cell's whole
//! lifetime — no guard object, no epoch counters — at the cost of
//! keeping old versions alive until the run ends. Publications are
//! bounded by the phase count (a few dozen small maps per run), so the
//! graveyard stays tiny; [`RcuCell::retired`] exposes its length so
//! tests can pin that assumption.
//!
//! This is the one place in `rips-runtime` that uses `unsafe`; the
//! audit lint RIPS-L004 pins the allowlist to exactly this file.

// rips-lint: allow(L004, deferred reclamation makes every published
// snapshot outlive every reader borrow; see module docs)
use std::sync::Mutex;

use rips_verify::sync::atomic::{AtomicPtr, Ordering};
use rips_verify::sync::ord;

/// A read-mostly cell whose readers pay one atomic load and whose
/// writers swap in a fresh heap-allocated version.
pub struct RcuCell<T> {
    cur: AtomicPtr<T>,
    /// Superseded versions, freed on drop (see module docs).
    graveyard: Mutex<Vec<*mut T>>,
}

// SAFETY: the cell hands out &T to any thread (so T: Sync is
// required) and drops T values that may have been published by other
// threads (so T: Send is required). The raw pointers in the graveyard
// are uniquely owned by the cell.
unsafe impl<T: Send + Sync> Send for RcuCell<T> {}
unsafe impl<T: Send + Sync> Sync for RcuCell<T> {}

impl<T> RcuCell<T> {
    /// A cell initially holding `value`.
    pub fn new(value: T) -> Self {
        RcuCell {
            cur: AtomicPtr::new(Box::into_raw(Box::new(value))),
            graveyard: Mutex::new(Vec::new()),
        }
    }

    /// Reads the current version: one `Acquire` pointer load.
    ///
    /// The reference is valid for the cell's whole lifetime — even
    /// across concurrent [`RcuCell::publish`] calls — because
    /// superseded versions are only freed when the cell drops.
    pub fn read(&self) -> &T {
        // SAFETY: `cur` always points at a live Box<T>: it is set from
        // Box::into_raw in new/publish, and any pointer it ever held
        // is either still current or parked in the graveyard, which is
        // drained only in Drop (which takes &mut self, so no &T from
        // read() can outlive it).
        unsafe { &*self.cur.load(ord("rcu.read.acquire", Ordering::Acquire)) }
    }

    /// Publishes a new version. Readers that already loaded the old
    /// pointer keep a valid reference; new reads see `value`.
    pub fn publish(&self, value: T) {
        let fresh = Box::into_raw(Box::new(value));
        let old = self.cur.swap(fresh, ord("rcu.publish", Ordering::AcqRel));
        self.graveyard
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(old);
    }

    /// Number of superseded versions awaiting end-of-run reclamation.
    /// Bounded by the number of `publish` calls; tests pin that this
    /// stays small (one per system phase).
    pub fn retired(&self) -> usize {
        self.graveyard
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .len()
    }
}

impl<T> Drop for RcuCell<T> {
    fn drop(&mut self) {
        // SAFETY: &mut self guarantees no outstanding read() borrows;
        // every pointer (current + graveyard) came from Box::into_raw
        // and is freed exactly once here.
        unsafe {
            drop(Box::from_raw(self.cur.load(Ordering::Relaxed)));
            for p in self.graveyard.get_mut().unwrap_or_else(|p| p.into_inner()) {
                drop(Box::from_raw(*p));
            }
        }
    }
}

impl<T: Default> Default for RcuCell<T> {
    fn default() -> Self {
        RcuCell::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RcuCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RcuCell")
            .field("cur", self.read())
            .field("retired", &self.retired())
            .finish()
    }
}

/// Bounded model checking of the publish/read protocol (PR 9): the
/// payload is an instrumented cell so the checker sees the non-atomic
/// version-contents write that `rcu.publish` must order before the
/// pointer swap, and the sweep proves both `ord(..)` sites are
/// load-bearing. Compiled only under `--cfg rips_verify`.
#[cfg(all(test, rips_verify))]
mod verify_model {
    use super::*;
    use rips_verify::sync::cell::UnsafeCellWrap;
    use rips_verify::{vthread, Checker, Mutation, MutationKind, ViolationKind};
    use std::sync::Arc;

    /// A writer publishes two versions whose contents are written
    /// through an instrumented cell *before* the pointer swap; the
    /// reader snapshots and dereferences concurrently. With the
    /// shipped orderings the swap's Release edge plus the reader's
    /// Acquire load order every contents-write before every
    /// contents-read of the same version.
    fn rcu_model() -> impl Fn() + Send + Sync + 'static {
        || {
            // The payload cell is boxed so its tracked address is
            // stable when `publish` moves the value into its own Box.
            let cell = Arc::new(RcuCell::new(Box::new(UnsafeCellWrap::new(0u64))));
            let writer = {
                let cell = Arc::clone(&cell);
                vthread::spawn_named("writer", move || {
                    for v in 1..=2u64 {
                        let fresh = Box::new(UnsafeCellWrap::new(0u64));
                        // SAFETY: `fresh` is not yet published; this
                        // thread has exclusive access.
                        fresh.with_mut(|p| unsafe { p.write(v) });
                        cell.publish(fresh);
                    }
                })
            };
            for _ in 0..3 {
                let snap = cell.read();
                // SAFETY: published snapshots are never written again
                // (the race the checker verifies is exactly this).
                let v = snap.with(|p| unsafe { p.read() });
                assert!(v <= 2, "version out of range: {v}");
                vthread::yield_now();
            }
            writer.join().unwrap();
        }
    }

    #[test]
    fn model_rcu_publish_is_clean() {
        let stats = Checker::from_env("runtime.rcu.publish")
            .check(rcu_model())
            .expect("shipped RCU protocol must be violation-free");
        assert!(stats.executions > 1);
    }

    #[test]
    fn sweep_each_weakened_ordering_is_caught() {
        for site in ["rcu.publish", "rcu.read.acquire"] {
            let v = Checker::from_env(&format!("runtime.rcu.sweep.{site}"))
                .mutation(Mutation {
                    site,
                    kind: MutationKind::WeakenToRelaxed,
                })
                .check(rcu_model())
                .unwrap_err();
            assert_eq!(
                v.kind,
                ViolationKind::DataRace,
                "weakening {site} must produce a version-contents race, got:\n{}",
                v.replay
            );
            assert!(
                !v.schedule.is_empty(),
                "violation must carry a replay schedule"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rips_verify::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn read_sees_latest_publish() {
        let cell = RcuCell::new(1u32);
        assert_eq!(*cell.read(), 1);
        cell.publish(2);
        assert_eq!(*cell.read(), 2);
        assert_eq!(cell.retired(), 1);
    }

    #[test]
    fn old_reference_survives_publish() {
        let cell = RcuCell::new(vec![1, 2, 3]);
        let old = cell.read();
        cell.publish(vec![4]);
        // The old snapshot is still alive and unchanged.
        assert_eq!(old, &[1, 2, 3]);
        assert_eq!(cell.read(), &[4]);
    }

    #[test]
    fn drop_frees_every_version_exactly_once() {
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let cell = RcuCell::new(Counted(Arc::clone(&drops)));
            for _ in 0..5 {
                cell.publish(Counted(Arc::clone(&drops)));
            }
            assert_eq!(cell.retired(), 5);
            assert_eq!(drops.load(Ordering::SeqCst), 0, "nothing freed early");
        }
        assert_eq!(drops.load(Ordering::SeqCst), 6, "all versions freed");
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let cell = Arc::new(RcuCell::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..3 {
                let cell = Arc::clone(&cell);
                s.spawn(move || {
                    let mut last = 0;
                    for _ in 0..10_000 {
                        let v = *cell.read();
                        assert!(v >= last, "versions move forward");
                        last = v;
                    }
                });
            }
            let writer = Arc::clone(&cell);
            s.spawn(move || {
                for v in 1..=100 {
                    writer.publish(v);
                }
            });
        });
        assert_eq!(*cell.read(), 100);
        assert_eq!(cell.retired(), 100);
    }
}
