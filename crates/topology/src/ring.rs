//! Ring topology — the degenerate mesh row, useful for tests and for
//! exercising schedulers on a minimal connected machine.

use crate::{NodeId, Topology};

/// A bidirectional ring of `n` nodes; node `i` links to `(i ± 1) mod n`.
///
/// For `n ≤ 2` the duplicate/self links collapse (a 1-ring has no links,
/// a 2-ring has a single link).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ring {
    len: usize,
}

impl Ring {
    /// Creates a ring with `n` nodes.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "ring must have at least one node");
        Ring { len: n }
    }

    /// Clockwise neighbour.
    pub fn next(&self, node: NodeId) -> NodeId {
        (node + 1) % self.len
    }

    /// Counter-clockwise neighbour.
    pub fn prev(&self, node: NodeId) -> NodeId {
        (node + self.len - 1) % self.len
    }
}

impl Topology for Ring {
    fn len(&self) -> usize {
        self.len
    }

    fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        if self.len == 1 {
            return vec![];
        }
        if self.len == 2 {
            return vec![1 - node];
        }
        vec![self.prev(node), self.next(node)]
    }

    fn distance(&self, a: NodeId, b: NodeId) -> usize {
        let d = a.abs_diff(b);
        d.min(self.len - d)
    }

    fn route_next_hop(&self, from: NodeId, to: NodeId) -> Option<NodeId> {
        if from == to {
            return None;
        }
        // Go whichever way around is shorter; ties go clockwise.
        let fwd = (to + self.len - from) % self.len;
        if fwd <= self.len - fwd {
            Some(self.next(from))
        } else {
            Some(self.prev(from))
        }
    }

    fn diameter(&self) -> usize {
        self.len / 2
    }

    fn label(&self) -> String {
        format!("ring n={}", self.len)
    }

    fn computed_routes(&self) -> bool {
        // Shorter-way-around distance and direction are O(1) modular
        // arithmetic.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraparound_distance() {
        let r = Ring::new(8);
        assert_eq!(r.distance(0, 7), 1);
        assert_eq!(r.distance(0, 4), 4);
        assert_eq!(r.distance(1, 6), 3);
    }

    #[test]
    fn tiny_rings() {
        assert!(Ring::new(1).neighbors(0).is_empty());
        assert_eq!(Ring::new(2).neighbors(0), vec![1]);
        assert_eq!(Ring::new(2).diameter(), 1);
    }

    #[test]
    fn route_takes_short_way() {
        let r = Ring::new(10);
        assert_eq!(r.route_next_hop(0, 8), Some(9));
        assert_eq!(r.route_next_hop(0, 3), Some(1));
    }
}
