//! 2-D mesh, the Paragon-style interconnect the paper's MWA targets.

use crate::{NodeId, Topology};

/// An `n1 × n2` two-dimensional mesh (no wraparound links).
///
/// Node `(i, j)` (row `i ∈ 0..n1`, column `j ∈ 0..n2`) has id
/// `i * n2 + j`. Links connect horizontally and vertically adjacent
/// nodes. Routing is deterministic **XY routing**: correct the column
/// first, then the row — the same discipline real mesh machines use,
/// and the one MWA's row/column phases map onto.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mesh2D {
    rows: usize,
    cols: usize,
}

impl Mesh2D {
    /// Creates an `rows × cols` mesh.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "mesh dimensions must be positive");
        Mesh2D { rows, cols }
    }

    /// Builds the squarest mesh for `n` nodes, following the paper's
    /// Figure 4 setup: `M × M` when `n` is a perfect square, otherwise
    /// `M × M/2`-style near-square factorization (largest factor pair).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn near_square(n: usize) -> Self {
        assert!(n > 0, "mesh must have at least one node");
        let mut best = (1, n);
        let mut r = 1;
        while r * r <= n {
            if n.is_multiple_of(r) {
                best = (r, n / r);
            }
            r += 1;
        }
        // Prefer rows >= cols to match the paper's 8x4 example layout.
        Mesh2D::new(best.1, best.0)
    }

    /// Number of rows (`n1`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (`n2`).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Coordinates `(row, col)` of a node id.
    pub fn coords(&self, node: NodeId) -> (usize, usize) {
        debug_assert!(node < self.len());
        (node / self.cols, node % self.cols)
    }

    /// Node id of coordinates `(row, col)`.
    pub fn id(&self, row: usize, col: usize) -> NodeId {
        debug_assert!(row < self.rows && col < self.cols);
        row * self.cols + col
    }
}

impl Topology for Mesh2D {
    fn len(&self) -> usize {
        self.rows * self.cols
    }

    fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        let (i, j) = self.coords(node);
        let mut out = Vec::with_capacity(4);
        if i > 0 {
            out.push(self.id(i - 1, j));
        }
        if i + 1 < self.rows {
            out.push(self.id(i + 1, j));
        }
        if j > 0 {
            out.push(self.id(i, j - 1));
        }
        if j + 1 < self.cols {
            out.push(self.id(i, j + 1));
        }
        out
    }

    fn distance(&self, a: NodeId, b: NodeId) -> usize {
        let (ai, aj) = self.coords(a);
        let (bi, bj) = self.coords(b);
        ai.abs_diff(bi) + aj.abs_diff(bj)
    }

    fn route_next_hop(&self, from: NodeId, to: NodeId) -> Option<NodeId> {
        if from == to {
            return None;
        }
        let (fi, fj) = self.coords(from);
        let (ti, tj) = self.coords(to);
        // XY routing: fix the column first, then the row.
        let next = if fj < tj {
            self.id(fi, fj + 1)
        } else if fj > tj {
            self.id(fi, fj - 1)
        } else if fi < ti {
            self.id(fi + 1, fj)
        } else {
            self.id(fi - 1, fj)
        };
        Some(next)
    }

    fn diameter(&self) -> usize {
        (self.rows - 1) + (self.cols - 1)
    }

    fn label(&self) -> String {
        format!("mesh {}x{}", self.rows, self.cols)
    }

    fn computed_routes(&self) -> bool {
        // Manhattan distance and XY routing are O(1) arithmetic.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route;

    #[test]
    fn coords_roundtrip() {
        let m = Mesh2D::new(3, 5);
        for n in 0..m.len() {
            let (i, j) = m.coords(n);
            assert_eq!(m.id(i, j), n);
        }
    }

    #[test]
    fn paper_example_diameter() {
        // §5: "The maximum distance in an 8x4 mesh is 12" — the paper
        // counts the round-trip/worst scheduling path; the one-way mesh
        // diameter of 8x4 is (8-1)+(4-1) = 10. We model one-way hops.
        let m = Mesh2D::new(8, 4);
        assert_eq!(m.diameter(), 10);
    }

    #[test]
    fn xy_routing_is_column_first() {
        let m = Mesh2D::new(4, 4);
        let path = route(&m, m.id(0, 0), m.id(2, 3));
        assert_eq!(
            path,
            vec![m.id(0, 1), m.id(0, 2), m.id(0, 3), m.id(1, 3), m.id(2, 3)]
        );
    }

    #[test]
    fn near_square_factorizations() {
        assert_eq!(
            (
                Mesh2D::near_square(16).rows(),
                Mesh2D::near_square(16).cols()
            ),
            (4, 4)
        );
        assert_eq!(
            (
                Mesh2D::near_square(32).rows(),
                Mesh2D::near_square(32).cols()
            ),
            (8, 4)
        );
        assert_eq!(
            (
                Mesh2D::near_square(128).rows(),
                Mesh2D::near_square(128).cols()
            ),
            (16, 8)
        );
        assert_eq!(
            (Mesh2D::near_square(7).rows(), Mesh2D::near_square(7).cols()),
            (7, 1)
        );
    }

    #[test]
    fn corner_neighbors() {
        let m = Mesh2D::new(2, 2);
        assert_eq!(m.neighbors(0), vec![2, 1]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_rejected() {
        Mesh2D::new(0, 3);
    }

    #[test]
    fn single_node_mesh() {
        let m = Mesh2D::new(1, 1);
        assert_eq!(m.len(), 1);
        assert!(m.neighbors(0).is_empty());
        assert_eq!(m.diameter(), 0);
    }
}
