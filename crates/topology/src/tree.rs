//! Complete binary tree topology.
//!
//! The paper's ALL transfer policy uses a spanning tree for the
//! ready/init signalling protocol, and reference [25] gives an
//! `O(log n)` optimal parallel scheduling algorithm for trees (our TWA).

use crate::{NodeId, Topology};

/// A complete binary tree on `n` nodes in heap order: node `i`'s parent
/// is `(i - 1) / 2`, children are `2i + 1` and `2i + 2` (when `< n`).
/// Node `0` is the root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryTree {
    len: usize,
}

impl BinaryTree {
    /// Creates a complete binary tree with `n` nodes.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "tree must have at least one node");
        BinaryTree { len: n }
    }

    /// Parent of `node`, or `None` for the root.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        (node > 0).then(|| (node - 1) / 2)
    }

    /// Existing children of `node` (0, 1, or 2 of them).
    pub fn children(&self, node: NodeId) -> Vec<NodeId> {
        [2 * node + 1, 2 * node + 2]
            .into_iter()
            .filter(|&c| c < self.len)
            .collect()
    }

    /// Depth of `node` (root has depth 0).
    pub fn depth(&self, node: NodeId) -> usize {
        // Depth = floor(log2(node + 1)).
        (usize::BITS - 1 - (node + 1).leading_zeros()) as usize
    }

    /// `true` if `node` has no children.
    pub fn is_leaf(&self, node: NodeId) -> bool {
        2 * node + 1 >= self.len
    }

    /// Height of the tree (depth of the deepest node).
    pub fn height(&self) -> usize {
        self.depth(self.len - 1)
    }

    fn lca(&self, mut a: NodeId, mut b: NodeId) -> NodeId {
        while self.depth(a) > self.depth(b) {
            a = (a - 1) / 2;
        }
        while self.depth(b) > self.depth(a) {
            b = (b - 1) / 2;
        }
        while a != b {
            a = (a - 1) / 2;
            b = (b - 1) / 2;
        }
        a
    }
}

impl Topology for BinaryTree {
    fn len(&self) -> usize {
        self.len
    }

    fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(3);
        if let Some(p) = self.parent(node) {
            out.push(p);
        }
        out.extend(self.children(node));
        out
    }

    fn distance(&self, a: NodeId, b: NodeId) -> usize {
        let l = self.lca(a, b);
        (self.depth(a) - self.depth(l)) + (self.depth(b) - self.depth(l))
    }

    fn route_next_hop(&self, from: NodeId, to: NodeId) -> Option<NodeId> {
        if from == to {
            return None;
        }
        let l = self.lca(from, to);
        if from == l {
            // Descend: find `to`'s ancestor that is a child of `from`.
            let mut cur = to;
            while self.parent(cur) != Some(from) {
                cur = self.parent(cur).expect("lca invariant violated");
            }
            Some(cur)
        } else {
            self.parent(from)
        }
    }

    fn diameter(&self) -> usize {
        if self.len == 1 {
            return 0;
        }
        // Deepest leaf to deepest leaf through the root, except when the
        // tree is a single path on one side. Brute force over leaves is
        // unnecessary: the two deepest leaves in different root subtrees
        // realise the diameter for heap-ordered complete trees; compute
        // exactly via the last node's depth and the deepest node in the
        // opposite subtree.
        let h = self.height();
        if self.len == 2 {
            return 1;
        }
        // Right subtree root = 2; deepest node overall is `len - 1`.
        // Depth of deepest node in the subtree NOT containing `len - 1`:
        let last = self.len - 1;
        let mut anc = last;
        while anc > 2 {
            anc = (anc - 1) / 2;
        }
        let other_root = if anc == 1 { 2 } else { 1 };
        // Deepest node under `other_root`: walk left children greedily
        // (complete trees fill left-to-right, so the left spine is
        // longest).
        let mut deep = other_root;
        while 2 * deep + 1 < self.len {
            deep = 2 * deep + 1;
        }
        h + self.depth(deep)
    }

    fn label(&self) -> String {
        format!("binary tree n={}", self.len)
    }

    fn computed_routes(&self) -> bool {
        // LCA walks in heap order cost O(log n) index arithmetic.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_order_relations() {
        let t = BinaryTree::new(7);
        assert_eq!(t.parent(0), None);
        assert_eq!(t.parent(5), Some(2));
        assert_eq!(t.children(1), vec![3, 4]);
        assert_eq!(t.children(3), Vec::<usize>::new());
        assert!(t.is_leaf(3));
        assert!(!t.is_leaf(1));
    }

    #[test]
    fn depths() {
        let t = BinaryTree::new(15);
        assert_eq!(t.depth(0), 0);
        assert_eq!(t.depth(1), 1);
        assert_eq!(t.depth(2), 1);
        assert_eq!(t.depth(6), 2);
        assert_eq!(t.depth(7), 3);
        assert_eq!(t.height(), 3);
    }

    #[test]
    fn distance_via_lca() {
        let t = BinaryTree::new(15);
        assert_eq!(t.distance(7, 8), 2); // siblings under 3
        assert_eq!(t.distance(7, 14), 6); // through the root
        assert_eq!(t.distance(0, 14), 3);
    }

    #[test]
    fn partial_last_level() {
        let t = BinaryTree::new(12);
        assert_eq!(t.children(5), vec![11]);
        assert_eq!(t.depth(11), 3);
    }
}
