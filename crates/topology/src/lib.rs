//! Interconnect topologies for the simulated multicomputer.
//!
//! The paper evaluates RIPS on an Intel Paragon (a 2-D mesh machine) and
//! discusses parallel scheduling algorithms for meshes, trees, and
//! hypercubes. This crate provides those topologies behind a common
//! [`Topology`] trait: node enumeration, neighbourhood, hop distance, and
//! deterministic single-path routing (used by the simulator to charge
//! per-hop message latency and by the schedulers to count communication
//! steps).
//!
//! Node identifiers are dense `0..len()` integers. Each concrete topology
//! documents its id ↔ coordinate mapping.

#![forbid(unsafe_code)]

mod hypercube;
mod mesh;
mod ring;
mod tree;

pub use hypercube::Hypercube;
pub use mesh::Mesh2D;
pub use ring::Ring;
pub use tree::BinaryTree;

/// Dense node identifier, `0..Topology::len()`.
pub type NodeId = usize;

/// A static point-to-point interconnect.
///
/// All implementations are connected graphs with symmetric links:
/// `b ∈ neighbors(a)` iff `a ∈ neighbors(b)`, and `distance` is the
/// shortest-path hop metric induced by `neighbors`.
pub trait Topology: Send + Sync {
    /// Number of nodes in the machine.
    fn len(&self) -> usize;

    /// `true` if the machine has no nodes (never the case for the
    /// provided constructors, which reject `len == 0`).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Direct neighbours of `node`.
    fn neighbors(&self, node: NodeId) -> Vec<NodeId>;

    /// Shortest-path hop distance between two nodes.
    fn distance(&self, a: NodeId, b: NodeId) -> usize;

    /// The next hop on a deterministic shortest path `from → to`.
    ///
    /// Returns `None` when `from == to`. Repeatedly following
    /// `route_next_hop` reaches `to` in exactly `distance(from, to)` hops.
    fn route_next_hop(&self, from: NodeId, to: NodeId) -> Option<NodeId>;

    /// Maximum hop distance over all node pairs.
    fn diameter(&self) -> usize;

    /// Short human-readable name, e.g. `"mesh 8x4"`.
    fn label(&self) -> String;
}

/// Walks the full deterministic route `from → to` (excluding `from`,
/// including `to`). Mainly used by tests and trace tooling.
pub fn route<T: Topology + ?Sized>(topo: &T, from: NodeId, to: NodeId) -> Vec<NodeId> {
    let mut path = Vec::with_capacity(topo.distance(from, to));
    let mut cur = from;
    while let Some(next) = topo.route_next_hop(cur, to) {
        path.push(next);
        cur = next;
    }
    path
}

/// Brute-force BFS distance, used by tests to validate the closed-form
/// `distance` implementations.
pub fn bfs_distance<T: Topology + ?Sized>(topo: &T, a: NodeId, b: NodeId) -> usize {
    use std::collections::VecDeque;
    if a == b {
        return 0;
    }
    let mut dist = vec![usize::MAX; topo.len()];
    dist[a] = 0;
    let mut q = VecDeque::from([a]);
    while let Some(n) = q.pop_front() {
        for m in topo.neighbors(n) {
            if dist[m] == usize::MAX {
                dist[m] = dist[n] + 1;
                if m == b {
                    return dist[m];
                }
                q.push_back(m);
            }
        }
    }
    panic!("topology is disconnected: no path {a} -> {b}");
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    fn check_invariants(topo: &dyn Topology) {
        let n = topo.len();
        assert!(n > 0);
        for a in 0..n {
            // Symmetric links.
            for b in topo.neighbors(a) {
                assert!(b < n);
                assert_ne!(a, b, "self-loop at {a}");
                assert!(
                    topo.neighbors(b).contains(&a),
                    "asymmetric link {a}->{b} in {}",
                    topo.label()
                );
                assert_eq!(topo.distance(a, b), 1);
            }
            assert_eq!(topo.distance(a, a), 0);
            assert!(topo.route_next_hop(a, a).is_none());
        }
        let mut max_d = 0;
        for a in 0..n {
            for b in 0..n {
                let d = topo.distance(a, b);
                assert_eq!(d, topo.distance(b, a), "distance not symmetric");
                assert_eq!(d, bfs_distance(topo, a, b), "closed-form != BFS");
                assert_eq!(route(topo, a, b).len(), d, "route length != distance");
                if d > 0 {
                    let hop = topo.route_next_hop(a, b).unwrap();
                    assert_eq!(topo.distance(hop, b), d - 1, "route does not progress");
                }
                max_d = max_d.max(d);
            }
        }
        assert_eq!(
            topo.diameter(),
            max_d,
            "diameter mismatch in {}",
            topo.label()
        );
    }

    #[test]
    fn mesh_invariants() {
        for (r, c) in [(1, 1), (1, 5), (5, 1), (2, 2), (3, 4), (4, 8)] {
            check_invariants(&Mesh2D::new(r, c));
        }
    }

    #[test]
    fn tree_invariants() {
        for n in [1, 2, 3, 7, 12, 31] {
            check_invariants(&BinaryTree::new(n));
        }
    }

    #[test]
    fn hypercube_invariants() {
        for d in 0..=5 {
            check_invariants(&Hypercube::new(d));
        }
    }

    #[test]
    fn ring_invariants() {
        for n in [1, 2, 3, 4, 9, 16] {
            check_invariants(&Ring::new(n));
        }
    }
}
