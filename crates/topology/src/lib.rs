//! Interconnect topologies for the simulated multicomputer.
//!
//! The paper evaluates RIPS on an Intel Paragon (a 2-D mesh machine) and
//! discusses parallel scheduling algorithms for meshes, trees, and
//! hypercubes. This crate provides those topologies behind a common
//! [`Topology`] trait: node enumeration, neighbourhood, hop distance, and
//! deterministic single-path routing (used by the simulator to charge
//! per-hop message latency and by the schedulers to count communication
//! steps).
//!
//! Node identifiers are dense `0..len()` integers. Each concrete topology
//! documents its id ↔ coordinate mapping.

#![forbid(unsafe_code)]

mod hypercube;
mod mesh;
mod ring;
mod tree;

pub use hypercube::Hypercube;
pub use mesh::Mesh2D;
pub use ring::Ring;
pub use tree::BinaryTree;

/// Dense node identifier, `0..Topology::len()`.
pub type NodeId = usize;

/// A static point-to-point interconnect.
///
/// All implementations are connected graphs with symmetric links:
/// `b ∈ neighbors(a)` iff `a ∈ neighbors(b)`, and `distance` is the
/// shortest-path hop metric induced by `neighbors`.
pub trait Topology: Send + Sync {
    /// Number of nodes in the machine.
    fn len(&self) -> usize;

    /// `true` if the machine has no nodes (never the case for the
    /// provided constructors, which reject `len == 0`).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Direct neighbours of `node`.
    fn neighbors(&self, node: NodeId) -> Vec<NodeId>;

    /// Shortest-path hop distance between two nodes.
    fn distance(&self, a: NodeId, b: NodeId) -> usize;

    /// The next hop on a deterministic shortest path `from → to`.
    ///
    /// Returns `None` when `from == to`. Repeatedly following
    /// `route_next_hop` reaches `to` in exactly `distance(from, to)` hops.
    fn route_next_hop(&self, from: NodeId, to: NodeId) -> Option<NodeId>;

    /// Maximum hop distance over all node pairs.
    fn diameter(&self) -> usize;

    /// Short human-readable name, e.g. `"mesh 8x4"`.
    fn label(&self) -> String;

    /// `true` when [`Topology::distance`] and
    /// [`Topology::route_next_hop`] are cheap closed-form computations
    /// (O(1)/O(log n)) rather than graph searches.
    ///
    /// Callers that would otherwise materialise `n × n` distance or
    /// next-hop tables (2 TB / 4 TB at a million nodes) can skip the
    /// tables entirely for such topologies and call the methods on the
    /// fly. The provided mesh/ring/hypercube/tree implementations all
    /// opt in; the default is conservative (`false`) so a custom
    /// BFS-backed topology keeps table-based callers.
    ///
    /// Implementations answering `true` promise the closed forms agree
    /// with BFS over `neighbors` — the trait-level invariant tests
    /// cross-validate this exhaustively at small `n` and by sampling at
    /// `n ≥ 100_000`.
    fn computed_routes(&self) -> bool {
        false
    }
}

/// Walks the full deterministic route `from → to` (excluding `from`,
/// including `to`). Mainly used by tests and trace tooling.
pub fn route<T: Topology + ?Sized>(topo: &T, from: NodeId, to: NodeId) -> Vec<NodeId> {
    let mut path = Vec::with_capacity(topo.distance(from, to));
    let mut cur = from;
    while let Some(next) = topo.route_next_hop(cur, to) {
        path.push(next);
        cur = next;
    }
    path
}

/// Brute-force BFS distance, used by tests to validate the closed-form
/// `distance` implementations.
pub fn bfs_distance<T: Topology + ?Sized>(topo: &T, a: NodeId, b: NodeId) -> usize {
    use std::collections::VecDeque;
    if a == b {
        return 0;
    }
    let mut dist = vec![usize::MAX; topo.len()];
    dist[a] = 0;
    let mut q = VecDeque::from([a]);
    while let Some(n) = q.pop_front() {
        for m in topo.neighbors(n) {
            if dist[m] == usize::MAX {
                dist[m] = dist[n] + 1;
                if m == b {
                    return dist[m];
                }
                q.push_back(m);
            }
        }
    }
    panic!("topology is disconnected: no path {a} -> {b}");
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    fn check_invariants(topo: &dyn Topology) {
        let n = topo.len();
        assert!(n > 0);
        for a in 0..n {
            // Symmetric links.
            for b in topo.neighbors(a) {
                assert!(b < n);
                assert_ne!(a, b, "self-loop at {a}");
                assert!(
                    topo.neighbors(b).contains(&a),
                    "asymmetric link {a}->{b} in {}",
                    topo.label()
                );
                assert_eq!(topo.distance(a, b), 1);
            }
            assert_eq!(topo.distance(a, a), 0);
            assert!(topo.route_next_hop(a, a).is_none());
        }
        let mut max_d = 0;
        for a in 0..n {
            for b in 0..n {
                let d = topo.distance(a, b);
                assert_eq!(d, topo.distance(b, a), "distance not symmetric");
                assert_eq!(d, bfs_distance(topo, a, b), "closed-form != BFS");
                assert_eq!(route(topo, a, b).len(), d, "route length != distance");
                if d > 0 {
                    let hop = topo.route_next_hop(a, b).unwrap();
                    assert_eq!(topo.distance(hop, b), d - 1, "route does not progress");
                }
                max_d = max_d.max(d);
            }
        }
        assert_eq!(
            topo.diameter(),
            max_d,
            "diameter mismatch in {}",
            topo.label()
        );
    }

    #[test]
    fn mesh_invariants() {
        for (r, c) in [(1, 1), (1, 5), (5, 1), (2, 2), (3, 4), (4, 8)] {
            check_invariants(&Mesh2D::new(r, c));
        }
    }

    #[test]
    fn tree_invariants() {
        for n in [1, 2, 3, 7, 12, 31] {
            check_invariants(&BinaryTree::new(n));
        }
    }

    #[test]
    fn hypercube_invariants() {
        for d in 0..=5 {
            check_invariants(&Hypercube::new(d));
        }
    }

    #[test]
    fn ring_invariants() {
        for n in [1, 2, 3, 4, 9, 16] {
            check_invariants(&Ring::new(n));
        }
    }

    #[test]
    fn provided_topologies_advertise_computed_routes() {
        let topos: [&dyn Topology; 4] = [
            &Mesh2D::new(3, 4),
            &Ring::new(9),
            &Hypercube::new(4),
            &BinaryTree::new(12),
        ];
        for t in topos {
            assert!(t.computed_routes(), "{} lost its capability", t.label());
        }
    }

    /// SplitMix64 — enough randomness for pair sampling, no deps.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The exhaustive `check_invariants` is O(n²); above ~100k nodes we
    /// sample instead. For each drawn pair: closed-form `distance` must
    /// equal BFS over `neighbors`, and the deterministic route must
    /// reach the destination in exactly `distance` hops.
    fn check_sampled(topo: &dyn Topology, pairs: usize, seed: u64) {
        let n = topo.len();
        assert!(
            topo.computed_routes(),
            "sampled check only makes sense for computed-route topologies"
        );
        let mut s = seed;
        for _ in 0..pairs {
            let a = (splitmix(&mut s) % n as u64) as NodeId;
            let b = (splitmix(&mut s) % n as u64) as NodeId;
            let d = topo.distance(a, b);
            assert_eq!(d, topo.distance(b, a), "distance not symmetric");
            assert_eq!(
                d,
                bfs_distance(topo, a, b),
                "closed-form != BFS for {a}->{b} in {}",
                topo.label()
            );
            // Walk the route, checking strict progress at every hop.
            let mut cur = a;
            let mut left = d;
            while let Some(next) = topo.route_next_hop(cur, b) {
                assert!(
                    topo.neighbors(cur).contains(&next),
                    "route hop {cur}->{next} is not a link"
                );
                left -= 1;
                assert_eq!(
                    topo.distance(next, b),
                    left,
                    "route does not progress at {cur}"
                );
                cur = next;
            }
            assert_eq!(cur, b, "route never reached the destination");
            assert_eq!(left, 0);
        }
    }

    #[test]
    fn mesh_sampled_at_scale() {
        // 350 × 300 = 105_000 nodes; the flat tables this replaces
        // would be 22 GB here.
        check_sampled(&Mesh2D::new(350, 300), 64, 0xA11CE);
    }

    #[test]
    fn ring_sampled_at_scale() {
        // Diameter 75_000 — far beyond u16; exercises the widened
        // computed-distance path.
        check_sampled(&Ring::new(150_000), 48, 0xB0B);
    }

    #[test]
    fn hypercube_sampled_at_scale() {
        // 2^17 = 131_072 nodes.
        check_sampled(&Hypercube::new(17), 64, 0xCAFE);
    }

    #[test]
    fn tree_sampled_at_scale() {
        check_sampled(&BinaryTree::new(120_000), 64, 0xD00D);
    }
}
