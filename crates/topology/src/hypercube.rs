//! Hypercube topology (used by the DEM baseline scheduler, §4 of the
//! paper's related work).

use crate::{NodeId, Topology};

/// A `d`-dimensional hypercube with `2^d` nodes.
///
/// Node ids are bit strings; two nodes are adjacent iff their ids differ
/// in exactly one bit. Routing is *e-cube*: correct the lowest differing
/// bit first, which is deadlock-free and deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hypercube {
    dim: usize,
}

impl Hypercube {
    /// Creates a hypercube of dimension `dim` (`2^dim` nodes).
    ///
    /// # Panics
    /// Panics if `dim` is large enough to overflow `usize` node counts.
    pub fn new(dim: usize) -> Self {
        assert!(dim < usize::BITS as usize, "hypercube dimension too large");
        Hypercube { dim }
    }

    /// Builds a hypercube with exactly `n = 2^d` nodes.
    ///
    /// # Panics
    /// Panics if `n` is not a power of two.
    pub fn with_nodes(n: usize) -> Self {
        assert!(n.is_power_of_two(), "hypercube size must be a power of two");
        Hypercube::new(n.trailing_zeros() as usize)
    }

    /// Dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The neighbour across dimension `k`.
    pub fn across(&self, node: NodeId, k: usize) -> NodeId {
        debug_assert!(k < self.dim);
        node ^ (1 << k)
    }
}

impl Topology for Hypercube {
    fn len(&self) -> usize {
        1 << self.dim
    }

    fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        (0..self.dim).map(|k| node ^ (1 << k)).collect()
    }

    fn distance(&self, a: NodeId, b: NodeId) -> usize {
        (a ^ b).count_ones() as usize
    }

    fn route_next_hop(&self, from: NodeId, to: NodeId) -> Option<NodeId> {
        let diff = from ^ to;
        if diff == 0 {
            return None;
        }
        // e-cube routing: flip the lowest set bit of the difference.
        Some(from ^ (diff & diff.wrapping_neg()))
    }

    fn diameter(&self) -> usize {
        self.dim
    }

    fn label(&self) -> String {
        format!("hypercube d={}", self.dim)
    }

    fn computed_routes(&self) -> bool {
        // Hamming distance and e-cube routing are O(1) bit tricks.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route;

    #[test]
    fn sizes() {
        assert_eq!(Hypercube::new(0).len(), 1);
        assert_eq!(Hypercube::new(5).len(), 32);
        assert_eq!(Hypercube::with_nodes(64).dim(), 6);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        Hypercube::with_nodes(12);
    }

    #[test]
    fn hamming_distance() {
        let h = Hypercube::new(4);
        assert_eq!(h.distance(0b0000, 0b1111), 4);
        assert_eq!(h.distance(0b1010, 0b1000), 1);
    }

    #[test]
    fn ecube_route_fixes_low_bits_first() {
        let h = Hypercube::new(3);
        assert_eq!(route(&h, 0b000, 0b101), vec![0b001, 0b101]);
    }

    #[test]
    fn across_is_involution() {
        let h = Hypercube::new(4);
        for n in 0..h.len() {
            for k in 0..4 {
                assert_eq!(h.across(h.across(n, k), k), n);
            }
        }
    }
}
