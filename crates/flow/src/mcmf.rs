//! Successive-shortest-path min-cost max-flow.
//!
//! SPFA-based (queue Bellman–Ford) shortest paths on the residual
//! graph; integral capacities and costs. Complexity is fine for the
//! paper's instances (meshes up to 256 nodes, flow values in the tens
//! of thousands): each augmentation saturates at least one edge on a
//! shortest path and pushes the full bottleneck.

/// Identifier of an edge added via [`FlowNetwork::add_edge`]; can be
/// used after solving to query the flow it carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeId(usize);

#[derive(Debug, Clone)]
struct Edge {
    to: usize,
    cap: i64,
    cost: i64,
    flow: i64,
    /// Index of the reverse edge in `edges`.
    rev: usize,
}

/// A directed flow network with costs.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    adj: Vec<Vec<usize>>,
    edges: Vec<Edge>,
}

impl FlowNetwork {
    /// Creates a network with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// `true` if the network has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Adds a directed edge `u → v` with `cap` capacity and per-unit
    /// `cost`, plus its zero-capacity reverse. Negative capacity is
    /// rejected; negative cost is allowed only if the caller guarantees
    /// no negative cycles (the balance reduction uses costs ≥ 0).
    pub fn add_edge(&mut self, u: usize, v: usize, cap: i64, cost: i64) -> EdgeId {
        assert!(cap >= 0, "negative capacity");
        assert!(u < self.len() && v < self.len(), "vertex out of range");
        let id = self.edges.len();
        self.edges.push(Edge {
            to: v,
            cap,
            cost,
            flow: 0,
            rev: id + 1,
        });
        self.edges.push(Edge {
            to: u,
            cap: 0,
            cost: -cost,
            flow: 0,
            rev: id,
        });
        self.adj[u].push(id);
        self.adj[v].push(id + 1);
        EdgeId(id)
    }

    /// Flow currently assigned to a forward edge.
    pub fn flow(&self, e: EdgeId) -> i64 {
        self.edges[e.0].flow
    }

    /// Computes a minimum-cost maximum flow from `s` to `t`. Returns
    /// `(max_flow, total_cost)`. Can be called once per network.
    pub fn min_cost_max_flow(&mut self, s: usize, t: usize) -> (i64, i64) {
        assert_ne!(s, t, "source equals sink");
        let n = self.len();
        let mut total_flow = 0i64;
        let mut total_cost = 0i64;
        loop {
            // SPFA shortest path by cost on the residual graph.
            let mut dist = vec![i64::MAX; n];
            let mut in_queue = vec![false; n];
            let mut pre_edge = vec![usize::MAX; n];
            dist[s] = 0;
            let mut queue = std::collections::VecDeque::from([s]);
            in_queue[s] = true;
            while let Some(u) = queue.pop_front() {
                in_queue[u] = false;
                let du = dist[u];
                for &ei in &self.adj[u] {
                    let e = &self.edges[ei];
                    if e.cap - e.flow > 0 && du + e.cost < dist[e.to] {
                        dist[e.to] = du + e.cost;
                        pre_edge[e.to] = ei;
                        if !in_queue[e.to] {
                            in_queue[e.to] = true;
                            queue.push_back(e.to);
                        }
                    }
                }
            }
            if dist[t] == i64::MAX {
                break;
            }
            // Bottleneck along the path.
            let mut push = i64::MAX;
            let mut v = t;
            while v != s {
                let e = &self.edges[pre_edge[v]];
                push = push.min(e.cap - e.flow);
                v = self.edges[e.rev].to;
            }
            // Apply.
            let mut v = t;
            while v != s {
                let ei = pre_edge[v];
                self.edges[ei].flow += push;
                let rev = self.edges[ei].rev;
                self.edges[rev].flow -= push;
                v = self.edges[rev].to;
            }
            total_flow += push;
            total_cost += push * dist[t];
        }
        (total_flow, total_cost)
    }

    /// Verifies flow conservation at every vertex except `s` and `t`.
    /// Test/diagnostic helper.
    pub fn check_conservation(&self, s: usize, t: usize) -> bool {
        let mut balance = vec![0i64; self.len()];
        for (i, e) in self.edges.iter().enumerate() {
            if i % 2 == 0 {
                // forward edges only; reverse flows mirror them
                let u = self.edges[e.rev].to;
                balance[u] -= e.flow;
                balance[e.to] += e.flow;
            }
        }
        balance
            .iter()
            .enumerate()
            .all(|(v, &b)| v == s || v == t || b == 0)
    }

    /// `true` if the residual graph contains no negative-cost cycle —
    /// the optimality certificate for a min-cost flow (Lawler's
    /// criterion, the one Lemma 2 of the paper argues with).
    pub fn residual_has_no_negative_cycle(&self) -> bool {
        let n = self.len();
        // Bellman-Ford from a virtual super-source connected to all.
        let mut dist = vec![0i64; n];
        for round in 0..n {
            let mut changed = false;
            for e in &self.edges {
                if e.cap - e.flow > 0 {
                    let u = self.edges[e.rev].to;
                    if dist[u] + e.cost < dist[e.to] {
                        dist[e.to] = dist[u] + e.cost;
                        changed = true;
                    }
                }
            }
            if !changed {
                return true;
            }
            if round == n - 1 {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_path() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 4, 2);
        net.add_edge(1, 2, 3, 1);
        let (f, c) = net.min_cost_max_flow(0, 2);
        assert_eq!(f, 3);
        assert_eq!(c, 3 * 3);
        assert!(net.check_conservation(0, 2));
        assert!(net.residual_has_no_negative_cycle());
    }

    #[test]
    fn prefers_cheap_path() {
        // Two parallel paths 0->1->3 (cost 1+1) and 0->2->3 (cost 5+5);
        // capacity forces a split only beyond 2 units.
        let mut net = FlowNetwork::new(4);
        let cheap_a = net.add_edge(0, 1, 2, 1);
        net.add_edge(1, 3, 2, 1);
        let dear_a = net.add_edge(0, 2, 2, 5);
        net.add_edge(2, 3, 2, 5);
        let (f, c) = net.min_cost_max_flow(0, 3);
        assert_eq!(f, 4);
        assert_eq!(c, 2 * 2 + 2 * 10);
        assert_eq!(net.flow(cheap_a), 2);
        assert_eq!(net.flow(dear_a), 2);
    }

    #[test]
    fn rerouting_through_residual_edges() {
        // Classic example where the greedy first path must be partially
        // undone via a residual edge.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 1, 1);
        net.add_edge(0, 2, 1, 4);
        net.add_edge(1, 2, 1, 1);
        net.add_edge(1, 3, 1, 10);
        net.add_edge(2, 3, 1, 1);
        let (f, c) = net.min_cost_max_flow(0, 3);
        assert_eq!(f, 2);
        // Optimal: 0-1-2-3 (cost 3) + 0-2? cap used... enumerate:
        // paths: 0-1-3 (11), 0-1-2-3 (3), 0-2-3 (5).
        // Max flow 2 = {0-1-2-3, 0-2-3}? 0-2 cap 1 and 2-3 cap 1 shared.
        // 2-3 cap 1 only, so second unit must use 1-3: {0-1-2-3 & ...}
        // actually 0-1 cap1: units: u1: 0-1-2-3 (3); u2: 0-2-3 blocked
        // (2-3 full) -> 0-2 + 2-1? no reverse... u2: 0-2-3 impossible;
        // u2 via 0-2, residual 2-1? only if flow 1->2 exists: yes undo:
        // 0-2-(residual 2->1)-1-3 = 4 - 1 + 10 = 13; or direct
        // 0-1? full. Total best = 3 + 13 = 16.
        assert_eq!(c, 16);
        assert!(net.check_conservation(0, 3));
        assert!(net.residual_has_no_negative_cycle());
    }

    #[test]
    fn disconnected_sink_gives_zero() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5, 1);
        let (f, c) = net.min_cost_max_flow(0, 2);
        assert_eq!((f, c), (0, 0));
    }

    #[test]
    fn zero_capacity_edges_carry_nothing() {
        let mut net = FlowNetwork::new(2);
        let e = net.add_edge(0, 1, 0, 1);
        let (f, _) = net.min_cost_max_flow(0, 1);
        assert_eq!(f, 0);
        assert_eq!(net.flow(e), 0);
    }
}
