//! The paper's §3 reduction from load balancing to min-cost max-flow.

use rips_topology::{NodeId, Topology};

use crate::mcmf::{EdgeId, FlowNetwork};

/// Per-node target loads ("quotas", paper step 3): every node gets
/// `⌊T/N⌋` tasks and the remainder `R = T mod N` is given to the first
/// `R` nodes, one extra task each.
///
/// ```
/// assert_eq!(rips_flow::quotas(10, 4), vec![3, 3, 2, 2]);
/// ```
pub fn quotas(total: i64, n: usize) -> Vec<i64> {
    assert!(n > 0);
    assert!(total >= 0, "negative total load");
    let avg = total / n as i64;
    let r = (total % n as i64) as usize;
    (0..n).map(|i| avg + i64::from(i < r)).collect()
}

/// Result of the optimal (min-cost max-flow) rebalancing.
#[derive(Debug, Clone)]
pub struct OptimalPlan {
    /// Optimal `Σ eₖ`: total tasks crossing links, minimised.
    pub cost: i64,
    /// Net task flow per directed link `(from, to, tasks)`, positive
    /// entries only.
    pub link_flows: Vec<(NodeId, NodeId, i64)>,
    /// Per-node final loads (equal to the quotas).
    pub final_loads: Vec<i64>,
}

/// Computes the optimal rebalancing of `loads` over `topo`: capacity ∞,
/// cost 1 on every link; source feeding each overloaded node by its
/// excess, each underloaded node draining to the sink by its deficit.
///
/// ```
/// use rips_flow::optimal_rebalance;
/// use rips_topology::Mesh2D;
///
/// // A line of three nodes: the optimum routes through the middle.
/// let plan = optimal_rebalance(&Mesh2D::new(1, 3), &[9, 0, 0]);
/// assert_eq!(plan.cost, 9); // 3 one-hop + 3 two-hop transfers
/// assert_eq!(plan.final_loads, vec![3, 3, 3]);
/// ```
///
/// Targets are the paper's quotas, so the result is defined also when
/// the total is not divisible by N.
///
/// # Panics
/// Panics if `loads.len() != topo.len()` or any load is negative.
pub fn optimal_rebalance(topo: &dyn Topology, loads: &[i64]) -> OptimalPlan {
    let n = topo.len();
    assert_eq!(loads.len(), n, "one load per node required");
    assert!(loads.iter().all(|&w| w >= 0), "negative load");
    let total: i64 = loads.iter().sum();
    let q = quotas(total, n);

    // Vertices: 0..n are processors, n is source, n+1 is sink.
    let (s, t) = (n, n + 1);
    let mut net = FlowNetwork::new(n + 2);
    // `INF` must exceed any feasible flow on a single link.
    let inf = total.max(1);
    let mut link_edges: Vec<(NodeId, NodeId, EdgeId)> = Vec::new();
    for u in 0..n {
        for v in topo.neighbors(u) {
            // Directed edge per ordered neighbour pair (the reverse
            // direction is added when iterating from `v`).
            let e = net.add_edge(u, v, inf, 1);
            link_edges.push((u, v, e));
        }
    }
    for i in 0..n {
        if loads[i] > q[i] {
            net.add_edge(s, i, loads[i] - q[i], 0);
        } else if loads[i] < q[i] {
            net.add_edge(i, t, q[i] - loads[i], 0);
        }
    }

    let (flow, cost) = net.min_cost_max_flow(s, t);
    let demand: i64 = (0..n).map(|i| (loads[i] - q[i]).max(0)).sum();
    assert_eq!(
        flow, demand,
        "balance flow infeasible: connected topology should always saturate"
    );
    debug_assert!(net.residual_has_no_negative_cycle());

    let link_flows = link_edges
        .into_iter()
        .filter_map(|(u, v, e)| {
            let f = net.flow(e);
            (f > 0).then_some((u, v, f))
        })
        .collect();
    OptimalPlan {
        cost,
        link_flows,
        final_loads: q,
    }
}

impl OptimalPlan {
    /// Re-derives final loads from `link_flows` applied to `initial`
    /// and checks they match the quotas. Test/diagnostic helper.
    pub fn verify(&self, initial: &[i64]) -> bool {
        let mut w = initial.to_vec();
        for &(u, v, f) in &self.link_flows {
            w[u] -= f;
            w[v] += f;
        }
        w == self.final_loads && w.iter().all(|&x| x >= 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rips_topology::{Mesh2D, Ring};

    #[test]
    fn quota_remainder_goes_to_first_nodes() {
        assert_eq!(quotas(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(quotas(8, 4), vec![2, 2, 2, 2]);
        assert_eq!(quotas(0, 3), vec![0, 0, 0]);
    }

    #[test]
    fn two_node_transfer() {
        let topo = Mesh2D::new(1, 2);
        let plan = optimal_rebalance(&topo, &[10, 0]);
        assert_eq!(plan.cost, 5);
        assert_eq!(plan.link_flows, vec![(0, 1, 5)]);
        assert!(plan.verify(&[10, 0]));
    }

    #[test]
    fn already_balanced_costs_nothing() {
        let topo = Mesh2D::new(2, 2);
        let plan = optimal_rebalance(&topo, &[7, 7, 7, 7]);
        assert_eq!(plan.cost, 0);
        assert!(plan.link_flows.is_empty());
    }

    #[test]
    fn line_of_three_routes_through_middle() {
        // Loads [9, 0, 0] on a line: node 0 sends 3 to node 1 and 3 to
        // node 2 (via 1): cost = 3 + 3*2 = 9.
        let topo = Mesh2D::new(1, 3);
        let plan = optimal_rebalance(&topo, &[9, 0, 0]);
        assert_eq!(plan.cost, 9);
        assert!(plan.verify(&[9, 0, 0]));
        assert_eq!(plan.final_loads, vec![3, 3, 3]);
    }

    #[test]
    fn ring_uses_both_directions() {
        // On a 4-ring with one hot node, excess splits both ways.
        let topo = Ring::new(4);
        let plan = optimal_rebalance(&topo, &[8, 0, 0, 0]);
        // Targets 2 each; send 2 to each neighbour (1 hop) and 2 to the
        // opposite node (2 hops): cost 2 + 2 + 4 = 8.
        assert_eq!(plan.cost, 8);
        assert!(plan.verify(&[8, 0, 0, 0]));
    }

    #[test]
    fn remainder_targets_are_met() {
        let topo = Mesh2D::new(1, 3);
        let plan = optimal_rebalance(&topo, &[7, 0, 0]);
        assert_eq!(plan.final_loads, vec![3, 2, 2]);
        assert!(plan.verify(&[7, 0, 0]));
    }

    #[test]
    #[should_panic(expected = "negative load")]
    fn negative_load_rejected() {
        let topo = Mesh2D::new(1, 2);
        optimal_rebalance(&topo, &[-1, 1]);
    }
}
