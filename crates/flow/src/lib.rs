//! Minimum-cost maximum-flow and the paper's optimal-scheduling
//! reduction.
//!
//! §3 of the paper: *"In general, this problem can be converted to the
//! minimum-cost maximum-flow problem as follows. Each edge is given a
//! tuple (capacity, cost) … Set capacity = ∞ and cost = 1 for all edges.
//! Then, add a source node s with an edge (s, i) to each node i if
//! wᵢ > w_avg, and a sink node t with an edge (j, t) from each node j if
//! wⱼ < w_avg … A minimum cost integral flow yields a solution."*
//!
//! This crate implements exactly that: a general MCMF solver
//! ([`FlowNetwork`]) plus [`optimal_rebalance`], which applies the
//! reduction to any topology and returns both the optimal transfer cost
//! `Σ eₖ` and the per-link task flows. It is the exact baseline against
//! which Figure 4 normalises MWA's cost.

mod mcmf;
mod rebalance;

pub use mcmf::{EdgeId, FlowNetwork};
pub use rebalance::{optimal_rebalance, quotas, OptimalPlan};
