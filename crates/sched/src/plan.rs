//! Transfer plans and their verification.

use rips_topology::{NodeId, Topology};

/// One task movement across a single link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Move {
    /// Sending node.
    pub from: NodeId,
    /// Receiving node — must be a direct neighbour of `from`.
    pub to: NodeId,
    /// Number of tasks moved.
    pub count: i64,
}

/// An ordered sequence of link-local task movements.
///
/// Order matters: transit tasks may be forwarded by a later move, so a
/// node's holdings must cover each move *at the time it executes*.
/// [`TransferPlan::apply`] checks exactly that.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransferPlan {
    /// The moves, in execution order. Zero-count moves are omitted.
    pub moves: Vec<Move>,
}

impl TransferPlan {
    /// Adds a move, dropping zero counts.
    ///
    /// # Panics
    /// Panics on negative counts.
    pub fn push(&mut self, from: NodeId, to: NodeId, count: i64) {
        assert!(count >= 0, "negative move count {count}");
        if count > 0 {
            self.moves.push(Move { from, to, count });
        }
    }

    /// Total `Σ eₖ`: tasks crossing links, the objective the paper's
    /// optimal scheduler minimises (every move is one hop).
    pub fn edge_cost(&self) -> i64 {
        self.moves.iter().map(|m| m.count).sum()
    }

    /// Executes the plan on `loads`, returning final loads.
    ///
    /// # Panics
    /// Panics if a move overdraws its sender (plan mis-ordered or
    /// wrong), or if `from == to`.
    pub fn apply(&self, loads: &[i64]) -> Vec<i64> {
        let mut w = loads.to_vec();
        for m in &self.moves {
            assert_ne!(m.from, m.to, "self-move");
            assert!(
                w[m.from] >= m.count,
                "move {:?} overdraws node {} (holds {})",
                m,
                m.from,
                w[m.from]
            );
            w[m.from] -= m.count;
            w[m.to] += m.count;
        }
        w
    }

    /// Checks every move is a single hop on `topo`.
    pub fn is_link_local(&self, topo: &dyn Topology) -> bool {
        self.moves.iter().all(|m| topo.distance(m.from, m.to) == 1)
    }

    /// Number of *non-local* tasks: tasks whose final node differs from
    /// their origin. Simulated with origin tracking; when forwarding, a
    /// node prefers to pass on tasks that are already foreign (a
    /// transit task stays one non-local task no matter how many links
    /// it crosses), keeping native tasks home as long as possible —
    /// the counting convention behind the paper's Theorem 2 and the
    /// "# of nonlocal tasks" column of Table I.
    pub fn nonlocal_tasks(&self, loads: &[i64]) -> i64 {
        self.final_holdings(loads)
            .iter()
            .enumerate()
            .map(|(node, h)| {
                h.iter()
                    .filter(|&&(origin, _)| origin != node)
                    .map(|&(_, c)| c)
                    .sum::<i64>()
            })
            .sum()
    }

    /// Net origin→destination transfers implied by the plan: for each
    /// receiving node, how many tasks it ends up holding from each
    /// other origin. Used by the RIPS runtime to pack migrations into
    /// one message per (source, destination) pair ("tasks are packed
    /// together for transmission").
    pub fn net_transfers(&self, loads: &[i64]) -> Vec<(NodeId, NodeId, i64)> {
        let mut out = Vec::new();
        for (node, h) in self.final_holdings(loads).iter().enumerate() {
            for &(origin, count) in h {
                if origin != node && count > 0 {
                    out.push((origin, node, count));
                }
            }
        }
        out
    }

    /// Executes the plan with per-task origin tracking (foreign-first
    /// forwarding); returns, per node, the final `(origin, count)`
    /// holdings.
    pub fn final_holdings(&self, loads: &[i64]) -> Vec<Vec<(NodeId, i64)>> {
        let n = loads.len();
        // holdings[node] = list of (origin, count); foreign first is
        // maintained by pushing foreign arrivals to the front region.
        let mut holdings: Vec<Vec<(NodeId, i64)>> = (0..n).map(|i| vec![(i, loads[i])]).collect();
        for m in &self.moves {
            let mut need = m.count;
            let mut taken: Vec<(NodeId, i64)> = Vec::new();
            // Prefer foreign tasks (origin != sender), oldest first.
            let src = &mut holdings[m.from];
            for pass in 0..2 {
                let mut k = 0;
                while k < src.len() && need > 0 {
                    let foreign = src[k].0 != m.from;
                    if (pass == 0 && foreign) || (pass == 1 && !foreign) {
                        let take = need.min(src[k].1);
                        if take > 0 {
                            taken.push((src[k].0, take));
                            src[k].1 -= take;
                            need -= take;
                        }
                    }
                    k += 1;
                }
                if need == 0 {
                    break;
                }
            }
            assert_eq!(need, 0, "move {m:?} overdraws sender");
            src.retain(|&(_, c)| c > 0);
            let dst = &mut holdings[m.to];
            for (origin, count) in taken {
                if let Some(slot) = dst.iter_mut().find(|(o, _)| *o == origin) {
                    slot.1 += count;
                } else {
                    dst.push((origin, count));
                }
            }
        }
        holdings
    }

    /// `true` if final loads differ by at most one task (Theorem 1's
    /// postcondition) and match the canonical quotas.
    pub fn balances(&self, loads: &[i64]) -> bool {
        let finals = self.apply(loads);
        let total: i64 = loads.iter().sum();
        finals == rips_flow::quotas(total, loads.len())
    }
}

/// Lemma 1: the minimum possible number of non-local tasks for any
/// balancing of `loads` — each under-quota node must import its
/// deficit: `m = Σ_j (q_j − w_j)⁺`.
pub fn min_nonlocal_tasks(loads: &[i64]) -> i64 {
    loads
        .iter()
        .zip(&quota_vector(loads))
        .map(|(&w, &t)| (t - w).max(0))
        .sum()
}

/// The canonical per-node quota assignment every scheduling algorithm
/// in this workspace balances to: `⌊T/N⌋` each, the first `T mod N`
/// nodes one extra. Exposed so external checkers (the `rips-audit`
/// invariant auditor) can cross-validate their independently computed
/// Theorem 1/2 bounds against the planner's own arithmetic.
pub fn quota_vector(loads: &[i64]) -> Vec<i64> {
    rips_flow::quotas(loads.iter().sum(), loads.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rips_topology::Mesh2D;

    #[test]
    fn apply_in_order() {
        // Transit: 0 -> 1 -> 2 works only in that order.
        let mut plan = TransferPlan::default();
        plan.push(0, 1, 2);
        plan.push(1, 2, 2);
        assert_eq!(plan.apply(&[2, 0, 0]), vec![0, 0, 2]);
        assert_eq!(plan.edge_cost(), 4);
    }

    #[test]
    #[should_panic(expected = "overdraws")]
    fn misordered_plan_detected() {
        let mut plan = TransferPlan::default();
        plan.push(1, 2, 2); // node 1 has nothing yet
        plan.push(0, 1, 2);
        plan.apply(&[2, 0, 0]);
    }

    #[test]
    fn zero_moves_are_dropped() {
        let mut plan = TransferPlan::default();
        plan.push(0, 1, 0);
        assert!(plan.moves.is_empty());
    }

    #[test]
    fn nonlocal_counts_unique_tasks_not_hops() {
        // 4 tasks travel 0 -> 1 -> 2: 4 nonlocal tasks, 8 edge cost.
        let mut plan = TransferPlan::default();
        plan.push(0, 1, 4);
        plan.push(1, 2, 4);
        let loads = [6, 2, 2];
        // Node 1 forwards the 4 foreign arrivals, keeping its natives.
        assert_eq!(plan.nonlocal_tasks(&loads), 4);
        assert_eq!(plan.edge_cost(), 8);
    }

    #[test]
    fn transit_node_keeps_natives() {
        // Node 1 must forward 2; it received 2 foreign and holds 2
        // native: it forwards the foreign ones.
        let mut plan = TransferPlan::default();
        plan.push(0, 1, 2);
        plan.push(1, 2, 2);
        assert_eq!(plan.nonlocal_tasks(&[4, 2, 0]), 2);
    }

    #[test]
    fn net_transfers_match_quota_deltas() {
        // 0 -> 1 -> 2 transit of 4 tasks: destinations receive from the
        // true origin (node 0), not the transit node.
        let mut plan = TransferPlan::default();
        plan.push(0, 1, 4);
        plan.push(1, 2, 4);
        let loads = [6, 2, 2];
        let t = plan.net_transfers(&loads);
        assert_eq!(t, vec![(0, 2, 4)]);
        // Conservation: applying the net transfers reproduces apply().
        let mut w = loads.to_vec();
        for &(s, d, c) in &t {
            w[s] -= c;
            w[d] += c;
        }
        assert_eq!(w, plan.apply(&loads));
    }

    #[test]
    fn min_nonlocal_is_sum_of_deficits() {
        // total 12 over 3 nodes -> quota 4 each; deficits 2 + 4.
        assert_eq!(min_nonlocal_tasks(&[12, 0, 0]), 8);
        assert_eq!(min_nonlocal_tasks(&[4, 4, 4]), 0);
        // Remainder: total 7, quotas [3,2,2]; deficits at node 1,2.
        assert_eq!(min_nonlocal_tasks(&[7, 0, 0]), 4);
    }

    #[test]
    fn link_local_check() {
        let mesh = Mesh2D::new(2, 2);
        let mut good = TransferPlan::default();
        good.push(0, 1, 1);
        assert!(good.is_link_local(&mesh));
        let mut bad = TransferPlan::default();
        bad.push(0, 3, 1); // diagonal
        assert!(!bad.is_link_local(&mesh));
    }
}
