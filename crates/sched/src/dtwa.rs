//! The Tree Walking Algorithm as a distributed SPMD program.
//!
//! Companion to [`crate::mwa_distributed`]: TWA's up sweep (subtree
//! sums converge to the root), the root's `w_avg`/`R` broadcast back
//! down, and the forced-flow exchanges, all executed as per-node state
//! machines over the lock-step BSP machine. The reference [25]
//! complexity — `O(log n)` on a balanced tree — shows up directly as
//! the measured communication-step count (≤ `4·height + 2`: one
//! convergecast, one broadcast, and the two directions of forced
//! flows, each pipelined along the tree height).

use rips_collectives::{BspMachine, BspProgram};
use rips_topology::{BinaryTree, NodeId, Topology};

use crate::plan::TransferPlan;

#[derive(Debug, Clone, Copy)]
enum Msg {
    /// Up sweep: subtree total converging toward the root.
    SubtreeSum(i64),
    /// Down sweep: `(w_avg, R)` from the root.
    Bcast(i64, i64),
    /// Forced flow upward (count recorded by the sender's move log).
    TasksUp(#[allow(dead_code)] i64),
    /// Forced flow downward.
    TasksDown(#[allow(dead_code)] i64),
}

struct Node {
    me: NodeId,
    n: usize,
    load: i64,
    /// Subtree sums reported by children (filled during the up sweep).
    child_sums: Vec<Option<i64>>,
    children: Vec<NodeId>,
    parent: Option<NodeId>,
    sum_sent: bool,
    bcast: Option<(i64, i64)>,
    bcast_forwarded: bool,
    /// Expected inbound forced flows (computed from the broadcast) and
    /// what actually arrived — kept separate because a flow can arrive
    /// in the same round as the broadcast that predicts it.
    expect_from_parent: bool,
    got_from_parent: bool,
    expect_from_child: Vec<bool>,
    got_from_child: Vec<bool>,
    sent_up: bool,
    sent_down: Vec<bool>,
    moves: Vec<(usize, NodeId, NodeId, i64)>,
}

impl Node {
    /// Quota of the subtree rooted at `v` (requires the broadcast).
    fn subtree_quota(&self, v: NodeId, wavg: i64, rem: i64) -> i64 {
        // Heap-ordered subtree of v: ids are not contiguous, so sum the
        // per-node quotas by walking the implicit tree. Cheap: subtree
        // sizes are O(n) and this runs O(height) times per node.
        let mut total = 0;
        let mut stack = vec![v];
        while let Some(u) = stack.pop() {
            total += wavg + i64::from((u as i64) < rem);
            for c in [2 * u + 1, 2 * u + 2] {
                if c < self.n {
                    stack.push(c);
                }
            }
        }
        total
    }

    /// Net forced flow on the edge to child `c`: positive = downward
    /// (this node sends to `c`).
    fn edge_flow_down(&self, ci: usize, wavg: i64, rem: i64) -> i64 {
        let c = self.children[ci];
        let quota = self.subtree_quota(c, wavg, rem);
        let sum = self.child_sums[ci].expect("up sweep complete");
        quota - sum
    }
}

impl BspProgram for Node {
    type Msg = Msg;

    fn round(
        &mut self,
        _me: NodeId,
        round: usize,
        inbox: Vec<(NodeId, Msg)>,
        outbox: &mut Vec<(NodeId, Msg)>,
    ) {
        for (from, msg) in inbox {
            match msg {
                Msg::SubtreeSum(s) => {
                    let ci = self
                        .children
                        .iter()
                        .position(|&c| c == from)
                        .expect("child");
                    self.child_sums[ci] = Some(s);
                }
                Msg::Bcast(wavg, rem) => self.bcast = Some((wavg, rem)),
                Msg::TasksUp(_) => {
                    let ci = self
                        .children
                        .iter()
                        .position(|&c| c == from)
                        .expect("child");
                    self.got_from_child[ci] = true;
                }
                Msg::TasksDown(_) => self.got_from_parent = true,
            }
        }

        // Up sweep: send the subtree total once all children reported.
        if !self.sum_sent && self.child_sums.iter().all(Option::is_some) {
            let total = self.load
                + self
                    .child_sums
                    .iter()
                    .map(|s| s.expect("checked"))
                    .sum::<i64>();
            self.sum_sent = true;
            match self.parent {
                Some(p) => outbox.push((p, Msg::SubtreeSum(total))),
                None => {
                    // Root: totals known; start the down sweep.
                    let n = self.n as i64;
                    self.bcast = Some((total / n, total % n));
                }
            }
        }

        // Down sweep + forced flows.
        if let Some((wavg, rem)) = self.bcast {
            if !self.bcast_forwarded {
                self.bcast_forwarded = true;
                for &c in &self.children {
                    outbox.push((c, Msg::Bcast(wavg, rem)));
                }
                // Now every edge flow is locally decidable: mark what
                // we expect to receive.
                for ci in 0..self.children.len() {
                    self.expect_from_child[ci] = self.edge_flow_down(ci, wavg, rem) < 0;
                }
                if self.parent.is_some() {
                    // Flow on the parent edge, seen from the parent:
                    // positive = parent sends down to us.
                    let my_quota = self.subtree_quota(self.me, wavg, rem);
                    let my_sum = self.load
                        + self
                            .child_sums
                            .iter()
                            .map(|s| s.expect("up sweep done"))
                            .sum::<i64>();
                    self.expect_from_parent = my_quota > my_sum;
                }
            }
            let parent_owed = self.expect_from_parent && !self.got_from_parent;
            let child_owed = |node: &Self, skip: Option<usize>| {
                node.expect_from_child
                    .iter()
                    .zip(&node.got_from_child)
                    .enumerate()
                    .any(|(k, (&e, &g))| Some(k) != skip && e && !g)
            };
            // Send upward once everything owed to us from below arrived
            // (transit tasks must exist before we forward them).
            if let Some(p) = self.parent {
                let my_quota = self.subtree_quota(self.me, wavg, rem);
                let my_sum = self.load
                    + self
                        .child_sums
                        .iter()
                        .map(|s| s.expect("up sweep done"))
                        .sum::<i64>();
                let up = my_sum - my_quota; // positive = send up
                if up > 0 && !self.sent_up && !child_owed(self, None) {
                    self.sent_up = true;
                    self.moves.push((round, self.me, p, up));
                    outbox.push((p, Msg::TasksUp(up)));
                }
            }
            // A downward send on edge ci needs: all inbound flows to
            // this node (from parent and from *other* children) done.
            for ci in 0..self.children.len() {
                let flow = self.edge_flow_down(ci, wavg, rem);
                if flow > 0 && !self.sent_down[ci] && !parent_owed && !child_owed(self, Some(ci)) {
                    self.sent_down[ci] = true;
                    let c = self.children[ci];
                    self.moves.push((round, self.me, c, flow));
                    outbox.push((c, Msg::TasksDown(flow)));
                }
            }
        }
    }
}

/// Runs TWA as a distributed SPMD program over the heap-ordered binary
/// tree. Returns the plan (identical per-edge flows to [`crate::twa`])
/// and the measured communication-step count.
///
/// # Panics
/// Panics on length mismatch, negative loads, or a protocol bug
/// (failing to land on the quotas).
pub fn twa_distributed(tree: &BinaryTree, loads: &[i64]) -> (TransferPlan, usize) {
    let n = tree.len();
    assert_eq!(loads.len(), n, "one load per node required");
    assert!(loads.iter().all(|&w| w >= 0), "negative load");

    let machine = BspMachine::new(tree, |id| {
        let children = tree.children(id);
        Node {
            me: id,
            n,
            load: loads[id],
            child_sums: vec![None; children.len()],
            expect_from_child: vec![false; children.len()],
            got_from_child: vec![false; children.len()],
            sent_down: vec![false; children.len()],
            children,
            parent: tree.parent(id),
            sum_sent: false,
            bcast: None,
            bcast_forwarded: false,
            expect_from_parent: false,
            got_from_parent: false,
            sent_up: false,
            moves: Vec::new(),
        }
    });
    let (nodes, outcome) = machine.run(8 * tree.height().max(1) + 8);

    let mut stamped: Vec<(usize, NodeId, NodeId, i64)> = nodes
        .iter()
        .flat_map(|nd| nd.moves.iter().copied())
        .collect();
    stamped.sort_by_key(|&(round, from, to, _)| (round, from, to));
    let mut plan = TransferPlan::default();
    for (_, from, to, count) in stamped {
        plan.push(from, to, count);
    }

    let total: i64 = loads.iter().sum();
    let finals = plan.apply(loads);
    assert_eq!(
        finals,
        rips_flow::quotas(total, n),
        "distributed TWA missed its quotas"
    );
    assert!(
        outcome.comm_steps <= 4 * tree.height().max(1) + 2,
        "used {} steps on height {}",
        outcome.comm_steps,
        tree.height()
    );
    (plan, outcome.comm_steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::twa;
    use std::collections::BTreeMap;

    fn flows(plan: &TransferPlan) -> BTreeMap<(NodeId, NodeId), i64> {
        let mut m = BTreeMap::new();
        for mv in &plan.moves {
            *m.entry((mv.from, mv.to)).or_insert(0) += mv.count;
        }
        m
    }

    fn check(n: usize, loads: &[i64]) {
        let tree = BinaryTree::new(n);
        let central = twa(&tree, loads);
        let (distributed, _) = twa_distributed(&tree, loads);
        assert_eq!(
            flows(&central),
            flows(&distributed),
            "n={n} loads={loads:?}"
        );
    }

    #[test]
    fn agrees_on_small_trees() {
        check(1, &[5]);
        check(3, &[0, 9, 0]);
        check(7, &[14, 0, 0, 0, 0, 0, 0]);
        check(7, &[0, 0, 0, 14, 0, 0, 0]);
    }

    #[test]
    fn agrees_with_remainder_and_gaps() {
        check(12, &[5, 0, 0, 0, 0, 0, 24, 0, 0, 0, 7, 0]);
        check(6, &[1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn step_count_is_logarithmic() {
        let tree = BinaryTree::new(255);
        let loads: Vec<i64> = (0..255).map(|k| ((k * 31) % 17) as i64).collect();
        let (_, steps) = twa_distributed(&tree, &loads);
        // height = 7; up sweep + broadcast + two flow directions.
        assert!(steps <= 4 * 7 + 2, "steps = {steps}");
    }
}
