//! The Dimension Exchange Method as a distributed SPMD program: in
//! round `k` every node exchanges loads with its partner across
//! hypercube dimension `k` and the heavier half sends ⌊diff/2⌋ tasks —
//! exactly `d` communication steps, which is DEM's calling card (and
//! measured here rather than asserted).

use rips_collectives::{BspMachine, BspProgram};
use rips_topology::{Hypercube, NodeId, Topology};

use crate::plan::TransferPlan;

#[derive(Debug, Clone, Copy)]
enum Msg {
    /// Partner's current load for this dimension's exchange.
    Load(i64),
}

struct Node {
    me: NodeId,
    dim: usize,
    load: i64,
    /// Partner load received this round, if any.
    partner: Option<i64>,
    moves: Vec<(usize, NodeId, NodeId, i64)>,
}

impl BspProgram for Node {
    type Msg = Msg;

    fn round(
        &mut self,
        _me: NodeId,
        round: usize,
        inbox: Vec<(NodeId, Msg)>,
        outbox: &mut Vec<(NodeId, Msg)>,
    ) {
        // Round r carries dimension r's load exchange; the inbox holds
        // dimension r−1's partner load, settled (symmetrically, both
        // sides compute the same difference) before this round's send.
        for (_, Msg::Load(l)) in inbox {
            self.partner = Some(l);
        }
        if round > 0 {
            let k = round - 1;
            let partner_load = self.partner.take().expect("exchange message due");
            let partner = self.me ^ (1 << k);
            let diff = self.load - partner_load;
            if diff >= 2 {
                let send = diff / 2;
                self.load -= send;
                self.moves.push((round, self.me, partner, send));
            } else if diff <= -2 {
                self.load += (-diff) / 2;
            }
        }
        if round < self.dim {
            let partner = self.me ^ (1 << round);
            outbox.push((partner, Msg::Load(self.load)));
        }
    }
}

/// Runs DEM as a distributed SPMD program over the hypercube. Returns
/// the plan (identical to [`crate::dem`]) and the measured
/// communication-step count.
///
/// # Panics
/// Panics on length mismatch or negative loads.
pub fn dem_distributed(cube: &Hypercube, loads: &[i64]) -> (TransferPlan, usize) {
    let n = cube.len();
    assert_eq!(loads.len(), n, "one load per node required");
    assert!(loads.iter().all(|&w| w >= 0), "negative load");
    let dim = cube.dim();

    let machine = BspMachine::new(cube, |id| Node {
        me: id,
        dim,
        load: loads[id],
        partner: None,
        moves: Vec::new(),
    });
    let (nodes, outcome) = machine.run(dim + 2);

    let mut stamped: Vec<(usize, NodeId, NodeId, i64)> = nodes
        .iter()
        .flat_map(|nd| nd.moves.iter().copied())
        .collect();
    stamped.sort_by_key(|&(round, from, to, _)| (round, from, to));
    let mut plan = TransferPlan::default();
    for (_, from, to, count) in stamped {
        plan.push(from, to, count);
    }
    // One step per dimension, exactly DEM's complexity.
    assert!(
        outcome.comm_steps <= dim,
        "used {} steps",
        outcome.comm_steps
    );
    (plan, outcome.comm_steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dem;
    use std::collections::BTreeMap;

    fn flows(plan: &TransferPlan) -> BTreeMap<(NodeId, NodeId), i64> {
        let mut m = BTreeMap::new();
        for mv in &plan.moves {
            *m.entry((mv.from, mv.to)).or_insert(0) += mv.count;
        }
        m
    }

    #[test]
    fn agrees_with_centralized_dem() {
        for (d, seed) in [(0usize, 1u64), (1, 2), (3, 3), (4, 4), (5, 5)] {
            let cube = Hypercube::new(d);
            let loads: Vec<i64> = (0..cube.len())
                .map(|k| ((k as u64 * 2654435761 + seed) % 61) as i64)
                .collect();
            let central = dem(&cube, &loads);
            let (distributed, steps) = dem_distributed(&cube, &loads);
            assert_eq!(flows(&central), flows(&distributed), "d={d}");
            assert_eq!(
                central.apply(&loads),
                distributed.apply(&loads),
                "finals differ at d={d}"
            );
            assert!(steps <= d);
        }
    }

    #[test]
    fn point_load_spreads_exactly() {
        let cube = Hypercube::new(3);
        let mut loads = vec![0i64; 8];
        loads[0] = 80;
        let (plan, _) = dem_distributed(&cube, &loads);
        assert_eq!(plan.apply(&loads), vec![10; 8]);
    }
}
