//! The Tree Walking Algorithm (the paper's reference [25]).
//!
//! On a tree, removing any edge splits the machine in two, so the net
//! task flow across every edge is *forced*: it equals the subtree's
//! surplus over its quota. TWA therefore computes, in one up sweep and
//! one down sweep (`2·height` communication steps), the unique minimal
//! flow — which makes it optimal in `Σ eₖ`, the property the paper uses
//! when it says "for certain topologies, such as trees, the complexity
//! can be reduced to O(log n)".

use rips_topology::{BinaryTree, Topology};

use crate::plan::TransferPlan;

/// Runs TWA on `loads` over the heap-ordered binary tree, returning a
/// transfer plan landing exactly on the quotas.
///
/// # Panics
/// Panics if `loads.len() != tree.len()` or any load is negative.
pub fn twa(tree: &BinaryTree, loads: &[i64]) -> TransferPlan {
    let n = tree.len();
    assert_eq!(loads.len(), n, "one load per node required");
    assert!(loads.iter().all(|&w| w >= 0), "negative load");
    let total: i64 = loads.iter().sum();
    let quotas = rips_flow::quotas(total, n);

    // Up sweep: subtree surplus for every node (post-order = reverse
    // heap order works because children have larger indices).
    let mut surplus: Vec<i64> = loads.iter().zip(&quotas).map(|(&w, &q)| w - q).collect();
    for v in (1..n).rev() {
        let p = (v - 1) / 2;
        surplus[p] += surplus[v];
    }
    debug_assert_eq!(surplus[0], 0, "root surplus must vanish");

    // `surplus[v]` (for v != 0) is now the forced flow on the edge
    // (v → parent): positive = upward, negative = downward.
    //
    // Execution order: upward moves leaves-first (deep to shallow) so
    // transit nodes have received from below before sending up; then
    // downward moves root-first.
    let mut w = loads.to_vec();
    let mut plan = TransferPlan::default();
    for v in (1..n).rev() {
        if surplus[v] > 0 {
            let p = (v - 1) / 2;
            plan.push(v, p, surplus[v]);
            w[v] -= surplus[v];
            w[p] += surplus[v];
        }
    }
    for v in 1..n {
        if surplus[v] < 0 {
            let p = (v - 1) / 2;
            plan.push(p, v, -surplus[v]);
            w[p] += surplus[v];
            w[v] -= surplus[v];
        }
    }
    debug_assert_eq!(w, quotas, "TWA must land exactly on the quotas");
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::min_nonlocal_tasks;

    fn check(n: usize, loads: &[i64]) -> TransferPlan {
        let tree = BinaryTree::new(n);
        let plan = twa(&tree, loads);
        assert!(plan.is_link_local(&tree));
        let finals = plan.apply(loads);
        let total: i64 = loads.iter().sum();
        assert_eq!(finals, rips_flow::quotas(total, n));
        plan
    }

    #[test]
    fn three_node_tree() {
        // Root 0, children 1 and 2.
        let plan = check(3, &[0, 9, 0]);
        // Forced: edge(1->0) carries 6, edge(0->2) carries 3.
        assert_eq!(plan.edge_cost(), 9);
    }

    #[test]
    fn all_load_at_deep_leaf() {
        let plan = check(7, &[0, 0, 0, 14, 0, 0, 0]);
        // Quota 2 each. Node 3 keeps 2, sends 12 up to 1; node 1 keeps
        // 2, sends 2 to node 4 and 8 up to 0; node 0 keeps 2, sends 6
        // to node 2 which forwards 2+2 to its children.
        assert_eq!(plan.edge_cost(), 12 + 2 + 8 + 6 + 2 + 2);
    }

    #[test]
    fn twa_is_optimal_in_edge_cost() {
        // Compare against the MCMF optimum on several load patterns.
        for (n, loads) in [
            (7usize, vec![14, 0, 0, 0, 0, 0, 0]),
            (7, vec![0, 7, 0, 0, 7, 0, 0]),
            (12, vec![5, 0, 0, 0, 0, 0, 24, 0, 0, 0, 7, 0]),
            (5, vec![1, 2, 3, 4, 5]),
        ] {
            let tree = BinaryTree::new(n);
            let plan = twa(&tree, &loads);
            let opt = rips_flow::optimal_rebalance(&tree, &loads);
            assert_eq!(plan.edge_cost(), opt.cost, "n={n} loads={loads:?}");
        }
    }

    #[test]
    fn twa_maximizes_locality() {
        for (n, loads) in [
            (7usize, vec![14, 0, 0, 0, 0, 0, 0]),
            (12, vec![5, 0, 0, 0, 0, 0, 24, 0, 0, 0, 7, 0]),
        ] {
            let tree = BinaryTree::new(n);
            let plan = twa(&tree, &loads);
            assert_eq!(plan.nonlocal_tasks(&loads), min_nonlocal_tasks(&loads));
        }
    }

    #[test]
    fn balanced_is_noop() {
        let plan = check(7, &[3; 7]);
        assert!(plan.moves.is_empty());
    }

    #[test]
    fn single_node() {
        let plan = check(1, &[42]);
        assert!(plan.moves.is_empty());
    }
}
