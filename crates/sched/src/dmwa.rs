//! The Mesh Walking Algorithm as a *distributed SPMD program*.
//!
//! [`mwa`](crate::mwa) performs Figure 3's arithmetic centrally; this
//! module executes the same five steps as per-node state machines over
//! the lock-step [`rips_collectives::BspMachine`], where a node sees
//! only its own load and the messages of its four mesh neighbours:
//!
//! * rounds `0..n2−1` — step 1, the rightward row scan;
//! * then step 2's downward scan-with-sum in the last column, the
//!   upward `w_avg`/`R` broadcast along that column, and the leftward
//!   row spread of `(w_avg, R, t_i, t_{i−1})`;
//! * steps 3–4 — local quota computation and the vertical η/γ
//!   decomposition, each `Down`/`Up` message carrying its d/u prefix
//!   vector *with* the task count, as the figure specifies;
//! * step 5 — the horizontal z/v exchanges, pipelined along each row.
//!
//! The result provably coincides with the centralized implementation
//! (the integration tests compare per-link flows move for move) and
//! the measured communication-step count validates the paper's
//! `3(n1+n2)` bound.

// Indexed loops below mirror the paper's per-column vector algebra;
// iterator rewrites would obscure the correspondence.
#![allow(clippy::needless_range_loop)]
use rips_collectives::{BspMachine, BspProgram};
use rips_topology::{Mesh2D, NodeId, Topology};

use crate::plan::TransferPlan;

/// Values spread along each row in step 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SpreadVals {
    wavg: i64,
    rem: i64,
    t_i: i64,
    t_prev: i64,
}

#[derive(Debug, Clone)]
enum Msg {
    /// Step 1: prefix of `w` moving right along the row.
    Scan(Vec<i64>),
    /// Step 2: running total `t_{i-1}` moving down the last column.
    ColScan(i64),
    /// Step 2: `(w_avg, R)` moving up the last column from the corner.
    ColBcast(i64, i64),
    /// Step 2: row spread moving left.
    Spread(SpreadVals),
    /// Step 4: `d` prefix vector + tasks moving down (count =
    /// last entry of the prefix).
    Down(Vec<i64>),
    /// Step 4: `u` prefix vector + tasks moving up.
    Up(Vec<i64>),
    /// Step 5: tasks moving right / left within the row.
    RowRight(i64),
    RowLeft(i64),
}

struct Node {
    i: usize,
    j: usize,
    n1: usize,
    n2: usize,
    /// `w_{i,0..=j}`, kept current through the balancing steps.
    w: Vec<i64>,
    vals: Option<SpreadVals>,
    /// Step-2 plumbing (last column only).
    row_sum: Option<i64>,
    t_prev_in: Option<i64>,
    bcast: Option<(i64, i64)>,
    sent_col_scan: bool,
    sent_col_bcast: bool,
    sent_spread: bool,
    // Step 4 bookkeeping.
    got_down: bool,
    got_up: bool,
    sent_down: bool,
    sent_up: bool,
    // Step 5 bookkeeping.
    got_left: bool,
    got_right: bool,
    sent_row: bool,
    /// Task-carrying sends, stamped with the round they left in.
    moves: Vec<(usize, NodeId, NodeId, i64)>,
}

impl Node {
    fn id(&self, i: usize, j: usize) -> NodeId {
        i * self.n2 + j
    }

    fn me(&self) -> NodeId {
        self.id(self.i, self.j)
    }

    /// Quota of node `(i, k)` from the spread values (paper step 3).
    fn quota(&self, i: usize, k: usize) -> i64 {
        let v = self.vals.expect("quota before spread");
        v.wavg + i64::from(((i * self.n2 + k) as i64) < v.rem)
    }

    /// Row-accumulation quota `Q_i` (closed form, locally computable).
    fn q_row(&self, i: usize) -> i64 {
        let v = self.vals.expect("Q before spread");
        let upto = ((i + 1) * self.n2) as i64;
        v.wavg * upto + upto.min(v.rem)
    }

    /// `y_i = t_i − Q_i`: net flow from row `i` down to row `i+1`.
    fn y(&self) -> i64 {
        let v = self.vals.expect("y before spread");
        v.t_i - self.q_row(self.i)
    }

    /// `x_i = t_{i-1} − Q_{i-1}` (0 for the top row): positive ⇒ this
    /// row receives from above; negative ⇒ it sends up.
    fn x(&self) -> i64 {
        if self.i == 0 {
            return 0;
        }
        let v = self.vals.expect("x before spread");
        v.t_prev - self.q_row(self.i - 1)
    }

    /// Figure 3's η/γ greedy over this node's known prefix, producing
    /// the d (or u) prefix for `amount` tasks leaving the row.
    fn eta_gamma(&self, amount: i64) -> Vec<i64> {
        let mut out = vec![0i64; self.j + 1];
        let mut eta = amount;
        let mut gamma = 0i64;
        for k in 0..=self.j {
            let delta = self.w[k] - self.quota(self.i, k);
            let d = if delta > eta + gamma && eta + gamma > 0 {
                eta
            } else if eta + gamma >= delta && delta > gamma {
                delta - gamma
            } else {
                0
            };
            out[k] = d;
            gamma -= delta - d;
            eta -= d;
            if eta == 0 {
                break;
            }
        }
        out
    }

    /// True once every vertical exchange this node participates in has
    /// happened.
    fn step4_done(&self) -> bool {
        let y = self.y();
        let x = self.x();
        let down_in_ok = x <= 0 || self.got_down;
        let down_out_ok =
            y <= 0 || (self.i + 1 < self.n1 && self.sent_down) || self.i + 1 == self.n1;
        let up_in_ok = y >= 0 || self.got_up;
        let up_out_ok = x >= 0 || self.sent_up;
        down_in_ok && down_out_ok && up_in_ok && up_out_ok
    }

    /// Step-5 prefix surpluses from the current `w`.
    fn zv(&self) -> (i64, i64) {
        let mut z = 0;
        for k in 0..self.j {
            z += self.w[k] - self.quota(self.i, k);
        }
        let v = z + self.w[self.j] - self.quota(self.i, self.j);
        (z, v)
    }

    fn record(&mut self, round: usize, to: NodeId, count: i64) {
        if count > 0 {
            self.moves.push((round, self.me(), to, count));
        }
    }
}

impl BspProgram for Node {
    type Msg = Msg;

    fn round(
        &mut self,
        _me: NodeId,
        round: usize,
        inbox: Vec<(NodeId, Msg)>,
        outbox: &mut Vec<(NodeId, Msg)>,
    ) {
        let (i, j, n1, n2) = (self.i, self.j, self.n1, self.n2);
        // ---- ingest -------------------------------------------------
        for (_, msg) in inbox {
            match msg {
                Msg::Scan(mut prefix) => {
                    // Before the scan reaches us, `w` holds only our
                    // own load (as its sole element).
                    let own = *self.w.last().expect("own load present");
                    prefix.push(own);
                    debug_assert_eq!(prefix.len(), j + 1);
                    self.w = prefix;
                    if j + 1 < n2 {
                        outbox.push((self.id(i, j + 1), Msg::Scan(self.w.clone())));
                    }
                }
                Msg::ColScan(t_prev) => {
                    self.t_prev_in = Some(t_prev);
                }
                Msg::ColBcast(wavg, rem) => {
                    self.bcast = Some((wavg, rem));
                }
                Msg::Spread(vals) => {
                    self.vals = Some(vals);
                    if j > 0 && !self.sent_spread {
                        self.sent_spread = true;
                        outbox.push((self.id(i, j - 1), Msg::Spread(vals)));
                    }
                }
                Msg::Down(d_prefix) => {
                    debug_assert!(d_prefix.len() > j);
                    for k in 0..=j {
                        self.w[k] += d_prefix[k];
                    }
                    self.got_down = true;
                }
                Msg::Up(u_prefix) => {
                    debug_assert!(u_prefix.len() > j);
                    for k in 0..=j {
                        self.w[k] += u_prefix[k];
                    }
                    self.got_up = true;
                }
                Msg::RowRight(_count) => {
                    // Step-5 traffic is intentionally NOT applied to
                    // `w`: z/v are defined on the post-step-4 loads,
                    // and z_j of the receiver equals v_{j-1} of the
                    // sender by construction.
                    self.got_left = true;
                }
                Msg::RowLeft(_count) => {
                    self.got_right = true;
                }
            }
        }

        // ---- step 1 bootstrap ---------------------------------------
        if round == 0 && j == 0 && n2 > 1 {
            outbox.push((self.id(i, 1), Msg::Scan(self.w.clone())));
        }

        // ---- step 2: last-column plumbing ----------------------------
        if j + 1 == n2 && self.w.len() == n2 && self.row_sum.is_none() {
            // Full prefix present (immediately when n2 == 1).
            self.row_sum = Some(self.w.iter().sum());
            if i == 0 {
                self.t_prev_in = Some(0);
            }
        }
        if j + 1 == n2 && !self.sent_col_scan {
            if let (Some(s), Some(t_prev)) = (self.row_sum, self.t_prev_in) {
                self.sent_col_scan = true;
                let t_i = t_prev + s;
                if i + 1 < n1 {
                    outbox.push((self.id(i + 1, j), Msg::ColScan(t_i)));
                } else {
                    // Corner: the total is known; start the broadcast.
                    let total = t_i;
                    let n = (n1 * n2) as i64;
                    self.bcast = Some((total / n, total % n));
                }
            }
        }
        if j + 1 == n2 && !self.sent_col_bcast {
            if let (Some((wavg, rem)), Some(s), Some(t_prev)) =
                (self.bcast, self.row_sum, self.t_prev_in)
            {
                self.sent_col_bcast = true;
                if i > 0 {
                    outbox.push((self.id(i - 1, j), Msg::ColBcast(wavg, rem)));
                }
                let vals = SpreadVals {
                    wavg,
                    rem,
                    t_i: t_prev + s,
                    t_prev,
                };
                self.vals = Some(vals);
                if j > 0 {
                    self.sent_spread = true;
                    outbox.push((self.id(i, j - 1), Msg::Spread(vals)));
                }
            }
        }

        // ---- step 4: vertical balance --------------------------------
        if self.vals.is_some() {
            let y = self.y();
            let x = self.x();
            // Send down once any inflow from above has arrived.
            if y > 0 && i + 1 < n1 && !self.sent_down && (x <= 0 || self.got_down) {
                let d = self.eta_gamma(y);
                for k in 0..=j {
                    self.w[k] -= d[k];
                }
                self.record(round, self.id(i + 1, j), d[j]);
                self.sent_down = true;
                outbox.push((self.id(i + 1, j), Msg::Down(d)));
            }
            // Send up once the down-send is out of the way and any
            // inflow from below has arrived.
            if x < 0
                && !self.sent_up
                && (y <= 0 || self.sent_down || i + 1 == n1)
                && (y >= 0 || self.got_up)
            {
                let u = self.eta_gamma(-x);
                for k in 0..=j {
                    self.w[k] -= u[k];
                }
                self.record(round, self.id(i - 1, j), u[j]);
                self.sent_up = true;
                outbox.push((self.id(i - 1, j), Msg::Up(u)));
            }

            // ---- step 5: horizontal balance, once step 4 settled -----
            if self.step4_done() && !self.sent_row {
                // z and v are computed from the *final* vertical state,
                // which never changes again; but task conservation
                // requires waiting for row inflows before overdrawing.
                let (z, v) = self.zv();
                let left_ok = z <= 0 || self.got_left;
                let right_ok = v >= 0 || self.got_right;
                if left_ok && right_ok {
                    self.sent_row = true;
                    if v > 0 {
                        self.record(round, self.id(i, j + 1), v);
                        outbox.push((self.id(i, j + 1), Msg::RowRight(v)));
                    }
                    if z < 0 {
                        self.record(round, self.id(i, j - 1), -z);
                        outbox.push((self.id(i, j - 1), Msg::RowLeft(-z)));
                    }
                }
            }
        }
    }
}

/// Runs MWA as a distributed SPMD program over a lock-step mesh.
/// Returns the transfer plan (identical flows to [`crate::mwa`]) and
/// the measured number of communication steps, which respects the
/// paper's `3(n1+n2)` bound.
///
/// # Panics
/// Panics if `loads.len() != mesh.len()`, any load is negative, or the
/// protocol fails to land every node exactly on its quota (a bug, not
/// an input condition).
pub fn mwa_distributed(mesh: &Mesh2D, loads: &[i64]) -> (TransferPlan, usize) {
    let (n1, n2) = (mesh.rows(), mesh.cols());
    assert_eq!(loads.len(), mesh.len(), "one load per node required");
    assert!(loads.iter().all(|&w| w >= 0), "negative load");

    let machine = BspMachine::new(mesh, |id| Node {
        i: id / n2,
        j: id % n2,
        n1,
        n2,
        w: vec![loads[id]],
        vals: None,
        row_sum: None,
        t_prev_in: None,
        bcast: None,
        sent_col_scan: false,
        sent_col_bcast: false,
        sent_spread: false,
        got_down: false,
        got_up: false,
        sent_down: false,
        sent_up: false,
        got_left: false,
        got_right: false,
        sent_row: false,
        moves: Vec::new(),
    });
    let (nodes, outcome) = machine.run(8 * (n1 + n2) + 8);

    // Assemble the plan in send order (BSP rounds give a transit-safe
    // sequence).
    let mut stamped: Vec<(usize, NodeId, NodeId, i64)> =
        nodes.iter().flat_map(|n| n.moves.iter().copied()).collect();
    stamped.sort_by_key(|&(round, from, to, _)| (round, from, to));
    let mut plan = TransferPlan::default();
    for (_, from, to, count) in stamped {
        plan.push(from, to, count);
    }

    // Postconditions: exact quotas everywhere, within the step bound.
    let total: i64 = loads.iter().sum();
    let quotas = rips_flow::quotas(total, mesh.len());
    let finals = plan.apply(loads);
    assert_eq!(finals, quotas, "distributed MWA missed its quotas");
    assert!(
        outcome.comm_steps <= 3 * (n1 + n2),
        "used {} steps, bound is {}",
        outcome.comm_steps,
        3 * (n1 + n2)
    );
    (plan, outcome.comm_steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mwa;
    use std::collections::BTreeMap;

    /// Aggregates a plan into per-directed-link flows.
    fn link_flows(plan: &TransferPlan) -> BTreeMap<(NodeId, NodeId), i64> {
        let mut m = BTreeMap::new();
        for mv in &plan.moves {
            *m.entry((mv.from, mv.to)).or_insert(0) += mv.count;
        }
        m
    }

    fn check_agreement(mesh: &Mesh2D, loads: &[i64]) {
        let (central, _) = mwa(mesh, loads);
        let (distributed, steps) = mwa_distributed(mesh, loads);
        assert_eq!(
            link_flows(&central),
            link_flows(&distributed),
            "flow mismatch on {loads:?}"
        );
        assert!(steps <= 3 * (mesh.rows() + mesh.cols()));
    }

    #[test]
    fn agrees_on_small_meshes() {
        check_agreement(&Mesh2D::new(2, 2), &[12, 0, 0, 0]);
        check_agreement(&Mesh2D::new(1, 4), &[8, 0, 0, 0]);
        check_agreement(&Mesh2D::new(4, 1), &[0, 0, 0, 8]);
        check_agreement(&Mesh2D::new(3, 2), &[0, 0, 9, 9, 0, 0]);
    }

    #[test]
    fn agrees_on_paper_mesh() {
        let mesh = Mesh2D::new(8, 4);
        let loads: Vec<i64> = (0..32).map(|k| (k * 37 % 23) as i64).collect();
        check_agreement(&mesh, &loads);
    }

    #[test]
    fn agrees_with_remainder() {
        check_agreement(&Mesh2D::new(2, 2), &[7, 0, 0, 0]);
        check_agreement(&Mesh2D::new(3, 3), &[10, 3, 0, 0, 5, 0, 0, 0, 2]);
    }

    #[test]
    fn single_node() {
        let (plan, steps) = mwa_distributed(&Mesh2D::new(1, 1), &[9]);
        assert!(plan.moves.is_empty());
        assert_eq!(steps, 0);
    }

    #[test]
    fn step_count_on_large_mesh() {
        let mesh = Mesh2D::new(16, 16);
        let loads: Vec<i64> = (0..256).map(|k| ((k * k) % 61) as i64).collect();
        let (_, steps) = mwa_distributed(&mesh, &loads);
        assert!(steps <= 3 * 32, "steps = {steps}");
        // And the machine cannot be *trivially* fast either: the scan
        // alone needs n2 - 1 rounds.
        assert!(steps >= 15);
    }

    #[test]
    fn balanced_input_is_silent_after_the_scans() {
        let mesh = Mesh2D::new(4, 4);
        let (plan, _) = mwa_distributed(&mesh, &[5; 16]);
        assert!(plan.moves.is_empty());
    }
}
