//! Parallel scheduling algorithms (the paper's §3).
//!
//! A *parallel scheduling algorithm* takes the per-node task counts
//! `w` and produces a [`TransferPlan`]: an ordered list of
//! neighbour-to-neighbour task movements after which every node holds
//! its quota (`⌊T/N⌋`, the first `T mod N` nodes one more). All
//! processors execute it cooperatively in a bounded number of
//! communication steps.
//!
//! Implemented algorithms:
//!
//! * [`mwa`] — the **Mesh Walking Algorithm** of Figure 3, the paper's
//!   contribution: 5 steps, `3(n1+n2)` communication steps, per-node
//!   final loads within one task of each other (Theorem 1), the
//!   minimum possible number of non-local tasks (Theorem 2), and
//!   optimal `Σ eₖ` on ≤ 4 processors (Lemma 2).
//! * [`tiled_mwa`] — **hierarchical MWA** for very large meshes:
//!   cross-tile exchange over `⌈n^(1/4)⌉`-sided tiles plus the
//!   unmodified walk inside each tile; same final loads as [`mwa`]
//!   (Theorem 1 exactly) in `O(n^(1/4))` instead of `O(√n)` steps,
//!   trading away Theorem 2's migration-minimality equality.
//! * [`twa`] — the **Tree Walking Algorithm** (reference \[25\]): on a
//!   tree every edge's net flow is forced, so the plan is optimal in
//!   `Σ eₖ`; `2·height` communication steps.
//! * [`dem`] — the **Dimension Exchange Method** (Cybenko; the related
//!   work the paper positions against): pairwise averaging across each
//!   hypercube dimension; `d` steps but redundant communication and a
//!   final imbalance of up to `d` tasks with integer loads.

#![forbid(unsafe_code)]

mod ddem;
mod dem;
mod dmwa;
mod dtwa;
mod mwa;
mod plan;
mod tiled;
mod twa;

pub use ddem::dem_distributed;
pub use dem::dem;
pub use dmwa::mwa_distributed;
pub use dtwa::twa_distributed;
pub use mwa::{mwa, MwaTrace};
pub use plan::{min_nonlocal_tasks, quota_vector, Move, TransferPlan};
pub use tiled::{tiled_mwa, TileGrid, TiledTrace};
pub use twa::twa;
