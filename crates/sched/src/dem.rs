//! The Dimension Exchange Method (Cybenko 1989), the related-work
//! parallel scheduler the paper contrasts MWA with (§4): pairwise load
//! averaging across each hypercube dimension in turn.
//!
//! With integer task counts each exchange rounds, so the final spread
//! can be as large as the number of dimensions — unlike MWA's ≤ 1 —
//! and tasks may ricochet across several links ("the DEM scheduling
//! algorithm generates redundant communications").

use rips_topology::{Hypercube, Topology};

use crate::plan::TransferPlan;

/// Runs DEM on `loads` over a hypercube, returning the transfer plan.
/// The plan balances to within `dim` tasks (not to quota) — that is
/// inherent to the method and part of what Table/Figure comparisons
/// show.
///
/// # Panics
/// Panics if `loads.len() != cube.len()` or any load is negative.
pub fn dem(cube: &Hypercube, loads: &[i64]) -> TransferPlan {
    let n = cube.len();
    assert_eq!(loads.len(), n, "one load per node required");
    assert!(loads.iter().all(|&w| w >= 0), "negative load");

    let mut w = loads.to_vec();
    let mut plan = TransferPlan::default();
    for k in 0..cube.dim() {
        for a in 0..n {
            let b = cube.across(a, k);
            if a < b {
                // Pairwise averaging: the heavier node sends half the
                // difference (rounded down) to the lighter one.
                let diff = w[a] - w[b];
                if diff >= 2 {
                    let send = diff / 2;
                    plan.push(a, b, send);
                    w[a] -= send;
                    w[b] += send;
                } else if diff <= -2 {
                    let send = (-diff) / 2;
                    plan.push(b, a, send);
                    w[b] -= send;
                    w[a] += send;
                }
            }
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spread(w: &[i64]) -> i64 {
        w.iter().max().unwrap() - w.iter().min().unwrap()
    }

    #[test]
    fn exact_when_powers_align() {
        let cube = Hypercube::new(3);
        let loads = vec![80, 0, 0, 0, 0, 0, 0, 0];
        let plan = dem(&cube, &loads);
        let finals = plan.apply(&loads);
        assert_eq!(finals, vec![10; 8]);
        assert!(plan.is_link_local(&cube));
    }

    #[test]
    fn integer_rounding_leaves_bounded_spread() {
        let cube = Hypercube::new(4);
        let loads: Vec<i64> = (0..16).map(|k| (k * k * 7 % 31) as i64).collect();
        let plan = dem(&cube, &loads);
        let finals = plan.apply(&loads);
        assert!(spread(&finals) <= 4, "spread {} > dim", spread(&finals));
        // Conservation.
        assert_eq!(finals.iter().sum::<i64>(), loads.iter().sum::<i64>());
    }

    #[test]
    fn dem_costs_more_than_optimal_sometimes() {
        // DEM's redundant communication: compare Σe_k against MCMF.
        let cube = Hypercube::new(3);
        let loads = vec![0, 16, 0, 0, 0, 0, 0, 0];
        let plan = dem(&cube, &loads);
        let opt = rips_flow::optimal_rebalance(&cube, &loads);
        assert!(plan.edge_cost() >= opt.cost, "DEM cannot beat the optimum");
    }

    #[test]
    fn single_node_cube() {
        let cube = Hypercube::new(0);
        let plan = dem(&cube, &[9]);
        assert!(plan.moves.is_empty());
    }

    #[test]
    fn pair_exchange() {
        let cube = Hypercube::new(1);
        let plan = dem(&cube, &[10, 2]);
        assert_eq!(plan.apply(&[10, 2]), vec![6, 6]);
        assert_eq!(plan.edge_cost(), 4);
    }
}
