//! Hierarchical (tiled) MWA: the full-mesh walk split into two levels
//! so a single scheduling phase stays tractable at 10⁵–10⁶ nodes.
//!
//! The flat [`mwa`](crate::mwa) needs `3(n1+n2) ≈ 6√n` communication
//! steps — 6 000 steps on a 1024×1024 machine, against the paper's 36
//! on the 8×4 Paragon partition. The tiled variant keeps the paper's
//! algorithm but applies it at two scales:
//!
//! 1. **Cross-tile exchange** — the mesh is partitioned into `s × s`
//!    tiles with `s = ⌈n^(1/4)⌉` (so the tile grid and the tiles have
//!    comparable side). Tile surpluses against the canonical quotas
//!    are matched greedily, surplus tile → deficit tile in row-major
//!    order, and settled by *direct* node-level transfers from
//!    above-quota donors to below-quota receivers. After this stage
//!    every tile holds exactly its quota total.
//! 2. **Within-tile MWA** — each tile is a small mesh in its own
//!    right; the unmodified Figure-3 walk runs on it with link-local
//!    moves.
//!
//! Both levels are `O(n^(1/4))` walks, so a phase costs
//! `O(n^(1/4))` communication steps instead of `O(√n)`.
//!
//! **Why the result is still exactly Theorem 1.** Tiles are contiguous
//! rectangles, so a tile's members sorted by local row-major position
//! are sorted by global id, and the members with global id below the
//! remainder cut `R` form a prefix of that order. Hence the canonical
//! quota vector of the tile's own sub-problem equals the global quota
//! vector restricted to the tile, and the within-tile walk lands every
//! node on its *global* canonical quota: final loads are identical to
//! the flat MWA's, spread ≤ 1 globally ([`TransferPlan::balances`]
//! holds).
//!
//! **What is traded away is Theorem 2's equality.** The cross-tile
//! stage moves whole-tile imbalances point-to-point; a node can both
//! import cross-tile tasks and export within its tile, so the migrated
//! total may exceed the Lemma-1 lower bound `Σ(q_j − w_j)⁺` (it can
//! never be below it — that direction is a feasibility bound for *any*
//! balancing plan). The `rips-audit` Auditor therefore audits tiled
//! runs with the per-tile generalisation: spread ≤ 1 inside every
//! tile, each tile's post-schedule total equal to its quota total, and
//! the Lemma-1 bound as an inequality.

use rips_topology::{Mesh2D, NodeId, Topology};

use crate::mwa::mwa;
use crate::plan::TransferPlan;

/// The two-level decomposition of a mesh: `s × s` tiles in row-major
/// tile order, with `s` the smallest integer whose fourth power covers
/// the machine (`s⁴ ≥ n`), so tile count and tile size stay balanced.
/// Edge tiles are clipped when `s` does not divide the mesh sides.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileGrid {
    rows: usize,
    cols: usize,
    side: usize,
    tile_rows: usize,
    tile_cols: usize,
}

impl TileGrid {
    /// The tiling of `mesh`.
    pub fn new(mesh: &Mesh2D) -> Self {
        let (rows, cols) = (mesh.rows(), mesh.cols());
        let n = (rows as u128) * (cols as u128);
        let mut side = 1usize;
        while (side as u128).pow(4) < n {
            side += 1;
        }
        TileGrid {
            rows,
            cols,
            side,
            tile_rows: rows.div_ceil(side),
            tile_cols: cols.div_ceil(side),
        }
    }

    /// Tile side `s = ⌈n^(1/4)⌉`.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Tile-grid rows.
    pub fn tile_rows(&self) -> usize {
        self.tile_rows
    }

    /// Tile-grid columns.
    pub fn tile_cols(&self) -> usize {
        self.tile_cols
    }

    /// Number of tiles.
    pub fn tiles(&self) -> usize {
        self.tile_rows * self.tile_cols
    }

    /// The tile (row-major tile index) containing `node`.
    pub fn tile_of(&self, node: NodeId) -> usize {
        let (i, j) = (node / self.cols, node % self.cols);
        (i / self.side) * self.tile_cols + j / self.side
    }

    /// Per-node tile index — the shape external checkers (the
    /// `rips-audit` Auditor) consume.
    pub fn assignment(&self) -> Vec<usize> {
        (0..self.rows * self.cols)
            .map(|k| self.tile_of(k))
            .collect()
    }

    /// Rows and columns of `tile` (edge tiles may be clipped).
    pub fn tile_dims(&self, tile: usize) -> (usize, usize) {
        let (ti, tj) = (tile / self.tile_cols, tile % self.tile_cols);
        let tr = self.side.min(self.rows - ti * self.side);
        let tc = self.side.min(self.cols - tj * self.side);
        (tr, tc)
    }

    /// Communication-step bound for one hierarchical phase: the
    /// Figure-3 bound `3(n1+n2)` applied to the tile grid (cross-tile
    /// exchange) plus to one tile (within-tile walk). Both factors are
    /// `O(n^(1/4))` where the flat walk is `O(√n)`.
    pub fn hier_steps(&self) -> usize {
        3 * (self.tile_rows + self.tile_cols) + 3 * (self.side + self.side)
    }
}

/// Intermediate tiled-MWA state, exposed for tests, diagnostics, and
/// the Auditor wiring.
#[derive(Debug, Clone)]
pub struct TiledTrace {
    /// The decomposition used.
    pub grid: TileGrid,
    /// Global canonical quotas (identical to the flat MWA's).
    pub quotas: Vec<i64>,
    /// Tasks moved point-to-point by the cross-tile exchange.
    pub cross_tasks: i64,
    /// Cross-tile (donor node, receiver node) transfers emitted.
    pub cross_moves: usize,
}

/// Runs hierarchical MWA on `loads` (row-major over `mesh`), returning
/// the transfer plan and the trace.
///
/// The plan lands every node on the same canonical quota vector as the
/// flat [`mwa`](crate::mwa) — `plan.balances(loads)` holds — but its
/// cross-tile moves are point-to-point rather than link-local, and the
/// migrated total is only bounded below (not pinned) by Lemma 1; see
/// the module docs.
///
/// ```
/// use rips_sched::{tiled_mwa, quota_vector};
/// use rips_topology::Mesh2D;
///
/// let mesh = Mesh2D::new(8, 8);
/// let loads: Vec<i64> = (0..64).map(|k| (k * 13 % 7) as i64).collect();
/// let (plan, trace) = tiled_mwa(&mesh, &loads);
/// assert_eq!(plan.apply(&loads), quota_vector(&loads)); // Theorem 1
/// assert_eq!(trace.quotas, quota_vector(&loads));
/// ```
///
/// # Panics
/// Panics if `loads.len() != mesh.len()` or any load is negative.
pub fn tiled_mwa(mesh: &Mesh2D, loads: &[i64]) -> (TransferPlan, TiledTrace) {
    let n = mesh.len();
    assert_eq!(loads.len(), n, "one load per node required");
    assert!(loads.iter().all(|&w| w >= 0), "negative load");

    let grid = TileGrid::new(mesh);
    let tiles = grid.tiles();

    let total: i64 = loads.iter().sum();
    let wavg = total / n as i64;
    let r = total % n as i64;
    let quotas: Vec<i64> = (0..n).map(|k| wavg + i64::from((k as i64) < r)).collect();

    // Tile membership in global-id order (== local row-major order,
    // since tiles are contiguous rectangles) and tile surpluses.
    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); tiles];
    let mut surplus = vec![0i64; tiles];
    for k in 0..n {
        let t = grid.tile_of(k);
        members[t].push(k);
        surplus[t] += loads[k] - quotas[k];
    }

    let mut w = loads.to_vec();
    let mut plan = TransferPlan::default();
    let mut cross_tasks = 0i64;
    let mut cross_moves = 0usize;

    // Stage 1: cross-tile exchange. Greedy two-pointer matching of
    // surplus tiles to deficit tiles in row-major tile order, settled
    // by direct donor→receiver node transfers: donors only give their
    // above-quota excess, receivers only fill up to quota, so the
    // stage can neither overdraw a node nor overshoot a quota.
    let mut donor_cursor = vec![0usize; tiles];
    let mut recv_cursor = vec![0usize; tiles];
    let mut d = 0usize; // next surplus tile
    let mut rcv = 0usize; // next deficit tile
    loop {
        while d < tiles && surplus[d] <= 0 {
            d += 1;
        }
        while rcv < tiles && surplus[rcv] >= 0 {
            rcv += 1;
        }
        if d >= tiles || rcv >= tiles {
            break;
        }
        let mut amount = surplus[d].min(-surplus[rcv]);
        surplus[d] -= amount;
        surplus[rcv] += amount;
        cross_tasks += amount;
        while amount > 0 {
            // Advance to the next donor with excess / receiver with
            // a deficit; both must exist while `amount > 0` because
            // tile surplus is exactly the sum of node excesses minus
            // deficits.
            while w[members[d][donor_cursor[d]]] <= quotas[members[d][donor_cursor[d]]] {
                donor_cursor[d] += 1;
            }
            while w[members[rcv][recv_cursor[rcv]]] >= quotas[members[rcv][recv_cursor[rcv]]] {
                recv_cursor[rcv] += 1;
            }
            let from = members[d][donor_cursor[d]];
            let to = members[rcv][recv_cursor[rcv]];
            let count = amount.min(w[from] - quotas[from]).min(quotas[to] - w[to]);
            plan.push(from, to, count);
            w[from] -= count;
            w[to] += count;
            amount -= count;
            cross_moves += 1;
        }
    }

    // Stage 2: within-tile MWA. Each tile now holds exactly its quota
    // total, and the sub-problem's canonical quotas coincide with the
    // global ones (contiguous-rectangle prefix property, see module
    // docs), so the Figure-3 walk lands every member on its global
    // quota with link-local moves only.
    let mut local = Vec::new();
    for (t, mem) in members.iter().enumerate() {
        let (tr, tc) = grid.tile_dims(t);
        debug_assert_eq!(mem.len(), tr * tc);
        local.clear();
        local.extend(mem.iter().map(|&k| w[k]));
        let sub = Mesh2D::new(tr, tc);
        let (sub_plan, _) = mwa(&sub, &local);
        for m in &sub_plan.moves {
            plan.push(mem[m.from], mem[m.to], m.count);
            w[mem[m.from]] -= m.count;
            w[mem[m.to]] += m.count;
        }
    }

    debug_assert_eq!(w, quotas, "tiled MWA must land exactly on the quotas");
    (
        plan,
        TiledTrace {
            grid,
            quotas,
            cross_tasks,
            cross_moves,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{min_nonlocal_tasks, quota_vector};

    /// SplitMix64, for deterministic load generation without deps.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn check(mesh: &Mesh2D, loads: &[i64]) -> (TransferPlan, TiledTrace) {
        let (plan, trace) = tiled_mwa(mesh, loads);
        let finals = plan.apply(loads);
        // Theorem 1 survives tiling exactly: the plan lands on the
        // same canonical quotas as the flat walk.
        assert_eq!(finals, quota_vector(loads), "did not land on quotas");
        assert!(plan.balances(loads));
        // Lemma 1 stays a valid lower bound (equality is not claimed).
        assert!(
            plan.nonlocal_tasks(loads) >= min_nonlocal_tasks(loads),
            "below the feasibility bound on {loads:?}"
        );
        // Moves are either within one tile (and then link-local) or
        // cross-tile donor→receiver transfers.
        for m in &plan.moves {
            if trace.grid.tile_of(m.from) == trace.grid.tile_of(m.to) {
                assert_eq!(mesh.distance(m.from, m.to), 1, "non-local in-tile move");
            }
        }
        (plan, trace)
    }

    fn random_loads(n: usize, max: u64, seed: u64) -> Vec<i64> {
        let mut s = seed;
        (0..n)
            .map(|_| (splitmix(&mut s) % (max + 1)) as i64)
            .collect()
    }

    #[test]
    fn side_is_fourth_root() {
        assert_eq!(TileGrid::new(&Mesh2D::new(1, 1)).side(), 1);
        assert_eq!(TileGrid::new(&Mesh2D::new(4, 4)).side(), 2);
        // 1024×1024 = 2^20 nodes: 32⁴ = 2^20 exactly.
        let g = TileGrid::new(&Mesh2D::new(1024, 1024));
        assert_eq!(g.side(), 32);
        assert_eq!(g.tiles(), 1024);
        // Two O(n^(1/4)) walks, against 3·2048 = 6144 for the flat one.
        assert_eq!(g.hier_steps(), 3 * 64 + 6 * 32);
    }

    #[test]
    fn assignment_partitions_contiguous_rectangles() {
        let mesh = Mesh2D::new(5, 7);
        let g = TileGrid::new(&mesh);
        let a = g.assignment();
        assert_eq!(a.len(), 35);
        // Every tile's members are sorted by global id, and per-tile
        // sizes match the clipped dims.
        let mut sizes = vec![0usize; g.tiles()];
        for &t in &a {
            sizes[t] += 1;
        }
        for (t, &sz) in sizes.iter().enumerate() {
            let (tr, tc) = g.tile_dims(t);
            assert_eq!(sz, tr * tc, "tile {t}");
        }
    }

    #[test]
    fn balanced_input_is_noop() {
        let mesh = Mesh2D::new(6, 6);
        let (plan, _) = check(&mesh, &vec![4; 36]);
        assert!(plan.moves.is_empty());
    }

    #[test]
    fn degenerate_meshes() {
        check(&Mesh2D::new(1, 1), &[7]);
        check(&Mesh2D::new(1, 9), &[18, 0, 0, 0, 0, 0, 0, 0, 0]);
        check(&Mesh2D::new(9, 1), &[0, 0, 0, 0, 18, 0, 0, 0, 0]);
    }

    #[test]
    fn hot_corner_crosses_tiles() {
        let mesh = Mesh2D::new(8, 8);
        let mut loads = vec![0i64; 64];
        loads[0] = 640;
        let (_, trace) = check(&mesh, &loads);
        // All of the other tiles' quotas must arrive from tile 0.
        assert!(trace.cross_tasks > 0);
    }

    #[test]
    fn remainder_prefix_property_holds_across_tiles() {
        // total = 101 over 36 nodes: wavg 2, remainder 29 — the cut
        // falls inside several tiles, exercising the prefix argument.
        let mesh = Mesh2D::new(6, 6);
        let mut loads = vec![0i64; 36];
        loads[35] = 101;
        let (plan, trace) = check(&mesh, &loads);
        assert_eq!(trace.quotas[..29], vec![3i64; 29][..]);
        assert_eq!(trace.quotas[29..], vec![2i64; 7][..]);
        assert_eq!(plan.apply(&loads), trace.quotas);
    }

    #[test]
    fn random_meshes_land_on_quotas() {
        for (rows, cols, seed) in [
            (3, 5, 1u64),
            (8, 4, 2),
            (10, 10, 3),
            (17, 13, 4),
            (32, 32, 5),
        ] {
            let mesh = Mesh2D::new(rows, cols);
            let loads = random_loads(rows * cols, 40, seed);
            check(&mesh, &loads);
        }
    }

    #[test]
    fn agrees_with_flat_mwa_finals() {
        // Same final distribution as the flat walk on every input —
        // the tiling changes the route, never the result.
        let mesh = Mesh2D::new(12, 9);
        let loads = random_loads(108, 25, 0xFEED);
        let (tiled, _) = tiled_mwa(&mesh, &loads);
        let (flat, _) = mwa(&mesh, &loads);
        assert_eq!(tiled.apply(&loads), flat.apply(&loads));
    }

    #[test]
    fn hundred_thousand_nodes() {
        // 320×320 = 102 400 nodes, skewed load: the flat walk would
        // need 1 920 steps; the tiled one 3·(18+18) + 6·18 = 216.
        let mesh = Mesh2D::new(320, 320);
        let n = mesh.len();
        let mut loads = random_loads(n, 4, 0xBEEF);
        loads[0] += 50_000;
        loads[n / 2] += 30_000;
        let (plan, trace) = tiled_mwa(&mesh, &loads);
        assert_eq!(plan.apply(&loads), quota_vector(&loads));
        assert_eq!(trace.grid.side(), 18);
        assert!(trace.grid.hier_steps() < 6 * 320 / 2);
    }
}
