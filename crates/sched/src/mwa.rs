//! The Mesh Walking Algorithm (paper Figure 3), implemented faithfully
//! step by step.
//!
//! Step 1 — scan the partial load vector `w` along each row.
//! Step 2 — row sums `s_i`, scan-with-sum `t_i` down the last column,
//!          total `T`, `w_avg = ⌊T/N⌋`, remainder `R`; broadcast and
//!          spread.
//! Step 3 — per-node quota `q_{i,j}` (first `R` nodes in row-major
//!          order get one extra) and row-accumulation quota `Q_i`.
//! Step 4 — vertical balance: `y_i = t_i − Q_i` flows from row `i` to
//!          row `i+1` (negative ⇒ upward), decomposed per column by the
//!          η/γ greedy so that only above-quota excess moves.
//! Step 5 — horizontal balance inside each row via the prefix-surplus
//!          `z`/`v` vectors (forced, hence optimal, 1-D flows).
//!
//! The centralized implementation below performs the same arithmetic
//! each SPMD node would; the BSP realisations of steps 1–2 live in
//! `rips-collectives` and agree with this code (see integration tests).

// Indexed loops below mirror the paper's per-column vector algebra;
// iterator rewrites would obscure the correspondence.
#![allow(clippy::needless_range_loop)]
use rips_topology::{Mesh2D, Topology};

use crate::plan::TransferPlan;

/// Intermediate MWA state, exposed for tests, diagnostics, and the
/// paper-fidelity checks.
#[derive(Debug, Clone)]
pub struct MwaTrace {
    /// `⌊T/N⌋`.
    pub wavg: i64,
    /// `T mod N`.
    pub remainder: i64,
    /// Per-node quotas `q` (row-major).
    pub quotas: Vec<i64>,
    /// `t_i`: cumulative load of rows `0..=i` before balancing.
    pub t: Vec<i64>,
    /// `y_i = t_i − Q_i`: net downward flow out of row `i`.
    pub y: Vec<i64>,
}

/// Runs MWA on `loads` (row-major over `mesh`), returning the transfer
/// plan and the trace.
///
/// ```
/// use rips_sched::mwa;
/// use rips_topology::Mesh2D;
///
/// let mesh = Mesh2D::new(2, 2);
/// let loads = vec![10, 2, 0, 0];
/// let (plan, trace) = mwa(&mesh, &loads);
/// assert_eq!(plan.apply(&loads), trace.quotas);       // Theorem 1
/// assert_eq!(plan.nonlocal_tasks(&loads),
///            rips_sched::min_nonlocal_tasks(&loads)); // Theorem 2
/// ```
///
/// # Panics
/// Panics if `loads.len() != mesh.len()` or any load is negative.
pub fn mwa(mesh: &Mesh2D, loads: &[i64]) -> (TransferPlan, MwaTrace) {
    let (n1, n2) = (mesh.rows(), mesh.cols());
    let n = mesh.len();
    assert_eq!(loads.len(), n, "one load per node required");
    assert!(loads.iter().all(|&w| w >= 0), "negative load");

    let mut w = loads.to_vec();
    let id = |i: usize, j: usize| i * n2 + j;

    // Steps 1-2: row sums, running totals, global average + remainder.
    let s: Vec<i64> = (0..n1)
        .map(|i| (0..n2).map(|j| w[id(i, j)]).sum())
        .collect();
    let mut t = vec![0i64; n1];
    let mut acc = 0;
    for i in 0..n1 {
        acc += s[i];
        t[i] = acc;
    }
    let total = t[n1 - 1];
    let wavg = total / n as i64;
    let r = total % n as i64;

    // Step 3: quotas.
    let quotas: Vec<i64> = (0..n).map(|k| wavg + i64::from((k as i64) < r)).collect();
    // Row accumulation quota Q_i = Σ quotas of rows 0..=i.
    let q_row: Vec<i64> = (0..n1)
        .map(|i| {
            let upto = ((i + 1) * n2) as i64;
            wavg * upto + upto.min(r)
        })
        .collect();

    // y_i: net flow from row i down to row i+1 (t_i − Q_i).
    let y: Vec<i64> = (0..n1).map(|i| t[i] - q_row[i]).collect();

    let mut plan = TransferPlan::default();

    // Step 4a: downward flows, top to bottom, so transit rows have
    // received from above before they send below.
    for i in 0..n1.saturating_sub(1) {
        if y[i] > 0 {
            distribute_vertical(&mut w, &mut plan, &quotas, n2, i, i + 1, y[i]);
        }
    }
    // Step 4b: upward flows, bottom to top.
    for i in (1..n1).rev() {
        // x_i = t_{i-1} − Q_{i-1} = y_{i-1}; negative ⇒ row i sends up.
        if y[i - 1] < 0 {
            distribute_vertical(&mut w, &mut plan, &quotas, n2, i, i - 1, -y[i - 1]);
        }
    }

    // Step 5: horizontal balance inside each row via prefix surpluses.
    for i in 0..n1 {
        // v_{i,j} = Σ_{k≤j} (w_{i,k} − q_{i,k}) is the forced net flow
        // across the link (j → j+1); positive = rightward.
        let mut v = vec![0i64; n2];
        let mut run = 0;
        for j in 0..n2 {
            run += w[id(i, j)] - quotas[id(i, j)];
            v[j] = run;
        }
        debug_assert_eq!(v[n2 - 1], 0, "row {i} not internally balanced after step 4");
        // Rightward moves execute left-to-right (transit-safe), then
        // leftward moves right-to-left.
        for j in 0..n2 - 1 {
            if v[j] > 0 {
                plan.push(id(i, j), id(i, j + 1), v[j]);
                w[id(i, j)] -= v[j];
                w[id(i, j + 1)] += v[j];
            }
        }
        for j in (0..n2 - 1).rev() {
            if v[j] < 0 {
                plan.push(id(i, j + 1), id(i, j), -v[j]);
                w[id(i, j + 1)] += v[j];
                w[id(i, j)] -= v[j];
            }
        }
    }

    debug_assert_eq!(w, quotas, "MWA must land exactly on the quotas");
    (
        plan,
        MwaTrace {
            wavg,
            remainder: r,
            quotas,
            t,
            y,
        },
    )
}

/// Figure 3's η/γ greedy: row `src` must send `amount` tasks to the
/// vertically adjacent row `dst`, decomposed per column so that only
/// excess above quota moves and excess reserved for in-row deficits
/// ("tasks needed by previous nodes", the γ vector) is held back.
fn distribute_vertical(
    w: &mut [i64],
    plan: &mut TransferPlan,
    quotas: &[i64],
    n2: usize,
    src: usize,
    dst: usize,
    amount: i64,
) {
    debug_assert!(amount > 0);
    let id = |i: usize, j: usize| i * n2 + j;
    let mut eta = amount; // η: remaining tasks to ship
    let mut gamma = 0i64; // γ: tasks needed by previous nodes in the row
    for k in 0..n2 {
        let delta = w[id(src, k)] - quotas[id(src, k)];
        let d = if delta > eta + gamma && eta + gamma > 0 {
            eta
        } else if eta + gamma >= delta && delta > gamma {
            delta - gamma
        } else {
            0
        };
        if d > 0 {
            plan.push(id(src, k), id(dst, k), d);
            w[id(src, k)] -= d;
            w[id(dst, k)] += d;
        }
        gamma -= delta - d;
        eta -= d;
        if eta == 0 {
            break;
        }
    }
    assert_eq!(
        eta, 0,
        "row {src} could not cover its vertical flow of {amount}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::min_nonlocal_tasks;

    fn check(mesh: &Mesh2D, loads: &[i64]) -> TransferPlan {
        let (plan, trace) = mwa(mesh, loads);
        assert!(plan.is_link_local(mesh), "non-neighbour move");
        let finals = plan.apply(loads);
        assert_eq!(finals, trace.quotas, "did not land on quotas");
        // Theorem 1: spread ≤ 1.
        let (mn, mx) = (*finals.iter().min().unwrap(), *finals.iter().max().unwrap());
        assert!(mx - mn <= 1, "imbalance {} on {loads:?}", mx - mn);
        // Theorem 2: maximum locality.
        assert_eq!(
            plan.nonlocal_tasks(loads),
            min_nonlocal_tasks(loads),
            "locality not optimal on {loads:?}"
        );
        plan
    }

    #[test]
    fn balanced_input_is_noop() {
        let mesh = Mesh2D::new(2, 2);
        let plan = check(&mesh, &[5, 5, 5, 5]);
        assert!(plan.moves.is_empty());
    }

    #[test]
    fn single_row_mesh() {
        let mesh = Mesh2D::new(1, 4);
        let plan = check(&mesh, &[8, 0, 0, 0]);
        // Forced 1-D flows: 6 right across link0, 4 across link1, 2
        // across link2 = 12.
        assert_eq!(plan.edge_cost(), 12);
    }

    #[test]
    fn single_column_mesh() {
        let mesh = Mesh2D::new(4, 1);
        let plan = check(&mesh, &[0, 0, 0, 8]);
        assert_eq!(plan.edge_cost(), 12);
    }

    #[test]
    fn two_by_two_hot_corner() {
        let mesh = Mesh2D::new(2, 2);
        let plan = check(&mesh, &[12, 0, 0, 0]);
        // Quota 3 each; optimal: 3 right, 3 down, 3 down-then-right or
        // right-then-down = 12 task-hops... minimum is 3+3+6=12? The
        // far corner needs 3 tasks at distance 2 = 6, adjacent 3+3.
        assert_eq!(plan.edge_cost(), 12);
    }

    #[test]
    fn transit_row_downward() {
        // All load in the top row must cross the middle row.
        let mesh = Mesh2D::new(3, 1);
        let plan = check(&mesh, &[9, 0, 0]);
        assert_eq!(plan.edge_cost(), 6 + 3);
    }

    #[test]
    fn remainder_distribution() {
        let mesh = Mesh2D::new(2, 2);
        let (plan, trace) = mwa(&mesh, &[7, 0, 0, 0]);
        assert_eq!(trace.wavg, 1);
        assert_eq!(trace.remainder, 3);
        assert_eq!(plan.apply(&[7, 0, 0, 0]), vec![2, 2, 2, 1]);
    }

    #[test]
    fn zero_loads() {
        let mesh = Mesh2D::new(2, 3);
        let plan = check(&mesh, &[0; 6]);
        assert!(plan.moves.is_empty());
    }

    #[test]
    fn up_and_down_from_middle_row() {
        // Middle row overloaded: flows go both up and down. The η/γ
        // greedy fills from the left, so all 6 downward tasks leave
        // column 0 and all 6 upward tasks leave column 1, forcing 6
        // horizontal correction moves in rows 0 and 2: cost 18, versus
        // the min-cost optimum of 12 (3 up + 3 down per column). This
        // is the heuristic gap the paper owns up to ("MWA … in general
        // will not minimize the communication cost") and the source of
        // Figure 4's nonzero normalized cost.
        let mesh = Mesh2D::new(3, 2);
        let loads = [0, 0, 9, 9, 0, 0];
        let plan = check(&mesh, &loads);
        assert_eq!(plan.edge_cost(), 18);
        let opt = rips_flow::optimal_rebalance(&mesh, &loads);
        assert_eq!(opt.cost, 12);
    }

    #[test]
    fn deficit_column_reserved_by_gamma() {
        // Row 0: column 0 under quota, column 1 far over. The γ vector
        // must hold back column 1's excess for column 0's deficit.
        let mesh = Mesh2D::new(2, 2);
        check(&mesh, &[0, 10, 1, 1]);
    }

    #[test]
    fn paper_mesh_shape_8x4() {
        let mesh = Mesh2D::new(8, 4);
        let loads: Vec<i64> = (0..32).map(|k| (k * 37 % 23) as i64).collect();
        check(&mesh, &loads);
    }

    #[test]
    fn hotspot_centre() {
        let mesh = Mesh2D::new(5, 5);
        let mut loads = vec![0i64; 25];
        loads[12] = 100;
        check(&mesh, &loads);
    }

    #[test]
    fn alternating_stripes() {
        let mesh = Mesh2D::new(4, 4);
        let loads: Vec<i64> = (0..16).map(|k| if k % 2 == 0 { 10 } else { 0 }).collect();
        check(&mesh, &loads);
    }
}
