//! Property-based validation of the scheduling algorithms against the
//! paper's theorems and the MCMF optimum.

use proptest::prelude::*;
use rips_flow::{optimal_rebalance, quotas};
use rips_sched::{dem, min_nonlocal_tasks, mwa, twa};
use rips_topology::{BinaryTree, Hypercube, Mesh2D, Topology};

/// Arbitrary mesh shape and loads: dims 1..=8, loads 0..=60.
fn mesh_and_loads() -> impl Strategy<Value = (Mesh2D, Vec<i64>)> {
    ((1usize..=8), (1usize..=8)).prop_flat_map(|(r, c)| {
        proptest::collection::vec(0i64..=60, r * c)
            .prop_map(move |loads| (Mesh2D::new(r, c), loads))
    })
}

proptest! {
    /// Theorem 1: after MWA the per-node spread is at most one, and the
    /// result is exactly the canonical quota vector.
    #[test]
    fn mwa_theorem1_balance((mesh, loads) in mesh_and_loads()) {
        let (plan, trace) = mwa(&mesh, &loads);
        let finals = plan.apply(&loads);
        prop_assert_eq!(&finals, &trace.quotas);
        let total: i64 = loads.iter().sum();
        prop_assert_eq!(&finals, &quotas(total, mesh.len()));
        let mn = finals.iter().min().unwrap();
        let mx = finals.iter().max().unwrap();
        prop_assert!(mx - mn <= 1);
    }

    /// Theorem 2: MWA moves exactly the minimum number of non-local
    /// tasks (the sum of under-quota deficits).
    #[test]
    fn mwa_theorem2_locality((mesh, loads) in mesh_and_loads()) {
        let (plan, _) = mwa(&mesh, &loads);
        prop_assert_eq!(plan.nonlocal_tasks(&loads), min_nonlocal_tasks(&loads));
    }

    /// Every MWA move crosses exactly one mesh link, and the plan never
    /// overdraws a node (checked inside `apply`).
    #[test]
    fn mwa_moves_are_link_local((mesh, loads) in mesh_and_loads()) {
        let (plan, _) = mwa(&mesh, &loads);
        prop_assert!(plan.is_link_local(&mesh));
        plan.apply(&loads); // panics on overdraw
    }

    /// MWA can never beat the MCMF optimum, and on ≤ 4 processors it
    /// matches it exactly (Lemma 2).
    #[test]
    fn mwa_cost_vs_optimal((mesh, loads) in mesh_and_loads()) {
        let (plan, _) = mwa(&mesh, &loads);
        let opt = optimal_rebalance(&mesh, &loads);
        prop_assert!(plan.edge_cost() >= opt.cost,
            "MWA {} beat the optimum {}", plan.edge_cost(), opt.cost);
        if mesh.len() <= 4 {
            prop_assert_eq!(plan.edge_cost(), opt.cost);
        }
    }

    /// Conservation: no tasks created or destroyed.
    #[test]
    fn mwa_conserves_tasks((mesh, loads) in mesh_and_loads()) {
        let (plan, _) = mwa(&mesh, &loads);
        let finals = plan.apply(&loads);
        prop_assert_eq!(finals.iter().sum::<i64>(), loads.iter().sum::<i64>());
    }

    /// TWA on trees is optimal in Σe_k (forced flows) and balances to
    /// quota.
    #[test]
    fn twa_is_optimal(
        n in 1usize..=24,
        seed_loads in proptest::collection::vec(0i64..=60, 24),
    ) {
        let tree = BinaryTree::new(n);
        let loads = &seed_loads[..n];
        let plan = twa(&tree, loads);
        prop_assert!(plan.is_link_local(&tree));
        let finals = plan.apply(loads);
        let total: i64 = loads.iter().sum();
        prop_assert_eq!(finals, quotas(total, n));
        let opt = optimal_rebalance(&tree, loads);
        prop_assert_eq!(plan.edge_cost(), opt.cost);
        prop_assert_eq!(plan.nonlocal_tasks(loads), min_nonlocal_tasks(loads));
    }

    /// DEM conserves tasks, stays link-local, and lands within `dim`
    /// tasks of balanced.
    #[test]
    fn dem_bounded_spread(
        dim in 0usize..=5,
        seed_loads in proptest::collection::vec(0i64..=60, 32),
    ) {
        let cube = Hypercube::new(dim);
        let loads = &seed_loads[..cube.len()];
        let plan = dem(&cube, loads);
        prop_assert!(plan.is_link_local(&cube));
        let finals = plan.apply(loads);
        prop_assert_eq!(finals.iter().sum::<i64>(), loads.iter().sum::<i64>());
        let mn = finals.iter().min().unwrap();
        let mx = finals.iter().max().unwrap();
        prop_assert!(mx - mn <= dim.max(1) as i64,
            "spread {} exceeds dim {}", mx - mn, dim);
    }

    /// The MCMF reduction always lands on the quotas and its link flows
    /// reproduce them.
    #[test]
    fn optimal_plan_is_consistent((mesh, loads) in mesh_and_loads()) {
        let opt = optimal_rebalance(&mesh, &loads);
        prop_assert!(opt.verify(&loads));
        let total: i64 = loads.iter().sum();
        prop_assert_eq!(&opt.final_loads, &quotas(total, mesh.len()));
    }
}

proptest! {
    /// The distributed SPMD realisation of MWA produces exactly the
    /// same per-link flows as the centralized Figure 3 arithmetic, and
    /// stays within the paper's 3(n1+n2) communication-step bound.
    #[test]
    fn distributed_mwa_agrees_with_centralized((mesh, loads) in mesh_and_loads()) {
        use std::collections::BTreeMap;
        let (central, _) = mwa(&mesh, &loads);
        let (distributed, steps) = rips_sched::mwa_distributed(&mesh, &loads);
        let flows = |p: &rips_sched::TransferPlan| {
            let mut m: BTreeMap<(usize, usize), i64> = BTreeMap::new();
            for mv in &p.moves {
                *m.entry((mv.from, mv.to)).or_insert(0) += mv.count;
            }
            m
        };
        prop_assert_eq!(flows(&central), flows(&distributed));
        prop_assert!(steps <= 3 * (mesh.rows() + mesh.cols()));
    }
}

proptest! {
    /// The distributed TWA produces the same forced per-edge flows as
    /// the centralized sweep, within the logarithmic step bound.
    #[test]
    fn distributed_twa_agrees_with_centralized(
        n in 1usize..=24,
        seed_loads in proptest::collection::vec(0i64..=60, 24),
    ) {
        use std::collections::BTreeMap;
        let tree = BinaryTree::new(n);
        let loads = &seed_loads[..n];
        let central = twa(&tree, loads);
        let (distributed, steps) = rips_sched::twa_distributed(&tree, loads);
        let flows = |p: &rips_sched::TransferPlan| {
            let mut m: BTreeMap<(usize, usize), i64> = BTreeMap::new();
            for mv in &p.moves {
                *m.entry((mv.from, mv.to)).or_insert(0) += mv.count;
            }
            m
        };
        prop_assert_eq!(flows(&central), flows(&distributed));
        prop_assert!(steps <= 4 * tree.height().max(1) + 2);
    }
}

proptest! {
    /// The distributed DEM is flow-identical to the centralized one and
    /// uses exactly one communication step per hypercube dimension.
    #[test]
    fn distributed_dem_agrees_with_centralized(
        dim in 0usize..=5,
        seed_loads in proptest::collection::vec(0i64..=60, 32),
    ) {
        use std::collections::BTreeMap;
        let cube = Hypercube::new(dim);
        let loads = &seed_loads[..cube.len()];
        let central = dem(&cube, loads);
        let (distributed, steps) = rips_sched::dem_distributed(&cube, loads);
        let flows = |p: &rips_sched::TransferPlan| {
            let mut m: BTreeMap<(usize, usize), i64> = BTreeMap::new();
            for mv in &p.moves {
                *m.entry((mv.from, mv.to)).or_insert(0) += mv.count;
            }
            m
        };
        prop_assert_eq!(flows(&central), flows(&distributed));
        prop_assert!(steps <= dim);
    }
}
