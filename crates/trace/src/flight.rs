//! Flight recorder: a fixed-size per-node ring of the most recent
//! trace events, kept always-on so a crash has evidence attached.
//!
//! A [`TraceBuffer`](crate::TraceBuffer) keeps *everything* — perfect
//! for post-run analysis, wrong for an always-on black box, whose
//! memory must stay bounded over an arbitrarily long run. The
//! [`FlightRecorder`] keeps only the last `cap` events per node,
//! overwriting the oldest, and can dump them as text (stderr) or JSON
//! when something goes wrong: a panic in a node thread, an audit
//! failure, or a stall-watchdog trip.
//!
//! The recorder is an ordinary [`TraceSink`], so it rides beside an
//! auditor or a [`TraceBuffer`](crate::TraceBuffer) in a
//! [`Tee`](crate::Tee). [`SharedFlight`] wraps it in an
//! `Arc<Mutex<..>>` so the installing caller can keep a handle for
//! dumping while the install owns the sink position — the watchdog
//! and panic paths dump through that retained handle.

use crate::{NodeId, Time, TraceEvent, TraceSink};
use std::sync::{Arc, Mutex};

/// One recent event as retained by the recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecord {
    /// Timestamp (µs, in the installed clock's domain).
    pub time: Time,
    /// The event.
    pub event: TraceEvent,
}

/// Per-node overwrite ring.
#[derive(Debug, Default)]
struct NodeRing {
    /// Stored records; once `events.len() == cap` the ring overwrites
    /// at `next`.
    events: Vec<FlightRecord>,
    /// Next overwrite position (valid once the ring is full).
    next: usize,
    /// Lifetime records seen on this node (≥ `events.len()`).
    total: u64,
}

impl NodeRing {
    fn push(&mut self, cap: usize, rec: FlightRecord) {
        self.total += 1;
        if self.events.len() < cap {
            self.events.push(rec);
        } else {
            self.events[self.next] = rec;
            self.next = (self.next + 1) % cap;
        }
    }

    /// Records oldest → newest.
    fn ordered(&self) -> impl Iterator<Item = &FlightRecord> {
        let (tail, head) = self.events.split_at(self.next.min(self.events.len()));
        head.iter().chain(tail.iter())
    }
}

/// Fixed-size per-node ring of recent trace events — see the
/// [module docs](self).
#[derive(Debug)]
pub struct FlightRecorder {
    rings: Vec<NodeRing>,
    cap: usize,
}

impl FlightRecorder {
    /// A recorder for `num_nodes` nodes keeping the most recent
    /// `cap_per_node` events on each (both clamped to at least 1;
    /// records from higher node ids grow the node set on demand).
    pub fn new(num_nodes: usize, cap_per_node: usize) -> Self {
        FlightRecorder {
            rings: (0..num_nodes.max(1)).map(|_| NodeRing::default()).collect(),
            cap: cap_per_node.max(1),
        }
    }

    /// Events currently retained across all nodes.
    pub fn retained(&self) -> usize {
        self.rings.iter().map(|r| r.events.len()).sum()
    }

    /// Lifetime events recorded (including overwritten ones).
    pub fn total_recorded(&self) -> u64 {
        self.rings.iter().map(|r| r.total).sum()
    }

    /// The retained events of `node`, oldest first (empty for unknown
    /// nodes).
    pub fn recent(&self, node: NodeId) -> Vec<FlightRecord> {
        self.rings
            .get(node)
            .map(|r| r.ordered().cloned().collect())
            .unwrap_or_default()
    }

    /// Renders every node's retained events, oldest first, as
    /// line-oriented text for a stderr dump. `reason` heads the dump
    /// so log scrapers can attribute it.
    pub fn dump_text(&self, reason: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        writeln!(out, "=== flight recorder dump: {reason} ===").unwrap();
        writeln!(
            out,
            "retained {} of {} lifetime events ({} per node cap)",
            self.retained(),
            self.total_recorded(),
            self.cap
        )
        .unwrap();
        for (node, ring) in self.rings.iter().enumerate() {
            if ring.events.is_empty() {
                continue;
            }
            writeln!(
                out,
                "--- node {node} (last {} of {}) ---",
                ring.events.len(),
                ring.total
            )
            .unwrap();
            for rec in ring.ordered() {
                writeln!(out, "  t={}us {:?}", rec.time, rec.event).unwrap();
            }
        }
        writeln!(out, "=== end flight recorder dump ===").unwrap();
        out
    }

    /// Renders the dump as a JSON object:
    /// `{"reason": .., "nodes": [{"node": n, "events": [{"t_us": ..,
    /// "event": ".."}]}]}`. Event payloads are the debug rendering —
    /// the dump is for humans and log pipelines, not for replay (a
    /// full [`TraceBuffer`](crate::TraceBuffer) capture serves that).
    pub fn dump_json(&self, reason: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{");
        write!(out, "\"reason\":{:?},", reason).unwrap();
        write!(
            out,
            "\"retained\":{},\"total\":{},",
            self.retained(),
            self.total_recorded()
        )
        .unwrap();
        out.push_str("\"nodes\":[");
        let mut first_node = true;
        for (node, ring) in self.rings.iter().enumerate() {
            if ring.events.is_empty() {
                continue;
            }
            if !first_node {
                out.push(',');
            }
            first_node = false;
            write!(out, "{{\"node\":{node},\"events\":[").unwrap();
            for (i, rec) in ring.ordered().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write!(
                    out,
                    "{{\"t_us\":{},\"event\":{:?}}}",
                    rec.time,
                    format!("{:?}", rec.event)
                )
                .unwrap();
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    fn push(&mut self, node: NodeId, rec: FlightRecord) {
        if node >= self.rings.len() {
            self.rings.resize_with(node + 1, NodeRing::default);
        }
        let cap = self.cap;
        self.rings[node].push(cap, rec);
    }
}

impl TraceSink for FlightRecorder {
    fn record(&mut self, time_us: Time, node: NodeId, event: TraceEvent) {
        self.push(
            node,
            FlightRecord {
                time: time_us,
                event,
            },
        );
    }
}

/// A [`FlightRecorder`] behind `Arc<Mutex<..>>`, usable both as the
/// installed [`TraceSink`] *and* as a retained dump handle.
///
/// [`with_sink`](crate::with_sink) insists the sink is released when
/// the run ends — correct for buffers that are consumed afterwards,
/// but the flight recorder must be dumpable *during* the run (from
/// the watchdog) and *after a panic*. `SharedFlight` is a thin sink
/// whose clones all feed one recorder; install one clone, keep
/// another, and the install's `Arc::try_unwrap` still succeeds
/// because it unwraps the outer sink, not the shared recorder.
#[derive(Debug, Clone)]
pub struct SharedFlight(Arc<Mutex<FlightRecorder>>);

impl SharedFlight {
    /// A shared recorder (see [`FlightRecorder::new`]).
    pub fn new(num_nodes: usize, cap_per_node: usize) -> Self {
        SharedFlight(Arc::new(Mutex::new(FlightRecorder::new(
            num_nodes,
            cap_per_node,
        ))))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FlightRecorder> {
        // A panicking node thread must not lose the dump: un-poison.
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Lifetime events recorded (including overwritten ones).
    pub fn total_recorded(&self) -> u64 {
        self.lock().total_recorded()
    }

    /// Text dump (see [`FlightRecorder::dump_text`]).
    pub fn dump_text(&self, reason: &str) -> String {
        self.lock().dump_text(reason)
    }

    /// JSON dump (see [`FlightRecorder::dump_json`]).
    pub fn dump_json(&self, reason: &str) -> String {
        self.lock().dump_json(reason)
    }

    /// Writes the text dump to stderr, headed by `reason`.
    pub fn dump_to_stderr(&self, reason: &str) {
        eprint!("{}", self.dump_text(reason));
    }
}

impl TraceSink for SharedFlight {
    fn record(&mut self, time_us: Time, node: NodeId, event: TraceEvent) {
        self.lock().record(time_us, node, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instant(depth: u32) -> TraceEvent {
        TraceEvent::QueueDepth { depth }
    }

    #[test]
    fn ring_overwrites_oldest_and_orders_dump() {
        let mut fr = FlightRecorder::new(2, 3);
        for i in 0..5u64 {
            fr.record(i, 0, instant(i as u32));
        }
        fr.record(99, 1, instant(99));
        assert_eq!(fr.total_recorded(), 6);
        assert_eq!(fr.retained(), 4, "node 0 capped at 3, node 1 holds 1");
        let recent = fr.recent(0);
        assert_eq!(
            recent.iter().map(|r| r.time).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "oldest two overwritten, order preserved"
        );
        let text = fr.dump_text("test");
        assert!(text.contains("flight recorder dump: test"));
        assert!(text.contains("node 1"));
        assert!(!text.contains("t=0us"), "overwritten event absent");
    }

    #[test]
    fn unknown_nodes_grow_on_demand() {
        let mut fr = FlightRecorder::new(1, 2);
        fr.record(7, 5, instant(1));
        assert_eq!(fr.recent(5).len(), 1);
        assert!(fr.recent(4).is_empty());
    }

    #[test]
    fn json_dump_is_parseable_shape() {
        let mut fr = FlightRecorder::new(1, 4);
        fr.record(1, 0, instant(2));
        let json = fr.dump_json("why");
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"reason\":\"why\""));
        assert!(json.contains("\"node\":0"));
        assert!(json.contains("\"t_us\":1"));
    }

    #[test]
    fn shared_flight_records_through_clones() {
        let shared = SharedFlight::new(2, 8);
        let mut clone = shared.clone();
        clone.record(10, 1, instant(3));
        assert_eq!(shared.total_recorded(), 1);
        assert!(shared.dump_text("clone test").contains("t=10us"));
    }
}
