//! `rips-metrics-rt`: always-on, allocation-free runtime metrics.
//!
//! `rips-trace` explains a run *after* it ends; this module is the
//! half that stays readable *while* the system runs. It is the
//! substrate for the live backend's dispatch self-profiling, the
//! stall watchdog, `rips stats`, and `--metrics-out`.
//!
//! # Design
//!
//! * A [`MetricsRegistry`] owns one cache-line-aligned shard of
//!   atomics per node/thread. Writers touch only their own shard, so
//!   the hot path is an uncontended relaxed atomic add — no locks, no
//!   allocation.
//! * The metric catalog is *compile-time checked*: every counter,
//!   gauge, and histogram is a variant of [`Counter`], [`Gauge`], or
//!   [`Histo`], declared once with its OpenMetrics family name and
//!   help string. A misspelled metric is a compile error, and the
//!   renderer can enumerate the full catalog even when every value is
//!   zero.
//! * Histograms are log2-bucketed: `observe(v)` increments bucket
//!   `bit_length(v)`, so 64 counters cover the full `u64` range with
//!   ≤ 2x relative error — enough to separate "grain execute" from
//!   "trace emission" without a single division on the hot path.
//! * A [`Meter`] is the cheap cloneable handle mirroring
//!   [`Tracer`](crate::Tracer): installed per run via
//!   [`with_metrics`], captured once at run construction, and every
//!   recording call is a single branch when no registry is installed
//!   (the metrics-off golden tests pin this bit-for-bit).
//! * Aggregation ([`MetricsRegistry::snapshot`]) sums shards on
//!   demand and renders OpenMetrics-style text
//!   ([`MetricsSnapshot::render_openmetrics`]).
//!
//! Wall-clock section timing needs a nanosecond clock, and this crate
//! is dependency-free and forbids `Instant` by repo lint (RIPS-L002);
//! the [`CycleClock`] trait is defined here but its monotonic
//! implementation lives in `rips-live` (the one crate allowed to read
//! time). Install one with [`with_metrics_clocked`] to light up the
//! duration histograms; without a clock only counters and gauges
//! record.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Declares a metric-id enum together with its OpenMetrics family
/// names and help strings, keeping the three in sync by construction.
macro_rules! metric_enum {
    (
        $(#[$outer:meta])*
        $vis:vis enum $name:ident {
            $($(#[$vm:meta])* $variant:ident => ($text:literal, $help:literal),)+
        }
    ) => {
        $(#[$outer])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(usize)]
        $vis enum $name {
            $($(#[$vm])* $variant,)+
        }

        impl $name {
            /// Every metric of this kind, in registry order.
            pub const ALL: &'static [$name] = &[$($name::$variant,)+];

            /// Number of metrics of this kind.
            pub const COUNT: usize = $name::ALL.len();

            /// OpenMetrics family name (shared `rips_` namespace).
            pub const fn name(self) -> &'static str {
                match self { $($name::$variant => $text,)+ }
            }

            /// One-line help string for the `# HELP` line.
            pub const fn help(self) -> &'static str {
                match self { $($name::$variant => $help,)+ }
            }

            #[inline(always)]
            const fn idx(self) -> usize {
                self as usize
            }
        }
    };
}

metric_enum! {
    /// Monotone event counters.
    pub enum Counter {
        /// Tasks executed by the policy kernel (either backend).
        TasksExecuted => ("rips_tasks_executed", "Tasks executed by the policy kernel."),
        /// Tasks spawned as children of an executed task.
        TasksSpawned => ("rips_tasks_spawned", "Tasks spawned as children during execution."),
        /// Tasks received from another node by a migration transfer.
        TasksMigratedIn => ("rips_tasks_migrated_in", "Tasks received via balancer migration."),
        /// Protocol messages sent (pre-batching, both backends).
        MsgsSent => ("rips_msgs_sent", "Protocol messages sent, counted before batching."),
        /// Batched transport packets handed to the live fabric.
        PacketsSent => ("rips_packets_sent", "Batched packets handed to the live transport."),
        /// Timer-wheel (or simulated timer) expirations dispatched.
        TimerFires => ("rips_timer_fires", "Timer expirations dispatched to the kernel."),
        /// Dispatch rounds completed by live node loops — the
        /// per-node progress counter the stall watchdog samples.
        DispatchRounds => ("rips_dispatch_rounds", "Dispatch rounds completed per node loop."),
        /// Events processed by the discrete-event simulator core.
        SimEvents => ("rips_sim_events", "Events processed by the desim engine loop."),
        /// Trace events recorded while a trace sink was installed.
        TraceEvents => ("rips_trace_events", "Trace events recorded to the installed sink."),
        /// Stall-watchdog trips (global progress frozen past threshold).
        WatchdogTrips => ("rips_watchdog_trips", "Stall watchdog trips observed."),
        /// Jobs tenants offered to the serve layer's admission
        /// controller (admitted + shed).
        JobsSubmitted => ("rips_jobs_submitted", "Jobs offered to the serve admission controller."),
        /// Jobs admission rejected (pending bound or tenant quota).
        JobsShed => ("rips_jobs_shed", "Jobs rejected by serve admission (bound or quota)."),
        /// Jobs the fleet finished serving.
        JobsCompleted => ("rips_jobs_completed", "Jobs completed by the serve fleet."),
    }
}

metric_enum! {
    /// Last-write-wins gauges, kept per shard; renders report the
    /// maximum across shards (the worst backpressure seen at the most
    /// recent sample).
    pub enum Gauge {
        /// Ready-queue depth after the latest kernel dispatch.
        QueueDepth => ("rips_queue_depth", "Per-node ready-queue depth at last dispatch."),
        /// Transport ring occupancy at the latest flush.
        RingDepth => ("rips_ring_depth", "Queued transport packets at last flush."),
        /// Serve-layer admitted-but-not-dispatched jobs at the latest
        /// admission decision.
        PendingJobs => ("rips_pending_jobs", "Admitted jobs awaiting dispatch in the serve layer."),
    }
}

metric_enum! {
    /// Log2-bucketed duration histograms (nanoseconds). These only
    /// record when a [`CycleClock`] is installed.
    pub enum Histo {
        /// Full dispatch-round cost: one kernel dispatch call plus
        /// everything it pulled in.
        DispatchRoundNs => ("rips_dispatch_round_ns", "Cost of one kernel dispatch round."),
        /// Dispatch-round cost minus grain execution: protocol
        /// bookkeeping, queue ops, message construction.
        GrainSetupNs => ("rips_grain_setup_ns", "Dispatch-round overhead outside grain execution."),
        /// Application grain execution inside a dispatch round.
        GrainExecNs => ("rips_grain_exec_ns", "Application grain execution time."),
        /// Outbox flush: batched packets pushed into the fabric.
        TransportSendNs => ("rips_transport_send_ns", "Transport send (outbox flush) time."),
        /// Mailbox/ring polls, both empty and successful.
        TransportRecvNs => ("rips_transport_recv_ns", "Transport receive poll time."),
        /// Timer-wheel pops and deadline queries.
        TimerWheelNs => ("rips_timer_wheel_ns", "Timer-wheel service time."),
        /// Trace emission: building the payload and recording it to
        /// the installed sink (lock + push).
        TraceEmitNs => ("rips_trace_emit_ns", "Cost of recording one trace event."),
        /// Blocked parked time waiting for work or a timer deadline.
        ParkNs => ("rips_park_ns", "Parked wait time in the node loop."),
    }
}

/// Number of log2 buckets: `bit_length(u64)` spans 0..=64, and values
/// of length ≥ 63 share the top bucket before the `+Inf` rollup.
const HIST_BUCKETS: usize = 64;

/// One histogram: `buckets[i]` counts values with bit length `i`
/// (i.e. `v < 2^i`, `v >= 2^(i-1)`), clamped into the top bucket.
struct HistSlab {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl HistSlab {
    const fn new() -> Self {
        HistSlab {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
        }
    }

    #[inline(always)]
    fn observe(&self, v: u64) {
        let idx = (u64::BITS - v.leading_zeros()).min(HIST_BUCKETS as u32 - 1) as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }
}

/// Per-writer metric storage. Aligned out to two cache lines so
/// neighbouring shards never false-share: each node/thread owns one
/// shard exclusively for writes; only aggregation reads across them.
#[repr(align(128))]
struct Shard {
    counters: [AtomicU64; Counter::COUNT],
    gauges: [AtomicU64; Gauge::COUNT],
    histos: [HistSlab; Histo::COUNT],
}

impl Shard {
    fn new() -> Self {
        Shard {
            counters: [const { AtomicU64::new(0) }; Counter::COUNT],
            gauges: [const { AtomicU64::new(0) }; Gauge::COUNT],
            histos: [const { HistSlab::new() }; Histo::COUNT],
        }
    }
}

/// A nanosecond monotonic clock for section timing.
///
/// Defined here so the dependency-free trace crate can hold one
/// behind an `Arc<dyn CycleClock>`; the `Instant`-backed
/// implementation lives in `rips-live` (RIPS-L002 confines wall-clock
/// reads there). Tests use deterministic manual clocks.
pub trait CycleClock: Send + Sync {
    /// Nanoseconds elapsed since this clock's epoch.
    fn now_ns(&self) -> u64;
}

/// A deterministic [`CycleClock`] for tests: returns an atomically
/// advancing value so durations are reproducible without reading
/// wall-clock time.
#[derive(Debug, Default)]
pub struct ManualNs(AtomicU64);

impl ManualNs {
    /// A clock starting at 0 ns.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `ns`.
    pub fn advance(&self, ns: u64) {
        self.0.fetch_add(ns, Ordering::Relaxed);
    }
}

impl CycleClock for ManualNs {
    fn now_ns(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Sharded atomic metric storage — see the [module docs](self).
pub struct MetricsRegistry {
    shards: Box<[Shard]>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl MetricsRegistry {
    /// A registry with one shard per expected writer (node/thread).
    /// `num_shards` is clamped to at least 1; out-of-range shard ids
    /// wrap, so a registry is always safe to write from any node id.
    pub fn new(num_shards: usize) -> Arc<Self> {
        let n = num_shards.max(1);
        Arc::new(MetricsRegistry {
            shards: (0..n).map(|_| Shard::new()).collect(),
        })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    #[inline(always)]
    fn shard(&self, shard: usize) -> &Shard {
        // Wrapping keeps writes safe if a run is built with more
        // nodes than the registry anticipated.
        &self.shards[shard % self.shards.len()]
    }

    /// Adds `v` to counter `c` on `shard`.
    #[inline(always)]
    pub fn add(&self, shard: usize, c: Counter, v: u64) {
        self.shard(shard).counters[c.idx()].fetch_add(v, Ordering::Relaxed);
    }

    /// Stores `v` into gauge `g` on `shard` (last write wins).
    #[inline(always)]
    pub fn set_gauge(&self, shard: usize, g: Gauge, v: u64) {
        self.shard(shard).gauges[g.idx()].store(v, Ordering::Relaxed);
    }

    /// Records one duration sample into histogram `h` on `shard`.
    #[inline(always)]
    pub fn observe(&self, shard: usize, h: Histo, v: u64) {
        self.shard(shard).histos[h.idx()].observe(v);
    }

    /// Sum of counter `c` across all shards.
    pub fn counter_total(&self, c: Counter) -> u64 {
        self.shards
            .iter()
            .map(|s| s.counters[c.idx()].load(Ordering::Relaxed))
            .sum()
    }

    /// Counter `c` per shard, in shard order — the watchdog samples
    /// [`Counter::DispatchRounds`] through this to watch per-node
    /// progress.
    pub fn counter_per_shard(&self, c: Counter) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.counters[c.idx()].load(Ordering::Relaxed))
            .collect()
    }

    /// Gauge `g` per shard, in shard order.
    pub fn gauge_per_shard(&self, g: Gauge) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.gauges[g.idx()].load(Ordering::Relaxed))
            .collect()
    }

    /// A consistent-enough point-in-time aggregate of every metric
    /// (relaxed reads: each cell is exact, cross-cell skew is bounded
    /// by in-flight updates).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = Counter::ALL
            .iter()
            .map(|&c| (c, self.counter_total(c)))
            .collect();
        let gauges = Gauge::ALL
            .iter()
            .map(|&g| {
                let v = self
                    .shards
                    .iter()
                    .map(|s| s.gauges[g.idx()].load(Ordering::Relaxed))
                    .max()
                    .unwrap_or(0);
                (g, v)
            })
            .collect();
        let histos = Histo::ALL
            .iter()
            .map(|&h| {
                let mut buckets = vec![0u64; HIST_BUCKETS];
                let mut count = 0u64;
                let mut sum = 0u64;
                for s in self.shards.iter() {
                    let slab = &s.histos[h.idx()];
                    count += slab.count.load(Ordering::Relaxed);
                    sum += slab.sum.load(Ordering::Relaxed);
                    for (acc, b) in buckets.iter_mut().zip(slab.buckets.iter()) {
                        *acc += b.load(Ordering::Relaxed);
                    }
                }
                HistSnapshot {
                    metric: h,
                    count,
                    sum,
                    buckets,
                }
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histos,
        }
    }
}

/// Aggregated histogram state at snapshot time.
#[derive(Debug, Clone)]
pub struct HistSnapshot {
    /// Which histogram this is.
    pub metric: Histo,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (ns).
    pub sum: u64,
    /// Per-log2-bucket sample counts (`buckets[i]` counts values of
    /// bit length `i`; not cumulative).
    pub buckets: Vec<u64>,
}

impl HistSnapshot {
    /// Mean sample value, or 0.0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket holding the `q`-quantile sample
    /// (nearest-rank over the log2 buckets), or 0 with no samples.
    pub fn quantile_ub(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        u64::MAX
    }
}

/// Inclusive upper bound of log2 bucket `i` (`2^i - 1`).
fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Point-in-time aggregate of a whole registry.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// `(counter, total across shards)` in catalog order.
    pub counters: Vec<(Counter, u64)>,
    /// `(gauge, max across shards)` in catalog order.
    pub gauges: Vec<(Gauge, u64)>,
    /// Aggregated histograms in catalog order.
    pub histos: Vec<HistSnapshot>,
}

impl MetricsSnapshot {
    /// Total of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters
            .iter()
            .find(|(id, _)| *id == c)
            .map_or(0, |&(_, v)| v)
    }

    /// Aggregated state of one histogram.
    pub fn histo(&self, h: Histo) -> &HistSnapshot {
        self.histos
            .iter()
            .find(|s| s.metric == h)
            .expect("snapshot holds the full catalog")
    }

    /// Renders the snapshot as OpenMetrics-style text: `# TYPE` /
    /// `# HELP` per family, `_total` counter samples, cumulative
    /// `_bucket{le=...}` + `_sum`/`_count` histogram samples, and a
    /// final `# EOF`. The full catalog is always present (zero-valued
    /// families included) so consumers can rely on names existing.
    pub fn render_openmetrics(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(4096);
        for &(c, v) in &self.counters {
            writeln!(out, "# TYPE {} counter", c.name()).unwrap();
            writeln!(out, "# HELP {} {}", c.name(), c.help()).unwrap();
            writeln!(out, "{}_total {}", c.name(), v).unwrap();
        }
        for &(g, v) in &self.gauges {
            writeln!(out, "# TYPE {} gauge", g.name()).unwrap();
            writeln!(out, "# HELP {} {}", g.name(), g.help()).unwrap();
            writeln!(out, "{} {}", g.name(), v).unwrap();
        }
        for h in &self.histos {
            let name = h.metric.name();
            writeln!(out, "# TYPE {name} histogram").unwrap();
            writeln!(out, "# HELP {name} {}", h.metric.help()).unwrap();
            let mut cum = 0u64;
            for (i, &b) in h.buckets.iter().enumerate() {
                if b == 0 {
                    continue;
                }
                cum += b;
                writeln!(
                    out,
                    "{name}_bucket{{le=\"{}\"}} {cum}",
                    bucket_upper_bound(i)
                )
                .unwrap();
            }
            writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count).unwrap();
            writeln!(out, "{name}_sum {}", h.sum).unwrap();
            writeln!(out, "{name}_count {}", h.count).unwrap();
        }
        out.push_str("# EOF\n");
        out
    }
}

/// Checks that `text` is well-formed OpenMetrics as produced by
/// [`MetricsSnapshot::render_openmetrics`]: every sample line parses
/// as `name[{labels}] value`, every sample belongs to a family
/// declared by a preceding `# TYPE`, histogram `_count` equals the
/// `+Inf` bucket, and the exposition ends with `# EOF`. Returns the
/// number of sample lines. Used by the CLI smoke tests; CI re-checks
/// with an independent parser.
pub fn validate_openmetrics(text: &str) -> Result<usize, String> {
    let mut families: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    let mut samples = 0usize;
    let mut saw_eof = false;
    let mut inf_bucket: std::collections::BTreeMap<String, u64> = Default::default();
    let mut hist_count: std::collections::BTreeMap<String, u64> = Default::default();
    for (ln, line) in text.lines().enumerate() {
        let err = |m: &str| format!("line {}: {m}: {line:?}", ln + 1);
        if saw_eof {
            return Err(err("content after # EOF"));
        }
        if line == "# EOF" {
            saw_eof = true;
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut it = rest.splitn(3, ' ');
            let kw = it.next().unwrap_or("");
            let fam = it.next().ok_or_else(|| err("bare comment"))?;
            match kw {
                "TYPE" => {
                    families.insert(fam);
                }
                "HELP" => {
                    if !families.contains(fam) {
                        return Err(err("HELP before TYPE"));
                    }
                }
                _ => return Err(err("unknown comment keyword")),
            }
            continue;
        }
        let (name_part, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| err("sample line without value"))?;
        value
            .parse::<f64>()
            .map_err(|_| err("unparseable sample value"))?;
        let bare = name_part.split('{').next().unwrap_or(name_part);
        let family = bare
            .strip_suffix("_total")
            .or_else(|| bare.strip_suffix("_bucket"))
            .or_else(|| bare.strip_suffix("_sum"))
            .or_else(|| bare.strip_suffix("_count"))
            .unwrap_or(bare);
        if !families.contains(family) {
            return Err(err("sample for undeclared family"));
        }
        if name_part.contains("le=\"+Inf\"") {
            inf_bucket.insert(family.to_string(), value.parse::<u64>().unwrap_or(0));
        }
        if bare.ends_with("_count") {
            hist_count.insert(family.to_string(), value.parse::<u64>().unwrap_or(0));
        }
        samples += 1;
    }
    if !saw_eof {
        return Err("missing # EOF terminator".into());
    }
    for (fam, count) in &hist_count {
        if inf_bucket.get(fam) != Some(count) {
            return Err(format!("{fam}: _count does not match +Inf bucket"));
        }
    }
    Ok(samples)
}

/// An installed registry plus the optional section-timing clock.
#[derive(Clone)]
struct MeterInstall {
    reg: Arc<MetricsRegistry>,
    clock: Option<Arc<dyn CycleClock>>,
}

thread_local! {
    static CURRENT_METRICS: RefCell<Option<MeterInstall>> = const { RefCell::new(None) };
}

fn with_install<R>(install: MeterInstall, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<MeterInstall>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            CURRENT_METRICS.with(|c| *c.borrow_mut() = prev);
        }
    }
    let prev = CURRENT_METRICS.with(|c| c.borrow_mut().replace(install));
    let _restore = Restore(prev);
    f()
}

/// Installs `reg` as the thread's active metrics registry for the
/// duration of `f`, counters and gauges only (no duration histograms
/// — there is no clock). Instrumented layers pick it up via
/// [`Meter::current`] at run construction, exactly like
/// [`with_sink`](crate::with_sink) does for trace sinks. The previous
/// install (if any) is restored afterwards, even on panic.
pub fn with_metrics<R>(reg: &Arc<MetricsRegistry>, f: impl FnOnce() -> R) -> R {
    with_install(
        MeterInstall {
            reg: Arc::clone(reg),
            clock: None,
        },
        f,
    )
}

/// [`with_metrics`] with a nanosecond [`CycleClock`]: duration
/// histograms record too. The live backend passes its monotonic
/// clock; the simulator has no meaningful wall clock and uses the
/// unclocked form.
pub fn with_metrics_clocked<R>(
    reg: &Arc<MetricsRegistry>,
    clock: Arc<dyn CycleClock>,
    f: impl FnOnce() -> R,
) -> R {
    with_install(
        MeterInstall {
            reg: Arc::clone(reg),
            clock: Some(clock),
        },
        f,
    )
}

/// A cheap cloneable handle to the installed registry (or nothing).
///
/// Mirrors [`Tracer`](crate::Tracer): instrumented layers capture one
/// at run construction ([`Meter::current`]), re-shard it per node
/// ([`Meter::for_shard`]), and call the recording methods from hot
/// paths. With no registry installed every call is a single branch
/// and touches nothing.
#[derive(Clone, Default)]
pub struct Meter {
    install: Option<MeterInstall>,
    shard: usize,
}

impl std::fmt::Debug for Meter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Meter")
            .field("enabled", &self.enabled())
            .field("shard", &self.shard)
            .finish()
    }
}

impl Meter {
    /// A disabled meter (no registry).
    pub fn off() -> Self {
        Meter::default()
    }

    /// The thread's current meter, bound to shard 0: attached to the
    /// registry installed by the innermost [`with_metrics`], or
    /// disabled if none is installed.
    pub fn current() -> Self {
        Meter {
            install: CURRENT_METRICS.with(|c| c.borrow().clone()),
            shard: 0,
        }
    }

    /// This meter re-bound to write `shard` (a node/thread id).
    pub fn for_shard(&self, shard: usize) -> Self {
        Meter {
            install: self.install.clone(),
            shard,
        }
    }

    /// Whether a registry is attached.
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        self.install.is_some()
    }

    /// The attached registry, if any.
    pub fn registry(&self) -> Option<Arc<MetricsRegistry>> {
        self.install.as_ref().map(|i| Arc::clone(&i.reg))
    }

    /// Reads the section-timing clock: `None` when no registry or no
    /// clock is installed. Guard duration instrumentation on this so
    /// un-clocked runs skip the clock reads entirely.
    #[inline(always)]
    pub fn now_ns(&self) -> Option<u64> {
        match &self.install {
            Some(MeterInstall {
                clock: Some(clock), ..
            }) => Some(clock.now_ns()),
            _ => None,
        }
    }

    /// Adds `v` to counter `c` on this meter's shard.
    #[inline(always)]
    pub fn add(&self, c: Counter, v: u64) {
        if let Some(i) = &self.install {
            i.reg.add(self.shard, c, v);
        }
    }

    /// Adds 1 to counter `c` on this meter's shard.
    #[inline(always)]
    pub fn inc(&self, c: Counter) {
        self.add(c, 1);
    }

    /// Adds `v` to counter `c` on an explicit shard (for callers that
    /// know the node id but hold a shard-0 meter, e.g. the tracer).
    #[inline(always)]
    pub fn add_at(&self, shard: usize, c: Counter, v: u64) {
        if let Some(i) = &self.install {
            i.reg.add(shard, c, v);
        }
    }

    /// Stores `v` into gauge `g` on this meter's shard.
    #[inline(always)]
    pub fn set_gauge(&self, g: Gauge, v: u64) {
        if let Some(i) = &self.install {
            i.reg.set_gauge(self.shard, g, v);
        }
    }

    /// Records one duration sample into histogram `h` on this meter's
    /// shard.
    #[inline(always)]
    pub fn observe(&self, h: Histo, v: u64) {
        if let Some(i) = &self.install {
            i.reg.observe(self.shard, h, v);
        }
    }

    /// Records one duration sample on an explicit shard.
    #[inline(always)]
    pub fn observe_at(&self, shard: usize, h: Histo, v: u64) {
        if let Some(i) = &self.install {
            i.reg.observe(shard, h, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_unique_and_prefixed() {
        let mut names: Vec<&str> = Counter::ALL
            .iter()
            .map(|c| c.name())
            .chain(Gauge::ALL.iter().map(|g| g.name()))
            .chain(Histo::ALL.iter().map(|h| h.name()))
            .collect();
        for n in &names {
            assert!(n.starts_with("rips_"), "{n} must be rips_-prefixed");
            assert!(
                n.bytes()
                    .all(|b| b == b'_' || b.is_ascii_lowercase() || b.is_ascii_digit()),
                "{n} must be a valid OpenMetrics name"
            );
            // Reserved suffixes would collide with sample-name suffixes.
            for suffix in ["_total", "_bucket", "_sum", "_count"] {
                assert!(!n.ends_with(suffix), "{n} ends with reserved {suffix}");
            }
        }
        let len = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(len, names.len(), "duplicate metric family names");
    }

    #[test]
    fn log2_bucketing_brackets_each_sample() {
        let reg = MetricsRegistry::new(1);
        for v in [0u64, 1, 2, 3, 4, 1023, 1024, 1 << 40, u64::MAX] {
            reg.observe(0, Histo::GrainExecNs, v);
        }
        let snap = reg.snapshot();
        let h = snap.histo(Histo::GrainExecNs);
        assert_eq!(h.count, 9);
        // v=0 -> bucket 0; v=1 -> bucket 1; v=2,3 -> bucket 2; v=4 -> 3.
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 2);
        assert_eq!(h.buckets[3], 1);
        assert_eq!(h.buckets[10], 1, "1023 has bit length 10");
        assert_eq!(h.buckets[11], 1, "1024 has bit length 11");
        assert_eq!(h.buckets[HIST_BUCKETS - 1], 1, "u64::MAX clamps to top");
        assert!(h.quantile_ub(0.5) <= 7);
    }

    #[test]
    fn shards_aggregate_and_wrap() {
        let reg = MetricsRegistry::new(4);
        for shard in 0..8 {
            reg.add(shard, Counter::TasksExecuted, 10);
        }
        assert_eq!(reg.counter_total(Counter::TasksExecuted), 80);
        let per = reg.counter_per_shard(Counter::TasksExecuted);
        assert_eq!(per, vec![20, 20, 20, 20], "shard ids wrap mod len");
        reg.set_gauge(1, Gauge::QueueDepth, 7);
        reg.set_gauge(2, Gauge::QueueDepth, 3);
        let snap = reg.snapshot();
        assert_eq!(
            snap.gauges
                .iter()
                .find(|(g, _)| *g == Gauge::QueueDepth)
                .unwrap()
                .1,
            7
        );
    }

    #[test]
    fn meter_off_is_inert_and_install_restores() {
        let m = Meter::off();
        assert!(!m.enabled());
        m.inc(Counter::TasksExecuted);
        m.observe(Histo::GrainExecNs, 99);
        assert!(m.now_ns().is_none());
        assert!(!Meter::current().enabled());

        let reg = MetricsRegistry::new(2);
        with_metrics(&reg, || {
            let m = Meter::current().for_shard(1);
            assert!(m.enabled());
            assert!(m.now_ns().is_none(), "unclocked install has no clock");
            m.inc(Counter::TasksExecuted);
        });
        assert!(!Meter::current().enabled(), "install restored");
        assert_eq!(reg.counter_total(Counter::TasksExecuted), 1);
    }

    #[test]
    fn clocked_install_times_sections() {
        let reg = MetricsRegistry::new(1);
        let clock = Arc::new(ManualNs::new());
        let tick: Arc<ManualNs> = Arc::clone(&clock);
        with_metrics_clocked(&reg, clock, || {
            let m = Meter::current();
            let t0 = m.now_ns().expect("clock installed");
            tick.advance(1500);
            let dt = m.now_ns().unwrap() - t0;
            m.observe(Histo::DispatchRoundNs, dt);
        });
        let snap = reg.snapshot();
        let h = snap.histo(Histo::DispatchRoundNs);
        assert_eq!((h.count, h.sum), (1, 1500));
    }

    #[test]
    fn render_is_valid_openmetrics_with_full_catalog() {
        let reg = MetricsRegistry::new(2);
        reg.add(0, Counter::MsgsSent, 42);
        reg.observe(1, Histo::TransportSendNs, 300);
        reg.set_gauge(0, Gauge::RingDepth, 5);
        let text = reg.snapshot().render_openmetrics();
        let samples = validate_openmetrics(&text).expect("well-formed OpenMetrics");
        assert!(samples >= Counter::COUNT + Gauge::COUNT + 3 * Histo::COUNT);
        assert!(text.contains("rips_msgs_sent_total 42"));
        assert!(text.contains("rips_ring_depth 5"));
        assert!(text.contains("rips_transport_send_ns_count 1"));
        for c in Counter::ALL {
            assert!(text.contains(c.name()), "{} missing from render", c.name());
        }
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn validator_rejects_malformed_text() {
        assert!(
            validate_openmetrics("rips_x_total 1\n# EOF\n").is_err(),
            "undeclared family"
        );
        assert!(
            validate_openmetrics("# TYPE rips_x counter\nrips_x_total 1\n").is_err(),
            "no EOF"
        );
        assert!(
            validate_openmetrics("# TYPE rips_x counter\nrips_x_total abc\n# EOF\n").is_err(),
            "bad value"
        );
    }
}
