//! The structured phase-anatomy aggregator.
//!
//! Turns a raw [`TraceBuffer`] into the numbers the paper narrates in
//! §5: per-system-phase durations and migration volumes, sub-stage
//! breakdowns (idle detection, load collection, plan computation,
//! migration), and user-phase/task-grain distributions — each as a
//! `p50/p95/max` histogram, renderable as a text table or as JSONL for
//! BENCH files.

use std::collections::BTreeMap;

use crate::{ClockKind, Hist, PhaseKind, SysStage, Time, TraceBuffer, TraceEvent};

/// Aggregated anatomy of one system phase.
#[derive(Debug, Clone, Default)]
pub struct PhaseRow {
    /// Phase index.
    pub phase: u32,
    /// Earliest entry into the phase across nodes (µs).
    pub begin: Time,
    /// Latest exit from the phase across nodes (µs).
    pub end: Time,
    /// Per-node phase-span durations (µs).
    pub span_us: Hist,
    /// Per-node idle-detect latencies ending in this phase (µs).
    pub idle_detect_us: Hist,
    /// Per-node load-collection durations (µs).
    pub load_collect_us: Hist,
    /// Plan-computation duration on the planning node (µs; 0 for a
    /// termination phase, which computes no plan).
    pub plan_us: Time,
    /// Per-node migration-stage durations (µs).
    pub migrate_us: Hist,
    /// Tasks migrated during the phase.
    pub migrated_tasks: u64,
    /// Migration messages sent during the phase.
    pub migrate_msgs: u64,
}

/// Aggregated anatomy of a whole run.
#[derive(Debug, Clone, Default)]
pub struct PhaseReport {
    /// Per-system-phase rows, in phase order.
    pub phases: Vec<PhaseRow>,
    /// Per-node user-phase durations (µs), all phases pooled.
    pub user_phase_us: Hist,
    /// Idle-detect latencies (µs), all phases pooled.
    pub idle_detect_us: Hist,
    /// Task grain durations (µs).
    pub task_grain_us: Hist,
    /// Origin→executor hop counts, one sample per task.
    pub task_hops: Hist,
    /// Tasks executed.
    pub tasks: u64,
    /// Tasks executed off their origin node.
    pub nonlocal_tasks: u64,
    /// Migration messages (all sources, phases or not).
    pub migrate_msgs: u64,
    /// Tasks migrated (all sources).
    pub migrated_tasks: u64,
    /// Highest ready-queue depth sampled.
    pub peak_queue_depth: u32,
    /// Rounds observed (from round-begin/barrier markers).
    pub rounds: u32,
    /// Run end time the report was built against (µs).
    pub end_time: Time,
    /// What the µs columns measure: virtual (simulator) or wall-clock
    /// (live backend) time. Set by [`TraceBuffer::report_with_clock`];
    /// defaults to virtual.
    pub clock: ClockKind,
}

/// Builds the report. Spans still open at `end_time` (the final
/// termination phase) are closed there.
pub(crate) fn build(buf: &TraceBuffer, end_time: Time) -> PhaseReport {
    let n = buf.num_nodes();
    let mut rows: BTreeMap<u32, PhaseRow> = BTreeMap::new();
    // Per-node open spans: user phase, system phase, one slot per stage.
    let mut open_user: Vec<Option<Time>> = vec![None; n];
    let mut open_sys: Vec<Option<(u32, Time)>> = vec![None; n];
    let mut open_stage: Vec<[Option<(u32, Time)>; 4]> = vec![[None; 4]; n];
    let mut rep = PhaseReport {
        end_time,
        ..Default::default()
    };

    let stage_slot = |s: SysStage| match s {
        SysStage::IdleDetect => 0,
        SysStage::LoadCollect => 1,
        SysStage::Plan => 2,
        SysStage::Migrate => 3,
    };

    fn close_stage(
        rep: &mut PhaseReport,
        rows: &mut BTreeMap<u32, PhaseRow>,
        slot: usize,
        phase: u32,
        dur: Time,
    ) {
        let row = rows.entry(phase).or_insert_with(|| PhaseRow {
            phase,
            begin: Time::MAX,
            ..Default::default()
        });
        match slot {
            0 => {
                row.idle_detect_us.push(dur);
                rep.idle_detect_us.push(dur);
            }
            1 => row.load_collect_us.push(dur),
            2 => row.plan_us = dur,
            _ => row.migrate_us.push(dur),
        }
    }

    for r in &buf.records {
        let (t, node) = (r.time, r.node);
        match r.event {
            TraceEvent::PhaseBegin { kind, index } => match kind {
                PhaseKind::User => open_user[node] = Some(t),
                PhaseKind::System => {
                    open_sys[node] = Some((index, t));
                    let row = rows.entry(index).or_insert_with(|| PhaseRow {
                        phase: index,
                        begin: Time::MAX,
                        ..Default::default()
                    });
                    row.begin = row.begin.min(t);
                }
            },
            TraceEvent::PhaseEnd { kind, .. } => match kind {
                PhaseKind::User => {
                    if let Some(b) = open_user[node].take() {
                        rep.user_phase_us.push(t - b);
                    }
                }
                PhaseKind::System => {
                    if let Some((p, b)) = open_sys[node].take() {
                        let row = rows.entry(p).or_default();
                        row.span_us.push(t - b);
                        row.end = row.end.max(t);
                    }
                }
            },
            TraceEvent::StageBegin { stage, phase } => {
                open_stage[node][stage_slot(stage)] = Some((phase, t));
            }
            TraceEvent::StageEnd { stage, .. } => {
                let slot = stage_slot(stage);
                if let Some((p, b)) = open_stage[node][slot].take() {
                    close_stage(&mut rep, &mut rows, slot, p, t - b);
                }
            }
            TraceEvent::TaskExec { hops, grain_us, .. } => {
                rep.tasks += 1;
                rep.task_grain_us.push(grain_us);
                rep.task_hops.push(hops as u64);
                if hops > 0 {
                    rep.nonlocal_tasks += 1;
                }
            }
            TraceEvent::MigrateOut { count, .. } => {
                rep.migrate_msgs += 1;
                rep.migrated_tasks += count as u64;
                if let Some((p, _)) = open_sys[node] {
                    let row = rows.entry(p).or_default();
                    row.migrate_msgs += 1;
                    row.migrated_tasks += count as u64;
                }
            }
            TraceEvent::QueueDepth { depth } => {
                rep.peak_queue_depth = rep.peak_queue_depth.max(depth);
            }
            TraceEvent::Barrier { round } | TraceEvent::RoundBegin { round } => {
                rep.rounds = rep.rounds.max(round + 1);
            }
            _ => {}
        }
    }

    // Close what the halt left open at end_time.
    for node in 0..n {
        for (slot, open) in open_stage[node].iter_mut().enumerate() {
            if let Some((p, b)) = open.take() {
                close_stage(&mut rep, &mut rows, slot, p, end_time.saturating_sub(b));
            }
        }
        if let Some((p, b)) = open_sys[node].take() {
            let row = rows.entry(p).or_default();
            row.phase = p;
            row.span_us.push(end_time.saturating_sub(b));
            row.end = row.end.max(end_time);
        }
        if let Some(b) = open_user[node].take() {
            rep.user_phase_us.push(end_time.saturating_sub(b));
        }
    }

    rep.phases = rows
        .into_values()
        .map(|mut row| {
            if row.begin == Time::MAX {
                row.begin = 0;
            }
            row
        })
        .collect();
    rep
}

fn hist3(h: &mut Hist) -> String {
    format!("{}/{}/{}", h.p50(), h.p95(), h.max())
}

impl PhaseReport {
    /// Renders the report as an aligned text table (durations in the
    /// µs of [`PhaseReport::clock`] — virtual or wall-clock time,
    /// labelled in the header — as `p50/p95/max` triplets). Takes
    /// `&mut self` because percentile queries sort the underlying
    /// samples lazily.
    pub fn render(&mut self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "run anatomy: {} tasks ({} non-local), {} round(s), end {:.3} s, peak queue {}\n",
            self.tasks,
            self.nonlocal_tasks,
            self.rounds,
            self.end_time as f64 / 1e6,
            self.peak_queue_depth,
        ));
        out.push_str(&format!("time unit: {}\n", self.clock.label()));
        out.push_str(&format!(
            "task grain   µs p50/p95/max: {:>24}   ({} execs)\n",
            hist3(&mut self.task_grain_us),
            self.task_grain_us.count()
        ));
        out.push_str(&format!(
            "task hops       p50/p95/max: {:>24}\n",
            hist3(&mut self.task_hops)
        ));
        if self.user_phase_us.count() > 0 {
            out.push_str(&format!(
                "user phase   µs p50/p95/max: {:>24}   ({} spans)\n",
                hist3(&mut self.user_phase_us),
                self.user_phase_us.count()
            ));
        }
        if self.idle_detect_us.count() > 0 {
            out.push_str(&format!(
                "idle-detect  µs p50/p95/max: {:>24}   ({} detections)\n",
                hist3(&mut self.idle_detect_us),
                self.idle_detect_us.count()
            ));
        }
        out.push_str(&format!(
            "migrations: {} tasks in {} messages\n",
            self.migrated_tasks, self.migrate_msgs
        ));
        if self.phases.is_empty() {
            out.push_str("(no system phases: this scheduler balances continuously)\n");
            return out;
        }
        out.push_str(&format!("\nsystem phases ({}):\n", self.phases.len()));
        out.push_str(&format!(
            "{:>5}  {:>10}  {:>18}  {:>18}  {:>8}  {:>18}  {:>18}  {:>6}  {:>5}\n",
            "phase",
            "window µs",
            "span p50/p95/max",
            "collect p50/95/mx",
            "plan µs",
            "migrate p50/95/mx",
            "idle p50/p95/max",
            "moved",
            "msgs"
        ));
        for row in &mut self.phases {
            out.push_str(&format!(
                "{:>5}  {:>10}  {:>18}  {:>18}  {:>8}  {:>18}  {:>18}  {:>6}  {:>5}\n",
                row.phase,
                row.end.saturating_sub(row.begin),
                hist3(&mut row.span_us),
                hist3(&mut row.load_collect_us),
                row.plan_us,
                hist3(&mut row.migrate_us),
                hist3(&mut row.idle_detect_us),
                row.migrated_tasks,
                row.migrate_msgs
            ));
        }
        out
    }

    /// Renders the report as JSONL: one `summary` line followed by one
    /// `phase` line per system phase — the machine-readable sibling of
    /// [`PhaseReport::render`], meant for BENCH files.
    pub fn to_jsonl(&mut self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"type\":\"summary\",\"clock\":\"{}\",\"tasks\":{},\"nonlocal\":{},\"rounds\":{},\
             \"end_us\":{},\"peak_queue_depth\":{},\"migrated_tasks\":{},\"migrate_msgs\":{},\
             \"task_grain_p50\":{},\"task_grain_p95\":{},\"task_grain_max\":{},\
             \"user_phase_p50\":{},\"user_phase_p95\":{},\
             \"idle_detect_p50\":{},\"idle_detect_p95\":{},\"idle_detect_max\":{}}}\n",
            self.clock.name(),
            self.tasks,
            self.nonlocal_tasks,
            self.rounds,
            self.end_time,
            self.peak_queue_depth,
            self.migrated_tasks,
            self.migrate_msgs,
            self.task_grain_us.p50(),
            self.task_grain_us.p95(),
            self.task_grain_us.max(),
            self.user_phase_us.p50(),
            self.user_phase_us.p95(),
            self.idle_detect_us.p50(),
            self.idle_detect_us.p95(),
            self.idle_detect_us.max(),
        ));
        for row in &mut self.phases {
            out.push_str(&format!(
                "{{\"type\":\"phase\",\"phase\":{},\"begin_us\":{},\"end_us\":{},\
                 \"span_p50\":{},\"span_p95\":{},\"span_max\":{},\
                 \"load_collect_p50\":{},\"load_collect_p95\":{},\"plan_us\":{},\
                 \"migrate_p50\":{},\"migrate_p95\":{},\
                 \"idle_detect_p50\":{},\"idle_detect_p95\":{},\"idle_detect_max\":{},\
                 \"migrated_tasks\":{},\"migrate_msgs\":{}}}\n",
                row.phase,
                row.begin,
                row.end,
                row.span_us.p50(),
                row.span_us.p95(),
                row.span_us.max(),
                row.load_collect_us.p50(),
                row.load_collect_us.p95(),
                row.plan_us,
                row.migrate_us.p50(),
                row.migrate_us.p95(),
                row.idle_detect_us.p50(),
                row.idle_detect_us.p95(),
                row.idle_detect_us.max(),
                row.migrated_tasks,
                row.migrate_msgs
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceSink;

    #[test]
    fn report_labels_time_units_per_clock() {
        let mut b = TraceBuffer::new();
        phase_events(&mut b, 0, 1, 0);
        let mut virt = b.report(100);
        assert!(virt.render().contains("time unit: virtual µs"));
        assert!(virt.to_jsonl().contains("\"clock\":\"virtual\""));
        let mut wall = b.report_with_clock(100, ClockKind::WallMonotonic);
        assert!(wall.render().contains("time unit: wall-clock µs"));
        assert!(wall.to_jsonl().contains("\"clock\":\"wall\""));
    }

    fn phase_events(b: &mut TraceBuffer, node: usize, p: u32, t0: Time) {
        b.record(
            t0,
            node,
            TraceEvent::StageBegin {
                stage: SysStage::IdleDetect,
                phase: p,
            },
        );
        b.record(
            t0 + 10,
            node,
            TraceEvent::StageEnd {
                stage: SysStage::IdleDetect,
                phase: p,
            },
        );
        b.record(
            t0 + 10,
            node,
            TraceEvent::PhaseBegin {
                kind: PhaseKind::System,
                index: p,
            },
        );
        b.record(
            t0 + 10,
            node,
            TraceEvent::StageBegin {
                stage: SysStage::LoadCollect,
                phase: p,
            },
        );
        b.record(
            t0 + 30,
            node,
            TraceEvent::StageEnd {
                stage: SysStage::LoadCollect,
                phase: p,
            },
        );
        b.record(t0 + 30, node, TraceEvent::LoadSample { load: 5 });
        b.record(
            t0 + 60,
            node,
            TraceEvent::StageBegin {
                stage: SysStage::Migrate,
                phase: p,
            },
        );
        b.record(t0 + 70, node, TraceEvent::MigrateOut { to: 1, count: 3 });
        b.record(
            t0 + 80,
            node,
            TraceEvent::StageEnd {
                stage: SysStage::Migrate,
                phase: p,
            },
        );
        b.record(
            t0 + 80,
            node,
            TraceEvent::PhaseEnd {
                kind: PhaseKind::System,
                index: p,
            },
        );
    }

    #[test]
    fn aggregates_phase_and_stage_durations() {
        let mut b = TraceBuffer::new();
        phase_events(&mut b, 0, 1, 100);
        phase_events(&mut b, 1, 1, 120);
        let mut rep = b.report(1000);
        assert_eq!(rep.phases.len(), 1);
        let row = &mut rep.phases[0];
        assert_eq!(row.phase, 1);
        assert_eq!(row.begin, 110);
        assert_eq!(row.end, 200);
        assert_eq!(row.span_us.count(), 2);
        assert_eq!(row.span_us.p50(), 70);
        assert_eq!(row.load_collect_us.p50(), 20);
        assert_eq!(row.migrated_tasks, 6);
        assert_eq!(row.migrate_msgs, 2);
        assert_eq!(rep.idle_detect_us.count(), 2);
    }

    #[test]
    fn open_phase_closed_at_end_time() {
        let mut b = TraceBuffer::new();
        b.record(
            900,
            0,
            TraceEvent::PhaseBegin {
                kind: PhaseKind::System,
                index: 4,
            },
        );
        let rep = b.report(1000);
        assert_eq!(rep.phases.len(), 1);
        let mut row = rep.phases[0].clone();
        assert_eq!(row.span_us.max(), 100);
        assert_eq!(row.end, 1000);
        let _ = row.span_us.p50();
    }

    #[test]
    fn task_and_queue_summary() {
        let mut b = TraceBuffer::new();
        for (hops, grain) in [(0u32, 100u64), (2, 300), (0, 200)] {
            b.record(
                0,
                0,
                TraceEvent::TaskExec {
                    task: 1,
                    round: 0,
                    origin: 0,
                    hops,
                    grain_us: grain,
                    dispatch_us: 25,
                },
            );
        }
        b.record(5, 0, TraceEvent::QueueDepth { depth: 9 });
        b.record(6, 0, TraceEvent::Barrier { round: 1 });
        let mut rep = b.report(10);
        assert_eq!(rep.tasks, 3);
        assert_eq!(rep.nonlocal_tasks, 1);
        assert_eq!(rep.peak_queue_depth, 9);
        assert_eq!(rep.rounds, 2);
        assert_eq!(rep.task_grain_us.p50(), 200);
        let text = rep.render();
        assert!(text.contains("3 tasks (1 non-local)"));
        assert!(text.contains("no system phases"));
        let jsonl = rep.to_jsonl();
        assert!(jsonl.starts_with("{\"type\":\"summary\""));
    }

    #[test]
    fn jsonl_has_one_line_per_phase_plus_summary() {
        let mut b = TraceBuffer::new();
        phase_events(&mut b, 0, 1, 0);
        phase_events(&mut b, 0, 2, 500);
        let mut rep = b.report(1000);
        let jsonl = rep.to_jsonl();
        assert_eq!(jsonl.lines().count(), 3);
        assert!(jsonl.contains("\"type\":\"phase\",\"phase\":2"));
        let table = rep.render();
        assert!(table.contains("system phases (2)"));
    }
}
