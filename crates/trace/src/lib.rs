//! Structured event tracing for the RIPS reproduction.
//!
//! The paper's whole argument decomposes parallel time into user work,
//! system overhead, and idle time (Table I's `T`/`Th`/`Ti`) and reasons
//! about *phase-level* behaviour: how long system phases take, how many
//! tasks migrate, how fast the ALL/ANY idle-detection protocols fire.
//! The simulator's aggregate counters (`RunStats`) can say *that* one
//! scheduler beats another; this crate records *why*, as a stream of
//! typed [`TraceEvent`]s emitted by the engine, the policy kernel, and
//! the RIPS phase machinery.
//!
//! # Architecture
//!
//! * A [`TraceSink`] receives `(time, node, event)` records. The
//!   canonical sink is [`TraceBuffer`], which just collects them.
//! * A [`Tracer`] is a cheap cloneable handle held by the instrumented
//!   layers. When no sink is installed it holds `None` and every
//!   [`Tracer::emit`] is a single branch — the event payload is built
//!   inside a closure that is never evaluated, so tracing is free when
//!   off (the golden tests pin this bit-for-bit).
//! * [`with_sink`] installs a sink for the duration of a closure via a
//!   thread-local, so *any* scheduler run — including ones reached
//!   through the scheduler registry's type-erased constructors — can be
//!   traced without threading a parameter through every signature.
//! * Exporters turn a [`TraceBuffer`] into artifacts: a Chrome
//!   trace-event / Perfetto JSON file ([`chrome_trace_json`]) and a
//!   structured per-phase report ([`PhaseReport`]).
//! * [`validate`] checks well-formedness: balanced and properly nested
//!   begin/end spans, per-node monotone span timestamps, and strictly
//!   increasing system-phase indices.
//!
//! This crate is dependency-free (it sits *below* `rips-desim` in the
//! crate graph), so it defines its own aliases for simulated time and
//! node ids; both match the workspace-wide conventions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
pub mod flight;
pub mod metrics_rt;
mod report;

pub use chrome::chrome_trace_json;
pub use flight::{FlightRecorder, SharedFlight};
pub use metrics_rt::{with_metrics, with_metrics_clocked, CycleClock, Meter, MetricsRegistry};
pub use report::{PhaseReport, PhaseRow};

use std::cell::RefCell;
use std::sync::{Arc, Mutex};

/// Time in microseconds — virtual (matches `rips_desim::Time`) or
/// wall-clock monotonic, depending on the installed [`Clock`].
pub type Time = u64;

/// Node identifier (matches `rips_topology::NodeId`).
pub type NodeId = usize;

/// What kind of time a trace's timestamps are measured in.
///
/// The simulator stamps events with *virtual* microseconds computed by
/// its cost model; the live execution backend (`rips-live`) stamps them
/// with *wall-clock* microseconds read from a monotonic clock. Both are
/// µs and both satisfy [`validate`]'s per-node monotonicity, but they
/// must never be compared against each other — exporters label them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ClockKind {
    /// Simulated time from the discrete-event engine's cost model.
    #[default]
    Virtual,
    /// Real elapsed time from a monotonic clock.
    WallMonotonic,
}

impl ClockKind {
    /// Human-readable unit label used by exporters.
    pub fn label(self) -> &'static str {
        match self {
            ClockKind::Virtual => "virtual µs",
            ClockKind::WallMonotonic => "wall-clock µs",
        }
    }

    /// Short machine-readable name used in JSONL output.
    pub fn name(self) -> &'static str {
        match self {
            ClockKind::Virtual => "virtual",
            ClockKind::WallMonotonic => "wall",
        }
    }
}

/// A pluggable time source attached to an installed sink.
///
/// The simulator's emitters compute timestamps themselves (virtual time
/// travels with every event), so [`VirtualClock::now_us`] is never
/// meaningful and returns 0. A live backend installs a wall-clock
/// implementation (defined in `rips-live`, the one crate allowed to
/// read `Instant`) and uses the *same* clock instance for execution
/// pacing and trace stamping, so exported spans line up with reality.
pub trait Clock: Send + Sync {
    /// Microseconds elapsed on this clock since its epoch.
    fn now_us(&self) -> Time;
    /// What kind of time this clock measures.
    fn kind(&self) -> ClockKind;
}

/// The default clock: virtual time, carried by the emitters themselves.
#[derive(Debug, Clone, Copy, Default)]
pub struct VirtualClock;

impl Clock for VirtualClock {
    fn now_us(&self) -> Time {
        0
    }
    fn kind(&self) -> ClockKind {
        ClockKind::Virtual
    }
}

/// Whether a phase span covers user execution or the scheduling system
/// phase — the paper's fundamental dichotomy ("computation proceeds in
/// alternating user phases and system phases").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseKind {
    /// User phase: nodes execute application tasks.
    User,
    /// System phase: execution is frozen while the scheduler runs.
    System,
}

impl PhaseKind {
    /// Display name used by exporters.
    pub fn name(self) -> &'static str {
        match self {
            PhaseKind::User => "user",
            PhaseKind::System => "system",
        }
    }
}

/// Sub-stage of a system phase, in protocol order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SysStage {
    /// From a node's local transfer condition turning true to the node
    /// actually entering the system phase — the latency of the ANY/ALL
    /// (or periodic-poll) idle-detection protocol as seen by that node.
    IdleDetect,
    /// From entering the system phase to the node's load being
    /// reported into the collective.
    LoadCollect,
    /// The parallel scheduling algorithm (MWA/TWA/DEM) computing the
    /// transfer plan — recorded on the plan-computing node only.
    Plan,
    /// Executing this node's share of the plan: draining the RTS queue
    /// and packing/sending migrated tasks.
    Migrate,
}

impl SysStage {
    /// Display name used by exporters.
    pub fn name(self) -> &'static str {
        match self {
            SysStage::IdleDetect => "idle-detect",
            SysStage::LoadCollect => "load-collect",
            SysStage::Plan => "plan",
            SysStage::Migrate => "migrate",
        }
    }
}

/// One typed trace event. The emitting node and timestamp travel beside
/// the event (see [`TraceSink::record`]), so events carry only what the
/// node itself cannot be assumed to know.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A user or system phase opens on this node.
    PhaseBegin {
        /// User or system.
        kind: PhaseKind,
        /// Phase index (RIPS phase counter; user phase `p` follows
        /// system phase `p`).
        index: u32,
    },
    /// The matching phase closes.
    PhaseEnd {
        /// User or system.
        kind: PhaseKind,
        /// Phase index.
        index: u32,
    },
    /// A system-phase sub-stage opens on this node.
    StageBegin {
        /// Which sub-stage.
        stage: SysStage,
        /// The system phase it belongs to.
        phase: u32,
    },
    /// The matching sub-stage closes.
    StageEnd {
        /// Which sub-stage.
        stage: SysStage,
        /// The system phase it belongs to.
        phase: u32,
    },
    /// One task executed. Emitted at the start of the task's grain
    /// (dispatch overhead already charged), so exporters can draw the
    /// execution as a complete span of length `grain_us`.
    TaskExec {
        /// Task id within its round's forest.
        task: u64,
        /// Round index.
        round: u32,
        /// Node that generated the task.
        origin: NodeId,
        /// Topology hops between origin and executing node (0 = local).
        hops: u32,
        /// Execution time of the grain (µs).
        grain_us: Time,
        /// Dispatch overhead charged before the grain (µs).
        dispatch_us: Time,
    },
    /// Tasks created on this node (block-distributed round roots or
    /// children of a completed task).
    Spawn {
        /// Round the tasks belong to.
        round: u32,
        /// How many were created.
        count: u32,
    },
    /// A migration batch departed toward `to`.
    MigrateOut {
        /// Destination node.
        to: NodeId,
        /// Tasks in the batch.
        count: u32,
    },
    /// A migration batch from `from` was accepted into the queue.
    MigrateIn {
        /// Source node.
        from: NodeId,
        /// Tasks in the batch.
        count: u32,
    },
    /// This node announced the round barrier (it completed the round's
    /// last task, or — under RIPS — detected termination in an empty
    /// system phase).
    Barrier {
        /// The completed round.
        round: u32,
    },
    /// A new round begins on this node.
    RoundBegin {
        /// The opening round.
        round: u32,
    },
    /// Ready-queue depth sample, taken after a queue transition.
    QueueDepth {
        /// Queue length after the transition.
        depth: u32,
    },
    /// The load this node reported into a system phase (under the
    /// configured load metric: task count or estimated weight).
    LoadSample {
        /// Reported load.
        load: i64,
    },
    /// The engine registered an outgoing message (emitted at effect
    /// application, so its timestamp may precede span events the
    /// handler emitted later — instants are exempt from the per-node
    /// monotonicity check).
    MsgSend {
        /// Destination node.
        to: NodeId,
        /// Payload bytes.
        bytes: u64,
        /// Route length in hops.
        hops: u32,
    },
    /// The live backend flushed one batched packet toward `to`
    /// (instant; the batch-size distribution measures how well the
    /// outbox coalesces protocol chatter).
    BatchSend {
        /// Destination node.
        to: NodeId,
        /// Kernel messages coalesced into the packet.
        msgs: u32,
    },
    /// Occupancy sample of a live node's receive rings, taken as a
    /// packet is drained (ring transport only; counts packets still
    /// queued across all source rings).
    RingDepth {
        /// Packets queued across this node's receive rings.
        depth: u32,
    },
    /// A tenant handed one job to the serve layer's admission
    /// controller (serve timeline; emitted on node 0).
    JobSubmit {
        /// Submitting tenant.
        tenant: u32,
        /// Serve-wide job id (submission order).
        job: u64,
    },
    /// Admission rejected the job — pending bound or tenant quota
    /// exceeded. A shed job must never later dispatch.
    JobShed {
        /// Submitting tenant.
        tenant: u32,
        /// Serve-wide job id.
        job: u64,
    },
    /// The fairness layer handed the job to the fleet. Until the
    /// matching [`TraceEvent::JobComplete`], every task event belongs
    /// to this job — windows never overlap.
    JobDispatch {
        /// Owning tenant.
        tenant: u32,
        /// Serve-wide job id.
        job: u64,
        /// Tasks the job's workload announces (the per-job
        /// conservation ground truth).
        tasks: u64,
    },
    /// The fleet finished the job and the serve layer recorded its
    /// latency.
    JobComplete {
        /// Owning tenant.
        tenant: u32,
        /// Serve-wide job id.
        job: u64,
        /// Tasks the backend reports having executed.
        executed: u64,
    },
}

/// Receiver of trace records.
pub trait TraceSink {
    /// One event at `time_us` on `node`.
    fn record(&mut self, time_us: Time, node: NodeId, event: TraceEvent);
}

/// One recorded event, as stored by [`TraceBuffer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Virtual timestamp (µs).
    pub time: Time,
    /// Emitting node.
    pub node: NodeId,
    /// The event.
    pub event: TraceEvent,
}

/// The canonical sink: collects every record in emission order.
/// Exporters ([`chrome_trace_json`], [`TraceBuffer::report`]) and the
/// [`validate`] checker consume the collected stream.
#[derive(Debug, Default)]
pub struct TraceBuffer {
    /// Recorded events in emission order.
    pub records: Vec<Record>,
}

impl TraceBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Highest node id seen plus one (0 for an empty trace).
    pub fn num_nodes(&self) -> usize {
        self.records.iter().map(|r| r.node + 1).max().unwrap_or(0)
    }

    /// Aggregates the stream into a [`PhaseReport`]; spans still open
    /// at `end_time` (e.g. the final termination phase, which ends when
    /// the machine halts) are closed there. Timestamps are labelled as
    /// virtual time; use [`TraceBuffer::report_with_clock`] for traces
    /// recorded under another [`ClockKind`].
    pub fn report(&self, end_time: Time) -> PhaseReport {
        self.report_with_clock(end_time, ClockKind::Virtual)
    }

    /// [`TraceBuffer::report`] with an explicit time-unit label, for
    /// traces stamped by a non-virtual clock (the live backend).
    pub fn report_with_clock(&self, end_time: Time, clock: ClockKind) -> PhaseReport {
        let mut rep = report::build(self, end_time);
        rep.clock = clock;
        rep
    }

    /// Renders the stream as Chrome trace-event JSON (see
    /// [`chrome_trace_json`]).
    pub fn chrome_json(&self, label: &str, end_time: Time) -> String {
        chrome_trace_json(self, label, end_time)
    }
}

impl TraceSink for TraceBuffer {
    fn record(&mut self, time_us: Time, node: NodeId, event: TraceEvent) {
        self.records.push(Record {
            time: time_us,
            node,
            event,
        });
    }
}

/// Fan-out sink: every record goes to both halves, in order. Lets an
/// online consumer (e.g. the invariant auditor in `rips-audit`) ride
/// beside a [`TraceBuffer`] destined for exporters in a single
/// [`with_sink`] install — and nests, for wider fan-outs.
#[derive(Debug, Default)]
pub struct Tee<A, B>(
    /// First receiver (records first).
    pub A,
    /// Second receiver.
    pub B,
);

impl<A: TraceSink, B: TraceSink> TraceSink for Tee<A, B> {
    fn record(&mut self, time_us: Time, node: NodeId, event: TraceEvent) {
        self.0.record(time_us, node, event.clone());
        self.1.record(time_us, node, event);
    }
}

/// An installed sink plus the clock its timestamps come from.
#[derive(Clone)]
struct Installed {
    sink: Arc<Mutex<dyn TraceSink + Send>>,
    clock: Arc<dyn Clock>,
}

thread_local! {
    static CURRENT: RefCell<Option<Installed>> = const { RefCell::new(None) };
}

/// Un-poisons a sink mutex: if a node thread panicked mid-record, the
/// collected prefix is still the best evidence available.
fn lock_sink<'a>(
    sink: &'a Mutex<dyn TraceSink + Send + 'static>,
) -> std::sync::MutexGuard<'a, dyn TraceSink + Send + 'static> {
    sink.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Installs `sink` as the thread's active trace sink, runs `f`, and
/// returns the sink together with `f`'s result. Instrumented layers
/// pick the sink up via [`Tracer::current`] when a run is constructed.
/// The sink is stamped by the default [`VirtualClock`]; a live backend
/// uses [`with_sink_clocked`] instead.
///
/// The previous sink (if any) is restored afterwards, and the install
/// is cleared even if `f` panics.
///
/// # Panics
/// Panics if an instrumented component retains a handle on the sink
/// past the end of `f` (runs release their tracers when they return).
pub fn with_sink<S: TraceSink + Send + 'static, R>(sink: S, f: impl FnOnce() -> R) -> (S, R) {
    with_sink_clocked(sink, Arc::new(VirtualClock), f)
}

/// [`with_sink`] with an explicit time source: tracers cloned under the
/// install report `clock.kind()` and can read `clock.now_us()`. The
/// sink is shared behind a mutex, so tracers cloned from this install
/// may emit from *other* threads spawned inside `f` (the live backend's
/// node threads), as long as they are joined before `f` returns.
pub fn with_sink_clocked<S: TraceSink + Send + 'static, R>(
    sink: S,
    clock: Arc<dyn Clock>,
    f: impl FnOnce() -> R,
) -> (S, R) {
    struct Restore(Option<Installed>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            CURRENT.with(|c| *c.borrow_mut() = prev);
        }
    }

    let cell: Arc<Mutex<S>> = Arc::new(Mutex::new(sink));
    let erased: Arc<Mutex<dyn TraceSink + Send>> = Arc::clone(&cell) as _;
    let prev = CURRENT.with(|c| {
        c.borrow_mut().replace(Installed {
            sink: erased,
            clock,
        })
    });
    let restore = Restore(prev);
    let out = f();
    drop(restore);
    let sink = Arc::try_unwrap(cell)
        .unwrap_or_else(|_| panic!("trace sink still referenced after the traced run"))
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    (sink, out)
}

/// A cheap cloneable handle to the active sink (or to nothing).
///
/// Instrumented layers clone one of these at run construction and call
/// [`Tracer::emit`] from their hot paths. With no sink installed the
/// handle is `None` and `emit` costs one branch; the closure building
/// the event payload is never evaluated.
#[derive(Clone, Default)]
pub struct Tracer {
    installed: Option<Installed>,
    /// Captured alongside the sink so trace emission can profile
    /// itself ([`metrics_rt::Histo::TraceEmitNs`]) and count
    /// ([`metrics_rt::Counter::TraceEvents`]) when a metrics registry
    /// is installed too. Off (a single dead branch) otherwise.
    meter: Meter,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Tracer {
    /// A disabled tracer (no sink).
    pub fn off() -> Self {
        Tracer {
            installed: None,
            meter: Meter::off(),
        }
    }

    /// The thread's current tracer: attached to the sink installed by
    /// the innermost [`with_sink`], or disabled if none is installed.
    /// Also captures the current [`Meter`] so emission self-profiles
    /// when a metrics registry is installed.
    pub fn current() -> Self {
        CURRENT.with(|c| Tracer {
            installed: c.borrow().clone(),
            meter: Meter::current(),
        })
    }

    /// Whether a sink is attached. Use to guard instrumentation that
    /// must precompute values (e.g. a timestamp before a state change).
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        self.installed.is_some()
    }

    /// The kind of time this tracer's timestamps are measured in
    /// (virtual when no sink is installed).
    pub fn clock_kind(&self) -> ClockKind {
        self.installed
            .as_ref()
            .map_or(ClockKind::Virtual, |i| i.clock.kind())
    }

    /// Reads the attached clock, or `None` when no sink is installed.
    /// Only meaningful for wall-clock installs — the [`VirtualClock`]
    /// returns 0 (virtual timestamps travel with the events).
    pub fn clock_now(&self) -> Option<Time> {
        self.installed.as_ref().map(|i| i.clock.now_us())
    }

    /// Records the event built by `f` at `(time_us, node)` if a sink is
    /// attached; otherwise does nothing and never evaluates `f`.
    #[inline(always)]
    pub fn emit(&self, time_us: Time, node: NodeId, f: impl FnOnce() -> TraceEvent) {
        if let Some(installed) = &self.installed {
            // When a clocked metrics registry rides along, time the
            // emission itself — payload construction, sink lock, and
            // record — so "trace overhead" is a measured histogram
            // (`rips_trace_emit_ns`), not a guess.
            if let Some(t0) = self.meter.now_ns() {
                lock_sink(&installed.sink).record(time_us, node, f());
                let dt = self.meter.now_ns().unwrap_or(t0).saturating_sub(t0);
                self.meter
                    .observe_at(node, metrics_rt::Histo::TraceEmitNs, dt);
            } else {
                lock_sink(&installed.sink).record(time_us, node, f());
            }
            self.meter.add_at(node, metrics_rt::Counter::TraceEvents, 1);
        }
    }
}

/// Streaming percentile accumulator for µs durations: collects samples,
/// answers nearest-rank percentiles. Backs the `p50/p95/max` columns of
/// [`PhaseReport`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Hist {
    samples: Vec<u64>,
    sorted: bool,
}

impl Hist {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, v: u64) {
        self.samples.push(v);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|&v| v as u128).sum::<u128>() as f64 / self.samples.len() as f64
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.samples.iter().copied().max().unwrap_or(0)
    }

    /// Nearest-rank percentile `q` in `[0, 100]` (0 when empty).
    pub fn percentile(&mut self, q: u32) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let rank = (self.samples.len() * q as usize).div_ceil(100);
        self.samples[rank.saturating_sub(1)]
    }

    /// Median shorthand.
    pub fn p50(&mut self) -> u64 {
        self.percentile(50)
    }

    /// 95th-percentile shorthand.
    pub fn p95(&mut self) -> u64 {
        self.percentile(95)
    }
}

/// What [`validate`] found in a well-formed trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCheck {
    /// Closed phase spans (begin/end matched).
    pub closed_phases: usize,
    /// Closed sub-stage spans.
    pub closed_stages: usize,
    /// Spans still open at the end of the stream (closed by exporters
    /// at the run's end time — e.g. the final termination phase, cut
    /// short when the machine halts).
    pub open_spans: usize,
    /// Task executions recorded.
    pub task_execs: usize,
}

/// Checks trace well-formedness:
///
/// * every `PhaseEnd`/`StageEnd` matches the innermost open span of the
///   same node (balanced, properly nested);
/// * span timestamps are monotone non-decreasing per node (instant
///   events like [`TraceEvent::MsgSend`] are exempt: the engine stamps
///   them with their intra-handler departure offset, which may precede
///   span events the handler emitted after more compute);
/// * system-phase indices are strictly increasing per node.
///
/// Spans still open when the stream ends are allowed (counted in
/// [`TraceCheck::open_spans`]): a RIPS run halts inside its final
/// termination phase, and exporters close those spans at the run's end
/// time.
pub fn validate(buf: &TraceBuffer) -> Result<TraceCheck, String> {
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    enum Open {
        Phase(PhaseKind, u32),
        Stage(SysStage, u32),
    }
    let n = buf.num_nodes();
    let mut stacks: Vec<Vec<Open>> = vec![Vec::new(); n];
    let mut last_span_ts: Vec<Time> = vec![0; n];
    let mut last_sys_phase: Vec<Option<u32>> = vec![None; n];
    let mut check = TraceCheck::default();

    for (i, r) in buf.records.iter().enumerate() {
        let is_span = matches!(
            r.event,
            TraceEvent::PhaseBegin { .. }
                | TraceEvent::PhaseEnd { .. }
                | TraceEvent::StageBegin { .. }
                | TraceEvent::StageEnd { .. }
        );
        if is_span {
            if r.time < last_span_ts[r.node] {
                return Err(format!(
                    "record {i}: span timestamp {} on node {} precedes {}",
                    r.time, r.node, last_span_ts[r.node]
                ));
            }
            last_span_ts[r.node] = r.time;
        }
        match r.event {
            TraceEvent::PhaseBegin { kind, index } => {
                if kind == PhaseKind::System {
                    if let Some(prev) = last_sys_phase[r.node] {
                        if index <= prev {
                            return Err(format!(
                                "record {i}: system phase {index} on node {} after phase {prev}",
                                r.node
                            ));
                        }
                    }
                    last_sys_phase[r.node] = Some(index);
                }
                stacks[r.node].push(Open::Phase(kind, index));
            }
            TraceEvent::PhaseEnd { kind, index } => match stacks[r.node].pop() {
                Some(Open::Phase(k, ix)) if k == kind && ix == index => check.closed_phases += 1,
                top => {
                    return Err(format!(
                        "record {i}: PhaseEnd({kind:?}, {index}) on node {} closes {top:?}",
                        r.node
                    ))
                }
            },
            TraceEvent::StageBegin { stage, phase } => {
                stacks[r.node].push(Open::Stage(stage, phase))
            }
            TraceEvent::StageEnd { stage, phase } => match stacks[r.node].pop() {
                Some(Open::Stage(s, p)) if s == stage && p == phase => check.closed_stages += 1,
                top => {
                    return Err(format!(
                        "record {i}: StageEnd({stage:?}, {phase}) on node {} closes {top:?}",
                        r.node
                    ))
                }
            },
            TraceEvent::TaskExec { .. } => check.task_execs += 1,
            _ => {}
        }
    }
    check.open_spans = stacks.iter().map(|s| s.len()).sum();
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(buf: &mut TraceBuffer, t: Time, node: NodeId, e: TraceEvent) {
        buf.record(t, node, e);
    }

    #[test]
    fn tracer_off_never_builds_events() {
        let t = Tracer::off();
        assert!(!t.enabled());
        t.emit(0, 0, || panic!("payload built while disabled"));
    }

    #[test]
    fn with_sink_installs_and_restores() {
        assert!(!Tracer::current().enabled());
        let (buf, got) = with_sink(TraceBuffer::new(), || {
            let t = Tracer::current();
            assert!(t.enabled());
            t.emit(5, 2, || TraceEvent::QueueDepth { depth: 3 });
            42
        });
        assert_eq!(got, 42);
        assert_eq!(buf.records.len(), 1);
        assert_eq!(buf.records[0].time, 5);
        assert_eq!(buf.records[0].node, 2);
        assert!(!Tracer::current().enabled());
    }

    #[test]
    fn with_sink_restores_outer_sink_when_nested() {
        let (outer, _) = with_sink(TraceBuffer::new(), || {
            let (inner, _) = with_sink(TraceBuffer::new(), || {
                Tracer::current().emit(1, 0, || TraceEvent::QueueDepth { depth: 1 });
            });
            assert_eq!(inner.records.len(), 1);
            // Back on the outer sink.
            Tracer::current().emit(2, 0, || TraceEvent::QueueDepth { depth: 2 });
        });
        assert_eq!(outer.records.len(), 1);
        assert_eq!(outer.records[0].time, 2);
    }

    #[test]
    fn clocked_install_reports_kind_and_now() {
        struct FixedClock;
        impl Clock for FixedClock {
            fn now_us(&self) -> Time {
                77
            }
            fn kind(&self) -> ClockKind {
                ClockKind::WallMonotonic
            }
        }
        assert_eq!(Tracer::current().clock_kind(), ClockKind::Virtual);
        assert_eq!(Tracer::current().clock_now(), None);
        let (buf, _) = with_sink_clocked(TraceBuffer::new(), Arc::new(FixedClock), || {
            let t = Tracer::current();
            assert_eq!(t.clock_kind(), ClockKind::WallMonotonic);
            assert_eq!(t.clock_now(), Some(77));
            t.emit(t.clock_now().unwrap(), 0, || TraceEvent::QueueDepth {
                depth: 1,
            });
        });
        assert_eq!(buf.records[0].time, 77);
        assert_eq!(Tracer::current().clock_kind(), ClockKind::Virtual);
    }

    #[test]
    fn sink_is_shared_across_threads_spawned_inside_install() {
        let (buf, _) = with_sink(TraceBuffer::new(), || {
            let tracers: Vec<Tracer> = (0..4).map(|_| Tracer::current()).collect();
            std::thread::scope(|s| {
                for (i, t) in tracers.into_iter().enumerate() {
                    s.spawn(move || {
                        t.emit(i as Time, i, || TraceEvent::QueueDepth { depth: i as u32 })
                    });
                }
            });
        });
        assert_eq!(buf.records.len(), 4);
    }

    #[test]
    fn tee_duplicates_records_in_order() {
        let (tee, _) = with_sink(Tee(TraceBuffer::new(), TraceBuffer::new()), || {
            let t = Tracer::current();
            t.emit(1, 0, || TraceEvent::QueueDepth { depth: 1 });
            t.emit(2, 1, || TraceEvent::Barrier { round: 0 });
        });
        let Tee(a, b) = tee;
        assert_eq!(a.records, b.records);
        assert_eq!(a.records.len(), 2);
    }

    #[test]
    fn hist_percentiles_nearest_rank() {
        let mut h = Hist::new();
        for v in [10, 30, 20, 50, 40] {
            h.push(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.p50(), 30);
        assert_eq!(h.p95(), 50);
        assert_eq!(h.max(), 50);
        assert!((h.mean() - 30.0).abs() < 1e-9);
        let mut empty = Hist::new();
        assert_eq!(empty.p50(), 0);
        assert_eq!(empty.max(), 0);
    }

    #[test]
    fn validate_accepts_nested_spans() {
        let mut b = TraceBuffer::new();
        ev(
            &mut b,
            0,
            0,
            TraceEvent::PhaseBegin {
                kind: PhaseKind::User,
                index: 0,
            },
        );
        ev(
            &mut b,
            10,
            0,
            TraceEvent::PhaseEnd {
                kind: PhaseKind::User,
                index: 0,
            },
        );
        ev(
            &mut b,
            10,
            0,
            TraceEvent::PhaseBegin {
                kind: PhaseKind::System,
                index: 1,
            },
        );
        ev(
            &mut b,
            10,
            0,
            TraceEvent::StageBegin {
                stage: SysStage::LoadCollect,
                phase: 1,
            },
        );
        ev(
            &mut b,
            12,
            0,
            TraceEvent::StageEnd {
                stage: SysStage::LoadCollect,
                phase: 1,
            },
        );
        let check = validate(&b).expect("well-formed");
        assert_eq!(check.closed_phases, 1);
        assert_eq!(check.closed_stages, 1);
        assert_eq!(check.open_spans, 1); // system phase still open
    }

    #[test]
    fn validate_rejects_mismatched_end() {
        let mut b = TraceBuffer::new();
        ev(
            &mut b,
            0,
            0,
            TraceEvent::PhaseBegin {
                kind: PhaseKind::User,
                index: 0,
            },
        );
        ev(
            &mut b,
            5,
            0,
            TraceEvent::PhaseEnd {
                kind: PhaseKind::System,
                index: 0,
            },
        );
        assert!(validate(&b).is_err());
    }

    #[test]
    fn validate_rejects_backwards_span_time() {
        let mut b = TraceBuffer::new();
        ev(
            &mut b,
            10,
            0,
            TraceEvent::PhaseBegin {
                kind: PhaseKind::User,
                index: 0,
            },
        );
        ev(
            &mut b,
            5,
            0,
            TraceEvent::PhaseEnd {
                kind: PhaseKind::User,
                index: 0,
            },
        );
        assert!(validate(&b).is_err());
    }

    #[test]
    fn validate_rejects_stale_phase_index() {
        let mut b = TraceBuffer::new();
        for index in [2, 2] {
            ev(
                &mut b,
                0,
                0,
                TraceEvent::PhaseBegin {
                    kind: PhaseKind::System,
                    index,
                },
            );
            ev(
                &mut b,
                1,
                0,
                TraceEvent::PhaseEnd {
                    kind: PhaseKind::System,
                    index,
                },
            );
        }
        assert!(validate(&b).is_err());
    }

    #[test]
    fn validate_exempts_instants_from_monotonicity() {
        let mut b = TraceBuffer::new();
        ev(
            &mut b,
            10,
            0,
            TraceEvent::PhaseBegin {
                kind: PhaseKind::User,
                index: 0,
            },
        );
        // The engine applies send effects after the handler returns, so
        // an instant may be stamped before the latest span event.
        ev(
            &mut b,
            3,
            0,
            TraceEvent::MsgSend {
                to: 1,
                bytes: 16,
                hops: 1,
            },
        );
        assert!(validate(&b).is_ok());
    }
}
