//! Chrome trace-event (Perfetto-loadable) JSON export.
//!
//! The output follows the Trace Event Format's JSON-object form:
//! `{"traceEvents": [...], "displayTimeUnit": "ms"}`. One process
//! (`pid` 1) represents the run; each simulated node gets one thread
//! track (`tid` = node id) up to [`MAX_THREAD_TRACKS`] nodes, beyond
//! which contiguous node ranges share a track (see [`Tracks`]).
//! Phases and sub-stages become nested `B`/`E`
//! duration spans, task executions become `X` complete spans, queue
//! depth and reported load become `C` counter series, and lifecycle
//! markers (spawns, migrations, barriers, message sends) become `i`
//! instants. Timestamps are microseconds, which is both the engine's
//! native unit and the format's.

use crate::{PhaseKind, Time, TraceBuffer, TraceEvent};

/// One process for the whole run.
const PID: usize = 1;

/// Most thread tracks the exporter will emit. Below this, every node
/// gets its own named track (the historical layout, byte-identical).
/// Above it, contiguous node ranges share a track: a 1M-node trace
/// would otherwise emit 1M `thread_name` + `thread_sort_index`
/// descriptor pairs before the first real event, which Perfetto
/// loads painfully or not at all. Grouped tracks are an aggregate
/// overview — spans from the nodes of a group interleave on one
/// track — which is the only readable rendering at that scale anyway.
pub const MAX_THREAD_TRACKS: usize = 512;

/// Node → track mapping: identity below [`MAX_THREAD_TRACKS`] nodes,
/// contiguous buckets above.
struct Tracks {
    /// Nodes per track (1 = historical per-node layout).
    group: usize,
    /// Total node count.
    n: usize,
}

impl Tracks {
    fn new(n: usize) -> Self {
        Tracks {
            group: n.div_ceil(MAX_THREAD_TRACKS).max(1),
            n,
        }
    }

    #[inline]
    fn tid(&self, node: usize) -> usize {
        node / self.group
    }

    fn count(&self) -> usize {
        self.n.div_ceil(self.group)
    }

    fn label(&self, tid: usize) -> String {
        if self.group == 1 {
            format!("node {tid}")
        } else {
            let lo = tid * self.group;
            let hi = (lo + self.group - 1).min(self.n - 1);
            format!("nodes {lo}-{hi}")
        }
    }

    /// Counter-series suffix: per node below the cap, per track above.
    fn counter_tag(&self, node: usize) -> String {
        if self.group == 1 {
            format!("n{node}")
        } else {
            format!("t{}", self.tid(node))
        }
    }
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn push_event(out: &mut String, ph: char, name: &str, ts: Time, tid: usize, extra: &str) {
    out.push_str(&format!(
        "{{\"name\":\"{}\",\"ph\":\"{ph}\",\"ts\":{ts},\"pid\":{PID},\"tid\":{tid}{extra}}},",
        esc(name)
    ));
}

fn phase_name(kind: PhaseKind, index: u32) -> String {
    format!("{} phase {index}", kind.name())
}

/// Renders a recorded trace as Chrome trace-event JSON.
///
/// `label` names the process (scheduler/app/machine); `end_time` is the
/// run's virtual end time, used to close spans that were still open
/// when the machine halted (RIPS halts inside its final termination
/// phase) so every `B` has a matching `E`.
pub fn chrome_trace_json(buf: &TraceBuffer, label: &str, end_time: Time) -> String {
    let n = buf.num_nodes();
    let tracks = Tracks::new(n);
    let mut out = String::with_capacity(buf.records.len() * 96 + 1024);
    out.push_str("{\"traceEvents\":[");

    // Metadata: process name and one named, ordered thread track per
    // node — or per contiguous node group above MAX_THREAD_TRACKS.
    out.push_str(&format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":0,\
         \"args\":{{\"name\":\"{}\"}}}},",
        esc(label)
    ));
    for tid in 0..tracks.count() {
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}},",
            esc(&tracks.label(tid))
        ));
        out.push_str(&format!(
            "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\
             \"args\":{{\"sort_index\":{tid}}}}},",
        ));
    }

    // Per-node stack of open span names, for auto-closing at end_time.
    let mut open: Vec<Vec<String>> = vec![Vec::new(); n];
    for r in &buf.records {
        let (t, node, raw) = (r.time, tracks.tid(r.node), r.node);
        match &r.event {
            TraceEvent::PhaseBegin { kind, index } => {
                let name = phase_name(*kind, *index);
                push_event(&mut out, 'B', &name, t, node, "");
                open[node].push(name);
            }
            TraceEvent::PhaseEnd { kind, index } => {
                push_event(&mut out, 'E', &phase_name(*kind, *index), t, node, "");
                open[node].pop();
            }
            TraceEvent::StageBegin { stage, .. } => {
                push_event(&mut out, 'B', stage.name(), t, node, "");
                open[node].push(stage.name().to_string());
            }
            TraceEvent::StageEnd { stage, .. } => {
                push_event(&mut out, 'E', stage.name(), t, node, "");
                open[node].pop();
            }
            TraceEvent::TaskExec {
                task,
                round,
                origin,
                hops,
                grain_us,
                dispatch_us,
            } => {
                let extra = format!(
                    ",\"dur\":{grain_us},\"args\":{{\"task\":{task},\"round\":{round},\
                     \"origin\":{origin},\"hops\":{hops},\"dispatch_us\":{dispatch_us}}}"
                );
                push_event(&mut out, 'X', "task", t, node, &extra);
            }
            TraceEvent::Spawn { round, count } => {
                let extra =
                    format!(",\"s\":\"t\",\"args\":{{\"round\":{round},\"count\":{count}}}");
                push_event(&mut out, 'i', "spawn", t, node, &extra);
            }
            TraceEvent::MigrateOut { to, count } => {
                let extra = format!(",\"s\":\"t\",\"args\":{{\"to\":{to},\"count\":{count}}}");
                push_event(&mut out, 'i', "migrate-out", t, node, &extra);
            }
            TraceEvent::MigrateIn { from, count } => {
                let extra = format!(",\"s\":\"t\",\"args\":{{\"from\":{from},\"count\":{count}}}");
                push_event(&mut out, 'i', "migrate-in", t, node, &extra);
            }
            TraceEvent::Barrier { round } => {
                let extra = format!(",\"s\":\"p\",\"args\":{{\"round\":{round}}}");
                push_event(&mut out, 'i', "barrier", t, node, &extra);
            }
            TraceEvent::RoundBegin { round } => {
                let extra = format!(",\"s\":\"t\",\"args\":{{\"round\":{round}}}");
                push_event(&mut out, 'i', "round-start", t, node, &extra);
            }
            TraceEvent::QueueDepth { depth } => {
                let extra = format!(",\"args\":{{\"depth\":{depth}}}");
                push_event(
                    &mut out,
                    'C',
                    &format!("queue depth {}", tracks.counter_tag(raw)),
                    t,
                    node,
                    &extra,
                );
            }
            TraceEvent::LoadSample { load } => {
                let extra = format!(",\"args\":{{\"load\":{load}}}");
                push_event(
                    &mut out,
                    'C',
                    &format!("load {}", tracks.counter_tag(raw)),
                    t,
                    node,
                    &extra,
                );
            }
            TraceEvent::MsgSend { to, bytes, hops } => {
                let extra = format!(
                    ",\"s\":\"t\",\"args\":{{\"to\":{to},\"bytes\":{bytes},\"hops\":{hops}}}"
                );
                push_event(&mut out, 'i', "msg-send", t, node, &extra);
            }
            TraceEvent::BatchSend { to, msgs } => {
                let extra = format!(",\"s\":\"t\",\"args\":{{\"to\":{to},\"msgs\":{msgs}}}");
                push_event(&mut out, 'i', "batch-send", t, node, &extra);
            }
            TraceEvent::RingDepth { depth } => {
                let extra = format!(",\"args\":{{\"depth\":{depth}}}");
                push_event(
                    &mut out,
                    'C',
                    &format!("ring depth {}", tracks.counter_tag(raw)),
                    t,
                    node,
                    &extra,
                );
            }
            TraceEvent::JobSubmit { tenant, job } => {
                let extra = format!(",\"s\":\"p\",\"args\":{{\"tenant\":{tenant},\"job\":{job}}}");
                push_event(&mut out, 'i', "job-submit", t, node, &extra);
            }
            TraceEvent::JobShed { tenant, job } => {
                let extra = format!(",\"s\":\"p\",\"args\":{{\"tenant\":{tenant},\"job\":{job}}}");
                push_event(&mut out, 'i', "job-shed", t, node, &extra);
            }
            TraceEvent::JobDispatch { tenant, job, tasks } => {
                let extra = format!(
                    ",\"s\":\"p\",\"args\":{{\"tenant\":{tenant},\"job\":{job},\"tasks\":{tasks}}}"
                );
                push_event(&mut out, 'i', "job-dispatch", t, node, &extra);
            }
            TraceEvent::JobComplete {
                tenant,
                job,
                executed,
            } => {
                let extra = format!(
                    ",\"s\":\"p\",\"args\":{{\"tenant\":{tenant},\"job\":{job},\
                     \"executed\":{executed}}}"
                );
                push_event(&mut out, 'i', "job-complete", t, node, &extra);
            }
        }
    }

    // Close whatever the halt left open, innermost first.
    for (node, stack) in open.iter().enumerate() {
        for name in stack.iter().rev() {
            push_event(&mut out, 'E', name, end_time, node, "");
        }
    }

    if out.ends_with(',') {
        out.pop();
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Record, SysStage, TraceSink};

    fn sample() -> TraceBuffer {
        let mut b = TraceBuffer::new();
        b.record(
            0,
            0,
            TraceEvent::PhaseBegin {
                kind: PhaseKind::User,
                index: 0,
            },
        );
        b.record(
            50,
            0,
            TraceEvent::TaskExec {
                task: 7,
                round: 0,
                origin: 1,
                hops: 2,
                grain_us: 100,
                dispatch_us: 25,
            },
        );
        b.record(200, 0, TraceEvent::QueueDepth { depth: 4 });
        b.record(
            300,
            0,
            TraceEvent::PhaseEnd {
                kind: PhaseKind::User,
                index: 0,
            },
        );
        b.record(
            300,
            0,
            TraceEvent::PhaseBegin {
                kind: PhaseKind::System,
                index: 1,
            },
        );
        b
    }

    #[test]
    fn emits_b_e_x_c_records_and_closes_open_spans() {
        let json = chrome_trace_json(&sample(), "test run", 500);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("\"displayTimeUnit\":\"ms\"}"));
        for needle in [
            "\"ph\":\"B\"",
            "\"ph\":\"E\"",
            "\"ph\":\"X\"",
            "\"ph\":\"C\"",
            "\"ph\":\"M\"",
            "\"name\":\"user phase 0\"",
            "\"name\":\"system phase 1\"",
            "\"dur\":100",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        // The open system phase is closed at end_time.
        assert!(json.contains("\"name\":\"system phase 1\",\"ph\":\"E\",\"ts\":500"));
        // Balanced B/E.
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 2);
    }

    #[test]
    fn escapes_label() {
        let b = TraceBuffer::new();
        let json = chrome_trace_json(&b, "a\"b\\c", 0);
        assert!(json.contains("a\\\"b\\\\c"));
    }

    #[test]
    fn per_node_tracks_below_threshold() {
        // At small n the layout is the historical one: tid == node,
        // one named track per node.
        let json = chrome_trace_json(&sample(), "small", 500);
        assert!(json.contains("\"args\":{\"name\":\"node 0\"}"));
        assert_eq!(json.matches("\"name\":\"thread_name\"").count(), 1);
        assert!(json.contains("queue depth n0"));
    }

    #[test]
    fn track_descriptors_capped_at_large_n() {
        // 100k distinct node ids: one instant each, far apart.
        let mut b = TraceBuffer::new();
        let n = 100_000;
        for node in 0..n {
            b.record(node as Time, node, TraceEvent::QueueDepth { depth: 1 });
        }
        let json = chrome_trace_json(&b, "large", n as Time);
        let descriptors = json.matches("\"name\":\"thread_name\"").count();
        assert!(
            descriptors <= MAX_THREAD_TRACKS,
            "expected <= {MAX_THREAD_TRACKS} track descriptors, got {descriptors}"
        );
        assert_eq!(
            descriptors,
            json.matches("\"name\":\"thread_sort_index\"").count()
        );
        // Grouped tracks carry range labels and events land on them.
        let group = n.div_ceil(MAX_THREAD_TRACKS);
        assert!(json.contains(&format!("\"args\":{{\"name\":\"nodes 0-{}\"}}", group - 1)));
        assert!(json.contains("queue depth t0"));
        let max_tid = (n - 1) / group;
        assert!(json.contains(&format!("\"tid\":{max_tid}")));
        assert!(!json.contains(&format!("\"tid\":{}", max_tid + 1)));
    }

    #[test]
    fn grouped_spans_still_balance() {
        let mut b = TraceBuffer::new();
        let n = 2000; // above MAX_THREAD_TRACKS
        for node in 0..n {
            b.record(
                node as Time,
                node,
                TraceEvent::PhaseBegin {
                    kind: PhaseKind::User,
                    index: 0,
                },
            );
        }
        // Half the nodes end their phase; the rest are closed at end.
        for node in 0..n / 2 {
            b.record(
                (n + node) as Time,
                node,
                TraceEvent::PhaseEnd {
                    kind: PhaseKind::User,
                    index: 0,
                },
            );
        }
        let json = chrome_trace_json(&b, "grouped", 10_000);
        assert_eq!(
            json.matches("\"ph\":\"B\"").count(),
            json.matches("\"ph\":\"E\"").count(),
            "B/E spans must balance even on shared tracks"
        );
    }

    #[test]
    fn stage_spans_nest_inside_phase() {
        let mut b = TraceBuffer::new();
        b.records.push(Record {
            time: 0,
            node: 3,
            event: TraceEvent::StageBegin {
                stage: SysStage::Plan,
                phase: 2,
            },
        });
        let json = chrome_trace_json(&b, "x", 9);
        assert!(json.contains("\"name\":\"plan\",\"ph\":\"B\",\"ts\":0,\"pid\":1,\"tid\":3"));
        assert!(json.contains("\"name\":\"plan\",\"ph\":\"E\",\"ts\":9"));
    }
}
