//! Stall watchdog: turns a silent live-backend hang into a diagnosed
//! failure.
//!
//! A live run can deadlock in ways the simulator cannot — a ring
//! wakeup lost to a missed park token, a node parked past a timer it
//! never armed, a halt broadcast that never reached a peer. Without
//! supervision that is an infinite hang with no evidence. The
//! watchdog samples each node's progress counter
//! ([`Counter::DispatchRounds`], bumped once per kernel dispatch by
//! the node loop) from the metrics registry on an interval, and trips
//! when *global* progress freezes for a configured number of
//! consecutive samples.
//!
//! Tripping on global progress rather than per-node progress is
//! deliberate: an idle node waiting out another node's long grain is
//! healthy, so "node i unchanged" must not alarm while anyone else
//! advances. When the whole machine freezes, the per-node counters in
//! the [`StallReport`] show who stopped first (the lowest counts are
//! the likeliest culprits), and the trip handler — the CLI dumps the
//! flight recorder — attaches the recent event history.
//!
//! The detection core ([`StallDetector`]) is pure and synchronous so
//! tests can inject stalled nodes; [`Watchdog`] wraps it in the
//! sampling thread.

use rips_trace::metrics_rt::Counter;
use rips_trace::MetricsRegistry;
use rips_verify::sync::atomic::{AtomicBool, AtomicU64};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// Watchdog tuning.
#[derive(Debug, Clone, Copy)]
pub struct WatchdogOpts {
    /// Sampling interval in milliseconds.
    pub interval_ms: u64,
    /// Consecutive frozen samples before tripping. The stall horizon
    /// is `interval_ms * stall_samples`; it must comfortably exceed
    /// the longest legitimate quiet period (a Timed-mode grain sleep,
    /// a long barrier delay).
    pub stall_samples: u32,
}

impl Default for WatchdogOpts {
    fn default() -> Self {
        // 100 ms × 20 = a 2 s stall horizon: far past any dispatch
        // round, short enough that CI hangs fail fast.
        WatchdogOpts {
            interval_ms: 100,
            stall_samples: 20,
        }
    }
}

/// What a trip observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallReport {
    /// Per-node progress counters at trip time (dispatch rounds).
    pub progress: Vec<u64>,
    /// Consecutive frozen samples that triggered the trip.
    pub frozen_for: u32,
}

impl StallReport {
    /// Nodes tied for the least progress — the likeliest culprits
    /// (the node that stopped dispatching first starved the rest).
    pub fn least_advanced(&self) -> Vec<usize> {
        let min = self.progress.iter().copied().min().unwrap_or(0);
        self.progress
            .iter()
            .enumerate()
            .filter(|(_, &p)| p == min)
            .map(|(i, _)| i)
            .collect()
    }

    /// One-line human rendering for stderr.
    pub fn summary(&self) -> String {
        format!(
            "stall: no progress for {} samples; per-node dispatch rounds {:?}; least advanced {:?}",
            self.frozen_for,
            self.progress,
            self.least_advanced()
        )
    }
}

/// Pure stall detection over a progress-counter vector. Feed it one
/// sample per interval; it answers `Some(report)` on the sample that
/// crosses the stall threshold, then re-arms (a still-frozen run
/// trips again a full window later, not every sample).
#[derive(Debug)]
pub struct StallDetector {
    last: Option<Vec<u64>>,
    frozen: u32,
    stall_samples: u32,
}

impl StallDetector {
    /// A detector tripping after `stall_samples` consecutive frozen
    /// observations (clamped to ≥ 1).
    pub fn new(stall_samples: u32) -> Self {
        StallDetector {
            last: None,
            frozen: 0,
            stall_samples: stall_samples.max(1),
        }
    }

    /// Consecutive frozen samples seen so far.
    pub fn frozen(&self) -> u32 {
        self.frozen
    }

    /// Observes one progress sample (any monotone per-node counters).
    pub fn observe(&mut self, progress: &[u64]) -> Option<StallReport> {
        match &self.last {
            Some(prev) if prev.as_slice() == progress => {
                self.frozen += 1;
            }
            _ => {
                self.last = Some(progress.to_vec());
                self.frozen = 0;
                return None;
            }
        }
        if self.frozen >= self.stall_samples {
            self.frozen = 0; // re-arm
            return Some(StallReport {
                progress: progress.to_vec(),
                frozen_for: self.stall_samples,
            });
        }
        None
    }
}

/// The sampling thread around a [`StallDetector`]. Spawn it before
/// the node threads start, stop it after they join; the run itself is
/// never killed — a trip calls the handler (dump diagnostics) and
/// bumps [`Counter::WatchdogTrips`], leaving the hang observable and
/// debuggable rather than fatal.
pub struct Watchdog {
    stop: Arc<AtomicBool>,
    trips: Arc<AtomicU64>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    /// Spawns the watchdog over `reg`'s per-shard
    /// [`Counter::DispatchRounds`], calling `on_trip` from the
    /// watchdog thread on every trip.
    pub fn spawn(
        reg: Arc<MetricsRegistry>,
        opts: WatchdogOpts,
        on_trip: impl Fn(&StallReport) + Send + 'static,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let trips = Arc::new(AtomicU64::new(0));
        let stop_t = Arc::clone(&stop);
        let trips_t = Arc::clone(&trips);
        let handle = std::thread::Builder::new()
            .name("rips-watchdog".into())
            .spawn(move || {
                let mut det = StallDetector::new(opts.stall_samples);
                let slice = Duration::from_millis(opts.interval_ms.clamp(1, 1000).min(25));
                let mut elapsed_ms = 0u64;
                while !stop_t.load(Ordering::Acquire) {
                    // Sleep in short slices so stop() returns promptly
                    // even with a long sampling interval.
                    std::thread::sleep(slice);
                    elapsed_ms += slice.as_millis() as u64;
                    if elapsed_ms < opts.interval_ms {
                        continue;
                    }
                    elapsed_ms = 0;
                    let progress = reg.counter_per_shard(Counter::DispatchRounds);
                    if let Some(report) = det.observe(&progress) {
                        trips_t.fetch_add(1, Ordering::Release);
                        reg.add(0, Counter::WatchdogTrips, 1);
                        on_trip(&report);
                    }
                }
            })
            .expect("spawn watchdog thread");
        Watchdog {
            stop,
            trips,
            handle: Some(handle),
        }
    }

    /// Trips observed so far.
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::Acquire)
    }

    /// Stops the sampling thread and returns the total trip count.
    pub fn stop(mut self) -> u64 {
        self.shutdown();
        self.trips()
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Adversarial checks of the watchdog's concurrent edges under the
/// model checker's scheduler (PR 9): the sampler reads progress
/// counters other threads bump with relaxed atomics, so the detector
/// must tolerate *stale but coherent* samples, and the stop flag must
/// terminate the sampling loop under every interleaving (including
/// bounded-stale reads). Compiled only under `--cfg rips_verify`.
#[cfg(all(test, rips_verify))]
mod verify_model {
    use super::*;
    use rips_verify::{vthread, Checker};
    use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};

    /// A sampler feeding [`StallDetector`] from relaxed per-node
    /// counters a worker is concurrently bumping. Coherence (a thread
    /// never reads a counter going backwards) is what keeps the frozen
    /// window meaningful; with genuine progress and a window larger
    /// than the bounded staleness, no schedule may trip.
    #[test]
    fn model_sampler_tolerates_stale_but_coherent_counters() {
        let stats = Checker::from_env("live.watchdog.sampler")
            .check(|| {
                let c = Arc::new(AtomicU64::new(0));
                let writer = {
                    let c = Arc::clone(&c);
                    vthread::spawn_named("worker", move || {
                        for v in 1..=2u64 {
                            c.store(v, Relaxed);
                        }
                    })
                };
                let mut det = StallDetector::new(3);
                let mut prev = 0u64;
                for _ in 0..3 {
                    let sample = c.load(Relaxed);
                    assert!(sample >= prev, "progress went backwards: {sample} < {prev}");
                    prev = sample;
                    assert_eq!(
                        det.observe(&[sample]),
                        None,
                        "three samples cannot cross a window of three"
                    );
                    vthread::yield_now();
                }
                writer.join().unwrap();
            })
            .expect("stale-tolerant sampling must be violation-free");
        assert!(stats.executions > 1);
    }

    /// The `stop` store(Release)/load(Acquire) pair shuts the sampling
    /// loop down under every interleaving — bounded staleness means the
    /// loop always observes the flag eventually (no livelock).
    #[test]
    fn model_stop_flag_terminates_sampler() {
        Checker::from_env("live.watchdog.stop")
            .check(|| {
                let stop = Arc::new(AtomicBool::new(false));
                let trips = Arc::new(AtomicU64::new(0));
                let sampler = {
                    let (stop, trips) = (Arc::clone(&stop), Arc::clone(&trips));
                    vthread::spawn_named("watchdog", move || {
                        let mut det = StallDetector::new(1);
                        while !stop.load(Acquire) {
                            if det.observe(&[0]).is_some() {
                                trips.fetch_add(1, Relaxed);
                            }
                            vthread::yield_now();
                        }
                    })
                };
                stop.store(true, Release);
                sampler.join().unwrap();
            })
            .expect("stop protocol must terminate the sampler in every schedule");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rearm_race_progress_on_the_trip_sample_restarts_the_window() {
        // The adversarial re-arm schedule: progress resumes on the very
        // next sample after a trip. The detector must treat that as a
        // fresh baseline (full window again), not as a frozen sample of
        // the old one — and a subsequent freeze must need the whole
        // window before tripping again.
        let mut det = StallDetector::new(2);
        assert_eq!(det.observe(&[5]), None, "baseline");
        assert_eq!(det.observe(&[5]), None, "frozen 1");
        assert!(det.observe(&[5]).is_some(), "frozen 2 trips");
        assert_eq!(det.observe(&[6]), None, "progress right after trip");
        assert_eq!(det.frozen(), 0, "window restarted");
        assert_eq!(det.observe(&[6]), None, "frozen 1 of new window");
        assert!(det.observe(&[6]).is_some(), "full new window trips again");
    }

    #[test]
    fn advancing_progress_never_trips() {
        let mut det = StallDetector::new(3);
        for step in 0..50u64 {
            assert_eq!(det.observe(&[step, step * 2, 1]), None);
        }
        assert_eq!(det.frozen(), 0);
    }

    #[test]
    fn single_stalled_node_does_not_trip_while_others_advance() {
        // Node 1 is frozen (injected stall) but nodes 0 and 2 keep
        // dispatching: healthy idleness, not a machine stall.
        let mut det = StallDetector::new(3);
        for step in 0..50u64 {
            assert_eq!(det.observe(&[step, 7, step]), None);
        }
    }

    #[test]
    fn global_freeze_trips_at_threshold_and_rearms() {
        let mut det = StallDetector::new(3);
        assert_eq!(det.observe(&[5, 9]), None, "baseline sample");
        assert_eq!(det.observe(&[5, 9]), None, "frozen 1");
        assert_eq!(det.observe(&[5, 9]), None, "frozen 2");
        let report = det.observe(&[5, 9]).expect("frozen 3 trips");
        assert_eq!(report.progress, vec![5, 9]);
        assert_eq!(report.frozen_for, 3);
        assert_eq!(report.least_advanced(), vec![0], "node 0 stopped first");
        // Re-armed: needs a full window again.
        assert_eq!(det.observe(&[5, 9]), None);
        assert_eq!(det.observe(&[5, 9]), None);
        assert!(det.observe(&[5, 9]).is_some(), "still frozen: trips again");
    }

    #[test]
    fn progress_resets_the_freeze_window() {
        let mut det = StallDetector::new(3);
        det.observe(&[1]);
        det.observe(&[1]);
        det.observe(&[1]);
        assert_eq!(det.observe(&[2]), None, "progress resets");
        assert_eq!(det.frozen(), 0);
        det.observe(&[2]);
        det.observe(&[2]);
        assert!(det.observe(&[2]).is_some());
    }

    #[test]
    fn watchdog_thread_trips_on_injected_stall_and_stops_clean() {
        // Registry with two shards and no writers: globally frozen
        // from the first sample, so the watchdog must trip quickly.
        let reg = MetricsRegistry::new(2);
        let seen: Arc<std::sync::Mutex<Vec<StallReport>>> = Arc::default();
        let seen_t = Arc::clone(&seen);
        let wd = Watchdog::spawn(
            Arc::clone(&reg),
            WatchdogOpts {
                interval_ms: 5,
                stall_samples: 2,
            },
            move |r| seen_t.lock().unwrap().push(r.clone()),
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while wd.trips() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let trips = wd.stop();
        assert!(trips >= 1, "frozen counters must trip the watchdog");
        assert_eq!(reg.counter_total(Counter::WatchdogTrips), trips);
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len() as u64, trips);
        assert_eq!(seen[0].progress, vec![0, 0]);
    }
}
