//! The live execution backend: real OS threads, real work, and a
//! fabric engineered so the scheduler's own chatter stays cheap — the
//! same policy kernel as the simulator.
//!
//! `rips-desim` runs every scheduler in *virtual* time on one thread;
//! this crate runs the identical [`BalancerPolicy`] implementations as
//! an SPMD program over genuine concurrency: one OS thread per node
//! and a wall-clock monotonic [`Clock`] stamping trace events. The
//! paper's protocols run for real here — ANY idle detection as an
//! initiator broadcast with phase-index dedup, ALL as tree ready/init,
//! packed task migration, and the system-phase barrier — because the
//! policies are *the same code*, dispatched through `rips-runtime`'s
//! [`ExecCtx`] seam instead of the simulator's `Ctx`.
//!
//! # The fast path
//!
//! The paper's claim only holds if scheduler communication is near
//! zero-cost, so the backend's hot loop is built around four ideas
//! (see DESIGN §8 for the full protocol):
//!
//! * **batching** ([`transport::Outbox`]): every message a dispatch
//!   handler emits is binned per destination and flushed as one
//!   [`Packet`] per touched edge when the handler returns;
//! * **sharded SPSC rings** ([`ring`]): the default [`TransportKind::Ring`]
//!   fabric gives each directed edge its own lock-free ring with
//!   park/unpark wakeups; the original mpsc mailbox survives as
//!   [`TransportKind::Mpsc`], a fallback and differential-testing
//!   oracle;
//! * **a hashed timer wheel** ([`wheel::TimerWheel`]) per node thread,
//!   checked only at dispatch boundaries — delay-0 EXEC self-kicks
//!   never touch the clock or a heap;
//! * **snapshot reads** for shared state: the grain table and hop
//!   tables are immutable `Arc`s, RIPS plans are published through an
//!   RCU cell (`rips_runtime::rcu`), and the [`Oracle`]'s round
//!   counters are plain atomics — no locks on the per-task path.
//!
//! # What is and is not shared with the simulator
//!
//! Shared unchanged: the policy implementations, the kernel dispatch
//! (`dispatch_start`/`dispatch_message`/`dispatch_timer`), the
//! [`Oracle`]'s round accounting, and the trace event vocabulary.
//! Replaced: virtual time becomes [`WallClock`] µs, modelled `compute`
//! charges become no-ops (live overheads are the real code path), and
//! [`ExecCtx::execute_grain`] actually runs the application closure via
//! a [`GrainRunner`] instead of charging `grain_us` of virtual time.
//!
//! # Determinism
//!
//! A live run is *not* deterministic: message interleaving follows the
//! OS scheduler. What is invariant — and what the cross-backend tests
//! pin on both transports, batched and unbatched — is everything the
//! paper's Theorem 1 protects: every task executes exactly once
//! (conservation), the solution count and the order-independent
//! execution checksum equal the simulator's, and the audited trace
//! invariants (barrier pairing, phase monotonicity) hold. Timings,
//! migration patterns, and phase counts may differ run to run.

#![warn(missing_docs)]
#![deny(unsafe_code)]

#[allow(unsafe_code)]
pub mod ring;
pub mod transport;
pub mod watchdog;
pub mod wheel;

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rips_desim::{Time, WorkKind};
use rips_runtime::{
    dispatch_message, dispatch_start, dispatch_timer, BalancerPolicy, Costs, ExecCtx, Kernel,
    KernelMsg, Oracle, TaskInstance, VerifyError,
};
use rips_taskgraph::Workload;
use rips_topology::{NodeId, Topology};
use rips_trace::metrics_rt::{Counter, CycleClock, Gauge, Histo};
use rips_trace::{Clock, ClockKind, TraceEvent};

pub use transport::{Outbox, Packet, TransportKind};
pub use watchdog::{StallDetector, StallReport, Watchdog, WatchdogOpts};
pub use wheel::TimerWheel;

use transport::{NodeRx, NodeTx, Recv};

/// Monotonic wall-clock time source, anchored at construction.
///
/// The one legitimate use of `Instant` in this workspace (see
/// RIPS-L002's allowlist): live runs measure real elapsed time. Pass
/// the *same* instance to [`rips_trace::with_sink_clocked`] and to
/// [`LiveOpts::clock`] so trace timestamps and the backend's `now()`
/// share one origin.
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    /// A clock whose µs count starts now.
    pub fn new() -> Self {
        WallClock {
            start: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_us(&self) -> Time {
        self.start.elapsed().as_micros() as Time
    }
    fn kind(&self) -> ClockKind {
        ClockKind::WallMonotonic
    }
}

impl CycleClock for WallClock {
    /// Nanosecond reads for the metrics registry's section timing
    /// ([`rips_trace::with_metrics_clocked`]); shares the µs clock's
    /// anchor so dispatch-profile histograms and trace timestamps
    /// describe the same timeline.
    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

/// What actually executing one task's grain produced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GrainResult {
    /// Order-independent fingerprint of the work (summed wrapping over
    /// all executed tasks and compared across backends — it proves both
    /// backends executed the same task multiset with the same results).
    pub checksum: u64,
    /// Solutions found by this grain (queens placements, puzzle goals).
    pub solutions: u64,
}

/// Executes the real application work behind a [`TaskInstance`].
///
/// The live backend calls this once per executed task. Implementations
/// map `(round, task)` back to the app-level closure (a queens subtree,
/// a puzzle bounded DFS, an MD interaction group) — `rips-apps` builds
/// such tables alongside its workloads.
pub trait GrainRunner: Send + Sync {
    /// Runs the grain of `inst`.
    fn run(&self, inst: &TaskInstance) -> GrainResult;
}

/// Runner for synthetic workloads with no application behind them:
/// every grain is a no-op with checksum 0.
pub struct NullRunner;

impl GrainRunner for NullRunner {
    fn run(&self, _inst: &TaskInstance) -> GrainResult {
        GrainResult::default()
    }
}

/// How the live backend realises a task's modelled `grain_us`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrainMode {
    /// Run only the real application closure. Honest CPU work; wall
    /// clock speedup then depends on the host's physical parallelism.
    Compute,
    /// Run the closure, then *also* occupy the node for the task's
    /// modelled `grain_us` (scaled by [`LiveOpts::timed_scale`]) via a
    /// sleep. This emulates the paper's grain durations: concurrency
    /// is visible even on a host with fewer cores than nodes, because
    /// sleeping nodes overlap.
    Timed,
}

/// Options for a live run.
pub struct LiveOpts {
    /// Grain realisation mode.
    pub mode: GrainMode,
    /// Scale factor applied to `grain_us` in [`GrainMode::Timed`]
    /// (e.g. 0.1 = sleep a tenth of the modelled grain).
    pub timed_scale: f64,
    /// Application closures behind the task graph.
    pub runner: Arc<dyn GrainRunner>,
    /// Time source. Defaults to a fresh [`WallClock`]; pass the clock
    /// given to [`rips_trace::with_sink_clocked`] when tracing so both
    /// share one origin.
    pub clock: Option<Arc<dyn Clock>>,
    /// Fabric carrying packets between node threads. Defaults to
    /// [`TransportKind::Ring`]; [`TransportKind::Mpsc`] is the fallback
    /// and differential-testing oracle.
    pub transport: TransportKind,
    /// Coalesce each dispatch round's messages into one packet per
    /// destination (default). Disable only to differentially test the
    /// batching layer — one message per packet, as the old backend
    /// behaved.
    pub batch: bool,
}

impl Default for LiveOpts {
    fn default() -> Self {
        LiveOpts {
            mode: GrainMode::Compute,
            timed_scale: 1.0,
            runner: Arc::new(NullRunner),
            clock: None,
            transport: TransportKind::Ring,
            batch: true,
        }
    }
}

/// Outcome of one live run — the cross-backend comparable counters
/// plus wall-clock duration.
#[derive(Debug, Clone)]
pub struct LiveOutcome {
    /// Wall-clock duration of the run (µs).
    pub wall_us: u64,
    /// Tasks executed per node.
    pub executed: Vec<u64>,
    /// Tasks executed off their origin node, total.
    pub nonlocal: u64,
    /// Wrapping sum of per-task [`GrainResult::checksum`] over every
    /// executed task (order-independent).
    pub checksum: u64,
    /// Total solutions found by executed grains.
    pub solutions: u64,
    /// Total modelled grain µs executed (for efficiency estimates).
    pub grain_us: u64,
    /// System phases (RIPS; 0 for the baselines). Filled by the caller
    /// from the policy fleet, like the simulator path does.
    pub system_phases: u32,
}

impl LiveOutcome {
    /// Outcome of running nothing on `n` nodes.
    pub fn empty(n: usize) -> Self {
        LiveOutcome {
            wall_us: 0,
            executed: vec![0; n],
            nonlocal: 0,
            checksum: 0,
            solutions: 0,
            grain_us: 0,
            system_phases: 0,
        }
    }

    /// Total tasks executed.
    pub fn total_executed(&self) -> u64 {
        self.executed.iter().sum()
    }

    /// Sanity check: every task of the workload ran exactly once
    /// (same contract as `RunOutcome::verify_complete`).
    pub fn verify_complete(&self, workload: &Workload) -> Result<(), VerifyError> {
        let expected: u64 = workload.rounds.iter().map(|r| r.len() as u64).sum();
        let executed = self.total_executed();
        match executed.cmp(&expected) {
            std::cmp::Ordering::Equal => Ok(()),
            std::cmp::Ordering::Less => Err(VerifyError::TasksLost { executed, expected }),
            std::cmp::Ordering::Greater => Err(VerifyError::DoubleExecution { executed, expected }),
        }
    }
}

/// Per-node execution context: the [`ExecCtx`] the kernel dispatch
/// sees on a live thread.
struct LiveCtx<'a, M> {
    clock: &'a dyn Clock,
    me: NodeId,
    n: usize,
    rng: &'a mut SmallRng,
    tx: &'a mut NodeTx<M>,
    outbox: &'a mut Outbox<M>,
    batch: bool,
    wheel: &'a mut TimerWheel,
    halted: &'a mut bool,
    mode: GrainMode,
    timed_scale: f64,
    runner: &'a dyn GrainRunner,
    checksum: &'a mut u64,
    solutions: &'a mut u64,
    grain_us: &'a mut u64,
    /// This node's metrics handle (disabled = one dead branch per tap).
    meter: &'a rips_trace::Meter,
    /// Nanoseconds spent inside `execute_grain` during the current
    /// dispatch round; the node loop resets it per dispatch and
    /// subtracts it from the round total to get "grain setup" —
    /// the protocol bookkeeping the ROADMAP asks to be measured.
    grain_ns: &'a mut u64,
}

impl<M: Clone> ExecCtx<M> for LiveCtx<'_, M> {
    fn now(&self) -> Time {
        self.clock.now_us()
    }
    fn me(&self) -> NodeId {
        self.me
    }
    fn num_nodes(&self) -> usize {
        self.n
    }
    fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }
    fn compute(&mut self, _dur: Time, _kind: WorkKind) {
        // Modelled CPU charges describe the simulator's cost model; on
        // a live node every overhead is the real code path it runs.
    }
    fn send(&mut self, to: NodeId, msg: M, _bytes: usize) {
        self.meter.inc(Counter::MsgsSent);
        if self.batch {
            self.outbox.push(to, msg);
        } else {
            // Unbatched differential mode: one message per packet.
            self.meter.inc(Counter::PacketsSent);
            self.tx.send(
                to,
                Packet {
                    from: self.me,
                    msgs: vec![msg],
                },
            );
        }
    }
    fn send_all(&mut self, msg: M, bytes: usize) {
        for to in 0..self.n {
            if to != self.me {
                self.send(to, msg.clone(), bytes);
            }
        }
    }
    fn signal_all(&mut self, msg: M) {
        self.send_all(msg, 0);
    }
    fn set_timer(&mut self, delay: Time, tag: u64) {
        self.wheel.set(self.clock.now_us(), delay, tag);
    }
    fn halt(&mut self) {
        *self.halted = true;
    }
    fn execute_grain(&mut self, inst: &TaskInstance) {
        let t0 = self.meter.now_ns();
        let r = self.runner.run(inst);
        *self.checksum = self.checksum.wrapping_add(r.checksum);
        *self.solutions += r.solutions;
        *self.grain_us += inst.grain_us;
        if self.mode == GrainMode::Timed {
            let us = (inst.grain_us as f64 * self.timed_scale) as u64;
            if us > 0 {
                std::thread::sleep(Duration::from_micros(us));
            }
        }
        if let Some(t0) = t0 {
            // Grain time includes the Timed-mode occupancy sleep: it
            // is the node's unavailability, which is what "grain
            // execute" means to the dispatch breakdown.
            let dt = self.meter.now_ns().unwrap_or(t0).saturating_sub(t0);
            self.meter.observe(Histo::GrainExecNs, dt);
            *self.grain_ns += dt;
        }
    }
}

/// What one node thread hands back when it exits.
struct NodeReport<P> {
    executed: u64,
    nonlocal: u64,
    checksum: u64,
    solutions: u64,
    grain_us: u64,
    policy: P,
}

/// The next thing a node loop should do, decided before any `&mut`
/// context is constructed.
enum Step<M> {
    Pkt(Packet<M>),
    Timer(u64),
    Halt,
}

#[allow(clippy::too_many_arguments)]
fn node_loop<P: BalancerPolicy>(
    me: NodeId,
    n: usize,
    mut kernel: Kernel,
    mut policy: P,
    mut tx: NodeTx<KernelMsg<P::Msg>>,
    mut rx: NodeRx<KernelMsg<P::Msg>>,
    clock: Arc<dyn Clock>,
    runner: Arc<dyn GrainRunner>,
    mode: GrainMode,
    timed_scale: f64,
    seed: u64,
    batch: bool,
) -> NodeReport<P> {
    // Register for wakeups before anything can be sent to us; the
    // guard marks us exited (even on panic) so no peer spins forever.
    let _guard = rx.register();
    let mut rng = SmallRng::seed_from_u64(seed ^ (me as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut wheel = TimerWheel::new(clock.now_us());
    let mut outbox: Outbox<KernelMsg<P::Msg>> = Outbox::new(n);
    let mut checksum = 0u64;
    let mut solutions = 0u64;
    let mut grain_us = 0u64;
    let mut grain_ns = 0u64;
    let mut halted = false;
    let tracer = kernel.oracle.tracer.clone();
    let traced = tracer.enabled();
    // This node's metrics handle, already bound to shard `me`. When a
    // clocked registry is installed the loop attributes every dispatch
    // round's nanoseconds to {grain setup, grain execute, transport
    // send/recv, timer wheel, park}; trace emission times itself
    // inside `Tracer::emit`. `prof` gates the clock reads, so an
    // unmetered run pays one dead branch per tap and reads no clocks.
    let meter = kernel.meter.clone();
    let prof = meter.now_ns().is_some();
    let metered = meter.enabled();

    macro_rules! ctx {
        () => {
            LiveCtx {
                clock: clock.as_ref(),
                me,
                n,
                rng: &mut rng,
                tx: &mut tx,
                outbox: &mut outbox,
                batch,
                wheel: &mut wheel,
                halted: &mut halted,
                mode,
                timed_scale,
                runner: runner.as_ref(),
                checksum: &mut checksum,
                solutions: &mut solutions,
                grain_us: &mut grain_us,
                meter: &meter,
                grain_ns: &mut grain_ns,
            }
        };
    }

    // One kernel dispatch, profiled: the round's total wall time lands
    // in DispatchRoundNs, and total minus the grain time accumulated by
    // `execute_grain` lands in GrainSetupNs — the per-dispatch overhead
    // the ROADMAP asks to be measured rather than guessed.
    macro_rules! dispatch_profiled {
        ($call:expr) => {
            if prof {
                grain_ns = 0;
                let t0 = meter.now_ns().unwrap_or(0);
                $call;
                let dt = meter.now_ns().unwrap_or(t0).saturating_sub(t0);
                meter.observe(Histo::DispatchRoundNs, dt);
                meter.observe(Histo::GrainSetupNs, dt.saturating_sub(grain_ns));
            } else {
                $call;
            }
            meter.inc(Counter::DispatchRounds);
        };
    }

    // Flush the outbox: one packet per touched destination, emitted at
    // every dispatch boundary. Usually empty — `is_empty` gates all
    // work, so the per-task cost of batching is one Vec peek.
    macro_rules! flush {
        () => {
            if !outbox.is_empty() {
                let send_t0 = if prof { meter.now_ns() } else { None };
                let mut packets = 0u64;
                if traced {
                    let t = clock.now_us();
                    outbox.flush(me, &mut tx, |to, len| {
                        packets += 1;
                        tracer.emit(t, me, || TraceEvent::BatchSend {
                            to,
                            msgs: len as u32,
                        })
                    });
                } else {
                    outbox.flush(me, &mut tx, |_, _| packets += 1);
                }
                meter.add(Counter::PacketsSent, packets);
                if let Some(t0) = send_t0 {
                    let dt = meter.now_ns().unwrap_or(t0).saturating_sub(t0);
                    meter.observe(Histo::TransportSendNs, dt);
                }
            }
        };
    }

    dispatch_profiled!(dispatch_start(&mut policy, &mut kernel, &mut ctx!()));
    flush!();

    while !halted {
        // Fabric first (so a busy exec loop still sees inits and task
        // arrivals promptly), then due timers, then park until one or
        // the other. EXEC timers are armed with delay 0, so an empty
        // fabric never sleeps past queued work.
        let recv_t0 = if prof { meter.now_ns() } else { None };
        let polled = rx.try_recv();
        if let Some(t0) = recv_t0 {
            let dt = meter.now_ns().unwrap_or(t0).saturating_sub(t0);
            meter.observe(Histo::TransportRecvNs, dt);
        }
        let step = match polled {
            Recv::Packet(p) => Step::Pkt(p),
            Recv::Halt => Step::Halt,
            Recv::Empty => {
                let wheel_t0 = if prof { meter.now_ns() } else { None };
                let now = clock.now_us();
                let due = wheel.pop_due(now);
                let deadline = if due.is_none() {
                    wheel.next_deadline()
                } else {
                    None
                };
                if let Some(t0) = wheel_t0 {
                    let dt = meter.now_ns().unwrap_or(t0).saturating_sub(t0);
                    meter.observe(Histo::TimerWheelNs, dt);
                }
                match due {
                    Some(tag) => Step::Timer(tag),
                    None => {
                        let park_t0 = if prof { meter.now_ns() } else { None };
                        let parked = rx.recv_wait(deadline, clock.as_ref());
                        if let Some(t0) = park_t0 {
                            let dt = meter.now_ns().unwrap_or(t0).saturating_sub(t0);
                            meter.observe(Histo::ParkNs, dt);
                        }
                        match parked {
                            Recv::Packet(p) => Step::Pkt(p),
                            Recv::Halt => Step::Halt,
                            Recv::Empty => continue,
                        }
                    }
                }
            }
        };
        match step {
            Step::Halt => break,
            Step::Pkt(p) => {
                if traced || metered {
                    if let Some(depth) = rx.occupancy() {
                        meter.set_gauge(Gauge::RingDepth, depth);
                        if traced {
                            tracer.emit(clock.now_us(), me, || TraceEvent::RingDepth {
                                depth: depth as u32,
                            });
                        }
                    }
                }
                let from = p.from;
                for msg in p.msgs {
                    dispatch_profiled!(dispatch_message(
                        &mut policy,
                        &mut kernel,
                        &mut ctx!(),
                        from,
                        msg
                    ));
                    if halted {
                        break;
                    }
                }
            }
            Step::Timer(tag) => {
                meter.inc(Counter::TimerFires);
                dispatch_profiled!(dispatch_timer(&mut policy, &mut kernel, &mut ctx!(), tag));
            }
        }
        flush!();
    }
    if halted {
        // This node's handler called `halt()` (it detected global
        // termination): flush stragglers, then wake everyone else out
        // of their parks/receives. Sends to exited nodes are no-ops.
        flush!();
        tx.broadcast_halt();
    }
    NodeReport {
        executed: kernel.exec.executed,
        nonlocal: kernel.exec.nonlocal_executed,
        checksum,
        solutions,
        grain_us,
        policy,
    }
}

/// Runs `workload` on `topo.len()` OS threads under `policy` instances
/// built by `make` (one per node), returning the outcome and the final
/// policy states — the live counterpart of `rips_runtime::run_policy`.
///
/// Tracing: if a sink is installed via
/// [`rips_trace::with_sink_clocked`] around this call, every node
/// thread emits through it (the sink is mutex-shared); pass the same
/// clock in [`LiveOpts::clock`] so event timestamps and trace
/// bookkeeping agree.
pub fn run_live<P, F>(
    workload: Arc<Workload>,
    topo: Arc<dyn Topology>,
    costs: Costs,
    seed: u64,
    opts: LiveOpts,
    make: F,
) -> (LiveOutcome, Vec<P>)
where
    P: BalancerPolicy + Send,
    P::Msg: Send,
    F: FnMut(NodeId) -> P,
{
    let n = topo.len();
    if workload.rounds.is_empty() {
        return (LiveOutcome::empty(n), Vec::new());
    }
    let clock: Arc<dyn Clock> = opts
        .clock
        .clone()
        .unwrap_or_else(|| Arc::new(WallClock::new()));
    let oracle = Oracle::new(Arc::clone(&workload), Arc::clone(&topo), costs);
    let mut make = make;
    let fabric = transport::build::<KernelMsg<P::Msg>>(opts.transport, n);
    let started = clock.now_us();
    let mut reports: Vec<Option<NodeReport<P>>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = fabric
            .into_iter()
            .enumerate()
            .map(|(me, (tx, rx))| {
                let kernel = Kernel::new(me, oracle.clone());
                let policy = make(me);
                let clock = Arc::clone(&clock);
                let runner = Arc::clone(&opts.runner);
                let (mode, timed_scale, batch) = (opts.mode, opts.timed_scale, opts.batch);
                scope.spawn(move || {
                    node_loop(
                        me,
                        n,
                        kernel,
                        policy,
                        tx,
                        rx,
                        clock,
                        runner,
                        mode,
                        timed_scale,
                        seed,
                        batch,
                    )
                })
            })
            .collect();
        for (me, h) in handles.into_iter().enumerate() {
            reports[me] = Some(h.join().expect("live node thread panicked"));
        }
    });
    let wall_us = clock.now_us().saturating_sub(started);
    let mut out = LiveOutcome::empty(n);
    out.wall_us = wall_us;
    let mut policies = Vec::with_capacity(n);
    for (me, rep) in reports.into_iter().enumerate() {
        let rep = rep.expect("every node reported");
        out.executed[me] = rep.executed;
        out.nonlocal += rep.nonlocal;
        out.checksum = out.checksum.wrapping_add(rep.checksum);
        out.solutions += rep.solutions;
        out.grain_us += rep.grain_us;
        policies.push(rep.policy);
    }
    (out, policies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rips_taskgraph::flat_uniform;
    use rips_topology::Mesh2D;

    /// Runner whose checksum encodes the task id, so double or missed
    /// executions shift the sum.
    struct IdRunner;
    impl GrainRunner for IdRunner {
        fn run(&self, inst: &TaskInstance) -> GrainResult {
            GrainResult {
                checksum: (inst.task as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                solutions: 1,
            }
        }
    }

    fn expected_checksum(tasks: u64) -> u64 {
        (0..tasks).fold(0u64, |acc, t| {
            acc.wrapping_add((t + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        })
    }

    fn opts_for(transport: TransportKind, batch: bool) -> LiveOpts {
        LiveOpts {
            runner: Arc::new(IdRunner),
            transport,
            batch,
            ..LiveOpts::default()
        }
    }

    #[test]
    fn wall_clock_is_monotonic_and_wall_kind() {
        let c = WallClock::new();
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a);
        assert_eq!(c.kind(), ClockKind::WallMonotonic);
    }

    #[test]
    fn random_policy_runs_live_and_conserves_tasks() {
        // All four fabric configurations must agree with the workload.
        for transport in [TransportKind::Ring, TransportKind::Mpsc] {
            for batch in [true, false] {
                let w = Arc::new(flat_uniform(40, 5, 10, 7));
                let topo: Arc<dyn Topology> = Arc::new(Mesh2D::near_square(4));
                let (out, _) = run_live(
                    Arc::clone(&w),
                    topo,
                    Costs::default(),
                    3,
                    opts_for(transport, batch),
                    rips_balancers::random_policy,
                );
                out.verify_complete(&w).expect("conservation");
                assert_eq!(out.total_executed(), 40);
                assert_eq!(out.solutions, 40);
                assert_eq!(out.checksum, expected_checksum(40));
            }
        }
    }

    #[test]
    fn empty_workload_short_circuits() {
        let w = Arc::new(Workload {
            name: "empty".into(),
            rounds: Vec::new(),
        });
        let topo: Arc<dyn Topology> = Arc::new(Mesh2D::near_square(2));
        let (out, ps) = run_live(
            w,
            topo,
            Costs::default(),
            0,
            LiveOpts::default(),
            rips_balancers::random_policy,
        );
        assert_eq!(out.total_executed(), 0);
        assert!(ps.is_empty());
    }

    #[test]
    fn multi_round_workload_completes_live() {
        for transport in [TransportKind::Ring, TransportKind::Mpsc] {
            let one = flat_uniform(12, 2, 4, 1).rounds[0].clone();
            let w = Arc::new(Workload {
                name: "three-round".into(),
                rounds: vec![one.clone(), one.clone(), one],
            });
            let topo: Arc<dyn Topology> = Arc::new(Mesh2D::near_square(4));
            let (out, _) = run_live(
                Arc::clone(&w),
                topo,
                Costs::default(),
                5,
                opts_for(transport, true),
                rips_balancers::random_policy,
            );
            out.verify_complete(&w).expect("conservation over rounds");
            assert_eq!(out.total_executed(), 36);
        }
    }

    #[test]
    fn rips_runs_live_with_fleet() {
        use rips_core::{Machine, RipsConfig, RipsFleet};
        let w = Arc::new(flat_uniform(30, 5, 10, 2));
        let fleet = RipsFleet::new(RipsConfig::default(), Machine::Mesh(Mesh2D::near_square(4)));
        let topo = fleet.topology();
        let (out, policies) = run_live(
            Arc::clone(&w),
            topo,
            Costs::default(),
            1,
            LiveOpts::default(),
            |me| fleet.make(me),
        );
        drop(policies);
        let (phases, _logs) = fleet.finish();
        out.verify_complete(&w).expect("conservation");
        assert!(phases >= 1, "RIPS opens with a system phase");
    }

    #[test]
    fn rips_runs_live_on_mpsc_fallback() {
        use rips_core::{Machine, RipsConfig, RipsFleet};
        let w = Arc::new(flat_uniform(30, 5, 10, 2));
        let fleet = RipsFleet::new(RipsConfig::default(), Machine::Mesh(Mesh2D::near_square(4)));
        let topo = fleet.topology();
        let opts = LiveOpts {
            transport: TransportKind::Mpsc,
            ..LiveOpts::default()
        };
        let (out, policies) = run_live(Arc::clone(&w), topo, Costs::default(), 1, opts, |me| {
            fleet.make(me)
        });
        drop(policies);
        let (phases, _logs) = fleet.finish();
        out.verify_complete(&w).expect("conservation");
        assert!(phases >= 1);
    }
}
