//! Fixed-capacity single-producer/single-consumer ring buffers.
//!
//! The live backend shards its fabric into one SPSC ring per directed
//! edge, so every ring has exactly one writer thread and one reader
//! thread by construction. That restriction is what lets the ring get
//! away with two relaxed-ish atomics per operation and no locks: the
//! producer is the only thread that writes `tail`, the consumer is the
//! only thread that writes `head`, and each side only *reads* the
//! other's counter with `Acquire` to learn which slots it may touch.
//!
//! Exclusivity is enforced by the type system, not by discipline:
//! [`spsc`] returns a `(RingTx, RingRx)` pair, neither handle is
//! `Clone`, and `push`/`pop` take `&mut self`, so at any instant at
//! most one thread can be inside each side.
//!
//! Head and tail live on separate cache lines ([`CachePadded`]) so the
//! producer and consumer don't false-share a line and ping-pong it
//! between cores on every operation — the classic SPSC pitfall.
//!
//! All synchronization goes through the `rips_verify::sync` seam: in a
//! normal build that is a zero-cost re-export of `std::sync::atomic`
//! plus a transparent `UnsafeCell` wrapper, while under
//! `--cfg rips_verify` every access becomes a scheduling point of the
//! bounded model checker (`verify_model` below explores the protocol
//! and proves each `ord(..)` site is load-bearing via the mutation
//! sweep). Slot accesses avoid creating references entirely — raw
//! pointer reads/writes through `MaybeUninit`'s transparent layout —
//! so the aliasing story is Miri-clean.
//!
//! This module is one of the two places in the workspace that use
//! `unsafe` (slot storage is `UnsafeCellWrap<MaybeUninit<T>>`); the
//! audit lint RIPS-L004 pins the allowlist to exactly this file plus
//! the RCU cell, and the safety argument is spelled out on each
//! `unsafe` block.

// rips-lint: allow(L004, SPSC slot access is proven exclusive by the
// head/tail protocol; see module docs and per-block safety comments)
use std::mem::MaybeUninit;
use std::sync::Arc;

use rips_verify::sync::atomic::{AtomicUsize, Ordering};
use rips_verify::sync::cell::UnsafeCellWrap;
use rips_verify::sync::ord;

/// Pads (and aligns) a value to a 64-byte cache line so two frequently
/// written atomics never share a line.
#[repr(align(64))]
pub struct CachePadded<T>(pub T);

struct RingInner<T> {
    mask: usize,
    /// `head`: next slot the consumer will read. Written only by the
    /// consumer, read by the producer to detect "full".
    head: CachePadded<AtomicUsize>,
    /// `tail`: next slot the producer will write. Written only by the
    /// producer, read by the consumer to detect "empty".
    tail: CachePadded<AtomicUsize>,
    buf: Box<[UnsafeCellWrap<MaybeUninit<T>>]>,
}

// SAFETY: the ring is shared between exactly two threads (one RingTx,
// one RingRx). A slot is written by the producer strictly before the
// Release store of `tail` that publishes it, and read by the consumer
// strictly after the Acquire load of `tail` that observes it; the
// symmetric argument covers slot reuse via `head`. So no slot is ever
// accessed concurrently from both sides, and T: Send is sufficient.
unsafe impl<T: Send> Sync for RingInner<T> {}
unsafe impl<T: Send> Send for RingInner<T> {}

impl<T> Drop for RingInner<T> {
    fn drop(&mut self) {
        // Drop whatever was still in flight. `&mut self` proves both
        // handles are gone, so plain loads are fine.
        let mut head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        while head != tail {
            // SAFETY: slots in [head, tail) were fully written by the
            // producer and never consumed; we have exclusive access.
            // `MaybeUninit<T>` is `repr(transparent)`, so the cast is
            // layout-correct and no reference is ever materialized.
            self.buf[head & self.mask]
                .with_mut(|p| unsafe { std::ptr::drop_in_place(p.cast::<T>()) });
            head = head.wrapping_add(1);
        }
    }
}

/// Producer half of an SPSC ring. Not `Clone`; `push` takes `&mut`.
pub struct RingTx<T>(Arc<RingInner<T>>);

/// Consumer half of an SPSC ring. Not `Clone`; `pop` takes `&mut`.
pub struct RingRx<T>(Arc<RingInner<T>>);

/// Creates an SPSC ring holding at most `capacity` items (rounded up
/// to a power of two, minimum 2).
pub fn spsc<T>(capacity: usize) -> (RingTx<T>, RingRx<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let buf = (0..cap)
        .map(|_| UnsafeCellWrap::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let inner = Arc::new(RingInner {
        mask: cap - 1,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
        buf,
    });
    (RingTx(Arc::clone(&inner)), RingRx(inner))
}

impl<T> RingTx<T> {
    /// Attempts to enqueue `v`; returns it back if the ring is full.
    pub fn push(&mut self, v: T) -> Result<(), T> {
        let inner = &*self.0;
        let tail = inner.tail.0.load(Ordering::Relaxed);
        let head = inner
            .head
            .0
            .load(ord("ring.push.head.acquire", Ordering::Acquire));
        if tail.wrapping_sub(head) > inner.mask {
            return Err(v);
        }
        // SAFETY: slot `tail` is outside [head, tail), i.e. not yet
        // published, so the consumer will not touch it until the
        // Release store below; we are the only producer (&mut self).
        // Raw `ptr::write` through the transparent `MaybeUninit`
        // layout — no reference is created.
        inner.buf[tail & inner.mask].with_mut(|p| unsafe { p.cast::<T>().write(v) });
        inner.tail.0.store(
            tail.wrapping_add(1),
            ord("ring.push.tail.publish", Ordering::Release),
        );
        Ok(())
    }
}

impl<T> RingRx<T> {
    /// Dequeues the oldest item, if any.
    pub fn pop(&mut self) -> Option<T> {
        let inner = &*self.0;
        let head = inner.head.0.load(Ordering::Relaxed);
        let tail = inner
            .tail
            .0
            .load(ord("ring.pop.tail.acquire", Ordering::Acquire));
        if head == tail {
            return None;
        }
        // SAFETY: the Acquire load of `tail` observed the producer's
        // Release store publishing slot `head`, so the write to the
        // slot happened-before this read; we are the only consumer.
        // Raw `ptr::read` — the slot is treated as uninitialized again
        // after this returns.
        let v = inner.buf[head & inner.mask].with_mut(|p| unsafe { p.cast::<T>().read() });
        inner.head.0.store(
            head.wrapping_add(1),
            ord("ring.pop.head.publish", Ordering::Release),
        );
        Some(v)
    }

    /// Approximate number of queued items (exact when the producer is
    /// quiescent). Used for occupancy trace counters.
    pub fn len(&self) -> usize {
        let inner = &*self.0;
        let tail = inner.tail.0.load(Ordering::Acquire);
        let head = inner.head.0.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    /// True when no items are queued (subject to the same approximation
    /// as [`RingRx::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rips_verify::vthread;

    #[test]
    fn fifo_order_and_wraparound() {
        let (mut tx, mut rx) = spsc::<u64>(4);
        // Push/pop several times the capacity to exercise wraparound.
        let mut next_in = 0u64;
        let mut next_out = 0u64;
        for _ in 0..10 {
            while tx.push(next_in).is_ok() {
                next_in += 1;
            }
            while let Some(v) = rx.pop() {
                assert_eq!(v, next_out);
                next_out += 1;
            }
        }
        assert_eq!(next_in, next_out);
        assert!(next_in >= 40);
    }

    #[test]
    fn full_ring_rejects_and_returns_value() {
        let (mut tx, mut rx) = spsc::<u32>(2);
        assert!(tx.push(1).is_ok());
        assert!(tx.push(2).is_ok());
        assert_eq!(tx.push(3), Err(3));
        assert_eq!(rx.pop(), Some(1));
        assert!(tx.push(3).is_ok());
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), Some(3));
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn len_tracks_occupancy() {
        let (mut tx, mut rx) = spsc::<u8>(8);
        assert!(rx.is_empty());
        for i in 0..5 {
            tx.push(i).unwrap();
        }
        assert_eq!(rx.len(), 5);
        rx.pop();
        assert_eq!(rx.len(), 4);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // 200k items × 2 threads: minutes under Miri
    fn cross_thread_stress_preserves_sequence() {
        let (mut tx, mut rx) = spsc::<u64>(64);
        const N: u64 = 200_000;
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..N {
                    let mut v = i;
                    loop {
                        match tx.push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                vthread::yield_now();
                            }
                        }
                    }
                }
            });
            let mut expect = 0u64;
            while expect < N {
                if let Some(v) = rx.pop() {
                    assert_eq!(v, expect);
                    expect += 1;
                } else {
                    vthread::yield_now();
                }
            }
            assert_eq!(rx.pop(), None);
        });
    }

    #[test]
    fn drop_releases_undrained_items() {
        let marker = Arc::new(());
        {
            let (mut tx, rx) = spsc::<Arc<()>>(8);
            for _ in 0..5 {
                tx.push(Arc::clone(&marker)).unwrap();
            }
            assert_eq!(Arc::strong_count(&marker), 6);
            drop(tx);
            drop(rx);
        }
        assert_eq!(Arc::strong_count(&marker), 1);
    }
}

/// Bounded-model-checker suite: explores producer/consumer
/// interleavings of the real `push`/`pop` code and proves each named
/// ordering is load-bearing. Compiled only under
/// `RUSTFLAGS="--cfg rips_verify"` (`cargo test -p rips-live` then runs
/// it; see `rips verify`).
#[cfg(all(test, rips_verify))]
mod verify_model {
    use super::*;
    use rips_verify::{vthread, Checker, Mutation, MutationKind, ViolationKind};

    /// Three items through a 2-slot ring: exercises the full-ring wait,
    /// the empty-ring wait, wraparound, and slot reuse.
    fn ring_model() -> impl Fn() + Send + Sync + 'static {
        || {
            let (tx, rx) = spsc::<u64>(2);
            let h = vthread::spawn_named("producer", move || {
                let mut tx = tx;
                for i in 0..3u64 {
                    let mut v = i;
                    loop {
                        match tx.push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                vthread::yield_now();
                            }
                        }
                    }
                }
            });
            let mut rx = rx;
            for expect in 0..3u64 {
                loop {
                    match rx.pop() {
                        Some(v) => {
                            assert_eq!(v, expect, "SPSC must preserve FIFO order");
                            break;
                        }
                        None => vthread::yield_now(),
                    }
                }
            }
            assert_eq!(rx.pop(), None);
            h.join().unwrap();
        }
    }

    #[test]
    fn model_spsc_is_clean() {
        let stats = Checker::from_env("live.ring.spsc")
            .check(ring_model())
            .expect("shipped SPSC protocol must be violation-free");
        assert!(stats.executions > 1);
    }

    #[test]
    fn sweep_each_weakened_ordering_is_caught() {
        for site in [
            "ring.push.head.acquire",
            "ring.push.tail.publish",
            "ring.pop.tail.acquire",
            "ring.pop.head.publish",
        ] {
            let v = Checker::from_env(&format!("live.ring.sweep.{site}"))
                .mutation(Mutation {
                    site,
                    kind: MutationKind::WeakenToRelaxed,
                })
                .check(ring_model())
                .unwrap_err();
            assert_eq!(
                v.kind,
                ViolationKind::DataRace,
                "weakening {site} must produce a slot data race, got:\n{}",
                v.replay
            );
            assert!(
                !v.schedule.is_empty(),
                "violation must carry a replay schedule"
            );
        }
    }
}
