//! Hashed timer wheel for live node threads.
//!
//! The old live backend kept pending timers in a `BinaryHeap` and
//! derived a `recv_timeout` for every blocking wait — which meant a
//! heap peek plus a clock read plus a syscall-backed timed wait on
//! *every* loop iteration, even when the node was saturated with work.
//! The wheel inverts that cost model for the hot path:
//!
//! * **delay-0 timers** (the EXEC self-kick that drives every task
//!   execution) never touch the wheel or the clock at all — they go
//!   into a plain FIFO and are popped O(1) at the next dispatch
//!   boundary;
//! * **real delays** (round barriers, RIPS polling) hash into one of
//!   [`WHEEL_SLOTS`] buckets by `deadline >> GRAN_SHIFT`; the wheel is
//!   only advanced when the node actually reaches a dispatch boundary,
//!   so an arbitrarily busy node pays nothing for pending timers;
//! * the expensive full scan ([`TimerWheel::next_deadline`]) runs only
//!   when the node is about to go idle and needs a park timeout.
//!
//! Entries whose deadline lands a full lap (or more) ahead stay in
//! their bucket across intermediate visits: each entry carries its
//! absolute deadline and is only released once the cursor's tick
//! reaches it. Ties fire in arming order via a per-wheel sequence
//! number, matching the old heap's `(deadline, seq)` order.

use rips_desim::Time;
use std::collections::VecDeque;

/// Timer granularity as a power of two: 2^6 = 64 µs per tick.
pub const GRAN_SHIFT: u32 = 6;
/// Number of hash buckets; one lap covers 256 * 64 µs ≈ 16.4 ms.
pub const WHEEL_SLOTS: usize = 256;

type Entry = (Time, u64, u64); // (absolute deadline µs, seq, tag)

/// Per-node timer wheel. Single-threaded; owned by the node loop.
pub struct TimerWheel {
    /// Delay-0 timers, fired FIFO ahead of anything later.
    immediate: VecDeque<Entry>,
    /// Hash buckets keyed by `(deadline >> GRAN_SHIFT) % WHEEL_SLOTS`.
    slots: Vec<Vec<Entry>>,
    /// Entries already released from their bucket, sorted by
    /// `(deadline, seq)`, waiting for `now` to catch up.
    due: VecDeque<Entry>,
    /// Last tick (`now >> GRAN_SHIFT`) the cursor has swept through.
    tick: u64,
    /// Number of entries still parked in `slots`.
    in_slots: usize,
    /// Arm-order tiebreaker.
    seq: u64,
}

impl TimerWheel {
    /// Creates a wheel whose cursor starts at `now`.
    pub fn new(now: Time) -> Self {
        TimerWheel {
            immediate: VecDeque::new(),
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            due: VecDeque::new(),
            tick: now >> GRAN_SHIFT,
            in_slots: 0,
            seq: 0,
        }
    }

    /// Arms `tag` to fire `delay_us` after `now`.
    pub fn set(&mut self, now: Time, delay_us: u64, tag: u64) {
        let seq = self.seq;
        self.seq += 1;
        if delay_us == 0 {
            self.immediate.push_back((now, seq, tag));
            return;
        }
        let deadline = now + delay_us;
        let tick = deadline >> GRAN_SHIFT;
        if tick <= self.tick {
            // Lands in a tick the cursor already swept: straight to due.
            self.insert_due((deadline, seq, tag));
        } else {
            self.slots[(tick % WHEEL_SLOTS as u64) as usize].push((deadline, seq, tag));
            self.in_slots += 1;
        }
    }

    fn insert_due(&mut self, e: Entry) {
        let at = self
            .due
            .binary_search_by_key(&(e.0, e.1), |d| (d.0, d.1))
            .unwrap_or_else(|i| i);
        self.due.insert(at, e);
    }

    /// Sweeps the cursor forward to `now`, releasing matured buckets.
    fn advance(&mut self, now: Time) {
        let target = now >> GRAN_SHIFT;
        if target <= self.tick || self.in_slots == 0 {
            self.tick = self.tick.max(target);
            return;
        }
        // Jumping more than a lap visits every bucket exactly once.
        let steps = (target - self.tick).min(WHEEL_SLOTS as u64);
        for i in 1..=steps {
            let slot = ((self.tick + i) % WHEEL_SLOTS as u64) as usize;
            let mut kept = 0;
            for j in 0..self.slots[slot].len() {
                let e = self.slots[slot][j];
                if e.0 >> GRAN_SHIFT <= target {
                    self.in_slots -= 1;
                    self.insert_due(e);
                } else {
                    self.slots[slot][kept] = e;
                    kept += 1;
                }
            }
            self.slots[slot].truncate(kept);
        }
        self.tick = target;
    }

    /// Pops the tag of the earliest timer due at `now`, if any.
    ///
    /// Ordering matches the old heap: strictly by `(deadline, seq)`,
    /// where a delay-0 timer's deadline is its arming time.
    pub fn pop_due(&mut self, now: Time) -> Option<u64> {
        self.advance(now);
        let imm = self.immediate.front().copied();
        let due = self.due.front().copied().filter(|e| e.0 <= now);
        match (imm, due) {
            (Some(a), Some(b)) => {
                if (a.0, a.1) <= (b.0, b.1) {
                    self.immediate.pop_front().map(|e| e.2)
                } else {
                    self.due.pop_front().map(|e| e.2)
                }
            }
            (Some(_), None) => self.immediate.pop_front().map(|e| e.2),
            (None, Some(_)) => self.due.pop_front().map(|e| e.2),
            (None, None) => None,
        }
    }

    /// Earliest absolute deadline across all pending timers, or `None`
    /// if nothing is armed. Scans the buckets, so call it only when
    /// about to go idle.
    pub fn next_deadline(&self) -> Option<Time> {
        let mut best: Option<Time> = self
            .immediate
            .front()
            .map(|e| e.0)
            .into_iter()
            .chain(self.due.front().map(|e| e.0))
            .min();
        if self.in_slots > 0 {
            for slot in &self.slots {
                for e in slot {
                    if best.is_none_or(|b| e.0 < b) {
                        best = Some(e.0);
                    }
                }
            }
        }
        best
    }

    /// Total number of armed timers (for tests and diagnostics).
    pub fn pending(&self) -> usize {
        self.immediate.len() + self.due.len() + self.in_slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_zero_fires_fifo_immediately() {
        let mut w = TimerWheel::new(1000);
        w.set(1000, 0, 10);
        w.set(1000, 0, 11);
        assert_eq!(w.pop_due(1000), Some(10));
        assert_eq!(w.pop_due(1000), Some(11));
        assert_eq!(w.pop_due(1000), None);
    }

    #[test]
    fn delayed_timer_waits_for_deadline() {
        let mut w = TimerWheel::new(0);
        w.set(0, 500, 42);
        assert_eq!(w.pop_due(0), None);
        assert_eq!(w.pop_due(499), None);
        assert_eq!(w.next_deadline(), Some(500));
        assert_eq!(w.pop_due(500), Some(42));
        assert_eq!(w.pending(), 0);
    }

    #[test]
    fn earlier_deadline_beats_later_immediate() {
        // An expired delayed timer (deadline 90) must fire before a
        // delay-0 timer armed later (deadline = arm time 100), same as
        // the old (deadline, seq) heap order.
        let mut w = TimerWheel::new(0);
        w.set(0, 90, 1);
        w.set(100, 0, 2);
        assert_eq!(w.pop_due(100), Some(1));
        assert_eq!(w.pop_due(100), Some(2));
    }

    #[test]
    fn full_lap_deadline_does_not_fire_early() {
        let lap = (WHEEL_SLOTS as u64) << GRAN_SHIFT;
        let mut w = TimerWheel::new(0);
        // Lands in the same bucket as a near deadline, one lap later.
        w.set(0, 64, 1);
        w.set(0, 64 + lap, 2);
        assert_eq!(w.pop_due(64), Some(1));
        assert_eq!(w.pop_due(64), None);
        assert_eq!(w.pop_due(lap), None);
        assert_eq!(w.pop_due(64 + lap), Some(2));
    }

    #[test]
    fn big_time_jump_releases_everything_in_order() {
        let mut w = TimerWheel::new(0);
        for (delay, tag) in [(5000u64, 3u64), (100, 1), (70_000, 4), (200, 2)] {
            w.set(0, delay, tag);
        }
        let far = 1_000_000;
        let fired: Vec<u64> = std::iter::from_fn(|| w.pop_due(far)).collect();
        assert_eq!(fired, vec![1, 2, 3, 4]);
    }

    #[test]
    fn ties_fire_in_arm_order() {
        let mut w = TimerWheel::new(0);
        w.set(0, 100, 7);
        w.set(0, 100, 8);
        assert_eq!(w.pop_due(100), Some(7));
        assert_eq!(w.pop_due(100), Some(8));
    }

    #[test]
    fn lap_wrap_at_slot_255_releases_and_keeps_across_the_seam() {
        // The adversarial bucket: slot 255, the last before the cursor
        // wraps to slot 0. Three timers hash there — one due this lap,
        // one a full lap later, one two laps later — plus one in slot 0
        // just across the seam. Sweeping the cursor over the wrap must
        // release exactly the matured entry each lap and never drop or
        // early-fire the laggards sharing the bucket.
        let lap = (WHEEL_SLOTS as u64) << GRAN_SHIFT;
        let slot255 = 255u64 << GRAN_SHIFT; // tick 255 → slot 255
        let mut w = TimerWheel::new(0);
        w.set(0, slot255, 1);
        w.set(0, slot255 + lap, 2);
        w.set(0, slot255 + 2 * lap, 3);
        w.set(0, slot255 + (1 << GRAN_SHIFT), 4); // tick 256 → slot 0
        assert_eq!(w.pending(), 4);
        // Stop the cursor exactly on slot 255: only timer 1 matures.
        assert_eq!(w.pop_due(slot255), Some(1));
        assert_eq!(w.pop_due(slot255), None);
        // One tick across the wrap: slot 0 releases timer 4; the
        // laggards in slot 255 stay parked.
        assert_eq!(w.pop_due(slot255 + (1 << GRAN_SHIFT)), Some(4));
        assert_eq!(w.pop_due(lap + slot255 - 1), None, "one µs early");
        assert_eq!(w.pop_due(lap + slot255), Some(2));
        // A jump of several laps still only releases what matured.
        assert_eq!(w.pop_due(2 * lap + slot255), Some(3));
        assert_eq!(w.pop_due(u64::MAX >> 8), None);
        assert_eq!(w.pending(), 0);
    }

    #[test]
    fn cursor_parked_on_slot_255_accepts_next_lap_arms() {
        // Arm while the cursor itself sits on slot 255: a delay that
        // hashes back into slot 255 one lap ahead must wait a full lap,
        // and a one-tick delay must land in slot 0, not fire at once.
        let lap = (WHEEL_SLOTS as u64) << GRAN_SHIFT;
        let slot255 = 255u64 << GRAN_SHIFT;
        let mut w = TimerWheel::new(slot255);
        w.set(slot255, lap, 5); // same slot, next lap
        w.set(slot255, 1 << GRAN_SHIFT, 6); // slot 0, next tick
        assert_eq!(w.pop_due(slot255), None);
        assert_eq!(w.pop_due(slot255 + (1 << GRAN_SHIFT)), Some(6));
        assert_eq!(w.pop_due(slot255 + lap - 1), None);
        assert_eq!(w.pop_due(slot255 + lap), Some(5));
    }

    #[test]
    fn next_deadline_sees_immediate_and_bucketed() {
        let mut w = TimerWheel::new(0);
        assert_eq!(w.next_deadline(), None);
        w.set(0, 10_000, 1);
        assert_eq!(w.next_deadline(), Some(10_000));
        w.set(50, 0, 2);
        assert_eq!(w.next_deadline(), Some(50));
    }
}
