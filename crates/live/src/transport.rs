//! The live fabric: batched packets over pluggable transports.
//!
//! Every kernel message a node emits during one dispatch round is
//! coalesced into a per-destination [`Packet`] and the packet — not the
//! individual message — is what travels an edge. A system phase that
//! sends dozens of protocol messages to the same peer therefore costs
//! O(edges) transport operations instead of O(messages), on *either*
//! transport.
//!
//! Two fabrics implement delivery behind the crate-private
//! `NodeTx`/`NodeRx` seam:
//!
//! * [`TransportKind::Ring`] (default): one SPSC ring per directed
//!   edge ([`crate::ring`]), polled round-robin, with park/unpark
//!   wakeups. An idle receiver advertises `parked = true`, issues a
//!   `SeqCst` fence, re-polls every ring, and only then parks; a
//!   sender publishes its push, issues the matching fence, and unparks
//!   the receiver iff it observed the parked flag. The fence pair
//!   makes a lost wakeup impossible: whichever fence comes first in
//!   the total order, either the receiver's re-poll sees the push or
//!   the sender's load sees the park.
//! * [`TransportKind::Mpsc`]: the original per-node
//!   `std::sync::mpsc` mailbox with one cloned `Sender` per edge. Kept
//!   as a fallback and as a differential-testing oracle for the ring
//!   path (the cross-backend suite runs both).
//!
//! Shutdown differs per fabric: mpsc broadcasts a `Halt` marker
//! message; the ring fabric raises a global halt flag and unparks
//! everyone (a marker would have to out-race full rings). Both drop
//! in-flight packets after halt — by then the workload is complete
//! (halt is only decided once the final round's outstanding count hit
//! zero), so only protocol chatter is lost.

use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rips_verify::sync::atomic::{AtomicBool, Ordering};
use rips_verify::sync::{fence_at, ord};
use rips_verify::vthread;
use rips_verify::vthread::Thread;

use rips_desim::Time;
use rips_topology::NodeId;
use rips_trace::Clock;

use crate::ring::{self, RingRx, RingTx};

/// Capacity (packets) of each per-edge SPSC ring. A full ring makes
/// the sender spin-yield, so this only bounds memory, not correctness.
const RING_CAP: usize = 256;

/// Which fabric carries packets between live node threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// Sharded SPSC rings with park/unpark wakeups (the fast path).
    Ring,
    /// Per-node `std::sync::mpsc` mailboxes (fallback + oracle).
    Mpsc,
}

impl TransportKind {
    /// Stable lowercase name, used in CLI flags and bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            TransportKind::Ring => "ring",
            TransportKind::Mpsc => "mpsc",
        }
    }

    /// Parses a CLI value (`ring` / `mpsc`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "ring" => Some(TransportKind::Ring),
            "mpsc" => Some(TransportKind::Mpsc),
            _ => None,
        }
    }
}

/// One batch of kernel messages travelling a single directed edge.
pub struct Packet<M> {
    /// Sending node.
    pub from: NodeId,
    /// Messages in emission order (per-edge FIFO is preserved
    /// end-to-end: outbox order within a packet, ring/channel order
    /// across packets).
    pub msgs: Vec<M>,
}

/// What actually travels on the wire.
pub(crate) enum Delivery<M> {
    Packet(Packet<M>),
    /// mpsc-only shutdown marker (the ring fabric uses the halt flag).
    Halt,
}

/// Result of one receive attempt.
pub(crate) enum Recv<M> {
    Packet(Packet<M>),
    Halt,
    Empty,
}

/// Per-node wakeup state for the ring fabric.
struct PeerCtl {
    /// Set by the node before parking; checked by senders after
    /// publishing (see module docs for the fence protocol).
    parked: AtomicBool,
    /// Set when the node's loop has exited (normally or by panic), so
    /// senders never spin forever on its full rings.
    exited: AtomicBool,
    /// The node's thread handle, registered before its loop starts.
    thread: Mutex<Option<Thread>>,
}

/// Run-global control block for the ring fabric.
pub(crate) struct RunCtl {
    /// Global shutdown flag (the ring fabric's `Halt` broadcast).
    halt: AtomicBool,
    peers: Vec<PeerCtl>,
}

impl RunCtl {
    fn new(n: usize) -> Self {
        RunCtl {
            halt: AtomicBool::new(false),
            peers: (0..n)
                .map(|_| PeerCtl {
                    parked: AtomicBool::new(false),
                    exited: AtomicBool::new(false),
                    thread: Mutex::new(None),
                })
                .collect(),
        }
    }

    fn wake(&self, node: NodeId) {
        let guard = self.peers[node]
            .thread
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        if let Some(t) = guard.as_ref() {
            t.unpark();
        }
    }

    fn wake_all(&self) {
        for node in 0..self.peers.len() {
            self.wake(node);
        }
    }
}

/// A node's sending half: one handle per destination edge.
pub(crate) enum NodeTx<M> {
    Mpsc {
        me: NodeId,
        senders: Vec<Sender<Delivery<M>>>,
    },
    Ring {
        txs: Vec<Option<RingTx<Delivery<M>>>>,
        ctl: Arc<RunCtl>,
    },
}

impl<M> NodeTx<M> {
    /// Delivers one packet to `to`. Failure modes are deliberate
    /// no-ops: after halt, in-flight packets are dropped on both
    /// fabrics (see module docs).
    pub fn send(&mut self, to: NodeId, packet: Packet<M>) {
        match self {
            NodeTx::Mpsc { senders, .. } => {
                let _ = senders[to].send(Delivery::Packet(packet));
            }
            NodeTx::Ring { txs, ctl } => {
                let tx = txs[to].as_mut().expect("ring edge exists");
                let mut item = Delivery::Packet(packet);
                loop {
                    match tx.push(item) {
                        Ok(()) => break,
                        Err(back) => {
                            if ctl.halt.load(Ordering::Acquire)
                                || ctl.peers[to].exited.load(Ordering::Acquire)
                            {
                                return; // machine is shutting down: drop
                            }
                            item = back;
                            vthread::yield_now();
                        }
                    }
                }
                // Dekker-style wakeup: the push's Release store, then a
                // SeqCst fence, then the parked check — pairs with the
                // receiver's store-fence-repoll sequence in recv_wait.
                fence_at("transport.wake.sender", Ordering::SeqCst);
                if ctl.peers[to].parked.load(Ordering::Relaxed) {
                    ctl.wake(to);
                }
            }
        }
    }

    /// Announces global shutdown to every peer.
    pub fn broadcast_halt(&mut self) {
        match self {
            NodeTx::Mpsc { me, senders } => {
                for (to, s) in senders.iter().enumerate() {
                    if to != *me {
                        let _ = s.send(Delivery::Halt);
                    }
                }
            }
            NodeTx::Ring { ctl, .. } => {
                ctl.halt
                    .store(true, ord("transport.halt.publish", Ordering::SeqCst));
                ctl.wake_all();
            }
        }
    }
}

/// A node's receiving half.
pub(crate) enum NodeRx<M> {
    Mpsc {
        rx: Receiver<Delivery<M>>,
    },
    Ring {
        me: NodeId,
        rxs: Vec<Option<RingRx<Delivery<M>>>>,
        ctl: Arc<RunCtl>,
        /// Round-robin cursor over source rings, for fairness.
        cursor: usize,
    },
}

impl<M> NodeRx<M> {
    /// Registers the calling thread for wakeups and arms the exit
    /// guard. Must be called on the node's own thread before its loop.
    pub fn register(&self) -> ExitGuard {
        match self {
            NodeRx::Mpsc { .. } => ExitGuard { ctl: None, me: 0 },
            NodeRx::Ring { me, ctl, .. } => {
                *ctl.peers[*me]
                    .thread
                    .lock()
                    .unwrap_or_else(|p| p.into_inner()) = Some(vthread::current());
                ExitGuard {
                    ctl: Some(Arc::clone(ctl)),
                    me: *me,
                }
            }
        }
    }

    /// Non-blocking poll.
    pub fn try_recv(&mut self) -> Recv<M> {
        match self {
            NodeRx::Mpsc { rx } => match rx.try_recv() {
                Ok(Delivery::Packet(p)) => Recv::Packet(p),
                Ok(Delivery::Halt) | Err(TryRecvError::Disconnected) => Recv::Halt,
                Err(TryRecvError::Empty) => Recv::Empty,
            },
            NodeRx::Ring {
                rxs, ctl, cursor, ..
            } => {
                if ctl.halt.load(Ordering::Acquire) {
                    return Recv::Halt;
                }
                let n = rxs.len();
                for i in 0..n {
                    let idx = (*cursor + i) % n;
                    if let Some(r) = rxs[idx].as_mut() {
                        match r.pop() {
                            Some(Delivery::Packet(p)) => {
                                *cursor = (idx + 1) % n;
                                return Recv::Packet(p);
                            }
                            Some(Delivery::Halt) => return Recv::Halt,
                            None => {}
                        }
                    }
                }
                Recv::Empty
            }
        }
    }

    /// Blocks until a message may be available or `deadline` (absolute
    /// µs on `clock`) passes. `Recv::Empty` means "re-poll and re-check
    /// timers" — the caller loops, so spurious wakeups are harmless.
    pub fn recv_wait(&mut self, deadline: Option<Time>, clock: &dyn Clock) -> Recv<M> {
        // mpsc: the channel itself blocks.
        if let NodeRx::Mpsc { rx } = self {
            return match deadline {
                Some(d) => {
                    let now = clock.now_us();
                    if d <= now {
                        return Recv::Empty;
                    }
                    match rx.recv_timeout(Duration::from_micros(d - now)) {
                        Ok(Delivery::Packet(p)) => Recv::Packet(p),
                        Ok(Delivery::Halt) | Err(RecvTimeoutError::Disconnected) => Recv::Halt,
                        Err(RecvTimeoutError::Timeout) => Recv::Empty,
                    }
                }
                None => match rx.recv() {
                    Ok(Delivery::Packet(p)) => Recv::Packet(p),
                    Ok(Delivery::Halt) | Err(_) => Recv::Halt,
                },
            };
        }
        // Ring: advertise the park, fence, re-poll, then really park.
        let (me, ctl) = match self {
            NodeRx::Ring { me, ctl, .. } => (*me, Arc::clone(ctl)),
            NodeRx::Mpsc { .. } => unreachable!("handled above"),
        };
        ctl.peers[me]
            .parked
            .store(true, ord("transport.park.advertise", Ordering::SeqCst));
        fence_at("transport.park.receiver", Ordering::SeqCst);
        match self.try_recv() {
            Recv::Empty => {}
            found => {
                ctl.peers[me].parked.store(false, Ordering::Relaxed);
                return found;
            }
        }
        match deadline {
            Some(d) => {
                let now = clock.now_us();
                if d > now {
                    vthread::park_timeout(Duration::from_micros(d - now));
                }
            }
            None => vthread::park(),
        }
        ctl.peers[me].parked.store(false, Ordering::Relaxed);
        Recv::Empty
    }

    /// Total packets currently queued across this node's receive rings
    /// (`None` on mpsc, whose queue depth is not observable). Feeds the
    /// `RingDepth` trace counter.
    pub fn occupancy(&self) -> Option<u64> {
        match self {
            NodeRx::Mpsc { .. } => None,
            NodeRx::Ring { rxs, .. } => Some(rxs.iter().flatten().map(|r| r.len() as u64).sum()),
        }
    }
}

/// Marks the node exited (and, on panic, halts the whole machine) so
/// no peer spins or parks forever waiting on a dead thread. Held by
/// the node loop; `Drop` runs on unwind too.
pub(crate) struct ExitGuard {
    ctl: Option<Arc<RunCtl>>,
    me: NodeId,
}

impl Drop for ExitGuard {
    fn drop(&mut self) {
        if let Some(ctl) = &self.ctl {
            ctl.peers[self.me].exited.store(true, Ordering::SeqCst);
            if std::thread::panicking() {
                ctl.halt.store(true, Ordering::SeqCst);
            }
            ctl.wake_all();
        }
    }
}

/// Builds the fabric for an `n`-node run: one `(tx, rx)` pair per
/// node, to be moved into the node threads.
pub(crate) fn build<M>(kind: TransportKind, n: usize) -> Vec<(NodeTx<M>, NodeRx<M>)> {
    match kind {
        TransportKind::Mpsc => {
            let (senders, receivers): (Vec<_>, Vec<_>) = (0..n).map(|_| channel()).unzip();
            receivers
                .into_iter()
                .enumerate()
                .map(|(me, rx)| {
                    (
                        NodeTx::Mpsc {
                            me,
                            senders: senders.clone(),
                        },
                        NodeRx::Mpsc { rx },
                    )
                })
                .collect()
        }
        TransportKind::Ring => {
            let ctl = Arc::new(RunCtl::new(n));
            let mut tx_grid: Vec<Vec<Option<RingTx<Delivery<M>>>>> =
                (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
            let mut rx_grid: Vec<Vec<Option<RingRx<Delivery<M>>>>> =
                (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
            for src in 0..n {
                for dst in 0..n {
                    let (t, r) = ring::spsc(RING_CAP);
                    tx_grid[src][dst] = Some(t);
                    rx_grid[dst][src] = Some(r);
                }
            }
            tx_grid
                .into_iter()
                .zip(rx_grid)
                .map(|(txs, rxs)| {
                    (
                        NodeTx::Ring {
                            txs,
                            ctl: Arc::clone(&ctl),
                        },
                        NodeRx::Ring {
                            me: 0, // patched below
                            rxs,
                            ctl: Arc::clone(&ctl),
                            cursor: 0,
                        },
                    )
                })
                .enumerate()
                .map(|(me, (tx, mut rx))| {
                    if let NodeRx::Ring { me: m, .. } = &mut rx {
                        *m = me;
                    }
                    (tx, rx)
                })
                .collect()
        }
    }
}

/// Per-dispatch outgoing message batcher: every message the kernel
/// emits while handling one event lands in a per-destination bin, and
/// the node loop flushes each touched bin as a single [`Packet`] when
/// the handler returns.
pub struct Outbox<M> {
    bins: Vec<Vec<M>>,
    touched: Vec<NodeId>,
}

impl<M> Outbox<M> {
    /// An empty outbox for an `n`-node run.
    pub fn new(n: usize) -> Self {
        Outbox {
            bins: (0..n).map(|_| Vec::new()).collect(),
            touched: Vec::with_capacity(n),
        }
    }

    /// Queues `msg` for `to`.
    pub fn push(&mut self, to: NodeId, msg: M) {
        if self.bins[to].is_empty() {
            self.touched.push(to);
        }
        self.bins[to].push(msg);
    }

    /// True when nothing is queued (the common case at a dispatch
    /// boundary — checked before any flush work).
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }

    /// Sends every touched bin as one packet, invoking `on_batch(to,
    /// len)` per packet (the trace hook).
    pub(crate) fn flush(
        &mut self,
        from: NodeId,
        tx: &mut NodeTx<M>,
        mut on_batch: impl FnMut(NodeId, usize),
    ) {
        for to in self.touched.drain(..) {
            let msgs = std::mem::take(&mut self.bins[to]);
            on_batch(to, msgs.len());
            tx.send(to, Packet { from, msgs });
        }
    }
}

/// Bounded model checking of the park/unpark wakeup protocol (PR 9):
/// the checker's stale-read machinery can make the receiver's re-poll
/// miss a published push and the sender's `parked` check miss the
/// receiver's advertisement — exactly the lost wakeup the SeqCst fence
/// pair forbids. Deleting either fence turns the model into a
/// replayable deadlock. Compiled only under `--cfg rips_verify`.
#[cfg(all(test, rips_verify))]
mod verify_model {
    use super::*;
    use rips_trace::ClockKind;
    use rips_verify::{Checker, Mutation, MutationKind, ViolationKind};

    struct ZeroClock;
    impl Clock for ZeroClock {
        fn now_us(&self) -> Time {
            0
        }
        fn kind(&self) -> ClockKind {
            ClockKind::Virtual
        }
    }

    /// One packet from node 0 to a receiver that parks (deadline-free)
    /// until it arrives: the full advertise-fence-repoll-park dance on
    /// the receiver against push-fence-check-wake on the sender.
    fn wakeup_model() -> impl Fn() + Send + Sync + 'static {
        || {
            let mut fabric = build::<u32>(TransportKind::Ring, 2);
            let (mut tx0, _rx0) = fabric.remove(0);
            let (_tx1, mut rx1) = fabric.remove(0);
            let h = vthread::spawn_named("receiver", move || {
                let _guard = rx1.register();
                loop {
                    match rx1.recv_wait(None, &ZeroClock) {
                        Recv::Packet(p) => return p.msgs,
                        Recv::Halt => panic!("unexpected halt"),
                        Recv::Empty => continue,
                    }
                }
            });
            tx0.send(
                1,
                Packet {
                    from: 0,
                    msgs: vec![7],
                },
            );
            assert_eq!(h.join().expect("receiver"), vec![7]);
        }
    }

    /// Halt must reach a parked receiver: `broadcast_halt` raises the
    /// flag and unparks everyone.
    fn halt_model() -> impl Fn() + Send + Sync + 'static {
        || {
            let mut fabric = build::<u32>(TransportKind::Ring, 2);
            let (mut tx0, _rx0) = fabric.remove(0);
            let (_tx1, mut rx1) = fabric.remove(0);
            let h = vthread::spawn_named("receiver", move || {
                let _guard = rx1.register();
                loop {
                    match rx1.recv_wait(None, &ZeroClock) {
                        Recv::Halt => return,
                        Recv::Packet(_) => panic!("unexpected packet"),
                        Recv::Empty => continue,
                    }
                }
            });
            tx0.broadcast_halt();
            h.join().expect("receiver");
        }
    }

    #[test]
    fn model_wakeup_protocol_is_clean() {
        let stats = Checker::from_env("live.transport.wakeup")
            .check(wakeup_model())
            .expect("shipped wakeup protocol must be violation-free");
        assert!(stats.executions > 1);
    }

    #[test]
    fn model_halt_reaches_parked_receiver() {
        Checker::from_env("live.transport.halt")
            .check(halt_model())
            .expect("halt broadcast must terminate the receiver");
    }

    #[test]
    fn sweep_deleting_either_fence_loses_the_wakeup() {
        for site in ["transport.wake.sender", "transport.park.receiver"] {
            let v = Checker::from_env(&format!("live.transport.sweep.{site}"))
                .mutation(Mutation {
                    site,
                    kind: MutationKind::DeleteFence,
                })
                .check(wakeup_model())
                .unwrap_err();
            assert_eq!(
                v.kind,
                ViolationKind::Deadlock,
                "deleting {site} must lose the wakeup, got:\n{}",
                v.replay
            );
            assert!(
                !v.schedule.is_empty(),
                "violation must carry a replay schedule"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rips_trace::ClockKind;

    struct ZeroClock;
    impl Clock for ZeroClock {
        fn now_us(&self) -> Time {
            0
        }
        fn kind(&self) -> ClockKind {
            ClockKind::Virtual
        }
    }

    fn drain_one<M>(rx: &mut NodeRx<M>) -> Option<Packet<M>> {
        match rx.try_recv() {
            Recv::Packet(p) => Some(p),
            _ => None,
        }
    }

    #[test]
    fn outbox_batches_per_destination_in_order() {
        let mut fabric = build::<u32>(TransportKind::Ring, 3);
        let (mut tx0, _rx0) = fabric.remove(0);
        let mut ob = Outbox::new(3);
        assert!(ob.is_empty());
        ob.push(1, 10);
        ob.push(2, 20);
        ob.push(1, 11);
        let mut batches = Vec::new();
        ob.flush(0, &mut tx0, |to, len| batches.push((to, len)));
        assert!(ob.is_empty());
        assert_eq!(batches, vec![(1, 2), (2, 1)]);
        let (_tx1, mut rx1) = fabric.remove(0); // node 1
        let p = drain_one(&mut rx1).expect("packet for node 1");
        assert_eq!(p.from, 0);
        assert_eq!(p.msgs, vec![10, 11]);
    }

    #[test]
    fn both_transports_deliver_fifo_per_edge() {
        for kind in [TransportKind::Ring, TransportKind::Mpsc] {
            let mut fabric = build::<u64>(kind, 2);
            let (mut tx0, _rx0) = fabric.remove(0);
            let (_tx1, mut rx1) = fabric.remove(0);
            for i in 0..10u64 {
                tx0.send(
                    1,
                    Packet {
                        from: 0,
                        msgs: vec![i],
                    },
                );
            }
            for i in 0..10u64 {
                let p = drain_one(&mut rx1).unwrap_or_else(|| panic!("{} pkt {i}", kind.name()));
                assert_eq!(p.msgs, vec![i]);
            }
            assert!(matches!(rx1.try_recv(), Recv::Empty));
        }
    }

    #[test]
    fn halt_broadcast_reaches_peers() {
        for kind in [TransportKind::Ring, TransportKind::Mpsc] {
            let mut fabric = build::<u8>(kind, 2);
            let (mut tx0, _rx0) = fabric.remove(0);
            let (_tx1, mut rx1) = fabric.remove(0);
            tx0.broadcast_halt();
            assert!(
                matches!(rx1.try_recv(), Recv::Halt),
                "halt lost on {}",
                kind.name()
            );
        }
    }

    #[test]
    fn parked_receiver_is_woken_by_send() {
        let mut fabric = build::<u32>(TransportKind::Ring, 2);
        let (mut tx0, _rx0) = fabric.remove(0);
        let (_tx1, mut rx1) = fabric.remove(0);
        std::thread::scope(|s| {
            let h = s.spawn(move || {
                let _guard = rx1.register();
                // Park with no deadline until the packet arrives.
                loop {
                    match rx1.recv_wait(None, &ZeroClock) {
                        Recv::Packet(p) => return p.msgs,
                        Recv::Halt => panic!("unexpected halt"),
                        Recv::Empty => continue,
                    }
                }
            });
            std::thread::sleep(Duration::from_millis(20));
            tx0.send(
                1,
                Packet {
                    from: 0,
                    msgs: vec![7],
                },
            );
            assert_eq!(h.join().expect("receiver"), vec![7]);
        });
    }

    #[test]
    fn recv_wait_times_out_against_clock() {
        let mut fabric = build::<u32>(TransportKind::Ring, 1);
        let (_tx, mut rx) = fabric.remove(0);
        let _guard = rx.register();
        // Deadline in the past returns Empty promptly (no park).
        assert!(matches!(rx.recv_wait(Some(0), &ZeroClock), Recv::Empty));
        // Future deadline parks and wakes by timeout.
        assert!(matches!(rx.recv_wait(Some(2000), &ZeroClock), Recv::Empty));
    }

    #[test]
    fn occupancy_counts_queued_packets() {
        let mut fabric = build::<u16>(TransportKind::Ring, 2);
        let (mut tx0, rx0) = fabric.remove(0);
        let (_tx1, rx1) = fabric.remove(0);
        assert_eq!(rx1.occupancy(), Some(0));
        for _ in 0..3 {
            tx0.send(
                1,
                Packet {
                    from: 0,
                    msgs: vec![1],
                },
            );
        }
        assert_eq!(rx1.occupancy(), Some(3));
        drop(rx0);
        let mut fabric = build::<u16>(TransportKind::Mpsc, 1);
        let (_t, r) = fabric.remove(0);
        assert_eq!(r.occupancy(), None);
    }

    #[test]
    fn transport_kind_names_round_trip() {
        for kind in [TransportKind::Ring, TransportKind::Mpsc] {
            assert_eq!(TransportKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(TransportKind::parse("carrier-pigeon"), None);
    }
}
