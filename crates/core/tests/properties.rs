//! Property tests for the RIPS runtime: arbitrary dynamic workloads on
//! arbitrary machines under every policy combination must execute every
//! task exactly once, conserve accounting, and respect the theorems'
//! balance guarantees per phase.

use std::sync::Arc;

use proptest::prelude::*;
use rips_core::{rips, GlobalPolicy, LocalPolicy, Machine, RipsConfig};
use rips_desim::LatencyModel;
use rips_runtime::Costs;
use rips_taskgraph::{TaskForest, Workload};
use rips_topology::{BinaryTree, Hypercube, Mesh2D};

/// Arbitrary small dynamic workload: 1-3 rounds, each a forest where
/// tasks may spawn children.
fn arb_workload() -> impl Strategy<Value = Workload> {
    let forest = (
        proptest::collection::vec(1u64..3_000, 1..25),
        proptest::collection::vec((0usize..25, 1u64..2_000), 0..20),
    )
        .prop_map(|(roots, children)| {
            let mut f = TaskForest::new();
            let ids: Vec<_> = roots.into_iter().map(|g| f.add_root(g)).collect();
            let mut all = ids.clone();
            for (parent_pick, grain) in children {
                let parent = all[parent_pick % all.len()];
                all.push(f.add_child(parent, grain));
            }
            f
        });
    proptest::collection::vec(forest, 1..=3).prop_map(|rounds| Workload {
        name: "arb".into(),
        rounds,
    })
}

fn arb_machine() -> impl Strategy<Value = Machine> {
    prop_oneof![
        ((1usize..=4), (1usize..=4)).prop_map(|(r, c)| Machine::Mesh(Mesh2D::new(r, c))),
        ((1usize..=4), (1usize..=4)).prop_map(|(r, c)| Machine::MeshHier(Mesh2D::new(r, c))),
        (1usize..=12).prop_map(|n| Machine::Tree(BinaryTree::new(n))),
        (0usize..=3).prop_map(|d| Machine::Cube(Hypercube::new(d))),
    ]
}

fn arb_config() -> impl Strategy<Value = RipsConfig> {
    (
        prop_oneof![Just(LocalPolicy::Eager), Just(LocalPolicy::Lazy)],
        prop_oneof![
            Just(GlobalPolicy::Any),
            Just(GlobalPolicy::All),
            (500u64..20_000).prop_map(GlobalPolicy::Periodic),
        ],
    )
        .prop_map(|(local, global)| RipsConfig {
            local,
            global,
            ..RipsConfig::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every task executes exactly once under any machine and policy.
    #[test]
    fn no_task_lost_or_duplicated(
        w in arb_workload(),
        machine in arb_machine(),
        cfg in arb_config(),
        seed in 0u64..100,
    ) {
        let w = Arc::new(w);
        let out = rips(
            Arc::clone(&w),
            machine,
            LatencyModel::paragon(),
            Costs::default(),
            seed,
            cfg,
        );
        prop_assert_eq!(out.run.total_executed(), w.stats().tasks as u64);
        // Executed user time equals the workload's total work.
        prop_assert_eq!(out.run.stats.total_user_us(), w.stats().total_work_us);
    }

    /// Phase logs are internally consistent: migrations never exceed
    /// queued totals, and Σ e_k ≥ migrated (a task crosses at least one
    /// link to count).
    #[test]
    fn phase_log_consistency(
        w in arb_workload(),
        seed in 0u64..100,
    ) {
        let w = Arc::new(w);
        let out = rips(
            Arc::clone(&w),
            Machine::Mesh(Mesh2D::new(3, 3)),
            LatencyModel::paragon(),
            Costs::default(),
            seed,
            RipsConfig::default(),
        );
        for p in &out.phases {
            prop_assert!(p.migrated <= p.total_tasks);
            prop_assert!(p.edge_cost >= p.migrated);
        }
        // Non-local executions are bounded by total migrations.
        let migrated: i64 = out.phases.iter().map(|p| p.migrated).sum();
        prop_assert!(out.run.nonlocal as i64 <= migrated);
    }
}
