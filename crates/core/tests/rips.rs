//! Behavioural tests for the RIPS runtime: completeness across the
//! 2×2 policy matrix, balance quality, locality, phase structure,
//! alternative topologies, and determinism.

use std::sync::Arc;

use rips_core::{rips, GlobalPolicy, LocalPolicy, Machine, RipsConfig, RipsOutcome};
use rips_desim::LatencyModel;
use rips_runtime::Costs;
use rips_taskgraph::{flat_uniform, geometric_tree, skewed_flat, Workload};
use rips_topology::{BinaryTree, Hypercube, Mesh2D};

fn run(
    w: &Arc<Workload>,
    machine: Machine,
    local: LocalPolicy,
    global: GlobalPolicy,
) -> RipsOutcome {
    rips(
        Arc::clone(w),
        machine,
        LatencyModel::paragon(),
        Costs::default(),
        7,
        RipsConfig {
            local,
            global,
            ..RipsConfig::default()
        },
    )
}

fn mesh(n: usize) -> Machine {
    Machine::Mesh(Mesh2D::near_square(n))
}

#[test]
fn policy_matrix_completes_flat_workload() {
    let w = Arc::new(flat_uniform(300, 500, 4000, 3));
    for local in [LocalPolicy::Eager, LocalPolicy::Lazy] {
        for global in [GlobalPolicy::Any, GlobalPolicy::All] {
            let out = run(&w, mesh(8), local, global);
            out.run
                .verify_complete(&w)
                .unwrap_or_else(|e| panic!("{local:?}/{global:?}: {e}"));
            assert!(out.run.system_phases >= 1, "{local:?}/{global:?}");
        }
    }
}

#[test]
fn policy_matrix_completes_dynamic_tree() {
    let w = Arc::new(geometric_tree(4, 5, 3, 3000, 11));
    for local in [LocalPolicy::Eager, LocalPolicy::Lazy] {
        for global in [GlobalPolicy::Any, GlobalPolicy::All] {
            let out = run(&w, mesh(9), local, global);
            out.run
                .verify_complete(&w)
                .unwrap_or_else(|e| panic!("{local:?}/{global:?}: {e}"));
        }
    }
}

#[test]
fn multi_round_workload_completes() {
    let w = Arc::new(Workload {
        name: "rounds".into(),
        rounds: vec![
            flat_uniform(80, 400, 2500, 1).rounds[0].clone(),
            flat_uniform(50, 400, 2500, 2).rounds[0].clone(),
            flat_uniform(95, 400, 2500, 3).rounds[0].clone(),
        ],
    });
    let out = run(&w, mesh(8), LocalPolicy::Lazy, GlobalPolicy::Any);
    out.run.verify_complete(&w).unwrap();
    // Each round opens with its own system phase.
    assert!(out.run.system_phases >= 3);
}

#[test]
fn single_node_machine() {
    let w = Arc::new(flat_uniform(40, 100, 300, 9));
    let out = run(
        &w,
        Machine::Mesh(Mesh2D::new(1, 1)),
        LocalPolicy::Lazy,
        GlobalPolicy::Any,
    );
    out.run.verify_complete(&w).unwrap();
    assert_eq!(out.run.nonlocal, 0);
}

#[test]
fn tree_and_hypercube_machines_work() {
    // 250 tasks so block seeding is uneven on 7 and 8 nodes and the
    // opening system phase has real work to move.
    let w = Arc::new(skewed_flat(250, 800, 6, 10, 5));
    for machine in [
        Machine::Tree(BinaryTree::new(7)),
        Machine::Cube(Hypercube::new(3)),
    ] {
        let out = run(&w, machine.clone(), LocalPolicy::Lazy, GlobalPolicy::Any);
        out.run
            .verify_complete(&w)
            .unwrap_or_else(|e| panic!("{machine:?}: {e}"));
        assert!(out.run.nonlocal > 0, "{machine:?} never balanced");
    }
}

#[test]
fn rips_is_deterministic() {
    let w = Arc::new(geometric_tree(6, 4, 3, 2000, 2));
    let a = run(&w, mesh(8), LocalPolicy::Lazy, GlobalPolicy::Any);
    let b = run(&w, mesh(8), LocalPolicy::Lazy, GlobalPolicy::Any);
    assert_eq!(a.run.stats.end_time, b.run.stats.end_time);
    assert_eq!(a.run.executed, b.run.executed);
    assert_eq!(a.phases, b.phases);
}

#[test]
fn initial_system_phase_balances_block_seeds() {
    // All 160 equal tasks block-seeded onto 16 nodes: after the opening
    // system phase every node should execute ~10 tasks.
    let w = Arc::new(flat_uniform(160, 2000, 2000, 4));
    let out = run(&w, mesh(16), LocalPolicy::Lazy, GlobalPolicy::Any);
    out.run.verify_complete(&w).unwrap();
    let max = *out.run.executed.iter().max().unwrap();
    let min = *out.run.executed.iter().min().unwrap();
    assert!(
        max - min <= 2,
        "uneven execution after MWA: {:?}",
        out.run.executed
    );
}

#[test]
fn hierarchical_mesh_machine_balances_block_seeds() {
    // Same workload as the flat-MWA balance test above: the tiled
    // planner lands on the identical canonical quotas, so block
    // seeding must balance just as evenly under RIPS-H.
    let w = Arc::new(flat_uniform(160, 2000, 2000, 4));
    let out = run(
        &w,
        Machine::MeshHier(Mesh2D::near_square(16)),
        LocalPolicy::Lazy,
        GlobalPolicy::Any,
    );
    out.run.verify_complete(&w).unwrap();
    assert!(out.run.system_phases >= 1);
    let max = *out.run.executed.iter().max().unwrap();
    let min = *out.run.executed.iter().min().unwrap();
    assert!(
        max - min <= 2,
        "uneven execution after tiled MWA: {:?}",
        out.run.executed
    );
}

#[test]
fn rips_locality_beats_random_by_far() {
    // Table I: RIPS nonlocal counts are 10-20x smaller than random's.
    let w = Arc::new(geometric_tree(16, 5, 3, 2000, 21));
    let out = run(&w, mesh(16), LocalPolicy::Lazy, GlobalPolicy::Any);
    let total = w.stats().tasks as u64;
    assert!(
        out.run.nonlocal < total / 3,
        "RIPS moved {} of {} tasks",
        out.run.nonlocal,
        total
    );
}

#[test]
fn phase_log_matches_structure() {
    let w = Arc::new(flat_uniform(100, 1000, 4000, 8));
    let out = run(&w, mesh(8), LocalPolicy::Lazy, GlobalPolicy::Any);
    assert!(!out.phases.is_empty());
    // Phase 1 is the initial scheduling phase and sees every root.
    assert_eq!(out.phases[0].phase, 1);
    assert_eq!(out.phases[0].total_tasks, 100);
    // Phase indices strictly increase.
    assert!(out.phases.windows(2).all(|w| w[0].phase < w[1].phase));
    // Migrations never exceed the tasks present.
    assert!(out.phases.iter().all(|p| p.migrated <= p.total_tasks));
}

#[test]
fn eager_passes_every_task_through_a_system_phase() {
    // Under Eager, generated tasks sit in the RTS queue and only
    // execute after a system phase scheduled them, so the per-phase
    // totals must add up to at least the number of generated tasks;
    // under Lazy, tasks can run unscheduled, so they need not.
    // (Which policy is *faster* is measured by the ablation bench.)
    let w = Arc::new(geometric_tree(4, 5, 4, 2500, 17));
    let eager = run(&w, mesh(8), LocalPolicy::Eager, GlobalPolicy::Any);
    let lazy = run(&w, mesh(8), LocalPolicy::Lazy, GlobalPolicy::Any);
    eager.run.verify_complete(&w).unwrap();
    lazy.run.verify_complete(&w).unwrap();
    let scheduled: i64 = eager.phases.iter().map(|p| p.total_tasks).sum();
    assert!(
        scheduled >= w.stats().tasks as i64,
        "eager scheduled only {scheduled} of {}",
        w.stats().tasks
    );
}

#[test]
fn any_is_more_responsive_than_all() {
    // ANY lets the first idle node interrupt, ALL waits for everyone:
    // structurally, ANY can only run at least as many system phases,
    // and ALL can only leave at least as much idle time per phase.
    // (Which policy *wins* is workload-dependent — the paper's
    // ANY-Lazy verdict is an aggregate over applications, reproduced
    // by the `ablation_policies` bench.)
    let w = Arc::new(skewed_flat(200, 1500, 5, 12, 3));
    let any = run(&w, mesh(16), LocalPolicy::Lazy, GlobalPolicy::Any);
    let all = run(&w, mesh(16), LocalPolicy::Lazy, GlobalPolicy::All);
    any.run.verify_complete(&w).unwrap();
    all.run.verify_complete(&w).unwrap();
    assert!(
        any.run.system_phases >= all.run.system_phases,
        "ANY {} phases < ALL {} phases",
        any.run.system_phases,
        all.run.system_phases
    );
}

#[test]
fn efficiency_is_high_on_well_fed_machine() {
    let w = Arc::new(flat_uniform(2000, 2000, 6000, 6));
    let out = run(&w, mesh(16), LocalPolicy::Lazy, GlobalPolicy::Any);
    out.run.verify_complete(&w).unwrap();
    assert!(
        out.run.efficiency() > 0.8,
        "efficiency {}",
        out.run.efficiency()
    );
}

#[test]
fn periodic_policy_completes() {
    // The paper's naive periodic-reduction transfer test, at a few
    // intervals spanning "too chatty" to "too sleepy".
    let w = Arc::new(geometric_tree(6, 5, 3, 2500, 4));
    for interval in [500u64, 5_000, 50_000] {
        let out = run(
            &w,
            mesh(8),
            LocalPolicy::Lazy,
            GlobalPolicy::Periodic(interval),
        );
        out.run
            .verify_complete(&w)
            .unwrap_or_else(|e| panic!("interval {interval}: {e}"));
    }
}

#[test]
fn periodic_policy_multi_round() {
    let w = Arc::new(Workload {
        name: "rounds".into(),
        rounds: vec![
            flat_uniform(60, 400, 2500, 1).rounds[0].clone(),
            flat_uniform(45, 400, 2500, 2).rounds[0].clone(),
        ],
    });
    let out = run(
        &w,
        mesh(8),
        LocalPolicy::Lazy,
        GlobalPolicy::Periodic(2_000),
    );
    out.run.verify_complete(&w).unwrap();
}

#[test]
fn eureka_signalling_completes_and_cuts_init_overhead() {
    // Hardware or-barrier init: same schedule quality, strictly less
    // sender CPU per phase. Visible on a machine large enough that the
    // naive broadcast's N-1 sends matter.
    let w = Arc::new(skewed_flat(800, 800, 6, 10, 5));
    let plain = run(&w, mesh(32), LocalPolicy::Lazy, GlobalPolicy::Any);
    let eureka = rips(
        Arc::clone(&w),
        mesh(32),
        LatencyModel::paragon(),
        Costs::default(),
        7,
        RipsConfig {
            local: LocalPolicy::Lazy,
            global: GlobalPolicy::Any,
            eureka: true,
            ..RipsConfig::default()
        },
    );
    plain.run.verify_complete(&w).unwrap();
    eureka.run.verify_complete(&w).unwrap();
    // Eureka moves strictly fewer payload bytes (init signals carry
    // none) for the same workload.
    assert!(
        eureka.run.stats.net.bytes <= plain.run.stats.net.bytes,
        "eureka {} bytes vs plain {}",
        eureka.run.stats.net.bytes,
        plain.run.stats.net.bytes
    );
    // The or-barrier absorbs re-asserts: one wavefront (≤ n - 1
    // deliveries) per phase no matter how many nodes go idle in the
    // same instant. The software broadcast has no such bound — every
    // simultaneous initiator fans out n - 1 sends — so without dedup
    // the init traffic is O(n²) per phase and dominates the event
    // count on large machines.
    assert!(
        eureka.run.stats.events < plain.run.stats.events,
        "eureka {} events vs plain {} — wavefront dedup not visible",
        eureka.run.stats.events,
        plain.run.stats.events
    );
}

#[test]
fn weighted_metric_completes_everywhere() {
    use rips_core::LoadMetric;
    let w = Arc::new(skewed_flat(400, 1000, 5, 15, 6));
    for machine in [mesh(8), mesh(16)] {
        let out = rips(
            Arc::clone(&w),
            machine,
            LatencyModel::paragon(),
            Costs::default(),
            3,
            RipsConfig {
                metric: LoadMetric::EstimatedWeight,
                ..RipsConfig::default()
            },
        );
        out.run.verify_complete(&w).unwrap();
    }
}

#[test]
fn weighted_metric_beats_counts_on_skewed_grains() {
    use rips_core::LoadMetric;
    // Every 4th task is 15x heavier: balancing by count leaves some
    // nodes with several whales; balancing by estimated weight spreads
    // the whales too, cutting idle time.
    let w = Arc::new(skewed_flat(600, 1000, 4, 15, 6));
    let run_with = |metric| {
        rips(
            Arc::clone(&w),
            mesh(16),
            LatencyModel::paragon(),
            Costs::default(),
            3,
            RipsConfig {
                metric,
                ..RipsConfig::default()
            },
        )
    };
    let by_count = run_with(LoadMetric::TaskCount);
    let by_weight = run_with(LoadMetric::EstimatedWeight);
    by_count.run.verify_complete(&w).unwrap();
    by_weight.run.verify_complete(&w).unwrap();
    assert!(
        by_weight.run.stats.end_time <= by_count.run.stats.end_time,
        "weighted {} > count {}",
        by_weight.run.stats.end_time,
        by_count.run.stats.end_time
    );
}

#[test]
fn distributed_planning_matches_centralized_schedule() {
    // Same flows, so the same execution assignment — only the charged
    // collective time differs (measured steps ≤ the 3(n1+n2) bound).
    // Assignment equality additionally needs the cheaper phase charge
    // to not reshuffle *when* phases fire relative to task generation,
    // which holds for this workload seed (it is not a universal
    // invariant under the ANY policy).
    let w = Arc::new(geometric_tree(6, 5, 3, 2500, 5));
    let centralized = run(&w, mesh(8), LocalPolicy::Lazy, GlobalPolicy::Any);
    let distributed = rips(
        Arc::clone(&w),
        mesh(8),
        LatencyModel::paragon(),
        Costs::default(),
        7,
        RipsConfig {
            distributed_planning: true,
            ..RipsConfig::default()
        },
    );
    centralized.run.verify_complete(&w).unwrap();
    distributed.run.verify_complete(&w).unwrap();
    assert_eq!(centralized.run.executed, distributed.run.executed);
    assert!(distributed.run.stats.end_time <= centralized.run.stats.end_time);
}

#[test]
fn distributed_planning_on_trees() {
    let w = Arc::new(skewed_flat(250, 800, 6, 10, 5));
    let out = rips(
        Arc::clone(&w),
        Machine::Tree(BinaryTree::new(15)),
        LatencyModel::paragon(),
        Costs::default(),
        2,
        RipsConfig {
            distributed_planning: true,
            ..RipsConfig::default()
        },
    );
    out.run.verify_complete(&w).unwrap();
}

#[test]
fn phase_gap_limits_storms_under_weighted_metric() {
    use rips_core::LoadMetric;
    // Many tiny tasks on many nodes: µs-scale weight quotas are
    // unfillable, so ungated ANY initiation degenerates into one phase
    // per task. The gap caps the phase rate and the run stays fast.
    let w = Arc::new(flat_uniform(600, 50, 400, 2));
    let gated = rips(
        Arc::clone(&w),
        mesh(32),
        LatencyModel::paragon(),
        Costs::default(),
        1,
        RipsConfig {
            metric: LoadMetric::EstimatedWeight,
            min_phase_gap_us: 2_000,
            ..RipsConfig::default()
        },
    );
    gated.run.verify_complete(&w).unwrap();
    assert!(
        (gated.run.system_phases as usize) < w.stats().tasks / 4,
        "{} phases for {} tasks",
        gated.run.system_phases,
        w.stats().tasks
    );
}
