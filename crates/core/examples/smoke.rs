use rips_core::{rips, Machine, RipsConfig};
use rips_desim::LatencyModel;
use rips_runtime::Costs;
use rips_topology::Mesh2D;
use std::sync::Arc;

fn main() {
    let w = Arc::new(rips_apps::nqueens(rips_apps::NQueensConfig::paper(13)));
    let s = w.stats();
    println!(
        "13-queens: {} tasks, Ts={:.2}s",
        s.tasks,
        s.total_work_us as f64 / 1e6
    );
    let mesh = Mesh2D::new(8, 4);
    // rips-lint: allow(L002, wall-clock timing of the demo binary itself, not of simulated work)
    let t0 = std::time::Instant::now();
    let out = rips(
        Arc::clone(&w),
        Machine::Mesh(mesh.clone()),
        LatencyModel::paragon(),
        Costs::default(),
        1,
        RipsConfig::default(),
    );
    println!(
        "RIPS:  nonlocal={} Th={:.3} Ti={:.3} T={:.3} mu={:.1}% phases={} (wall {:?})",
        out.run.nonlocal,
        out.run.overhead_s(),
        out.run.idle_s(),
        out.run.exec_time_s(),
        out.run.efficiency() * 100.0,
        out.run.system_phases,
        t0.elapsed()
    );
    out.run.verify_complete(&w).unwrap();
    for ph in &out.phases {
        println!(
            "  phase {:2} round {} total={:6} migrated={:5} cost={:6}",
            ph.phase, ph.round, ph.total_tasks, ph.migrated, ph.edge_cost
        );
    }
    for (name, f) in [("Random", 0), ("Gradient", 1), ("RID", 2)] {
        // rips-lint: allow(L002, wall-clock timing of the demo binary itself, not of simulated work)
        let t0 = std::time::Instant::now();
        let topo: Arc<dyn rips_topology::Topology> = Arc::new(mesh.clone());
        let o = match f {
            0 => rips_balancers::random(
                Arc::clone(&w),
                topo,
                LatencyModel::paragon(),
                Costs::default(),
                1,
            ),
            1 => rips_balancers::gradient(
                Arc::clone(&w),
                topo,
                LatencyModel::paragon(),
                Costs::default(),
                1,
                Default::default(),
            ),
            _ => rips_balancers::rid(
                Arc::clone(&w),
                topo,
                LatencyModel::paragon(),
                Costs::default(),
                1,
                Default::default(),
            ),
        };
        println!(
            "{name}: nonlocal={} Th={:.3} Ti={:.3} T={:.3} mu={:.1}% (wall {:?})",
            o.nonlocal,
            o.overhead_s(),
            o.idle_s(),
            o.exec_time_s(),
            o.efficiency() * 100.0,
            t0.elapsed()
        );
        o.verify_complete(&w).unwrap();
    }
}
