//! RIPS as a [`BalancerPolicy`] over the shared policy kernel.
//!
//! The kernel's [`NodeDriver`](rips_runtime::NodeDriver) owns task
//! execution, migration accounting, and round pacing; this module
//! contributes only what makes RIPS *RIPS*: the alternating user/system
//! phases, the transfer-condition policies (ANY / ALL / Periodic), the
//! parallel scheduling algorithms of the system phase, and the
//! plan-driven migrations. The kernel's `exec_enabled` gate is slaved
//! to the RIPS mode — execution is frozen the moment a node leaves its
//! user phase, exactly the "every processor finishes the current task
//! execution and enters the system phase" of the paper.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

use rips_collectives::{dem_steps, mwa_steps, twa_steps};
use rips_desim::{LatencyModel, Time, WorkKind};
use rips_runtime::rcu::RcuCell;
use rips_runtime::{
    exec_step, run_policy, BalancerPolicy, Costs, ExecCtx, Kernel, KernelMsg, PhaseLog, RunOutcome,
    TaskInstance, TAG_POLICY_BASE,
};
use rips_sched::TransferPlan;
use rips_taskgraph::Workload;
use rips_topology::{BinaryTree, Hypercube, Mesh2D, NodeId, Topology};
use rips_trace::{PhaseKind, SysStage, TraceEvent};

/// Local transfer policy (paper §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalPolicy {
    /// Two queues; every task is scheduled before execution.
    Eager,
    /// One queue; tasks may execute where they were generated.
    Lazy,
}

/// Global transfer policy (paper §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GlobalPolicy {
    /// First locally-ready processor broadcasts *init*.
    Any,
    /// Ready signals aggregate up a logical spanning tree; the root
    /// initiates once every processor is ready.
    All,
    /// The paper's "naive implementation": a global reduction every
    /// `interval` µs tests the transfer condition; each test charges
    /// every node a reduction's worth of overhead whether or not it
    /// fires. "An interval that is too short increases communication
    /// overhead, and an interval that is too long may result in
    /// unnecessary processor idle" — swept by the `ablation_interval`
    /// bench.
    Periodic(Time),
}

/// What a processor reports as its "load" in a system phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMetric {
    /// Number of queued tasks — the paper's choice: "each task is
    /// presumed to require the equal execution time … the inaccuracy
    /// due to the grain-size variation can be corrected in the next
    /// system phase."
    TaskCount,
    /// Sum of the queued tasks' estimated grains (µs) — the
    /// programmer/compiler estimation the paper mentions as the
    /// alternative. Balances *work* instead of *count*; the
    /// `ablation_weighted` bench measures what that buys.
    EstimatedWeight,
}

/// RIPS policy configuration. The paper's best combination — and the
/// one behind its Table I numbers — is ANY-Lazy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RipsConfig {
    /// Local transfer policy.
    pub local: LocalPolicy,
    /// Global transfer policy.
    pub global: GlobalPolicy,
    /// Per-node CPU charged per communication step of the parallel
    /// scheduling algorithm (µs).
    pub plan_cpu_per_step_us: Time,
    /// Use hardware or-barrier signalling ("the eureka mode in Cray
    /// T3D") for the ANY policy's init broadcast: the initiator pays no
    /// per-recipient CPU, the signal carries no payload, and re-asserts
    /// of an already-raised wire are absorbed — exactly one wavefront
    /// per phase even when every node goes idle in the same instant
    /// (the software broadcast degenerates to O(n²) init messages
    /// there). Only meaningful under [`GlobalPolicy::Any`].
    pub eureka: bool,
    /// What counts as "load" when the system phase balances.
    ///
    /// Caution: under [`GlobalPolicy::Any`] with µs-granularity weights,
    /// a node whose weight quota is unfillable by indivisible tasks is
    /// permanently "idle enough" to initiate, which degenerates into
    /// one system phase per executed task on large machines. Pair
    /// [`LoadMetric::EstimatedWeight`] with [`GlobalPolicy::Periodic`]
    /// or set [`RipsConfig::min_phase_gap_us`].
    pub metric: LoadMetric,
    /// Plan system phases with the *distributed* SPMD algorithm where
    /// one exists (mesh MWA, tree TWA): the phase's wall-clock charge
    /// becomes the BSP machine's measured communication-step count
    /// instead of the closed-form bound. Flows are identical either
    /// way (property-tested); this only refines the cost model.
    pub distributed_planning: bool,
    /// Minimum virtual time between an ANY-policy node returning to
    /// its user phase and it initiating the next system phase (µs).
    /// 0 (the paper's behaviour) lets an idle node initiate
    /// immediately; a small gap suppresses phase storms when quotas
    /// are unfillable (see [`RipsConfig::metric`]).
    pub min_phase_gap_us: Time,
}

impl Default for RipsConfig {
    fn default() -> Self {
        RipsConfig {
            local: LocalPolicy::Lazy,
            global: GlobalPolicy::Any,
            plan_cpu_per_step_us: 25,
            eureka: false,
            metric: LoadMetric::TaskCount,
            distributed_planning: false,
            min_phase_gap_us: 0,
        }
    }
}

/// The machine RIPS runs on, which fixes the parallel scheduling
/// algorithm of the system phase: MWA on meshes (the paper's machine),
/// TWA on trees, DEM on hypercubes — "RIPS is a general method and
/// applies to different topologies" (§4).
#[derive(Debug, Clone)]
pub enum Machine {
    /// 2-D mesh scheduled by the Mesh Walking Algorithm.
    Mesh(Mesh2D),
    /// 2-D mesh scheduled hierarchically (`rips-h`): the Mesh Walking
    /// Algorithm inside `⌈n^(1/4)⌉`-sided tiles plus a cross-tile
    /// exchange — same post-schedule loads as [`Machine::Mesh`]
    /// (Theorem 1 exactly) in `O(n^(1/4))` instead of `O(√n)`
    /// communication steps, for meshes too large for the full walk.
    MeshHier(Mesh2D),
    /// Binary tree scheduled by the Tree Walking Algorithm.
    Tree(BinaryTree),
    /// Hypercube scheduled by the Dimension Exchange Method.
    Cube(Hypercube),
}

impl Machine {
    /// The underlying topology.
    pub fn topology(&self) -> Arc<dyn Topology> {
        match self {
            Machine::Mesh(m) | Machine::MeshHier(m) => Arc::new(m.clone()),
            Machine::Tree(t) => Arc::new(t.clone()),
            Machine::Cube(c) => Arc::new(c.clone()),
        }
    }

    /// Runs the machine's scheduling algorithm, returning the plan and
    /// the communication steps to charge for it (`None` = use the
    /// closed-form step bound).
    fn plan(&self, loads: &[i64], distributed: bool) -> (TransferPlan, Option<usize>) {
        match (self, distributed) {
            (Machine::Mesh(m), false) => (rips_sched::mwa(m, loads).0, None),
            (Machine::Mesh(m), true) => {
                let (plan, steps) = rips_sched::mwa_distributed(m, loads);
                (plan, Some(steps))
            }
            // The hierarchical planner is the same centralized
            // arithmetic every node would run; its two-level step
            // bound (see `steps`) already reflects the shorter walks,
            // so the distributed flag does not change the plan.
            (Machine::MeshHier(m), _) => (rips_sched::tiled_mwa(m, loads).0, None),
            (Machine::Tree(t), false) => (rips_sched::twa(t, loads), None),
            (Machine::Tree(t), true) => {
                let (plan, steps) = rips_sched::twa_distributed(t, loads);
                (plan, Some(steps))
            }
            (Machine::Cube(c), false) => (rips_sched::dem(c, loads), None),
            (Machine::Cube(c), true) => {
                let (plan, steps) = rips_sched::dem_distributed(c, loads);
                (plan, Some(steps))
            }
        }
    }

    /// Communication steps one system-phase scheduling run takes.
    fn steps(&self) -> usize {
        match self {
            Machine::Mesh(m) => mwa_steps(m),
            Machine::MeshHier(m) => rips_sched::TileGrid::new(m).hier_steps(),
            Machine::Tree(t) => twa_steps(t.height().max(1)),
            Machine::Cube(c) => dem_steps(c.dim().max(1)),
        }
    }
}

/// RIPS run result: the common outcome plus the per-phase log.
#[derive(Debug, Clone)]
pub struct RipsOutcome {
    /// The Table I columns.
    pub run: RunOutcome,
    /// One entry per system phase that scheduled tasks (termination
    /// phases with zero tasks are not logged).
    pub phases: Vec<PhaseLog>,
}

/// RIPS control messages — everything that is not task migration or
/// round pacing (the kernel owns those).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RipsCtl {
    /// Enter system phase `p`.
    Init(u32),
    /// ALL policy: this subtree is ready for phase `p`.
    Ready(u32),
    /// Phase `p`'s plan is computed; migrate and resume.
    PlanReady(u32),
}

const TAG_PLAN: u64 = TAG_POLICY_BASE;
const TAG_POLL: u64 = TAG_POLICY_BASE + 2;
const TAG_RECHECK: u64 = TAG_POLICY_BASE + 3;

/// Rendezvous state shared by one engine's policies, split by access
/// pattern so the live backend's node threads don't serialize on reads.
#[derive(Default)]
struct FleetShared {
    /// Write-heavy phase bookkeeping (load reports, logs): mutex.
    mu: Mutex<Shared>,
    /// The plan board: written once per system phase by the last
    /// reporter, then read by every node applying the plan. RCU-style
    /// publication makes each read one atomic load, with no lock and
    /// no per-access clone of the plan.
    plans: RcuCell<BTreeMap<u32, Arc<PhasePlan>>>,
    /// Periodic policy: some node's local condition is set and waiting
    /// for the next poll. Checked every poll tick on every node, so it
    /// is a lock-free flag.
    want_phase: AtomicBool,
    /// Eureka mode: highest phase whose or-barrier wire has been
    /// raised. Hardware absorbs re-asserts, so only the node that wins
    /// the `fetch_max` race delivers the wavefront — without this the
    /// simultaneous-idle case degenerates into `n` initiators each
    /// fanning out `n` signals (an O(n²) event storm per phase that
    /// dominates the event count beyond a few hundred nodes).
    eureka_raised: AtomicU32,
}

/// Per-phase rendezvous state behind [`FleetShared::mu`].
#[derive(Default)]
struct Shared {
    /// Loads reported per phase.
    entries: BTreeMap<u32, Entry>,
    /// Completed system phases.
    phases: u32,
    /// Per-phase log.
    logs: Vec<PhaseLog>,
}

struct Entry {
    reported: Vec<Option<i64>>,
    entered: usize,
}

struct PhasePlan {
    /// Per-source `(dst, count)` transfers.
    outgoing: Vec<Vec<(NodeId, i64)>>,
    /// Per-destination expected task count.
    expected_in: Vec<i64>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Executing the user phase.
    User,
    /// Told to enter the system phase but still owed migrations from
    /// the previous one.
    WaitingEntry(u32),
    /// Reported load; waiting for the plan.
    Entered,
}

/// The RIPS transfer policy: one instance per node, plugged into the
/// kernel's [`NodeDriver`](rips_runtime::NodeDriver).
pub struct RipsPolicy {
    cfg: RipsConfig,
    machine: Arc<Machine>,
    shared: Arc<FleetShared>,
    /// Eager policy's ready-to-schedule queue (unused under Lazy).
    rts: VecDeque<TaskInstance>,
    mode: Mode,
    phase_index: u32,
    /// An init that arrived while this node was still inside the
    /// previous system phase (possible when init signalling is faster
    /// than the plan broadcast, e.g. under eureka); processed right
    /// after the plan is applied.
    pending_init: Option<u32>,
    /// When this node last returned to the user phase (for the ANY
    /// initiation gap).
    user_phase_since: Time,
    /// A deferred ANY-initiation check is already scheduled.
    recheck_armed: bool,
    // ALL-policy spanning tree state.
    tree: BinaryTree,
    local_ready_for: Option<u32>,
    ready_sent_for: Option<u32>,
    children_ready: BTreeMap<u32, u32>,
    /// Tracing only: the phase an open idle-detect stage was emitted
    /// for (`None` when no stage is open). Idle-detect latency runs
    /// from the local transfer condition turning true to the node
    /// entering the system phase.
    trace_idle_open: Option<u32>,
}

impl RipsPolicy {
    /// Switches mode, keeping the kernel's exec gate in lock-step:
    /// tasks execute only during the user phase. `now` stamps the trace
    /// spans: a user→system transition closes the user-phase span
    /// (index `phase_index − 1`, since `phase_index` is already set to
    /// the phase being entered) and opens the system-phase span; a
    /// system→user transition does the reverse. The WaitingEntry and
    /// Entered modes are the same system-phase span.
    fn set_mode(&mut self, k: &mut Kernel, now: Time, mode: Mode) {
        let was_user = self.mode == Mode::User;
        let is_user = mode == Mode::User;
        if k.oracle.tracer.enabled() && was_user != is_user {
            let (me, p) = (k.me, self.phase_index);
            let tr = &k.oracle.tracer;
            if is_user {
                tr.emit(now, me, || TraceEvent::PhaseEnd {
                    kind: PhaseKind::System,
                    index: p,
                });
                tr.emit(now, me, || TraceEvent::PhaseBegin {
                    kind: PhaseKind::User,
                    index: p,
                });
            } else {
                if let Some(ip) = self.trace_idle_open.take() {
                    tr.emit(now, me, || TraceEvent::StageEnd {
                        stage: SysStage::IdleDetect,
                        phase: ip,
                    });
                }
                tr.emit(now, me, || TraceEvent::PhaseEnd {
                    kind: PhaseKind::User,
                    index: p.saturating_sub(1),
                });
                tr.emit(now, me, || TraceEvent::PhaseBegin {
                    kind: PhaseKind::System,
                    index: p,
                });
            }
        }
        self.mode = mode;
        k.exec_enabled = mode == Mode::User;
    }

    /// This node's load under the configured metric.
    #[inline]
    fn load(&self, k: &Kernel) -> i64 {
        match self.cfg.metric {
            LoadMetric::TaskCount => (k.exec.queue.len() + self.rts.len()) as i64,
            LoadMetric::EstimatedWeight => k
                .exec
                .queue
                .iter()
                .chain(self.rts.iter())
                .map(|t| t.grain_us as i64)
                .sum(),
        }
    }

    /// Local transfer condition (paper §2): the RTE queue is empty —
    /// and no migration from the previous system phase is still owed.
    #[inline]
    fn local_condition(&self, k: &Kernel) -> bool {
        self.mode == Mode::User && k.exec.queue.is_empty() && k.received_in == k.expected_in
    }

    /// Acts on a satisfied local condition according to the global
    /// policy.
    fn check_transfer(&mut self, k: &mut Kernel, ctx: &mut impl ExecCtx<KernelMsg<RipsCtl>>) {
        if !self.local_condition(k) {
            return;
        }
        let next = self.phase_index + 1;
        if k.oracle.tracer.enabled() && self.trace_idle_open.is_none() {
            // The local condition just turned true: open the
            // idle-detect stage; it closes when the node actually
            // enters a system phase.
            self.trace_idle_open = Some(next);
            let (t, me) = (ctx.now(), k.me);
            k.oracle.tracer.emit(t, me, || TraceEvent::StageBegin {
                stage: SysStage::IdleDetect,
                phase: next,
            });
        }
        match self.cfg.global {
            GlobalPolicy::Any => {
                // Respect the minimum gap since this node resumed its
                // user phase (0 by default = the paper's behaviour).
                let eligible_at = self.user_phase_since + self.cfg.min_phase_gap_us;
                if ctx.now() < eligible_at {
                    if !self.recheck_armed {
                        self.recheck_armed = true;
                        ctx.set_timer(eligible_at - ctx.now(), TAG_RECHECK);
                    }
                    return;
                }
                // Become the initiator: broadcast init and enter.
                self.phase_index = next;
                if self.cfg.eureka {
                    // Or-barrier semantics: raising an already-raised
                    // wire is free and invisible, so exactly one
                    // wavefront per phase is delivered no matter how
                    // many nodes go idle in the same instant (see
                    // [`FleetShared::eureka_raised`]). Losers still
                    // enter immediately — same as winning, minus the
                    // fan-out.
                    if self.shared.eureka_raised.fetch_max(next, Ordering::AcqRel) < next {
                        ctx.signal_all(KernelMsg::Policy(RipsCtl::Init(next)));
                    }
                } else {
                    ctx.send_all(
                        KernelMsg::Policy(RipsCtl::Init(next)),
                        k.oracle.costs.ctl_bytes,
                    );
                }
                self.enter_system(k, ctx, next);
            }
            GlobalPolicy::All => {
                self.local_ready_for = Some(next);
                self.try_send_ready(k, ctx, next);
            }
            GlobalPolicy::Periodic(_) => {
                // Flag it; node 0's next poll turns it into an init.
                self.shared.want_phase.store(true, Ordering::Release);
            }
        }
    }

    /// ALL policy: forward the ready signal once this node and all its
    /// logical-tree children are ready; the root initiates instead.
    fn try_send_ready(
        &mut self,
        k: &mut Kernel,
        ctx: &mut impl ExecCtx<KernelMsg<RipsCtl>>,
        phase: u32,
    ) {
        if self.local_ready_for != Some(phase) || self.ready_sent_for == Some(phase) {
            return;
        }
        let kids = self.tree.children(k.me).len() as u32;
        if self.children_ready.get(&phase).copied().unwrap_or(0) < kids {
            return;
        }
        self.ready_sent_for = Some(phase);
        match self.tree.parent(k.me) {
            Some(parent) => ctx.send(
                parent,
                KernelMsg::Policy(RipsCtl::Ready(phase)),
                k.oracle.costs.ctl_bytes,
            ),
            None => {
                // Root: the global ALL condition holds; initiate.
                self.phase_index = phase;
                ctx.send_all(
                    KernelMsg::Policy(RipsCtl::Init(phase)),
                    k.oracle.costs.ctl_bytes,
                );
                self.enter_system(k, ctx, phase);
            }
        }
    }

    /// Reports the load for phase `p`; the last reporter computes the
    /// plan (or detects round termination).
    fn enter_system(&mut self, k: &mut Kernel, ctx: &mut impl ExecCtx<KernelMsg<RipsCtl>>, p: u32) {
        if std::env::var_os("RIPS_DEBUG").is_some() {
            eprintln!(
                "[t={}] node {} enter phase {} mode {:?} load {}",
                ctx.now(),
                k.me,
                p,
                self.mode,
                self.load(k)
            );
        }
        debug_assert_eq!(self.phase_index, p);
        let now = ctx.now();
        // A `was_user` entry is the node freezing execution now; a
        // WaitingEntry re-entry already opened its spans back then.
        let was_user = self.mode == Mode::User;
        if k.received_in != k.expected_in {
            // Owed migrations: defer until they arrive.
            if std::env::var_os("RIPS_DEBUG").is_some() {
                eprintln!(
                    "[t={}] node {} DEFER phase {p}: received {}/{}",
                    ctx.now(),
                    k.me,
                    k.received_in,
                    k.expected_in
                );
            }
            self.set_mode(k, now, Mode::WaitingEntry(p));
            if was_user && k.oracle.tracer.enabled() {
                let me = k.me;
                k.oracle.tracer.emit(now, me, || TraceEvent::StageBegin {
                    stage: SysStage::LoadCollect,
                    phase: p,
                });
            }
            return;
        }
        self.set_mode(k, now, Mode::Entered);
        if was_user && k.oracle.tracer.enabled() {
            let me = k.me;
            k.oracle.tracer.emit(now, me, || TraceEvent::StageBegin {
                stage: SysStage::LoadCollect,
                phase: p,
            });
        }
        self.children_ready.remove(&p);
        let n = k.oracle.num_nodes();
        let load = self.load(k);
        if k.oracle.tracer.enabled() {
            let me = k.me;
            let tr = &k.oracle.tracer;
            tr.emit(now, me, || TraceEvent::StageEnd {
                stage: SysStage::LoadCollect,
                phase: p,
            });
            tr.emit(now, me, || TraceEvent::LoadSample { load });
        }
        let mut shared = self.shared.mu.lock().unwrap();
        let entry = shared.entries.entry(p).or_insert_with(|| Entry {
            reported: vec![None; n],
            entered: 0,
        });
        debug_assert!(entry.reported[k.me].is_none(), "double entry");
        entry.reported[k.me] = Some(load);
        entry.entered += 1;
        if entry.entered < n {
            return;
        }
        // Last to enter: run the parallel scheduling algorithm.
        let loads: Vec<i64> = entry
            .reported
            .iter()
            .map(|r| r.expect("all reported"))
            .collect();
        let total: i64 = loads.iter().sum();
        if std::env::var_os("RIPS_DEBUG").is_some() {
            eprintln!(
                "[t={}] node {} COMPUTES phase {p} total={total}",
                ctx.now(),
                k.me
            );
        }
        shared.phases += 1;
        if p >= 2 {
            shared.entries.remove(&(p - 2));
        }
        if total == 0 {
            // No work anywhere: the round (and possibly the job) ended.
            drop(shared);
            k.announce_round(ctx);
            return;
        }
        let (plan, measured_steps) = self.machine.plan(&loads, self.cfg.distributed_planning);
        let transfers = plan.net_transfers(&loads);
        let mut outgoing: Vec<Vec<(NodeId, i64)>> = vec![Vec::new(); n];
        let mut expected_in = vec![0i64; n];
        let mut migrated = 0;
        for &(src, dst, amount) in &transfers {
            outgoing[src].push((dst, amount));
            expected_in[dst] += 1; // one packed message per pair
            migrated += amount;
        }
        shared.logs.push(PhaseLog {
            phase: p,
            round: k.oracle.round(),
            total_tasks: total,
            migrated,
            edge_cost: plan.edge_cost(),
        });
        drop(shared);
        // Publish the plan RCU-style: one writer per phase (the last
        // reporter, uniquely determined under the lock above), and
        // phases are globally sequential, so read-clone-publish cannot
        // race another publisher. Peers read the board only after the
        // PlanReady message, whose delivery orders the publication.
        let mut plans = self.shared.plans.read().clone();
        if p >= 2 {
            plans.remove(&(p - 2));
        }
        plans.insert(
            p,
            Arc::new(PhasePlan {
                outgoing,
                expected_in,
            }),
        );
        self.shared.plans.publish(plans);
        if k.oracle.tracer.enabled() {
            // The plan stage lives on the computing node only; it
            // closes when the TAG_PLAN timer fires.
            let (t, me) = (ctx.now(), k.me);
            k.oracle.tracer.emit(t, me, || TraceEvent::StageBegin {
                stage: SysStage::Plan,
                phase: p,
            });
        }
        // The algorithm's synchronous steps take wall-clock time before
        // anyone can act on the plan.
        let steps = measured_steps.unwrap_or_else(|| self.machine.steps());
        let delay = steps as Time * k.oracle.costs.comm_step_us;
        ctx.set_timer(delay, TAG_PLAN);
    }

    /// Executes this node's part of phase `p`'s plan and returns to the
    /// user phase.
    fn apply_plan(&mut self, k: &mut Kernel, ctx: &mut impl ExecCtx<KernelMsg<RipsCtl>>, p: u32) {
        if std::env::var_os("RIPS_DEBUG").is_some() {
            eprintln!(
                "[t={}] node {} APPLY plan {p} mode {:?}",
                ctx.now(),
                k.me,
                self.mode
            );
        }
        debug_assert_eq!(self.mode, Mode::Entered);
        debug_assert_eq!(self.phase_index, p);
        // Per-node share of the collective algorithm's CPU.
        ctx.compute(
            self.machine.steps() as Time * self.cfg.plan_cpu_per_step_us,
            WorkKind::Overhead,
        );
        if k.oracle.tracer.enabled() {
            let (t, me) = (ctx.now(), k.me);
            k.oracle.tracer.emit(t, me, || TraceEvent::StageBegin {
                stage: SysStage::Migrate,
                phase: p,
            });
        }
        // Everything reported is now scheduled: the RTS queue drains
        // into the RTE queue ("the system phase schedules tasks in all
        // RTS queues and distributes them evenly to the RTE queues").
        let rts = std::mem::take(&mut self.rts);
        k.exec.queue.extend(rts);
        // Lock-free snapshot read of the plan board (see FleetShared).
        let plan = Arc::clone(self.shared.plans.read().get(&p).expect("plan must exist"));
        let expected = plan.expected_in[k.me];
        // The Arc keeps the plan alive for the loop; no per-node clone
        // of the outgoing vector is needed.
        for &(dst, amount) in &plan.outgoing[k.me] {
            if std::env::var_os("RIPS_DEBUG").is_some() {
                eprintln!(
                    "[t={}] node {} SEND {amount} -> {dst} (phase {p}, have {})",
                    ctx.now(),
                    k.me,
                    k.exec.queue.len()
                );
            }
            // Under TaskCount `amount` is the exact batch size; under
            // EstimatedWeight it is µs of work, so size the batch by
            // the queue instead.
            let cap = match self.cfg.metric {
                LoadMetric::TaskCount => amount as usize,
                LoadMetric::EstimatedWeight => k.exec.queue.len().min(amount as usize),
            };
            let mut batch = Vec::with_capacity(cap);
            match self.cfg.metric {
                LoadMetric::TaskCount => {
                    for _ in 0..amount {
                        batch.push(
                            k.exec
                                .queue
                                .pop_back()
                                .expect("plan cannot overdraw a reported queue"),
                        );
                    }
                }
                LoadMetric::EstimatedWeight => {
                    // Tasks are indivisible: pick tasks (newest first)
                    // whose grain brings the moved weight closer to the
                    // plan — taking `g` helps iff `g ≤ 2·remaining` —
                    // so a whale is only shipped when the plan really
                    // asks for that much work. Whatever error remains
                    // is corrected by the next incremental phase.
                    let mut remaining = amount;
                    let mut idx = k.exec.queue.len();
                    while idx > 0 && remaining > 0 {
                        idx -= 1;
                        let g = k.exec.queue[idx].grain_us as i64;
                        if g <= 2 * remaining {
                            let task = k.exec.queue.remove(idx).expect("idx in range");
                            batch.push(task);
                            remaining -= g;
                        }
                    }
                }
            }
            ctx.compute(
                k.oracle.costs.spawn_us * batch.len() as Time,
                WorkKind::Overhead,
            );
            k.send_tasks(ctx, dst, batch, 0);
        }
        k.expected_in += expected;
        let now = ctx.now();
        if k.oracle.tracer.enabled() {
            let me = k.me;
            k.oracle.tracer.emit(now, me, || TraceEvent::StageEnd {
                stage: SysStage::Migrate,
                phase: p,
            });
        }
        self.set_mode(k, now, Mode::User);
        self.user_phase_since = now;
        // Commit to the first task of the new user phase *within this
        // handler*: returning to the event loop first would let an
        // already-queued init/poll event preempt an all-idle machine
        // into an endless chain of zero-progress system phases. Running
        // one task inline guarantees every phase advances the
        // computation — the paper's "every processor finishes the
        // current task execution".
        exec_step(self, k, &mut *ctx);
        self.check_transfer(k, &mut *ctx);
        if let Some(next) = self.pending_init.take() {
            if next > self.phase_index {
                self.phase_index = next;
                self.enter_system(k, ctx, next);
            }
        }
    }

    /// Seeds a round's block of roots and synchronously enters the
    /// round-opening system phase ("a RIPS system starts with a system
    /// phase which schedules initial tasks").
    fn start_round(
        &mut self,
        k: &mut Kernel,
        ctx: &mut impl ExecCtx<KernelMsg<RipsCtl>>,
        round: u32,
        phase: u32,
    ) {
        let seeds = k.take_seeds(ctx, round);
        k.exec.queue.extend(seeds);
        let now = ctx.now();
        self.set_mode(k, now, Mode::User);
        self.phase_index = phase;
        self.enter_system(k, ctx, phase);
    }
}

impl BalancerPolicy for RipsPolicy {
    type Msg = RipsCtl;

    fn on_start(&mut self, k: &mut Kernel, ctx: &mut impl ExecCtx<KernelMsg<RipsCtl>>) {
        if k.oracle.tracer.enabled() {
            // Every node boots inside user phase 0 (closed the moment
            // the round-opening system phase is entered).
            let (t, me) = (ctx.now(), k.me);
            k.oracle.tracer.emit(t, me, || TraceEvent::PhaseBegin {
                kind: PhaseKind::User,
                index: 0,
            });
        }
        if let GlobalPolicy::Periodic(interval) = self.cfg.global {
            // Only node 0 polls; everyone else just flags its local
            // condition in the shared reduction state.
            if k.me == 0 {
                ctx.set_timer(interval, TAG_POLL);
            }
        }
        self.start_round(k, ctx, 0, 1);
    }

    fn on_msg(
        &mut self,
        k: &mut Kernel,
        ctx: &mut impl ExecCtx<KernelMsg<RipsCtl>>,
        from: NodeId,
        msg: RipsCtl,
    ) {
        match msg {
            RipsCtl::Init(p) => {
                if p <= self.phase_index {
                    return; // redundant initiator, dropped by phase index
                }
                debug_assert_eq!(p, self.phase_index + 1, "init skipped a phase");
                if self.mode == Mode::Entered {
                    // Still waiting for the previous phase's plan: act
                    // on the init once that plan has been applied.
                    self.pending_init = Some(p);
                    return;
                }
                self.phase_index = p;
                self.enter_system(k, ctx, p);
            }
            RipsCtl::Ready(p) => {
                debug_assert_eq!(self.cfg.global, GlobalPolicy::All);
                debug_assert!(self.tree.children(k.me).contains(&from));
                *self.children_ready.entry(p).or_insert(0) += 1;
                self.try_send_ready(k, ctx, p);
            }
            RipsCtl::PlanReady(p) => self.apply_plan(k, ctx, p),
        }
    }

    fn on_tasks_accepted(
        &mut self,
        k: &mut Kernel,
        ctx: &mut impl ExecCtx<KernelMsg<RipsCtl>>,
        _from: NodeId,
        _load: i64,
    ) {
        if std::env::var_os("RIPS_DEBUG").is_some() {
            eprintln!(
                "[t={}] node {} RECV tasks mode {:?} recv {}/{}",
                ctx.now(),
                k.me,
                self.mode,
                k.received_in,
                k.expected_in
            );
        }
        // The kernel has enqueued the batch and re-armed the exec loop
        // (a no-op outside the user phase, because `exec_enabled`
        // mirrors the mode). What's left is RIPS's deferral bookkeeping:
        // a node that owed migrations when told to enter a system phase
        // enters now, once the last owed message lands.
        if k.received_in == k.expected_in {
            if let Mode::WaitingEntry(p) = self.mode {
                // Enter directly from WaitingEntry: the node never
                // resumed its user phase, and the system-phase trace
                // span has been open since the deferral.
                self.enter_system(k, ctx, p);
            }
        }
    }

    fn on_timer(&mut self, k: &mut Kernel, ctx: &mut impl ExecCtx<KernelMsg<RipsCtl>>, tag: u64) {
        match tag {
            TAG_RECHECK => {
                self.recheck_armed = false;
                self.check_transfer(k, ctx);
            }
            TAG_POLL => {
                let GlobalPolicy::Periodic(interval) = self.cfg.global else {
                    unreachable!("poll timer without periodic policy");
                };
                // Every node pays for its share of the reduction.
                ctx.compute(k.oracle.costs.comm_step_us / 4, WorkKind::Overhead);
                // Keep exactly one poll chain alive; it dies with the
                // machine when the final phase halts the engine.
                ctx.set_timer(interval, TAG_POLL);
                let fire =
                    self.shared.want_phase.load(Ordering::Acquire) && self.mode == Mode::User;
                if fire && k.received_in == k.expected_in {
                    self.shared.want_phase.store(false, Ordering::Release);
                    let next = self.phase_index + 1;
                    self.phase_index = next;
                    ctx.send_all(
                        KernelMsg::Policy(RipsCtl::Init(next)),
                        k.oracle.costs.ctl_bytes,
                    );
                    self.enter_system(k, ctx, next);
                }
            }
            TAG_PLAN => {
                // Only the plan-computing node runs this: distribute
                // and apply.
                let p = self.phase_index;
                if k.oracle.tracer.enabled() {
                    let (t, me) = (ctx.now(), k.me);
                    k.oracle.tracer.emit(t, me, || TraceEvent::StageEnd {
                        stage: SysStage::Plan,
                        phase: p,
                    });
                }
                ctx.send_all(
                    KernelMsg::Policy(RipsCtl::PlanReady(p)),
                    k.oracle.costs.ctl_bytes,
                );
                self.apply_plan(k, ctx, p);
            }
            _ => unreachable!("unknown timer {tag}"),
        }
    }

    /// Places freshly generated children according to the local policy.
    fn place_children(
        &mut self,
        k: &mut Kernel,
        ctx: &mut impl ExecCtx<KernelMsg<RipsCtl>>,
        children: Vec<TaskInstance>,
    ) {
        ctx.compute(
            k.oracle.costs.spawn_us * children.len() as Time,
            WorkKind::Overhead,
        );
        match self.cfg.local {
            LocalPolicy::Lazy => k.exec.queue.extend(children),
            LocalPolicy::Eager => self.rts.extend(children),
        }
    }

    fn after_task(&mut self, k: &mut Kernel, ctx: &mut impl ExecCtx<KernelMsg<RipsCtl>>) {
        self.check_transfer(k, ctx);
    }

    /// Round completion is detected by the empty system phase, not by
    /// the kernel's last-task signal.
    fn announces_rounds(&self) -> bool {
        false
    }

    /// The round-start broadcast carries the phase index that opens the
    /// new round, so every node enters the same round-opening phase.
    fn round_token(&self, _k: &Kernel) -> u32 {
        self.phase_index + 1
    }

    fn on_round_start(
        &mut self,
        k: &mut Kernel,
        ctx: &mut impl ExecCtx<KernelMsg<RipsCtl>>,
        round: u32,
        token: u32,
    ) {
        self.start_round(k, ctx, round, token);
    }

    fn on_round_announced(
        &mut self,
        k: &mut Kernel,
        ctx: &mut impl ExecCtx<KernelMsg<RipsCtl>>,
        round: u32,
        token: u32,
    ) {
        self.start_round(k, ctx, round, token);
    }
}

/// Backend-agnostic factory for a machine's worth of RIPS policies.
///
/// Both backends use it the same way: build the fleet, hand
/// [`RipsFleet::make`] to the backend as the per-node constructor, run,
/// drop the policies, then call [`RipsFleet::finish`] for the shared
/// phase log. The fleet owns the rendezvous state
/// ([`Machine`] + phase entries/plans) that one run's policies share.
pub struct RipsFleet {
    cfg: RipsConfig,
    machine: Arc<Machine>,
    shared: Arc<FleetShared>,
    n: usize,
}

impl RipsFleet {
    /// A fleet for `machine` under `cfg`.
    pub fn new(cfg: RipsConfig, machine: Machine) -> Self {
        let n = machine.topology().len();
        RipsFleet {
            cfg,
            machine: Arc::new(machine),
            shared: Arc::new(FleetShared::default()),
            n,
        }
    }

    /// The machine's topology.
    pub fn topology(&self) -> Arc<dyn Topology> {
        self.machine.topology()
    }

    /// Builds node `_me`'s policy instance.
    pub fn make(&self, _me: NodeId) -> RipsPolicy {
        RipsPolicy {
            cfg: self.cfg,
            machine: Arc::clone(&self.machine),
            shared: Arc::clone(&self.shared),
            rts: VecDeque::new(),
            mode: Mode::User,
            phase_index: 0,
            pending_init: None,
            user_phase_since: 0,
            recheck_armed: false,
            tree: BinaryTree::new(self.n),
            local_ready_for: None,
            ready_sent_for: None,
            children_ready: BTreeMap::new(),
            trace_idle_open: None,
        }
    }

    /// Consumes the fleet after a run, returning the system-phase count
    /// and the per-phase log. Panics if policies made by this fleet are
    /// still alive (they hold the shared state).
    pub fn finish(self) -> (u32, Vec<PhaseLog>) {
        let shared = Arc::try_unwrap(self.shared)
            .unwrap_or_else(|_| panic!("shared state still referenced"))
            .mu
            .into_inner()
            .unwrap_or_else(|p| p.into_inner());
        (shared.phases, shared.logs)
    }
}

/// Runs `workload` under RIPS on `machine`. Deterministic under `seed`
/// (RIPS itself is deterministic; the seed only affects the engine's
/// unused per-node RNGs).
pub fn rips(
    workload: Arc<Workload>,
    machine: Machine,
    latency: LatencyModel,
    costs: Costs,
    seed: u64,
    cfg: RipsConfig,
) -> RipsOutcome {
    let fleet = RipsFleet::new(cfg, machine);
    let topo = fleet.topology();
    let (mut run, policies) = run_policy(workload, topo, latency, costs, seed, |me| fleet.make(me));
    drop(policies); // release the policies' handles on the shared state
    let (phases, logs) = fleet.finish();
    run.system_phases = phases;
    RipsOutcome { run, phases: logs }
}
