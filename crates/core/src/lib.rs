//! **RIPS — Runtime Incremental Parallel Scheduling**, the paper's
//! primary contribution.
//!
//! Execution alternates between *user phases* (task execution and
//! dynamic task generation) and *system phases* (all processors
//! cooperatively collect global load information, run a parallel
//! scheduling algorithm, and migrate tasks). A run starts with a system
//! phase that schedules the initial tasks (paper Figure 1).
//!
//! Policies (paper §2):
//!
//! * **local**: [`LocalPolicy::Eager`] keeps two queues — tasks
//!   generated during a user phase enter the ready-to-schedule (RTS)
//!   queue and may only execute after a system phase moves them to the
//!   ready-to-execute (RTE) queue; [`LocalPolicy::Lazy`] uses a single
//!   RTE queue, so tasks can run where they were generated without
//!   ever being scheduled.
//! * **global**: [`GlobalPolicy::Any`] lets the first processor whose
//!   RTE queue empties broadcast an *init* signal (redundant initiators
//!   suppressed by the phase-index variable); [`GlobalPolicy::All`]
//!   aggregates *ready* signals up a logical spanning tree and only the
//!   root initiates. The paper finds **ANY-Lazy** best.
//!
//! The system phase runs a parallel scheduling algorithm from
//! `rips-sched` — MWA on meshes (the paper's machine), TWA on trees,
//! DEM on hypercubes — charging `comm_step × steps` of wall-clock time
//! and per-node CPU overhead, then migrates tasks as real simulator
//! messages packed per (source, destination) pair.

#![forbid(unsafe_code)]

mod program;

pub use program::{
    rips, GlobalPolicy, LoadMetric, LocalPolicy, Machine, RipsConfig, RipsFleet, RipsOutcome,
    RipsPolicy,
};
pub use rips_runtime::PhaseLog;
