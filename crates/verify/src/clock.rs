//! Vector clocks for happens-before tracking.
//!
//! One clock entry per model thread. Clocks are tiny (the explorer caps
//! executions at [`crate::MAX_MODEL_THREADS`] threads) so a plain `Vec`
//! is plenty; every epoch is a `u64` so overflow is a non-concern.

/// A vector clock: `vc[t]` is the last epoch of thread `t` that the
/// owner has synchronized with.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock(Vec<u64>);

impl VClock {
    /// The empty clock (synchronized with nothing).
    pub fn new() -> Self {
        VClock(Vec::new())
    }

    /// Epoch of thread `tid` in this clock (0 when never observed).
    pub fn get(&self, tid: usize) -> u64 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    /// Set thread `tid`'s entry to `epoch`, growing the clock as needed.
    pub fn set(&mut self, tid: usize, epoch: u64) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] = epoch;
    }

    /// Advance thread `tid`'s own entry by one and return the new epoch.
    pub fn tick(&mut self, tid: usize) -> u64 {
        let next = self.get(tid) + 1;
        self.set(tid, next);
        next
    }

    /// Pointwise maximum: after `self.join(other)`, everything
    /// happens-before `other` also happens-before `self`.
    pub fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (slot, &o) in self.0.iter_mut().zip(other.0.iter()) {
            if *slot < o {
                *slot = o;
            }
        }
    }

    /// True when the single epoch `(tid, epoch)` is covered by this
    /// clock, i.e. that access happens-before the owner's current point.
    pub fn covers(&self, tid: usize, epoch: u64) -> bool {
        self.get(tid) >= epoch
    }

    /// Drop all entries (used when a relaxed store breaks a release chain).
    pub fn clear(&mut self) {
        self.0.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::VClock;

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VClock::new();
        a.set(0, 3);
        a.set(2, 1);
        let mut b = VClock::new();
        b.set(0, 1);
        b.set(1, 7);
        a.join(&b);
        assert_eq!(a.get(0), 3);
        assert_eq!(a.get(1), 7);
        assert_eq!(a.get(2), 1);
        assert!(a.covers(1, 7));
        assert!(!a.covers(1, 8));
    }

    #[test]
    fn tick_advances_own_entry() {
        let mut a = VClock::new();
        assert_eq!(a.tick(1), 1);
        assert_eq!(a.tick(1), 2);
        assert_eq!(a.get(0), 0);
    }
}
