//! The instrumented runtime: model-checked atomics, cells, fences and
//! threads.
//!
//! These types are compiled unconditionally (so the checker's own test
//! suite runs under a plain `cargo test`); the `--cfg rips_verify` seam
//! in [`crate::sync`]/[`crate::vthread`] merely decides whether the
//! *production* crates resolve to them or to the raw `std` types.
//!
//! Every operation first looks for an active `Execution` in
//! thread-local storage. Inside a model thread it becomes a scheduling
//! point with happens-before bookkeeping; outside one (ordinary tests,
//! or teardown during an aborted execution) it falls through to the
//! real `std` operation, so code compiled against the instrumented
//! layer still behaves normally when no checker is running.

use std::cell::{Cell, RefCell};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Weak};
use std::time::Duration;

use crate::exec::{Execution, Rw};

thread_local! {
    static EXEC: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
    static LAST_SITE: Cell<Option<&'static str>> = const { Cell::new(None) };
}

pub(crate) fn set_exec(exec: Arc<Execution>, tid: usize) {
    EXEC.with(|e| *e.borrow_mut() = Some((exec, tid)));
}

pub(crate) fn clear_exec() {
    EXEC.with(|e| *e.borrow_mut() = None);
}

fn current_exec() -> Option<(Arc<Execution>, usize)> {
    EXEC.with(|e| e.borrow().clone())
}

/// True when the calling OS thread is a model thread of some active
/// execution (used by the panic hook to suppress expected unwinds).
pub(crate) fn in_model_thread() -> bool {
    EXEC.with(|e| e.borrow().is_some())
}

/// Attach a site label (from `sync::ord`/`fence_at`) to the next
/// instrumented operation on this thread. Purely cosmetic: it makes
/// replay traces name program points instead of raw addresses.
pub fn set_site(site: &'static str) {
    LAST_SITE.with(|s| s.set(Some(site)));
}

fn take_site() -> Option<&'static str> {
    LAST_SITE.with(|s| s.take())
}

/// Run `real` as an instrumented store/RMW if a model execution is
/// active on this thread (and it is not unwinding). `real` performs
/// the operation and returns `(shown, old, new)` — see
/// [`Execution::atomic_op`].
fn instrumented(
    key: usize,
    opname: &'static str,
    ord: Ordering,
    rw: Rw,
    real: &mut dyn FnMut() -> (u64, u64, u64),
) -> Option<u64> {
    if std::thread::panicking() {
        return None;
    }
    let label = take_site();
    current_exec().map(|(exec, tid)| exec.atomic_op(tid, key, label, opname, ord, rw, real))
}

/// Run an instrumented load if a model execution is active: the
/// checker picks which store in the modification order the load
/// observes (possibly a stale one). `init` performs the real load,
/// consulted only before any instrumented store exists.
fn instrumented_load(
    key: usize,
    opname: &'static str,
    ord: Ordering,
    init: &mut dyn FnMut() -> u64,
) -> Option<u64> {
    if std::thread::panicking() {
        return None;
    }
    let label = take_site();
    current_exec().map(|(exec, tid)| exec.atomic_load(tid, key, label, opname, ord, init))
}

fn retire_key(key: usize) {
    if let Some((exec, _)) = current_exec() {
        exec.retire(key);
    }
}

macro_rules! int_atomic {
    ($(#[$doc:meta])* $name:ident, $std:ty, $prim:ty) => {
        $(#[$doc])*
        // rips-lint: allow(L005, every instantiation passes its doc comment through the macro's doc metavariable)
        pub struct $name {
            inner: $std,
        }

        impl $name {
            /// Create a new atomic with the given initial value.
            pub fn new(v: $prim) -> Self {
                Self { inner: <$std>::new(v) }
            }

            fn key(&self) -> usize {
                self as *const _ as usize
            }

            /// Instrumented atomic load.
            pub fn load(&self, ord: Ordering) -> $prim {
                match instrumented_load(
                    self.key(),
                    concat!(stringify!($name), "::load"),
                    ord,
                    &mut || self.inner.load(ord) as u64,
                ) {
                    Some(v) => v as $prim,
                    None => self.inner.load(ord),
                }
            }

            /// Instrumented atomic store.
            pub fn store(&self, v: $prim, ord: Ordering) {
                if instrumented(
                    self.key(),
                    concat!(stringify!($name), "::store"),
                    ord,
                    Rw::Store,
                    &mut || {
                        let old = self.inner.load(Ordering::Relaxed);
                        self.inner.store(v, ord);
                        (v as u64, old as u64, v as u64)
                    },
                )
                .is_none()
                {
                    self.inner.store(v, ord);
                }
            }

            /// Instrumented atomic swap.
            pub fn swap(&self, v: $prim, ord: Ordering) -> $prim {
                match instrumented(
                    self.key(),
                    concat!(stringify!($name), "::swap"),
                    ord,
                    Rw::Rmw,
                    &mut || {
                        let old = self.inner.swap(v, ord);
                        (old as u64, old as u64, v as u64)
                    },
                ) {
                    Some(old) => old as $prim,
                    None => self.inner.swap(v, ord),
                }
            }

            /// Instrumented atomic fetch-add; returns the previous value.
            pub fn fetch_add(&self, v: $prim, ord: Ordering) -> $prim {
                match instrumented(
                    self.key(),
                    concat!(stringify!($name), "::fetch_add"),
                    ord,
                    Rw::Rmw,
                    &mut || {
                        let old = self.inner.fetch_add(v, ord);
                        (old as u64, old as u64, old.wrapping_add(v) as u64)
                    },
                ) {
                    Some(old) => old as $prim,
                    None => self.inner.fetch_add(v, ord),
                }
            }

            /// Instrumented atomic fetch-sub; returns the previous value.
            pub fn fetch_sub(&self, v: $prim, ord: Ordering) -> $prim {
                match instrumented(
                    self.key(),
                    concat!(stringify!($name), "::fetch_sub"),
                    ord,
                    Rw::Rmw,
                    &mut || {
                        let old = self.inner.fetch_sub(v, ord);
                        (old as u64, old as u64, old.wrapping_sub(v) as u64)
                    },
                ) {
                    Some(old) => old as $prim,
                    None => self.inner.fetch_sub(v, ord),
                }
            }
        }

        impl Drop for $name {
            fn drop(&mut self) {
                retire_key(self.key());
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_tuple(stringify!($name))
                    .field(&self.inner.load(Ordering::Relaxed))
                    .finish()
            }
        }
    };
}

int_atomic!(
    /// Model-checked drop-in for `std::sync::atomic::AtomicU32`.
    AtomicU32,
    std::sync::atomic::AtomicU32,
    u32
);
int_atomic!(
    /// Model-checked drop-in for `std::sync::atomic::AtomicU64`.
    AtomicU64,
    std::sync::atomic::AtomicU64,
    u64
);
int_atomic!(
    /// Model-checked drop-in for `std::sync::atomic::AtomicUsize`.
    AtomicUsize,
    std::sync::atomic::AtomicUsize,
    usize
);

/// Model-checked drop-in for `std::sync::atomic::AtomicBool`.
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    /// Create a new atomic bool.
    pub fn new(v: bool) -> Self {
        Self {
            inner: std::sync::atomic::AtomicBool::new(v),
        }
    }

    fn key(&self) -> usize {
        self as *const _ as usize
    }

    /// Instrumented atomic load.
    pub fn load(&self, ord: Ordering) -> bool {
        match instrumented_load(self.key(), "AtomicBool::load", ord, &mut || {
            self.inner.load(ord) as u64
        }) {
            Some(v) => v != 0,
            None => self.inner.load(ord),
        }
    }

    /// Instrumented atomic store.
    pub fn store(&self, v: bool, ord: Ordering) {
        if instrumented(self.key(), "AtomicBool::store", ord, Rw::Store, &mut || {
            let old = self.inner.load(Ordering::Relaxed);
            self.inner.store(v, ord);
            (v as u64, old as u64, v as u64)
        })
        .is_none()
        {
            self.inner.store(v, ord);
        }
    }

    /// Instrumented atomic swap.
    pub fn swap(&self, v: bool, ord: Ordering) -> bool {
        match instrumented(self.key(), "AtomicBool::swap", ord, Rw::Rmw, &mut || {
            let old = self.inner.swap(v, ord);
            (old as u64, old as u64, v as u64)
        }) {
            Some(old) => old != 0,
            None => self.inner.swap(v, ord),
        }
    }
}

impl Drop for AtomicBool {
    fn drop(&mut self) {
        retire_key(self.key());
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("AtomicBool")
            .field(&self.inner.load(Ordering::Relaxed))
            .finish()
    }
}

/// Model-checked drop-in for `std::sync::atomic::AtomicPtr`.
pub struct AtomicPtr<T> {
    inner: std::sync::atomic::AtomicPtr<T>,
}

impl<T> AtomicPtr<T> {
    /// Create a new atomic pointer.
    pub fn new(p: *mut T) -> Self {
        Self {
            inner: std::sync::atomic::AtomicPtr::new(p),
        }
    }

    fn key(&self) -> usize {
        self as *const _ as usize
    }

    /// Instrumented atomic load.
    pub fn load(&self, ord: Ordering) -> *mut T {
        match instrumented_load(self.key(), "AtomicPtr::load", ord, &mut || {
            self.inner.load(ord) as usize as u64
        }) {
            Some(v) => v as usize as *mut T,
            None => self.inner.load(ord),
        }
    }

    /// Instrumented atomic store.
    pub fn store(&self, p: *mut T, ord: Ordering) {
        if instrumented(self.key(), "AtomicPtr::store", ord, Rw::Store, &mut || {
            let old = self.inner.load(Ordering::Relaxed);
            self.inner.store(p, ord);
            (p as usize as u64, old as usize as u64, p as usize as u64)
        })
        .is_none()
        {
            self.inner.store(p, ord);
        }
    }

    /// Instrumented atomic swap.
    pub fn swap(&self, p: *mut T, ord: Ordering) -> *mut T {
        match instrumented(self.key(), "AtomicPtr::swap", ord, Rw::Rmw, &mut || {
            let old = self.inner.swap(p, ord);
            (old as usize as u64, old as usize as u64, p as usize as u64)
        }) {
            Some(old) => old as usize as *mut T,
            None => self.inner.swap(p, ord),
        }
    }
}

impl<T> Drop for AtomicPtr<T> {
    fn drop(&mut self) {
        retire_key(self.key());
    }
}

/// Instrumented memory fence.
pub fn fence(ord: Ordering) {
    if std::thread::panicking() {
        std::sync::atomic::fence(ord);
        return;
    }
    let label = take_site();
    match current_exec() {
        Some((exec, tid)) => exec.fence(tid, label, ord),
        None => std::sync::atomic::fence(ord),
    }
}

/// A cell whose accesses the checker watches for data races.
///
/// The closure-based API (`with` for shared reads, `with_mut` for
/// exclusive writes) hands out *raw pointers*, never references, so the
/// caller decides the aliasing story — exactly like `loom::cell`.
/// Dereferencing is the caller's `unsafe`; this crate itself contains
/// none: the instrumented cell is backed by a `Mutex` (which also makes
/// it `Sync` by composition), so even a *detected* race never touches
/// memory unsoundly inside the harness. The production seam
/// (`cfg(not(rips_verify))`) uses a zero-cost raw `UnsafeCell` instead.
pub struct UnsafeCellWrap<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> UnsafeCellWrap<T> {
    /// Wrap a value.
    pub fn new(v: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(v),
        }
    }

    fn key(&self) -> usize {
        self as *const _ as usize
    }

    fn record(&self, write: bool) {
        if std::thread::panicking() {
            return;
        }
        let label = take_site();
        if let Some((exec, tid)) = current_exec() {
            exec.cell_access(tid, self.key(), label, write);
        }
    }

    /// Shared (read) access to the protected value.
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        self.record(false);
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        f(&*guard as *const T)
    }

    /// Exclusive (write) access to the protected value.
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        self.record(true);
        let mut guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        f(&mut *guard as *mut T)
    }
}

impl<T> Drop for UnsafeCellWrap<T> {
    fn drop(&mut self) {
        retire_key(self.key());
    }
}

/// Model-checked threads: `spawn`, `park`/`unpark`, `yield_now`.
pub mod thread {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Mutex;

    fn payload_msg(p: &(dyn std::any::Any + Send)) -> String {
        if let Some(s) = p.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = p.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    }

    /// A handle to a (possibly model) thread, cloneable and sendable —
    /// mirrors `std::thread::Thread` for the one method the live
    /// transport needs: [`Thread::unpark`].
    #[derive(Clone)]
    pub struct Thread(Inner);

    #[derive(Clone)]
    enum Inner {
        Std(std::thread::Thread),
        Model { exec: Weak<Execution>, tid: usize },
    }

    impl Thread {
        /// Make the target thread's next `park` return (or wake it now).
        pub fn unpark(&self) {
            match &self.0 {
                Inner::Std(t) => t.unpark(),
                Inner::Model { exec, tid } => {
                    if let Some(exec) = exec.upgrade() {
                        let from = current_exec()
                            .filter(|(e, _)| Arc::ptr_eq(e, &exec))
                            .map(|(_, t)| t);
                        exec.unpark(from, *tid);
                    }
                }
            }
        }
    }

    impl std::fmt::Debug for Thread {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match &self.0 {
                Inner::Std(t) => write!(f, "Thread({:?})", t.id()),
                Inner::Model { tid, .. } => write!(f, "Thread(model t{tid})"),
            }
        }
    }

    /// Handle to the current (possibly model) thread.
    pub fn current() -> Thread {
        match current_exec() {
            Some((exec, tid)) => Thread(Inner::Model {
                exec: Arc::downgrade(&exec),
                tid,
            }),
            None => Thread(Inner::Std(std::thread::current())),
        }
    }

    /// Block until unparked (model: a scheduling point with the std
    /// park-token semantics and the unpark happens-before edge).
    pub fn park() {
        if std::thread::panicking() {
            return;
        }
        match current_exec() {
            Some((exec, tid)) => exec.park(tid),
            None => std::thread::park(),
        }
    }

    /// Park with a timeout. The model treats the timeout as always able
    /// to fire immediately, so this never blocks a model thread.
    pub fn park_timeout(dur: Duration) {
        if std::thread::panicking() {
            return;
        }
        match current_exec() {
            Some((exec, tid)) => exec.park_timeout(tid),
            None => std::thread::park_timeout(dur),
        }
    }

    /// Cooperative yield; the model deprioritizes the caller so spin
    /// loops let the threads they wait on make progress.
    pub fn yield_now() {
        if std::thread::panicking() {
            return;
        }
        match current_exec() {
            Some((exec, tid)) => exec.yield_now(tid),
            None => std::thread::yield_now(),
        }
    }

    /// Handle to a spawned (possibly model) thread.
    pub struct JoinHandle<T>(JInner<T>);

    enum JInner<T> {
        Std(std::thread::JoinHandle<T>),
        Model {
            exec: Arc<Execution>,
            tid: usize,
            result: Arc<Mutex<Option<std::thread::Result<T>>>>,
        },
    }

    impl<T> JoinHandle<T> {
        /// Wait for the thread to finish and take its result.
        pub fn join(self) -> std::thread::Result<T> {
            match self.0 {
                JInner::Std(h) => h.join(),
                JInner::Model { exec, tid, result } => {
                    let me = current_exec().map(|(_, t)| t).unwrap_or(0);
                    exec.join_thread(me, tid);
                    result
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .take()
                        .unwrap_or_else(|| Err(Box::new("model thread produced no result")))
                }
            }
        }
    }

    /// Spawn a thread (a model thread when a checker execution is
    /// active on the caller, a real `std` thread otherwise).
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        spawn_inner(None, f)
    }

    /// [`spawn`] with a name that shows up in replay traces.
    pub fn spawn_named<F, T>(name: &'static str, f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        spawn_inner(Some(name), f)
    }

    fn spawn_inner<F, T>(name: Option<&'static str>, f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let Some((exec, parent)) = current_exec() else {
            let mut b = std::thread::Builder::new();
            if let Some(n) = name {
                b = b.name(n.to_string());
            }
            return JoinHandle(JInner::Std(b.spawn(f).expect("spawn thread")));
        };
        let tid = exec.spawn_slot(parent, name);
        let result = Arc::new(Mutex::new(None));
        let r2 = Arc::clone(&result);
        let e2 = Arc::clone(&exec);
        let h = std::thread::Builder::new()
            .name(match name {
                Some(n) => format!("model-{n}"),
                None => format!("model-t{tid}"),
            })
            .spawn(move || {
                set_exec(Arc::clone(&e2), tid);
                let out = catch_unwind(AssertUnwindSafe(|| {
                    e2.first_wait(tid);
                    f()
                }));
                match out {
                    Ok(v) => {
                        *r2.lock().unwrap_or_else(|e| e.into_inner()) = Some(Ok(v));
                        e2.finish(tid);
                    }
                    Err(p) => {
                        if p.is::<crate::exec::Abort>() {
                            e2.finish(tid);
                        } else {
                            e2.fail_assert(tid, payload_msg(p.as_ref()));
                            *r2.lock().unwrap_or_else(|e| e.into_inner()) = Some(Err(p));
                        }
                    }
                }
                clear_exec();
            })
            .expect("spawn model thread");
        exec.add_handle(h);
        exec.yield_silent(parent);
        JoinHandle(JInner::Model { exec, tid, result })
    }
}
