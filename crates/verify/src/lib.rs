//! `rips-verify` — a bounded model checker for the lock-free live
//! paths, in the loom mold and dependency-free (shims policy).
//!
//! The live backend's correctness rests on a few hundred lines of
//! hand-rolled synchronization: the SPSC ring, the RCU plan board, the
//! Dekker-style park/unpark transport protocol and the Oracle's atomic
//! barrier counter. OS scheduling only ever exercises a handful of
//! their interleavings; this crate explores them *systematically*.
//!
//! # The seam
//!
//! Production crates import atomics/cells/threads from [`sync`] and
//! [`vthread`] instead of `std`. Normally those are re-exports of the
//! real `std` types plus `#[inline(always)]` identity helpers — zero
//! cost, bit-for-bit identical behavior. Compiled with
//! `RUSTFLAGS="--cfg rips_verify"`, the same paths resolve to the
//! instrumented runtime in [`rt`]: every atomic access, fence, cell
//! access and park becomes a *scheduling point* that yields to the
//! checker, which records the access ordering in a vector-clock
//! happens-before graph.
//!
//! # The explorer
//!
//! [`Checker`] runs a model closure (2–4 threads spawned through
//! [`vthread::spawn`]) under every schedule reachable within a
//! *preemption bound* (DFS mode), or under seeded random schedules
//! (PCT-style mode) when the bounded space is too large. It reports:
//!
//! * **data races** — conflicting accesses to an
//!   [`UnsafeCellWrap`](sync::cell::UnsafeCellWrap) not ordered by the
//!   tracked happens-before relation (so a weakened `Acquire`/`Release`
//!   that breaks the edge a protocol relies on surfaces here);
//! * **deadlocks** — no runnable thread while some are parked/joining;
//! * **livelocks** — a per-execution step budget for lost-wakeup spins;
//! * **assertion failures** — any panic in model code.
//!
//! Failures carry a deterministic replay: the exact decision sequence
//! plus a rendered step-by-step trace ([`Violation`]).
//!
//! # The mutation sweep
//!
//! Site labels on ordering-sensitive operations ([`sync::ord`],
//! [`sync::fence_at`], [`sync::swap_bool`]) double as mutation handles:
//! [`Checker::mutation`] weakens one ordering to `Relaxed`, deletes one
//! fence, or splits one RMW, proving the checker detects the exact bug
//! class it exists for (see the `verify_model` suites in `rips-live`
//! and `rips-runtime`).
//!
//! # Soundness caveat
//!
//! The checker executes interleavings *sequentially consistently* and
//! detects ordering bugs through the happens-before graph, not through
//! weak-memory value speculation: a relaxed load still observes the
//! last value written. `SeqCst` is modeled as one global
//! synchronization order (slightly stronger than C11). Both choices are
//! conservative in the same direction — **no false positives** on
//! correct code; a clean run at preemption bound *k* means no violation
//! is reachable with ≤ *k* preemptions under those semantics, not a
//! proof for unbounded schedules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod exec;
mod explore;
pub mod mutate;
pub mod rt;
pub mod sync;
pub mod vthread;

pub use exec::{ViolationKind, MAX_MODEL_THREADS};
pub use explore::{Checker, Stats, Violation};
pub use mutate::{Mutation, MutationKind};

#[cfg(test)]
mod selftest;
