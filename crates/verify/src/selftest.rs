//! The checker's own model suite, runnable under a plain `cargo test`:
//! these tests use the always-compiled instrumented runtime ([`crate::rt`])
//! directly, so they do not depend on the `--cfg rips_verify` seam.
//!
//! Together they prove the properties the production model suites rely
//! on: the DFS really explores multiple interleavings, the
//! happens-before tracker accepts correct protocols and rejects broken
//! ones, lost wake-ups surface as deadlock/livelock, and each mutation
//! kind (weakened ordering, deleted fence, split RMW) is caught with a
//! deterministic replay.

use std::sync::atomic::Ordering;
use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed, Release};
use std::sync::Arc;

use crate::rt::{self, thread, AtomicBool, AtomicU64, UnsafeCellWrap};
use crate::{mutate, Checker, Mutation, MutationKind, ViolationKind};

/// `sync::ord` is the identity re-export in a normal build, so the
/// self-tests route orderings through the always-compiled mutation
/// seam explicitly.
fn site_ord(site: &'static str, o: std::sync::atomic::Ordering) -> std::sync::atomic::Ordering {
    rt::set_site(site);
    mutate::apply_ord(site, o)
}

#[test]
fn dfs_explores_multiple_interleavings() {
    let stats = Checker::new("selftest-counter")
        .check(|| {
            let c = Arc::new(AtomicU64::new(0));
            let c2 = Arc::clone(&c);
            let h = thread::spawn_named("adder", move || {
                c2.fetch_add(1, Relaxed);
            });
            c.fetch_add(1, Relaxed);
            h.join().unwrap();
            assert_eq!(c.load(Relaxed), 2);
        })
        .expect("two atomic increments are race-free");
    assert!(
        stats.executions >= 2,
        "DFS should explore >1 interleaving, got {}",
        stats.executions
    );
    assert!(!stats.capped);
}

fn publish_model() -> impl Fn() + Send + Sync + 'static {
    || {
        let data = Arc::new(UnsafeCellWrap::new(0u64));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let h = thread::spawn_named("writer", move || {
            d2.with_mut(|_| ());
            f2.store(true, site_ord("selftest.publish", Release));
        });
        if flag.load(Acquire) {
            data.with(|_| ());
        }
        h.join().unwrap();
    }
}

#[test]
fn release_acquire_publish_is_clean() {
    Checker::new("selftest-publish")
        .check(publish_model())
        .expect("release/acquire message passing is race-free");
}

#[test]
fn weakened_publish_is_caught_with_deterministic_replay() {
    let m = Mutation {
        site: "selftest.publish",
        kind: MutationKind::WeakenToRelaxed,
    };
    let v = Checker::new("selftest-publish-weak")
        .mutation(m)
        .check(publish_model())
        .expect_err("Release→Relaxed publish must race");
    assert_eq!(v.kind, ViolationKind::DataRace);
    assert!(!v.schedule.is_empty());
    assert!(v.replay.contains("selftest.publish"), "{}", v.replay);
    // The recorded schedule reproduces the same failure on its own.
    let v2 = Checker::new("selftest-publish-weak-replay")
        .mutation(m)
        .replay(v.schedule.clone())
        .check(publish_model())
        .expect_err("replaying the schedule must reproduce the race");
    assert_eq!(v2.kind, ViolationKind::DataRace);
}

fn fence_publish_model() -> impl Fn() + Send + Sync + 'static {
    || {
        let data = Arc::new(UnsafeCellWrap::new(0u64));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let h = thread::spawn_named("writer", move || {
            d2.with_mut(|_| ());
            if mutate::fence_survives("selftest.fence") {
                rt::set_site("selftest.fence");
                rt::fence(Release);
            }
            f2.store(true, Relaxed);
        });
        if flag.load(Acquire) {
            data.with(|_| ());
        }
        h.join().unwrap();
    }
}

#[test]
fn fence_publish_is_clean_and_deleted_fence_is_caught() {
    Checker::new("selftest-fence")
        .check(fence_publish_model())
        .expect("release-fence publish is race-free");
    let v = Checker::new("selftest-fence-deleted")
        .mutation(Mutation {
            site: "selftest.fence",
            kind: MutationKind::DeleteFence,
        })
        .check(fence_publish_model())
        .expect_err("deleting the release fence must race");
    assert_eq!(v.kind, ViolationKind::DataRace);
}

fn bare_race_model() -> impl Fn() + Send + Sync + 'static {
    || {
        let d = Arc::new(UnsafeCellWrap::new(0u8));
        let d2 = Arc::clone(&d);
        let h = thread::spawn_named("racer", move || d2.with_mut(|_| ()));
        d.with_mut(|_| ());
        h.join().unwrap();
    }
}

#[test]
fn unsynchronized_cell_writes_race() {
    let v = Checker::new("selftest-bare-race")
        .check(bare_race_model())
        .expect_err("two unordered writes must race");
    assert_eq!(v.kind, ViolationKind::DataRace);
    assert!(v.replay.contains("cell write"), "{}", v.replay);
}

#[test]
fn random_mode_finds_the_race_too() {
    let v = Checker::new("selftest-bare-race-random")
        .random(500, 42)
        .check(bare_race_model())
        .expect_err("seeded random exploration must also hit the race");
    assert_eq!(v.kind, ViolationKind::DataRace);
}

#[test]
fn park_without_unpark_is_deadlock() {
    let v = Checker::new("selftest-deadlock")
        .check(|| {
            thread::park();
        })
        .expect_err("parking with no unparker must deadlock");
    assert_eq!(v.kind, ViolationKind::Deadlock);
    assert!(v.replay.contains("park"), "{}", v.replay);
}

#[test]
fn unpark_wakes_and_creates_happens_before() {
    Checker::new("selftest-park-ok")
        .check(|| {
            let d = Arc::new(UnsafeCellWrap::new(0u32));
            let d2 = Arc::clone(&d);
            let me = thread::current();
            let h = thread::spawn_named("waker", move || {
                d2.with_mut(|_| ());
                me.unpark();
            });
            thread::park();
            d.with(|_| ());
            h.join().unwrap();
        })
        .expect("write → unpark → park-return → read is ordered");
}

#[test]
fn spin_without_progress_is_livelock() {
    let v = Checker::new("selftest-livelock")
        .max_steps(200)
        .check(|| {
            let stop = Arc::new(AtomicBool::new(false));
            let s2 = Arc::clone(&stop);
            let h = thread::spawn_named("spinner", move || {
                while !s2.load(Relaxed) {
                    thread::yield_now();
                }
            });
            // Nobody ever sets `stop`.
            h.join().unwrap();
        })
        .expect_err("spinning on a flag nobody sets must trip the step budget");
    assert_eq!(v.kind, ViolationKind::Livelock);
}

#[test]
fn yielding_spin_with_progress_terminates() {
    Checker::new("selftest-spin-ok")
        .check(|| {
            let stop = Arc::new(AtomicBool::new(false));
            let s2 = Arc::clone(&stop);
            let h = thread::spawn_named("spinner", move || {
                while !s2.load(Acquire) {
                    thread::yield_now();
                }
            });
            stop.store(true, Release);
            h.join().unwrap();
        })
        .expect("yield deprioritization lets the storing thread run");
}

#[test]
fn model_panic_is_an_assertion_violation() {
    let v = Checker::new("selftest-assert")
        .check(|| {
            let x = AtomicU64::new(1);
            assert_eq!(x.load(Relaxed), 2, "boom");
        })
        .expect_err("failed assert must be reported");
    assert_eq!(v.kind, ViolationKind::AssertionFailure);
    assert!(v.message.contains("boom"), "{}", v.message);
}

/// Mirrors the instrumented `sync::swap_bool` (which tier-1 builds
/// can't reach through the seam, since it compiles to a passthrough).
fn swap_like(site: &'static str, a: &AtomicBool, v: bool, o: std::sync::atomic::Ordering) -> bool {
    if mutate::rmw_is_split(site) {
        let old = a.load(Acquire);
        a.store(v, Release);
        old
    } else {
        rt::set_site(site);
        a.swap(v, o)
    }
}

fn claim_model() -> impl Fn() + Send + Sync + 'static {
    || {
        let claimed = Arc::new(AtomicBool::new(false));
        let wins = Arc::new(AtomicU64::new(0));
        let (c2, w2) = (Arc::clone(&claimed), Arc::clone(&wins));
        let h = thread::spawn_named("rival", move || {
            if !swap_like("selftest.claim", &c2, true, AcqRel) {
                w2.fetch_add(1, Relaxed);
            }
        });
        if !swap_like("selftest.claim", &claimed, true, AcqRel) {
            wins.fetch_add(1, Relaxed);
        }
        h.join().unwrap();
        assert_eq!(wins.load(Relaxed), 1, "exactly one claimant may win");
    }
}

#[test]
fn atomic_swap_elects_exactly_one_winner() {
    Checker::new("selftest-claim")
        .check(claim_model())
        .expect("an atomic swap admits exactly one winner");
}

#[test]
fn split_rmw_allows_two_winners_and_is_caught() {
    let v = Checker::new("selftest-claim-split")
        .mutation(Mutation {
            site: "selftest.claim",
            kind: MutationKind::SplitRmw,
        })
        .check(claim_model())
        .expect_err("splitting the swap must admit a double win");
    assert_eq!(v.kind, ViolationKind::AssertionFailure);
    assert!(v.replay.contains("active mutation"), "{}", v.replay);
}

/// The store-buffering litmus (SB): each thread stores its own flag,
/// optionally fences, then loads the other's. Both-loads-false is the
/// classic weak-memory outcome that SC execution can never produce —
/// only the checker's stale-read machinery reaches it.
fn sb_model(with_fences: bool) -> impl Fn() + Send + Sync + 'static {
    move || {
        let x = Arc::new(AtomicBool::new(false));
        let y = Arc::new(AtomicBool::new(false));
        let (x1, y1) = (Arc::clone(&x), Arc::clone(&y));
        let a = thread::spawn_named("left", move || {
            x1.store(true, Relaxed);
            if with_fences {
                rt::fence(Ordering::SeqCst);
            }
            y1.load(Relaxed)
        });
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let b = thread::spawn_named("right", move || {
            y2.store(true, Relaxed);
            if with_fences {
                rt::fence(Ordering::SeqCst);
            }
            x2.load(Relaxed)
        });
        let r1 = a.join().unwrap();
        let r2 = b.join().unwrap();
        assert!(r1 || r2, "store buffering: both loads saw the old value");
    }
}

#[test]
fn store_buffering_without_fences_is_caught() {
    let v = Checker::new("selftest-sb")
        .check(sb_model(false))
        .expect_err("relaxed SB must admit the both-false outcome");
    assert_eq!(v.kind, ViolationKind::AssertionFailure);
    assert!(v.replay.contains("(stale)"), "{}", v.replay);
}

#[test]
fn store_buffering_with_seqcst_fences_is_clean() {
    Checker::new("selftest-sb-fenced")
        .check(sb_model(true))
        .expect("SeqCst fence pair forbids the both-false outcome");
}

/// Stale reads respect coherence: a thread that observed a value may
/// not later read an older one, and its own writes pin the floor.
#[test]
fn stale_reads_respect_per_thread_coherence() {
    Checker::new("selftest-coherence")
        .check(|| {
            let x = Arc::new(AtomicU64::new(0));
            let xr = Arc::clone(&x);
            let h = thread::spawn_named("reader", move || {
                let a = xr.load(Relaxed);
                let b = xr.load(Relaxed);
                assert!(b >= a, "coherence violated: {b} after {a}");
            });
            x.store(1, Relaxed);
            x.store(2, Relaxed);
            assert_eq!(x.load(Relaxed), 2, "own writes are always visible");
            h.join().unwrap();
        })
        .expect("coherent executions only");
}
