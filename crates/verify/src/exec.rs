//! One bounded-model-checking *execution*: a single interleaving of the
//! model threads, driven cooperatively.
//!
//! Exactly one model thread runs at a time. Every instrumented operation
//! (atomic access, fence, cell access, park, spawn, join, yield) first
//! reaches a *scheduling point*: the running thread consults the
//! [`Execution`], which either follows the explorer's replay prefix,
//! asks the PCT-style RNG, or defaults to running the current thread on
//! (non-preemptive default — alternatives are what the DFS explores).
//! Token hand-off is a `Mutex` + `Condvar`; the chosen thread performs
//! its operation under the execution lock, so all happens-before
//! bookkeeping is trivially race-free.
//!
//! The same lock holds the vector-clock state: per-thread clocks, a
//! release clock per atomic location, read/write epochs per
//! [`UnsafeCellWrap`](crate::rt::UnsafeCellWrap) location, and a global
//! SC clock that models `SeqCst` as synchronizing through a single
//! order (slightly stronger than C11 — conservative in the direction of
//! *no false positives* on correct code).

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::clock::VClock;

/// Hard cap on model threads per execution (the explorer targets 2–4).
pub const MAX_MODEL_THREADS: usize = 8;

/// Sentinel panic payload used to unwind model threads when an
/// execution aborts (violation found or replay divergence). Never
/// reported as a model failure.
pub(crate) struct Abort;

fn abort_unwind() -> ! {
    std::panic::panic_any(Abort)
}

/// What kind of property failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// Two unordered conflicting accesses to an `UnsafeCellWrap`.
    DataRace,
    /// No runnable thread, but not every thread has finished.
    Deadlock,
    /// The per-execution step budget was exhausted (spin without progress).
    Livelock,
    /// A model thread panicked (failed `assert!`, index error, …).
    AssertionFailure,
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ViolationKind::DataRace => "data race",
            ViolationKind::Deadlock => "deadlock",
            ViolationKind::Livelock => "livelock (step budget exhausted)",
            ViolationKind::AssertionFailure => "assertion failure",
        };
        f.write_str(s)
    }
}

/// Is the running thread about to read, write, or read-modify-write?
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rw {
    /// Pure load.
    Load,
    /// Pure store.
    Store,
    /// Atomic read-modify-write (swap, fetch_add, compare_exchange…).
    Rmw,
}

/// One executed step, for replay rendering.
#[derive(Clone, Debug)]
pub struct TraceEntry {
    /// Model thread that performed the step.
    pub tid: usize,
    /// Site label (from `sync::ord`/`fence_at`) when one was attached.
    pub label: Option<&'static str>,
    /// Human-readable operation, e.g. `AtomicUsize::load(Acquire) = 3`.
    pub op: String,
}

/// One scheduling decision, for DFS backtracking.
#[derive(Clone, Debug)]
pub struct Decision {
    /// Position in `enabled` of the free (default) continuation: the
    /// previously-running thread, or its round-robin successor after a
    /// voluntary yield. Choosing anything else is a preemption.
    pub prev_pos: Option<usize>,
    /// Threads that were runnable (minus a just-yielded current thread).
    pub enabled: Vec<usize>,
    /// Index into `enabled` that was taken.
    pub chosen: usize,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TState {
    Runnable,
    Parked,
    Joining(usize),
    Finished,
}

struct ThreadSlot {
    state: TState,
    yielded: bool,
    vc: VClock,
    /// Release clocks picked up by relaxed loads, absorbed by a later
    /// acquire fence.
    acq_pending: VClock,
    /// Clock at the most recent release fence; published by subsequent
    /// relaxed stores.
    rel_fence: Option<VClock>,
    park_token: bool,
    unpark_vc: VClock,
    final_vc: VClock,
    name: Option<&'static str>,
}

impl ThreadSlot {
    fn new(name: Option<&'static str>) -> Self {
        ThreadSlot {
            state: TState::Runnable,
            yielded: false,
            vc: VClock::new(),
            acq_pending: VClock::new(),
            rel_fence: None,
            park_token: false,
            unpark_vc: VClock::new(),
            final_vc: VClock::new(),
            name,
        }
    }
}

/// One entry in an atomic location's modification order, kept so later
/// loads may (legally) observe stale values — the weak-memory half of
/// the checker. Index 0 is a pseudo-store holding the initial value.
struct StoreRec {
    /// The stored value, encoded as `u64` by the `rt` wrappers.
    val: u64,
    /// Storing thread, or `usize::MAX` for the initial-value record.
    writer: usize,
    /// Writer's own clock component at the store: the must-see test
    /// (`reader.vc.covers(writer, epoch)`) decides whether
    /// happens-before forces a later load to observe this store.
    epoch: u64,
    /// Release state an acquire load of *this* store synchronizes with.
    rel_vc: VClock,
}

/// How many consecutive stale reads of one location a thread may make
/// before the next read is forced fresh. Keeps yielding spin loops
/// terminating (real hardware has eventual visibility too).
const MAX_STALE_RUN: u8 = 2;

/// Oldest store (counting back from the latest) a stale read may
/// return: the latest value plus one stale generation. Bounds the
/// branching factor per load to two; every classic weak-memory litmus
/// outcome (SB, MP, LB) needs only one generation of staleness.
const STALE_WINDOW: usize = 2;

#[derive(Default)]
struct AtomicLoc {
    release_vc: VClock,
    /// Modification order: every store/RMW through the seam, plus the
    /// captured initial value at index 0.
    stores: Vec<StoreRec>,
    /// Per-thread coherence floor: the lowest store index each thread
    /// may still read (CoRR + read-own-write).
    floor: [usize; MAX_MODEL_THREADS],
    /// Consecutive stale reads per thread, reset by a fresh read.
    stale_run: [u8; MAX_MODEL_THREADS],
}

#[derive(Default)]
struct CellLoc {
    last_write: Option<(usize, u64, usize)>, // (tid, epoch, trace step)
    reads: Vec<(usize, u64, usize)>,
}

struct XorShift64(u64);

impl XorShift64 {
    fn new(seed: u64) -> Self {
        XorShift64(seed | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Configuration for a single execution, set by the explorer.
pub(crate) struct ExecCfg {
    /// Forced choice indices replayed from the DFS stack.
    pub prefix: Vec<usize>,
    /// Per-execution step budget (livelock guard).
    pub max_steps: usize,
    /// When set, decisions beyond the prefix are drawn from this seed
    /// (PCT-style random mode) instead of the non-preemptive default.
    pub rng_seed: Option<u64>,
}

struct ExecState {
    current: usize,
    threads: Vec<ThreadSlot>,
    prefix: Vec<usize>,
    decisions: Vec<Decision>,
    steps: usize,
    max_steps: usize,
    rng: Option<XorShift64>,
    trace: Vec<TraceEntry>,
    violation: Option<(ViolationKind, String)>,
    aborting: bool,
    locs: HashMap<usize, AtomicLoc>,
    cells: HashMap<usize, CellLoc>,
    sc_clock: VClock,
}

/// What an execution produced, handed back to the explorer.
pub(crate) struct ExecOutcome {
    pub violation: Option<(ViolationKind, String)>,
    pub decisions: Vec<Decision>,
    pub trace: Vec<TraceEntry>,
    pub thread_names: Vec<String>,
}

/// One run of the model closure under a fixed scheduling policy.
pub(crate) struct Execution {
    inner: Mutex<ExecState>,
    cv: Condvar,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Execution {
    /// Creates the shared execution state for one schedule run.
    pub fn new(cfg: ExecCfg) -> Arc<Self> {
        Arc::new(Execution {
            inner: Mutex::new(ExecState {
                current: 0,
                threads: Vec::new(),
                prefix: cfg.prefix,
                decisions: Vec::new(),
                steps: 0,
                max_steps: cfg.max_steps,
                rng: cfg.rng_seed.map(XorShift64::new),
                trace: Vec::new(),
                violation: None,
                aborting: false,
                locs: HashMap::new(),
                cells: HashMap::new(),
                sc_clock: VClock::new(),
            }),
            cv: Condvar::new(),
            handles: Mutex::new(Vec::new()),
        })
    }

    fn lock(&self) -> MutexGuard<'_, ExecState> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_checked(&self) -> MutexGuard<'_, ExecState> {
        let st = self.lock();
        if st.aborting {
            drop(st);
            abort_unwind();
        }
        st
    }

    /// Record a violation, wake everyone, and flag the abort. Does not
    /// unwind — callers decide whether to.
    fn fail_locked(&self, st: &mut ExecState, kind: ViolationKind, msg: String) {
        if st.violation.is_none() {
            st.violation = Some((kind, msg));
        }
        st.aborting = true;
        self.cv.notify_all();
    }

    /// Register the root model thread (tid 0).
    pub fn register_main(&self) -> usize {
        let mut st = self.lock();
        debug_assert!(st.threads.is_empty());
        let mut slot = ThreadSlot::new(Some("main"));
        slot.vc.tick(0);
        st.threads.push(slot);
        st.current = 0;
        0
    }

    /// Track the OS handle backing a model thread so the harness can
    /// join everything at the end of the execution.
    pub fn add_handle(&self, h: std::thread::JoinHandle<()>) {
        self.handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(h);
    }

    /// Harness side: join every OS thread spawned for this execution.
    /// Handles for grandchildren are always pushed before their spawner
    /// can exit, so draining until empty is complete.
    pub fn join_all(&self) {
        loop {
            let h = self.handles.lock().unwrap_or_else(|e| e.into_inner()).pop();
            match h {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
    }

    /// Extract the result after `join_all`.
    pub fn outcome(&self) -> ExecOutcome {
        let st = self.lock();
        ExecOutcome {
            violation: st.violation.clone(),
            decisions: st.decisions.clone(),
            trace: st.trace.clone(),
            thread_names: st
                .threads
                .iter()
                .enumerate()
                .map(|(i, t)| match t.name {
                    Some(n) => format!("t{i}:{n}"),
                    None => format!("t{i}"),
                })
                .collect(),
        }
    }

    /// Block until this thread holds the run token.
    fn wait_for_token<'a>(
        &'a self,
        tid: usize,
        mut st: MutexGuard<'a, ExecState>,
    ) -> MutexGuard<'a, ExecState> {
        while st.current != tid && !st.aborting {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.aborting {
            drop(st);
            abort_unwind();
        }
        st
    }

    /// First wait of a freshly spawned model thread.
    pub fn first_wait(&self, tid: usize) {
        let st = self.lock();
        drop(self.wait_for_token(tid, st));
    }

    /// The scheduling point: pick who runs the next operation, then wait
    /// until (if) the token comes back.
    fn yield_here<'a>(
        &'a self,
        tid: usize,
        mut st: MutexGuard<'a, ExecState>,
    ) -> MutexGuard<'a, ExecState> {
        st.steps += 1;
        if st.steps > st.max_steps {
            let msg = format!(
                "execution exceeded {} steps without finishing; a thread is \
                 spinning without the progress it waits for ever arriving",
                st.max_steps
            );
            self.fail_locked(&mut st, ViolationKind::Livelock, msg);
            drop(st);
            abort_unwind();
        }
        // A thread that just called yield_now is excluded from its own
        // decision: running it again with nobody else in between is
        // state-equivalent to the same schedule without the yield, so
        // the branch adds no coverage — and offering it would let the
        // DFS build unbounded no-progress spins that trip the step
        // budget as a bogus livelock.
        let cur_yielded = std::mem::take(&mut st.threads[tid].yielded);
        let mut enabled: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|&(i, t)| t.state == TState::Runnable && !(i == tid && cur_yielded))
            .map(|(i, _)| i)
            .collect();
        if enabled.is_empty() {
            // The yielder is the only runnable thread: let it spin; if
            // nobody ever unblocks, the step budget reports a livelock.
            enabled = vec![tid];
        }
        // The free (default) continuation: the current thread itself,
        // or — after a voluntary yield — its round-robin successor, so
        // the default path is fair. Any other choice is charged as a
        // preemption, which keeps unfair spin schedules bounded.
        let prev_pos = if cur_yielded {
            Some(enabled.iter().position(|&t| t > tid).unwrap_or(0))
        } else {
            enabled.iter().position(|&t| t == tid)
        };
        let d = st.decisions.len();
        let chosen = if d < st.prefix.len() {
            let p = st.prefix[d];
            if p >= enabled.len() {
                let msg = format!(
                    "schedule replay diverged at decision {d}: prefix index {p} \
                     but only {} threads enabled — the model is non-deterministic",
                    enabled.len()
                );
                self.fail_locked(&mut st, ViolationKind::AssertionFailure, msg);
                drop(st);
                abort_unwind();
            }
            p
        } else if let Some(rng) = st.rng.as_mut() {
            rng.below(enabled.len())
        } else {
            prev_pos.expect("current thread is always enabled (or rr successor picked)")
        };
        st.decisions.push(Decision {
            prev_pos,
            enabled: enabled.clone(),
            chosen,
        });
        let next = enabled[chosen];
        if next != tid {
            st.current = next;
            self.cv.notify_all();
            st = self.wait_for_token(tid, st);
        }
        st
    }

    fn push_trace(st: &mut ExecState, tid: usize, label: Option<&'static str>, op: String) {
        st.trace.push(TraceEntry { tid, label, op });
    }

    /// A scheduling point with no trace entry (used right after spawn,
    /// where the creation instant is already recorded).
    pub fn yield_silent(&self, tid: usize) {
        let st = self.lock_checked();
        drop(self.yield_here(tid, st));
    }

    /// Happens-before bookkeeping for an atomic store/RMW. (Loads are
    /// handled entirely by [`Execution::atomic_load`], which must first
    /// pick *which* store in the modification order the load observes.)
    fn sync_atomic(st: &mut ExecState, tid: usize, addr: usize, ord: Ordering, rw: Rw) {
        debug_assert!(rw != Rw::Load, "loads go through atomic_load");
        let ExecState {
            threads,
            locs,
            sc_clock,
            ..
        } = st;
        let thr = &mut threads[tid];
        thr.vc.tick(tid);
        let loc = locs.entry(addr).or_default();
        let acq = matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst);
        let rel = matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst);
        if rw == Rw::Rmw {
            // An RMW always reads the latest value in modification
            // order (C11 atomicity), so its read side synchronizes with
            // the current release state.
            if acq {
                thr.vc.join(&loc.release_vc);
            } else {
                thr.acq_pending.join(&loc.release_vc);
            }
        }
        if rel {
            if rw == Rw::Rmw {
                // A release RMW continues any existing release sequence.
                loc.release_vc.join(&thr.vc);
            } else {
                loc.release_vc = thr.vc.clone();
            }
        } else if rw == Rw::Rmw {
            // Relaxed RMW: the release sequence survives; a prior
            // release fence also publishes through it.
            if let Some(f) = &thr.rel_fence {
                loc.release_vc.join(f);
            }
        } else if let Some(f) = &thr.rel_fence {
            loc.release_vc = f.clone();
        } else {
            loc.release_vc.clear();
        }
        if ord == Ordering::SeqCst {
            // Only an RMW has a read side that participates in the SC
            // order as a load; a plain SeqCst *store* publishes into
            // the SC clock but is not an acquire operation (C11), so it
            // must not absorb it — otherwise a SeqCst store would
            // forbid weak behaviors (e.g. a stale re-poll after a
            // deleted fence) that the real memory model allows.
            if rw == Rw::Rmw {
                thr.vc.join(sc_clock);
            }
            sc_clock.join(&thr.vc);
        }
    }

    /// An instrumented atomic store or RMW: schedule, sync, run `real`
    /// under the execution lock, extend the modification order, trace.
    /// `real` performs the actual operation and returns
    /// `(shown, old, new)`: the value to display (old value for RMWs,
    /// the stored value for stores), the location's previous value, and
    /// the value the location holds afterwards.
    #[allow(clippy::too_many_arguments)]
    pub fn atomic_op(
        &self,
        tid: usize,
        addr: usize,
        label: Option<&'static str>,
        opname: &str,
        ord: Ordering,
        rw: Rw,
        real: &mut dyn FnMut() -> (u64, u64, u64),
    ) -> u64 {
        let st = self.lock_checked();
        let mut st = self.yield_here(tid, st);
        Self::sync_atomic(&mut st, tid, addr, ord, rw);
        let (shown, old, new) = real();
        {
            let ExecState { threads, locs, .. } = &mut *st;
            let loc = locs.entry(addr).or_default();
            if loc.stores.is_empty() {
                // Capture the pre-store value so stale reads may still
                // observe the initial state.
                loc.stores.push(StoreRec {
                    val: old,
                    writer: usize::MAX,
                    epoch: 0,
                    rel_vc: VClock::new(),
                });
            }
            let epoch = threads[tid].vc.get(tid);
            let rel_vc = loc.release_vc.clone();
            loc.stores.push(StoreRec {
                val: new,
                writer: tid,
                epoch,
                rel_vc,
            });
            // The writer (and an RMW's reader) observed the latest
            // value; coherence pins it there.
            loc.floor[tid] = loc.stores.len() - 1;
            loc.stale_run[tid] = 0;
        }
        Self::push_trace(&mut st, tid, label, format!("{opname}({ord:?}) = {shown}"));
        shown
    }

    /// Record a value (memory-nondeterminism) decision with
    /// `enabled.len()` alternatives. Unlike scheduling decisions these
    /// are free — they model the memory system, not a context switch —
    /// and the default is the *last* alternative (the freshest value),
    /// so the unforced first execution is sequentially consistent.
    fn choose_value<'a>(
        &'a self,
        st: &mut MutexGuard<'a, ExecState>,
        enabled: Vec<usize>,
    ) -> usize {
        let d = st.decisions.len();
        let chosen = if d < st.prefix.len() {
            let p = st.prefix[d];
            if p >= enabled.len() {
                let msg = format!(
                    "schedule replay diverged at decision {d}: prefix index {p} \
                     but only {} values readable — the model is non-deterministic",
                    enabled.len()
                );
                self.fail_locked(st, ViolationKind::AssertionFailure, msg);
                abort_unwind();
            }
            p
        } else if let Some(rng) = st.rng.as_mut() {
            rng.below(enabled.len())
        } else {
            enabled.len() - 1
        };
        st.decisions.push(Decision {
            prev_pos: None,
            enabled,
            chosen,
        });
        chosen
    }

    /// An instrumented atomic load: schedule, pick which store in the
    /// modification order the load observes (any not-yet-superseded
    /// store that coherence, happens-before, and the SC order permit —
    /// the weak-memory behaviors), synchronize with it, trace.
    /// `init` performs the real load, used only before any instrumented
    /// store has been recorded for the location.
    pub fn atomic_load(
        &self,
        tid: usize,
        addr: usize,
        label: Option<&'static str>,
        opname: &str,
        ord: Ordering,
        init: &mut dyn FnMut() -> u64,
    ) -> u64 {
        let st = self.lock_checked();
        let mut st = self.yield_here(tid, st);
        let acq = matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst);
        {
            let ExecState {
                threads, sc_clock, ..
            } = &mut *st;
            let thr = &mut threads[tid];
            thr.vc.tick(tid);
            if ord == Ordering::SeqCst {
                // Join the SC clock *before* the must-see test: a SeqCst
                // load is forced to observe every store that any earlier
                // SC operation published.
                thr.vc.join(sc_clock);
            }
        }
        let n = st.locs.entry(addr).or_default().stores.len();
        let (val, stale) = if n == 0 {
            (init(), false)
        } else {
            let lo = {
                let ExecState { threads, locs, .. } = &*st;
                let loc = &locs[&addr];
                let vc = &threads[tid].vc;
                let mut lo = loc.floor[tid];
                for (j, s) in loc.stores.iter().enumerate().skip(lo) {
                    // A store this thread made, or one ordered before
                    // the load by happens-before, supersedes everything
                    // older: the load must not travel back past it.
                    if s.writer == tid || vc.covers(s.writer, s.epoch) {
                        lo = j;
                    }
                }
                if loc.stale_run[tid] >= MAX_STALE_RUN {
                    lo = n - 1;
                }
                lo.max(n.saturating_sub(STALE_WINDOW))
            };
            let k = if lo == n - 1 {
                n - 1
            } else {
                lo + self.choose_value(&mut st, (lo..n).collect())
            };
            let ExecState { threads, locs, .. } = &mut *st;
            let loc = locs.get_mut(&addr).expect("location exists");
            let thr = &mut threads[tid];
            loc.floor[tid] = k;
            loc.stale_run[tid] = if k + 1 == n {
                0
            } else {
                loc.stale_run[tid].saturating_add(1)
            };
            let rec = &loc.stores[k];
            if acq {
                thr.vc.join(&rec.rel_vc);
            } else {
                thr.acq_pending.join(&rec.rel_vc);
            }
            (rec.val, k + 1 < n)
        };
        if ord == Ordering::SeqCst {
            let ExecState {
                threads, sc_clock, ..
            } = &mut *st;
            sc_clock.join(&threads[tid].vc);
        }
        let suffix = if stale { " (stale)" } else { "" };
        Self::push_trace(
            &mut st,
            tid,
            label,
            format!("{opname}({ord:?}) = {val}{suffix}"),
        );
        val
    }

    /// An instrumented memory fence.
    pub fn fence(&self, tid: usize, label: Option<&'static str>, ord: Ordering) {
        let st = self.lock_checked();
        let mut st = self.yield_here(tid, st);
        let ExecState {
            threads, sc_clock, ..
        } = &mut *st;
        let thr = &mut threads[tid];
        thr.vc.tick(tid);
        if matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst) {
            let pending = std::mem::take(&mut thr.acq_pending);
            thr.vc.join(&pending);
        }
        if matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst) {
            thr.rel_fence = Some(thr.vc.clone());
        }
        if ord == Ordering::SeqCst {
            thr.vc.join(sc_clock);
            sc_clock.join(&thr.vc);
        }
        Self::push_trace(&mut st, tid, label, format!("fence({ord:?})"));
    }

    /// An access to the data protected by an `UnsafeCellWrap`. Reports a
    /// data race when the access is not ordered (by the tracked
    /// happens-before relation) after every conflicting prior access.
    pub fn cell_access(&self, tid: usize, addr: usize, label: Option<&'static str>, write: bool) {
        let st = self.lock_checked();
        let mut st = self.yield_here(tid, st);
        let step = st.trace.len();
        let kind = if write { "write" } else { "read" };
        Self::push_trace(&mut st, tid, label, format!("cell {kind} @{addr:#x}"));
        let ExecState { threads, cells, .. } = &mut *st;
        let thr = &mut threads[tid];
        let epoch = thr.vc.tick(tid);
        let loc = cells.entry(addr).or_default();
        let mut race: Option<String> = None;
        if let Some((wtid, wep, wstep)) = loc.last_write {
            if wtid != tid && !thr.vc.covers(wtid, wep) {
                race = Some(format!(
                    "cell @{addr:#x}: {kind} by t{tid} (step {step}) is unordered \
                     with the write by t{wtid} (step {wstep})"
                ));
            }
        }
        if write && race.is_none() {
            for &(rtid, rep, rstep) in &loc.reads {
                if rtid != tid && !thr.vc.covers(rtid, rep) {
                    race = Some(format!(
                        "cell @{addr:#x}: write by t{tid} (step {step}) is unordered \
                         with the read by t{rtid} (step {rstep})"
                    ));
                    break;
                }
            }
        }
        if let Some(msg) = race {
            self.fail_locked(&mut st, ViolationKind::DataRace, msg);
            drop(st);
            abort_unwind();
        }
        if write {
            loc.last_write = Some((tid, epoch, step));
            loc.reads.clear();
        } else {
            match loc.reads.iter_mut().find(|(t, _, _)| *t == tid) {
                Some(r) => *r = (tid, epoch, step),
                None => loc.reads.push((tid, epoch, step)),
            }
        }
    }

    /// Forget a location when its owner is dropped (guards against
    /// address reuse within one execution).
    pub fn retire(&self, addr: usize) {
        let mut st = self.lock();
        st.locs.remove(&addr);
        st.cells.remove(&addr);
    }

    /// Register a child thread slot; the spawn edge is a happens-before
    /// edge from parent to child.
    pub fn spawn_slot(&self, parent: usize, name: Option<&'static str>) -> usize {
        let mut st = self.lock_checked();
        let tid = st.threads.len();
        if tid >= MAX_MODEL_THREADS {
            self.fail_locked(
                &mut st,
                ViolationKind::AssertionFailure,
                format!("model spawned more than {MAX_MODEL_THREADS} threads"),
            );
            drop(st);
            abort_unwind();
        }
        let parent_vc = st.threads[parent].vc.clone();
        let mut slot = ThreadSlot::new(name);
        slot.vc = parent_vc;
        slot.vc.tick(tid);
        st.threads.push(slot);
        Self::push_trace(&mut st, parent, name, format!("spawn t{tid}"));
        tid
    }

    /// Block the current thread (`state` must already be set by the
    /// caller) and hand the token to someone runnable; detect deadlock
    /// when nobody is.
    fn block<'a>(
        &'a self,
        tid: usize,
        state: TState,
        mut st: MutexGuard<'a, ExecState>,
    ) -> MutexGuard<'a, ExecState> {
        st.threads[tid].state = state;
        match self.handoff(&mut st, tid) {
            Ok(()) => self.wait_for_token(tid, st),
            Err(()) => {
                drop(st);
                abort_unwind();
            }
        }
    }

    /// Give the token to any runnable thread; `Err` means a deadlock was
    /// recorded (or everything finished — then there is nobody to wake
    /// and the caller is exiting anyway).
    fn handoff(&self, st: &mut ExecState, from: usize) -> Result<(), ()> {
        let next = st.threads.iter().position(|t| t.state == TState::Runnable);
        match next {
            Some(next) => {
                st.current = next;
                self.cv.notify_all();
                Ok(())
            }
            None => {
                if st.threads.iter().all(|t| t.state == TState::Finished) {
                    self.cv.notify_all();
                    return Ok(());
                }
                let stuck: Vec<String> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| !matches!(t.state, TState::Finished))
                    .map(|(i, t)| match t.state {
                        TState::Parked => format!("t{i} parked"),
                        TState::Joining(j) => format!("t{i} joining t{j}"),
                        _ => format!("t{i} (from t{from})"),
                    })
                    .collect();
                let msg = format!(
                    "no runnable thread but not all finished: {}",
                    stuck.join(", ")
                );
                self.fail_locked(st, ViolationKind::Deadlock, msg);
                Err(())
            }
        }
    }

    /// Model `std::thread::park`: consume the token or block until
    /// `unpark`. The unparker's clock is acquired on wake-up, matching
    /// the happens-before edge std guarantees.
    pub fn park(&self, tid: usize) {
        let st = self.lock_checked();
        let mut st = self.yield_here(tid, st);
        if st.threads[tid].park_token {
            Self::push_trace(&mut st, tid, None, "park (token ready)".into());
        } else {
            Self::push_trace(&mut st, tid, None, "park (blocking)".into());
            st = self.block(tid, TState::Parked, st);
            Self::push_trace(&mut st, tid, None, "unparked".into());
        }
        let thr = &mut st.threads[tid];
        thr.park_token = false;
        let uvc = std::mem::take(&mut thr.unpark_vc);
        thr.vc.join(&uvc);
    }

    /// Model `park_timeout`: a timeout always eventually fires, so this
    /// never blocks — it consumes a ready token or returns immediately
    /// (the schedule where the timeout fires at once). Wake-up-by-timer
    /// interleavings are therefore always explored; the cost is that
    /// "parked until timeout" states are not.
    pub fn park_timeout(&self, tid: usize) {
        let st = self.lock_checked();
        let mut st = self.yield_here(tid, st);
        let op = if st.threads[tid].park_token {
            "park_timeout (token ready)"
        } else {
            "park_timeout (timeout)"
        };
        Self::push_trace(&mut st, tid, None, op.into());
        let thr = &mut st.threads[tid];
        thr.park_token = false;
        let uvc = std::mem::take(&mut thr.unpark_vc);
        thr.vc.join(&uvc);
    }

    /// Model `Thread::unpark`. Deliberately *not* a scheduling point:
    /// the live transport calls it while holding a std `Mutex`, and a
    /// context switch there would deadlock the harness, not the model.
    pub fn unpark(&self, from: Option<usize>, target: usize) {
        let mut st = self.lock();
        if st.aborting || target >= st.threads.len() {
            return;
        }
        if let Some(f) = from {
            let fvc = st.threads[f].vc.clone();
            st.threads[target].unpark_vc.join(&fvc);
            Self::push_trace(&mut st, f, None, format!("unpark t{target}"));
        }
        let thr = &mut st.threads[target];
        thr.park_token = true;
        if thr.state == TState::Parked {
            thr.state = TState::Runnable;
        }
    }

    /// Model `yield_now`/`spin_loop`: deprioritize this thread so the
    /// scheduler prefers anyone it might be waiting on.
    pub fn yield_now(&self, tid: usize) {
        let st = self.lock_checked();
        let mut st = {
            let mut st = st;
            st.threads[tid].yielded = true;
            self.yield_here(tid, st)
        };
        Self::push_trace(&mut st, tid, None, "yield".into());
    }

    /// Model `JoinHandle::join`.
    pub fn join_thread(&self, tid: usize, target: usize) {
        let st = self.lock_checked();
        let mut st = self.yield_here(tid, st);
        if st.threads[target].state != TState::Finished {
            Self::push_trace(&mut st, tid, None, format!("join t{target} (blocking)"));
            st = self.block(tid, TState::Joining(target), st);
        }
        let fvc = st.threads[target].final_vc.clone();
        st.threads[tid].vc.join(&fvc);
        Self::push_trace(&mut st, tid, None, format!("joined t{target}"));
    }

    /// A model thread ran to completion (or unwound after an abort).
    pub fn finish(&self, tid: usize) {
        let mut st = self.lock();
        st.threads[tid].state = TState::Finished;
        st.threads[tid].final_vc = st.threads[tid].vc.clone();
        if st.aborting {
            self.cv.notify_all();
            return;
        }
        Self::push_trace(&mut st, tid, None, "finish".into());
        for t in st.threads.iter_mut() {
            if t.state == TState::Joining(tid) {
                t.state = TState::Runnable;
            }
        }
        let _ = self.handoff(&mut st, tid);
    }

    /// A model thread panicked with a real (non-[`Abort`]) payload.
    pub fn fail_assert(&self, tid: usize, msg: String) {
        let mut st = self.lock();
        if !st.aborting {
            let full = format!("t{tid} panicked: {msg}");
            self.fail_locked(&mut st, ViolationKind::AssertionFailure, full);
        }
        st.threads[tid].state = TState::Finished;
        self.cv.notify_all();
    }
}
