//! The cfg-switched synchronization seam.
//!
//! Production crates (`rips-live`, `rips-runtime`) import their atomics,
//! cells, fences and ordering helpers from here instead of `std`:
//!
//! * In a normal build (`cfg(not(rips_verify))`) everything is a
//!   re-export of `std::sync::atomic` plus `#[inline(always)]` identity
//!   helpers — zero cost, bit-for-bit identical behavior.
//! * Under `RUSTFLAGS="--cfg rips_verify"` the same paths resolve to
//!   the instrumented types in [`crate::rt`], so every access becomes a
//!   scheduling point of the bounded model checker and participates in
//!   happens-before tracking.
//!
//! The `&'static str` *site labels* taken by [`ord`], [`fence_at`] and
//! [`swap_bool`] name ordering-sensitive program points. Normally they
//! compile away; under the checker they label replay traces and are the
//! handles the mutation sweep uses to seed single-ordering bugs
//! (see [`crate::mutate`]).

#[cfg(not(rips_verify))]
mod imp {
    use std::sync::atomic::Ordering;

    /// Atomic types: plain `std::sync::atomic` re-exports.
    pub mod atomic {
        pub use std::sync::atomic::{
            fence, AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };
    }

    /// The data-cell seam: a zero-cost `UnsafeCell` wrapper.
    pub mod cell {
        /// Zero-cost wrapper over `std::cell::UnsafeCell` exposing the
        /// same raw-pointer closure API as the instrumented cell.
        #[repr(transparent)]
        pub struct UnsafeCellWrap<T> {
            inner: std::cell::UnsafeCell<T>,
        }

        impl<T> UnsafeCellWrap<T> {
            /// Wrap a value.
            #[inline(always)]
            pub fn new(v: T) -> Self {
                Self {
                    inner: std::cell::UnsafeCell::new(v),
                }
            }

            /// Shared (read) access; dereferencing the pointer is the
            /// caller's `unsafe`.
            #[inline(always)]
            pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
                f(self.inner.get())
            }

            /// Exclusive (write) access; dereferencing the pointer is
            /// the caller's `unsafe`.
            #[inline(always)]
            pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
                f(self.inner.get())
            }
        }
    }

    /// Identity in normal builds: the ordering written at the call site
    /// is the ordering used.
    #[inline(always)]
    pub fn ord(_site: &'static str, o: Ordering) -> Ordering {
        o
    }

    /// A named fence; compiles to a plain `std` fence.
    #[inline(always)]
    pub fn fence_at(_site: &'static str, o: Ordering) {
        std::sync::atomic::fence(o);
    }

    /// A named boolean swap; compiles to a plain `swap`.
    #[inline(always)]
    pub fn swap_bool(_site: &'static str, a: &atomic::AtomicBool, v: bool, o: Ordering) -> bool {
        a.swap(v, o)
    }
}

#[cfg(rips_verify)]
mod imp {
    use std::sync::atomic::Ordering;

    /// Atomic types: the instrumented model-checker cells.
    pub mod atomic {
        pub use crate::rt::{fence, AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize};
        pub use std::sync::atomic::Ordering;
    }

    /// The data-cell seam: the race-checked instrumented cell.
    pub mod cell {
        pub use crate::rt::UnsafeCellWrap;
    }

    /// Under the checker: label the next operation for replay traces
    /// and apply the active ordering mutation, if this is its site.
    pub fn ord(site: &'static str, o: Ordering) -> Ordering {
        crate::rt::set_site(site);
        crate::mutate::apply_ord(site, o)
    }

    /// Under the checker: an instrumented fence, deletable by the
    /// mutation sweep.
    pub fn fence_at(site: &'static str, o: Ordering) {
        if crate::mutate::fence_survives(site) {
            crate::rt::set_site(site);
            crate::rt::fence(o);
        }
    }

    fn load_part(o: Ordering) -> Ordering {
        match o {
            Ordering::AcqRel | Ordering::Acquire => Ordering::Acquire,
            Ordering::SeqCst => Ordering::SeqCst,
            _ => Ordering::Relaxed,
        }
    }

    fn store_part(o: Ordering) -> Ordering {
        match o {
            Ordering::AcqRel | Ordering::Release => Ordering::Release,
            Ordering::SeqCst => Ordering::SeqCst,
            _ => Ordering::Relaxed,
        }
    }

    /// Under the checker: an instrumented boolean swap. When the active
    /// mutation splits this site, the RMW decomposes into a separate
    /// load and store with a scheduling point in between — the classic
    /// lost-update bug the swap exists to prevent.
    pub fn swap_bool(site: &'static str, a: &atomic::AtomicBool, v: bool, o: Ordering) -> bool {
        if crate::mutate::rmw_is_split(site) {
            crate::rt::set_site(site);
            let old = a.load(load_part(o));
            crate::rt::set_site(site);
            a.store(v, store_part(o));
            old
        } else {
            crate::rt::set_site(site);
            a.swap(v, o)
        }
    }
}

pub use imp::*;
